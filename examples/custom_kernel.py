#!/usr/bin/env python3
"""Bring your own kernel: ISE exploration for a custom DSP loop.

Shows the full library workflow on code that is *not* one of the seven
bundled benchmarks: build a saturating multiply-accumulate filter tap
kernel with :class:`~repro.ir.builder.FunctionBuilder`, verify it in
the interpreter against a Python model, then explore ISEs for it and
compare the MI explorer against the greedy and SI baselines.

Usage::

    python examples/custom_kernel.py
"""

from repro import ExplorationParams, MachineConfig
from repro.baselines import GreedyExplorer, SingleIssueExplorer
from repro.core import MultiIssueExplorer
from repro.graph import build_dfg
from repro.ir import FunctionBuilder, Program, run_program
from repro.ir.analysis import liveness
from repro.ir.program import DataSegment

_MASK = 0xFFFFFFFF
TAPS = 8


def coefficients():
    return [((i * 2654435761) & 0x7FFF) - 0x4000 for i in range(1, TAPS + 1)]


def samples():
    return [((i * 40503) & 0xFFF) - 0x800 for i in range(TAPS)]


def build_program():
    data = DataSegment()
    coef = data.place_words("coef", [c & _MASK for c in coefficients()])
    xs = data.place_words("x", [s & _MASK for s in samples()])

    b = FunctionBuilder("fir_tap", params=("coef", "x"))
    b.label("entry")
    b.li(0, dest="zero")
    b.li(0, dest="acc")
    b.li(0, dest="i")
    b.jump("mac_loop")

    b.label("mac_loop")                  # constant 8 trips -> unrollable
    off = b.sll("i", 2)
    c = b.lw(b.addu("coef", off))
    x = b.lw(b.addu("x", off))
    p = b.mult(c, x)
    scaled = b.sra(p, 6)
    b.addu("acc", scaled, dest="acc")
    b.addiu("i", 1, dest="i")
    t = b.slti("i", TAPS)
    b.bne(t, "zero", "mac_loop", "saturate")

    b.label("saturate")                  # clamp to 16-bit, branchless
    b.li(32767, dest="maxv")
    b.li(-32768, dest="minv")
    over = b.slt("maxv", "acc")
    mask_over = b.subu("zero", over)
    keep = b.nor(mask_over, mask_over)
    a1 = b.and_("acc", keep)
    a2 = b.and_("maxv", mask_over)
    clipped_hi = b.or_(a1, a2)
    under = b.slt(clipped_hi, "minv")
    mask_under = b.subu("zero", under)
    keep2 = b.nor(mask_under, mask_under)
    b1 = b.and_(clipped_hi, keep2)
    b2 = b.and_("minv", mask_under)
    result = b.or_(b1, b2)
    b.ret(result)

    program = Program("fir", data=data)
    program.add_function(b.finish())
    return program, (coef, xs)


def python_model():
    acc = 0
    for c, x in zip(coefficients(), samples()):
        acc += (c * x) >> 6
    return max(-32768, min(32767, acc)) & _MASK


def main():
    program, args = build_program()
    result, __, ___ = run_program(program, args=args)
    expected = python_model()
    print("interpreter result: {:#x}  python model: {:#x}  {}".format(
        result, expected, "OK" if result == expected else "MISMATCH"))

    # Lower the saturation block (pure straight-line) and explore it.
    func = program.main
    __, live_out = liveness(func)
    dfg = build_dfg(func.block("saturate"), live_out["saturate"],
                    function=func.name)
    print("\nsaturation-block DFG: {} operations".format(len(dfg)))

    machine = MachineConfig(2, "6/3")
    params = ExplorationParams(max_iterations=150, restarts=3)
    explorers = [
        ("MI   ", MultiIssueExplorer(machine, params=params, seed=3)),
        ("SI   ", SingleIssueExplorer(machine, params=params, seed=3)),
        ("GREEDY", GreedyExplorer(machine)),
    ]
    for label, explorer in explorers:
        outcome = explorer.explore(dfg)
        print("\n{}: {} -> {} cycles with {} ISE(s)".format(
            label, outcome.base_cycles, outcome.final_cycles,
            len(outcome.candidates)))
        for candidate in outcome.candidates:
            print("   {}".format(candidate.describe()))


if __name__ == "__main__":
    main()
