#!/usr/bin/env python3
"""Assembly in, ISEs and VLIW bundles out.

The most direct way to use the library on your own code: write the hot
block as text assembly, explore ISEs for it, and print the before/after
VLIW issue bundles — the custom instructions appear inline as
``iseN dst <- src`` slots.

Usage::

    python examples/assembly_to_ise.py
"""

from repro import ExplorationParams, MachineConfig
from repro.core import MultiIssueExplorer
from repro.graph import build_dfg
from repro.ir import parse_functions
from repro.ir.analysis import liveness
from repro.sched import contract_dfg, emit_block_listing, list_schedule
from repro.hwlib import DEFAULT_TECHNOLOGY

# A complex-multiply + saturate kernel, as a user would write it.
KERNEL = """
func cmul_sat(ar, ai, br, bi):
entry:
    p1 = mult ar, br
    p2 = mult ai, bi
    p3 = mult ar, bi
    p4 = mult ai, br
    re_w = subu p1, p2
    im_w = addu p3, p4
    re = sra re_w, 15
    im = sra im_w, 15
    hi = sll re, 16
    lo_m = li 0xFFFF
    lo = and im, lo_m
    packed = or hi, lo
    ret packed
"""


def main():
    func = parse_functions(KERNEL)[0]
    __, live_out = liveness(func)
    dfg = build_dfg(func.block("entry"), live_out["entry"],
                    function=func.name)
    machine = MachineConfig(2, "6/3")
    print("Kernel: {} — {} operations on {}".format(
        func.name, len(dfg), machine))

    graph, units = contract_dfg(dfg, [], DEFAULT_TECHNOLOGY)
    before = list_schedule(graph, units, machine)
    print("\n--- before (software only) ---")
    print(emit_block_listing(dfg, before))

    explorer = MultiIssueExplorer(
        machine, params=ExplorationParams(max_iterations=150, restarts=3),
        seed=5)
    result = explorer.explore(dfg)
    print("\nExplored {} ISE candidate(s):".format(len(result.candidates)))
    for candidate in result.candidates:
        print("  " + candidate.describe())

    groups = [(c.members, c.option_of) for c in result.candidates]
    graph2, units2 = contract_dfg(dfg, groups, DEFAULT_TECHNOLOGY)
    after = list_schedule(graph2, units2, machine)
    print("\n--- after ({} -> {} cycles) ---".format(
        before.makespan, after.makespan))
    print(emit_block_listing(dfg, after))


if __name__ == "__main__":
    main()
