#!/usr/bin/env python3
"""HW/SW partitioning with the ISE exploration engine (§6 future work).

The thesis observes that hardware-software partitioning + hardware
design-space exploration + scheduling (Chatha & Vemuri; Kalavade & Lee)
is the same problem as ISE exploration at task granularity.  This
example models a small software-defined-radio receiver as a task graph,
lets :func:`repro.ext.partition` decide which stages to move into
custom hardware (and which design bin to use), and sweeps the area
budget.

Usage::

    python examples/hw_sw_partitioning.py
"""

from repro.ext import TaskGraph, partition


def receiver():
    """An SDR receive chain: parallel channel work joining at decode."""
    tg = TaskGraph("sdr-receiver")
    tg.add_task("adc_read", 3)
    tg.add_task("ddc", 12, hw_bins=[(4.0, 1200.0), (2.0, 2600.0)],
                deps=["adc_read"])
    tg.add_task("fir_i", 8, hw_bins=[(2.0, 800.0)], deps=["ddc"])
    tg.add_task("fir_q", 8, hw_bins=[(2.0, 800.0)], deps=["ddc"])
    tg.add_task("agc", 4, hw_bins=[(1.0, 300.0)], deps=["fir_i", "fir_q"])
    tg.add_task("demod", 14, hw_bins=[(5.0, 1500.0), (3.0, 3100.0)],
                deps=["agc"])
    tg.add_task("sync", 6, hw_bins=[(2.0, 500.0)], deps=["demod"])
    tg.add_task("fec_decode", 16, hw_bins=[(6.0, 2200.0)], deps=["sync"])
    tg.add_task("crc_check", 5, hw_bins=[(1.0, 350.0)], deps=["fec_decode"])
    tg.add_task("to_mac", 2, deps=["crc_check"])
    return tg


def main():
    tg = receiver()
    print("Task graph: {} tasks, all-software critical path".format(len(tg)))

    print("\n{:>10} {:>10} {:>8} {:>10}  {}".format(
        "budget", "makespan", "speedup", "area", "hardware blocks"))
    print("-" * 78)
    for budget in (None, 6000.0, 3000.0, 1000.0, 0.0):
        result = partition(tg, processors=1, hw_slots=1,
                           max_area=budget, seed=9)
        label = "none" if budget is None else "{:.0f}".format(budget)
        blocks = "; ".join("+".join(b) for b in result.hardware_blocks()) \
            or "(none)"
        print("{:>10} {:>10} {:>8.2f} {:>10.0f}  {}".format(
            label, result.makespan_partitioned, result.speedup,
            result.hardware_area, blocks))

    unbounded = partition(tg, processors=1, hw_slots=1, seed=9)
    print("\nSoftware tasks kept on the CPU: {}".format(
        ", ".join(sorted(unbounded.software_tasks()))))


if __name__ == "__main__":
    main()
