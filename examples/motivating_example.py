#!/usr/bin/env python3
"""The paper's motivating example (Fig. 1.3.1 / Fig. 4.0.x).

Builds a small DFG with parallel dependence chains and schedules it
four ways — single-issue and 2-issue, each without and with explored
ISEs — demonstrating the paper's core claim: wider issue exploits
*independent* operations, ISEs compress *dependent* ones, and combining
both beats either (and exploring ISEs *for* the multi-issue schedule
beats reusing the single-issue ISE choice).

Usage::

    python examples/motivating_example.py
"""

from repro import ExplorationParams, MachineConfig, MultiIssueExplorer
from repro.graph import build_dfg
from repro.ir import FunctionBuilder
from repro.ir.analysis import liveness
from repro.sched import contract_dfg, list_schedule
from repro.hwlib import DEFAULT_TECHNOLOGY


def example_dfg():
    """Nine operations, two chains — the shape of Fig. 4.0.1."""
    b = FunctionBuilder("example", params=("a", "b", "c", "d"))
    b.label("bb")
    t1 = b.xor("a", "b")
    t2 = b.and_("a", "c")
    t3 = b.or_("b", "c")
    t4 = b.addu(t1, "d")
    t5 = b.subu(t3, "c")
    t6 = b.addu(t4, t2)
    t7 = b.xor(t4, "a")
    t8 = b.addu(t6, t7)
    t9 = b.or_(t8, t5)
    b.ret(t9)
    func = b.finish()
    __, live_out = liveness(func)
    return build_dfg(func.block("bb"), live_out["bb"], function="example")


def schedule(dfg, machine, candidates=()):
    groups = [(c.members, c.option_of) for c in candidates]
    graph, units = contract_dfg(dfg, groups, DEFAULT_TECHNOLOGY)
    return list_schedule(graph, units, machine)


def main():
    dfg = example_dfg()
    print("DFG:")
    print(dfg.pretty())

    single = MachineConfig(1, "4/2")
    dual = MachineConfig(2, "4/2")
    params = ExplorationParams(max_iterations=150, restarts=3)

    base_single = schedule(dfg, single)
    base_dual = schedule(dfg, dual)
    print("\nWithout ISE:  1-issue = {} cycles, 2-issue = {} cycles".format(
        base_single.makespan, base_dual.makespan))

    # Explore for each architecture.
    for label, machine in (("1-issue", single), ("2-issue", dual)):
        explorer = MultiIssueExplorer(machine, params=params, seed=7)
        result = explorer.explore(dfg)
        print("\nISE explored FOR the {} machine:".format(label))
        for candidate in result.candidates:
            print("  {}".format(candidate.describe()))
        # Schedule that choice on BOTH machines (the paper's case-1 /
        # case-2 comparison).
        for tlabel, target in (("1-issue", single), ("2-issue", dual)):
            s = schedule(dfg, target, result.candidates)
            print("  scheduled on {}: {} cycles".format(
                tlabel, s.makespan))


if __name__ == "__main__":
    main()
