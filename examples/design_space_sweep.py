#!/usr/bin/env python3
"""Design-space sweep: pick a machine + ISE budget for a codec core.

Scenario from the paper's introduction: a digital-entertainment SoC
team must decide between widening the issue path and spending silicon
on ISEs.  This example sweeps the six §5.1 machine configurations over
a set of area budgets on a media-ish workload mix (adpcm + jpeg) and
prints the reduction matrix, so the trade-off the paper argues about is
visible in one table.

Built on the stable public API: each (workload, machine) cell is
explored once with ``repro.explore`` and the budget sweep reuses the
frozen :class:`repro.ExploreResult` through ``repro.evaluate``.

Usage::

    python examples/design_space_sweep.py [--quick]
"""

import sys

from repro import evaluate, explore
from repro.eval import default_profile
from repro.sched.machine import PAPER_CASES

BUDGETS = (20_000, 80_000, 320_000)
WORKLOADS = ("adpcm", "jpeg")


def main():
    profile = "quick" if "--quick" in sys.argv else default_profile()
    header = "{:16s}".format("machine")
    header += "".join("{:>14}".format("{}um2".format(b)) for b in BUDGETS)
    print("Execution-time reduction, mean over {} (O3, MI explorer)"
          .format("+".join(WORKLOADS)))
    print(header)
    print("-" * len(header))
    best = (None, -1.0)
    for ports, issue in PAPER_CASES:
        label = "({}, {}IS)".format(ports, issue)
        explored = [explore(name, issue=issue, ports=ports,
                            profile=profile, seed=11)
                    for name in WORKLOADS]
        cells = []
        for budget in BUDGETS:
            reductions = [
                100.0 * evaluate(result, max_area=budget).reduction
                for result in explored
            ]
            value = sum(reductions) / len(reductions)
            cells.append(value)
            if value > best[1]:
                best = ("{} @ {} um2".format(label, budget), value)
        print("{:16s}".format(label)
              + "".join("{:>13.2f}%".format(v) for v in cells))
    print("\nBest cell: {} ({:.2f}% reduction)".format(*best))


if __name__ == "__main__":
    main()
