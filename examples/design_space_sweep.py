#!/usr/bin/env python3
"""Design-space sweep: pick a machine + ISE budget for a codec core.

Scenario from the paper's introduction: a digital-entertainment SoC
team must decide between widening the issue path and spending silicon
on ISEs.  This example sweeps the six §5.1 machine configurations over
a set of area budgets on a media-ish workload mix (adpcm + jpeg) and
prints the reduction matrix, so the trade-off the paper argues about is
visible in one table.

Usage::

    python examples/design_space_sweep.py [--quick]
"""

import sys

from repro import ISEConstraints
from repro.eval import EvalContext, machine_for_case
from repro.sched.machine import PAPER_CASES

BUDGETS = (20_000, 80_000, 320_000)
WORKLOADS = ("adpcm", "jpeg")


def main():
    profile = "quick" if "--quick" in sys.argv else None
    ctx = EvalContext(profile=profile, workload_names=list(WORKLOADS),
                      seed=11)
    header = "{:16s}".format("machine")
    header += "".join("{:>14}".format("{}um2".format(b)) for b in BUDGETS)
    print("Execution-time reduction, mean over {} (O3, MI explorer)"
          .format("+".join(WORKLOADS)))
    print(header)
    print("-" * len(header))
    best = (None, -1.0)
    for ports, issue in PAPER_CASES:
        machine = machine_for_case(ports, issue)
        cells = []
        for budget in BUDGETS:
            value = ctx.average_reduction(
                machine, "O3", "MI", ISEConstraints(max_area=budget))
            cells.append(value)
            if value > best[1]:
                best = ("{} @ {} um2".format(machine.label, budget), value)
        print("{:16s}".format(machine.label)
              + "".join("{:>13.2f}%".format(v) for v in cells))
    print("\nBest cell: {} ({:.2f}% reduction)".format(*best))


if __name__ == "__main__":
    main()
