#!/usr/bin/env python3
"""Design-space sweep: pick a machine + ISE budget for a codec core.

Scenario from the paper's introduction: a digital-entertainment SoC
team must decide between widening the issue path and spending silicon
on ISEs.  This example sweeps the six §5.1 machine configurations over
a set of area budgets on a media-ish workload mix (adpcm + jpeg) and
prints the reduction matrix, so the trade-off the paper argues about is
visible in one table.

Built on the stable public API: one :func:`repro.sweep` call runs the
whole (workload × machine × budget) grid — each cell explored once,
every budget evaluated against the frozen exploration — and returns a
frozen :class:`repro.SweepResult` with a content digest.  The same
grid shards across hosts with ``shard=(i, n)`` (or ``repro sweep
--shard i/n`` on the CLI) and merges back bit-identically; point
``REPRO_REMOTE_CACHE`` at a ``repro cache-server`` to share the
evaluation work between the shards.

Usage::

    python examples/design_space_sweep.py [--quick] [--shard i/n]
"""

import sys

from repro import sweep
from repro.dist.sweep import parse_shard, render_sweep
from repro.eval import default_profile

BUDGETS = (20_000, 80_000, 320_000)
WORKLOADS = ("adpcm", "jpeg")


def main():
    argv = sys.argv[1:]
    profile = "quick" if "--quick" in argv else default_profile()
    shard = None
    if "--shard" in argv:
        shard = parse_shard(argv[argv.index("--shard") + 1])
    result = sweep(WORKLOADS, budgets=BUDGETS, profile=profile,
                   seed=11, shard=shard)
    if shard is None:
        print(render_sweep(result))
    else:
        print("shard {}/{}: {} row(s) over {} cell(s)".format(
            result.shard_index, result.shard_count,
            len(result.rows), len(result.cells)))
    print("digest: {}".format(result.digest))


if __name__ == "__main__":
    main()
