#!/usr/bin/env python3
"""Quickstart: explore ISEs for CRC32 on a 2-issue machine.

Runs the complete design flow of the paper — profile, hot-block
selection, ACO exploration, merging, greedy selection with hardware
sharing, replacement, rescheduling — through the stable public API
(``repro.explore`` / ``repro.evaluate``) and prints what it found.
Pass a trace path to watch the ACO colonies converge::

    python examples/quickstart.py [workload] [trace.jsonl]
    python -m repro metrics trace.jsonl
"""

import sys

from repro import evaluate, explore


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "crc32"
    trace = sys.argv[2] if len(sys.argv) > 2 else None

    print("Workload: {}".format(name))
    print("Machine:  2-issue, RF 4/2")
    print("Exploring (profile, hot blocks, ACO)...")
    result = explore(name, issue=2, ports="4/2", profile="quick",
                     seed=42, trace=trace)

    print("\n{} candidates found in the hot blocks:".format(
        result.num_candidates))
    for description in result.candidates:
        print("  {}".format(description))

    for budget in (20_000, 80_000, 320_000):
        selection = evaluate(result, max_area=budget)
        print("\nArea budget {:>7} um2: {} -> {} cycles "
              "({:.2%} reduction, {} ISEs, {:.0f} um2 used)".format(
                  budget, selection.baseline_cycles,
                  selection.final_cycles, selection.reduction,
                  selection.num_ises, selection.area))
    if trace:
        print("\nTrace written to {} — summarise it with "
              "`python -m repro metrics {}`".format(trace, trace))


if __name__ == "__main__":
    main()
