#!/usr/bin/env python3
"""Quickstart: explore ISEs for CRC32 on a 2-issue machine.

Runs the complete design flow of the paper — profile, hot-block
selection, ACO exploration, merging, greedy selection with hardware
sharing, replacement, rescheduling — and prints what it found.

Usage::

    python examples/quickstart.py [workload]
"""

import sys

from repro import (
    ISEConstraints,
    ISEDesignFlow,
    MachineConfig,
    get_workload,
)


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "crc32"
    workload = get_workload(name)
    program, args = workload.build()

    machine = MachineConfig(issue_width=2, register_file="4/2")
    flow = ISEDesignFlow(machine, seed=42)

    print("Workload: {} — {}".format(workload.name, workload.description))
    print("Machine:  {}".format(machine))
    print("Exploring (profile, hot blocks, ACO)...")
    explored = flow.explore_application(program, args=args, opt_level="O3")

    print("\n{} candidates found in the hot blocks:".format(
        len(explored.candidates)))
    for candidate in explored.candidates:
        print("  {}".format(candidate.describe()))

    for budget in (20_000, 80_000, 320_000):
        report = flow.evaluate(
            explored, ISEConstraints(max_area=budget))
        print("\nArea budget {:>7} um2: {} -> {} cycles "
              "({:.2%} reduction, {} ISEs, {:.0f} um2 used)".format(
                  budget, report.baseline_cycles, report.final_cycles,
                  report.reduction, report.num_ises, report.area))


if __name__ == "__main__":
    main()
