"""Tests for the hardware library: database, options, ASFU, technology."""

import pytest

from repro.errors import ConfigError, UnknownOpcodeError
from repro.hwlib import (
    ASFU,
    DEFAULT_DATABASE,
    DEFAULT_TECHNOLOGY,
    HardwareDatabase,
    HardwareOption,
    IOTable,
    SoftwareOption,
    Technology,
    default_io_table,
    subgraph_area,
    subgraph_cycles,
    subgraph_delay_ns,
)
from repro.isa import Operation

from conftest import chain_dfg


class TestTechnology:
    def test_paper_defaults(self):
        assert DEFAULT_TECHNOLOGY.clock_mhz == 100.0
        assert DEFAULT_TECHNOLOGY.cycle_ns == 10.0
        assert DEFAULT_TECHNOLOGY.node_um == 0.13

    def test_cycles_for_delay(self):
        t = DEFAULT_TECHNOLOGY
        assert t.cycles_for_delay(0.5) == 1
        assert t.cycles_for_delay(10.0) == 1
        assert t.cycles_for_delay(10.01) == 2
        assert t.cycles_for_delay(25.0) == 3

    def test_zero_delay_costs_one_cycle(self):
        assert DEFAULT_TECHNOLOGY.cycles_for_delay(0.0) == 1

    def test_custom_clock(self):
        fast = Technology(clock_mhz=200)
        assert fast.cycle_ns == 5.0
        assert fast.cycles_for_delay(10.0) == 2

    def test_invalid(self):
        with pytest.raises(ConfigError):
            Technology(clock_mhz=0)
        with pytest.raises(ConfigError):
            Technology(node_um=-1)


class TestDatabase:
    def test_table_5_1_1_values(self):
        assert DEFAULT_DATABASE.design_points("addu") == [
            (4.04, 926.33), (2.12, 2075.35)]
        assert DEFAULT_DATABASE.design_points("mult") == [(5.77, 84428.0)]
        assert DEFAULT_DATABASE.design_points("sll") == [(3.00, 400.0)]

    def test_immediate_forms_share_group(self):
        assert (DEFAULT_DATABASE.design_points("addi")
                == DEFAULT_DATABASE.design_points("add"))
        assert (DEFAULT_DATABASE.design_points("slti")
                == DEFAULT_DATABASE.design_points("slt"))

    def test_unknown_raises(self):
        with pytest.raises(UnknownOpcodeError):
            DEFAULT_DATABASE.design_points("lw")

    def test_hardware_options_labels(self):
        options = DEFAULT_DATABASE.hardware_options("addu")
        assert [o.label for o in options] == ["HW-1", "HW-2"]
        single = DEFAULT_DATABASE.hardware_options("xor")
        assert [o.label for o in single] == ["HW"]

    def test_hardware_options_for_memory_empty(self):
        assert DEFAULT_DATABASE.hardware_options("lw") == []
        assert DEFAULT_DATABASE.hardware_options("nosuch") == []

    def test_rows_cover_eleven_groups(self):
        assert len(list(DEFAULT_DATABASE.rows())) == 11

    def test_custom_database(self):
        db = HardwareDatabase({"addu": [(1.0, 10.0)]})
        assert db.has("addu")
        assert not db.has("subu")
        assert db.opcode_names() == ["addu"]


class TestOptions:
    def test_software_option(self):
        opt = SoftwareOption("SW", cycles=2, fu_kind="mul")
        assert opt.is_software and not opt.is_hardware
        assert opt.area == 0.0
        assert opt.cycles == 2

    def test_hardware_option_validation(self):
        with pytest.raises(ConfigError):
            HardwareOption("HW", delay_ns=0, area=10)
        with pytest.raises(ConfigError):
            HardwareOption("HW", delay_ns=1.0, area=-1)

    def test_option_equality(self):
        a = HardwareOption("HW-1", 2.0, 100.0)
        b = HardwareOption("HW-1", 2.0, 100.0)
        assert a == b and hash(a) == hash(b)
        assert a != HardwareOption("HW-2", 2.0, 100.0)

    def test_io_table_ordering(self):
        table = IOTable(
            software=[SoftwareOption("SW")],
            hardware=[HardwareOption("HW-1", 4.0, 900.0),
                      HardwareOption("HW-2", 2.0, 2000.0)])
        assert [o.label for o in table] == ["SW", "HW-1", "HW-2"]
        assert table.has_hardware
        assert table.fastest_hardware().label == "HW-2"
        assert table.cheapest_hardware().label == "HW-1"

    def test_io_table_needs_software(self):
        with pytest.raises(ConfigError):
            IOTable(software=[], hardware=[HardwareOption("H", 1.0, 1.0)])

    def test_io_table_duplicate_labels(self):
        with pytest.raises(ConfigError):
            IOTable(software=[SoftwareOption("X"), SoftwareOption("X")])

    def test_default_io_table_groupable(self):
        op = Operation(0, "addu", sources=("x", "y"), dests=("z",))
        table = default_io_table(op, DEFAULT_DATABASE)
        assert len(table.software) == 1
        assert len(table.hardware) == 2

    def test_default_io_table_memory(self):
        op = Operation(0, "lw", sources=("p",), dests=("v",))
        table = default_io_table(op, DEFAULT_DATABASE)
        assert not table.has_hardware
        assert table.software[0].fu_kind == "mem"

    def test_default_io_table_multiply_unit(self):
        op = Operation(0, "mult", sources=("x", "y"), dests=("z",))
        table = default_io_table(op, DEFAULT_DATABASE)
        assert table.software[0].fu_kind == "mul"


class TestASFU:
    def _options(self, dfg, delay=3.0, area=100.0):
        return {uid: HardwareOption("HW", delay, area) for uid in dfg.nodes}

    def test_chain_delay_is_sum(self):
        dfg = chain_dfg(4)
        options = self._options(dfg)
        delay = subgraph_delay_ns(dfg.graph, dfg.nodes,
                                  options.__getitem__)
        assert delay == pytest.approx(12.0)

    def test_area_is_sum(self):
        dfg = chain_dfg(3)
        options = self._options(dfg)
        assert subgraph_area(dfg.nodes, options.__getitem__) == 300.0

    def test_cycles_rounding(self):
        dfg = chain_dfg(4)
        options = self._options(dfg, delay=3.0)
        cycles = subgraph_cycles(dfg.graph, dfg.nodes, options.__getitem__)
        assert cycles == 2          # 12 ns at 10 ns/cycle

    def test_parallel_nodes_delay_is_max(self):
        from conftest import wide_dfg
        dfg = wide_dfg(4)
        # Take only the four independent top nodes.
        roots = [uid for uid in dfg.nodes
                 if not list(dfg.predecessors(uid))][:2]
        options = self._options(dfg, delay=5.0)
        delay = subgraph_delay_ns(dfg.graph, roots, options.__getitem__)
        assert delay == pytest.approx(5.0)

    def test_asfu_object(self):
        dfg = chain_dfg(2)
        options = self._options(dfg, delay=6.0, area=50.0)
        asfu = ASFU(dfg.graph, dfg.nodes, options)
        assert asfu.cycles == 2
        assert asfu.area == 100.0

    def test_empty_set_rejected(self):
        dfg = chain_dfg(2)
        with pytest.raises(ConfigError):
            subgraph_delay_ns(dfg.graph, [], lambda n: None)
