"""Tests for the cross-restart evaluation memo (core/evalcache.py)."""

import pickle

from repro.core import evalcache
from repro.core.evalcache import EvalCache, candidate_fingerprint, \
    dfg_fingerprint, evalcache_enabled
from repro.core.exploration import MultiIssueExplorer
from repro.hwlib.options import HardwareOption
from repro.sched import MachineConfig

from conftest import chain_dfg, diamond_dfg


class FakeCandidate:
    def __init__(self, members, option_of):
        self.members = frozenset(members)
        self.option_of = dict(option_of)


def fake_candidates():
    a = HardwareOption("A", 1.5, 10.0)
    b = HardwareOption("B", 2.5, 20.0)
    return (FakeCandidate({1, 2}, {1: a, 2: a}),
            FakeCandidate({4}, {4: b}))


class TestFingerprints:
    def test_equal_structure_equal_digest(self):
        # Two independent builds of the same block must share a key —
        # that is what lets pool workers hit the parent's snapshot.
        assert dfg_fingerprint(chain_dfg(3)) == dfg_fingerprint(chain_dfg(3))

    def test_different_structure_different_digest(self):
        assert dfg_fingerprint(chain_dfg(3)) != dfg_fingerprint(chain_dfg(4))
        assert dfg_fingerprint(chain_dfg(3)) != dfg_fingerprint(diamond_dfg())

    def test_digest_cached_on_dfg(self):
        dfg = chain_dfg(2)
        first = dfg_fingerprint(dfg)
        assert dfg._evalcache_fp == first
        assert dfg_fingerprint(dfg) is first

    def test_candidate_fingerprint_canonical(self):
        opt = HardwareOption("A", 1.5, 10.0)
        fp1 = candidate_fingerprint([2, 1], {1: opt, 2: opt})
        fp2 = candidate_fingerprint({1, 2}, {2: opt, 1: opt})
        assert fp1 == fp2

    def test_key_is_candidate_order_sensitive(self):
        # Contraction names supernodes in candidate order and the list
        # scheduler tie-breaks on unit name, so [A, B] and [B, A] are
        # distinct evaluations and must not share a memo entry.
        dfg = chain_dfg(5)
        cache = EvalCache()
        first, second = fake_candidates()
        key_ab = cache.key(dfg, [first, second], None)
        key_ba = cache.key(dfg, [second, first], None)
        assert key_ab != key_ba

    def test_key_includes_software_latencies(self):
        dfg = chain_dfg(3)
        cache = EvalCache()
        cands = list(fake_candidates())
        assert (cache.key(dfg, cands, ((0, 1),))
                != cache.key(dfg, cands, ((0, 2),)))


class TestEvalCache:
    def test_hit_miss_counting(self):
        cache = EvalCache()
        key = ("fp", (), None)
        assert cache.get(key) is None
        cache.put(key, 7)
        assert cache.get(key) == 7
        assert cache.stats() == (1, 1, 1)

    def test_pickle_keeps_entries_resets_counters(self):
        cache = EvalCache()
        cache.put(("k", (), None), 3)
        cache.get(("k", (), None))
        cache.get(("absent", (), None))
        warm = pickle.loads(pickle.dumps(cache))
        assert len(warm) == 1
        assert warm.stats() == (0, 0, 1)
        assert warm.get(("k", (), None)) == 3

    def test_entry_cap_respected(self, monkeypatch):
        monkeypatch.setattr(evalcache, "MAX_ENTRIES", 2)
        cache = EvalCache()
        for index in range(5):
            cache.put(("k", index), index)
        assert len(cache) == 2


class TestEnableSwitch:
    def test_env_values(self, monkeypatch):
        for value in ("0", "false", "NO", " off "):
            monkeypatch.setenv(evalcache.EVALCACHE_ENV, value)
            assert not evalcache_enabled()
        for value in ("1", "true", "yes"):
            monkeypatch.setenv(evalcache.EVALCACHE_ENV, value)
            assert evalcache_enabled()
        monkeypatch.delenv(evalcache.EVALCACHE_ENV, raising=False)
        assert evalcache_enabled()

    def test_explorer_honours_switch(self, monkeypatch):
        machine = MachineConfig(2, "4/2")
        monkeypatch.setenv(evalcache.EVALCACHE_ENV, "0")
        assert MultiIssueExplorer(machine)._evalcache is None
        monkeypatch.delenv(evalcache.EVALCACHE_ENV)
        assert isinstance(MultiIssueExplorer(machine)._evalcache, EvalCache)
