"""Regression: the disk ExplorationCache and the in-memory tiers
compose as store-once / hit-from-nearest-tier.

An exploration result exists in up to three places: the EvalContext's
in-process memo, the on-disk ExplorationCache, and (transitively) the
evalcache that accelerated the exploration itself.  The contract under
test: each tier stores a result exactly once, a repeat request is
served by the *nearest* tier that has it, and a farther tier is never
written again for a result that was served from a nearer one — across
two full :class:`EvalContext` lifetimes sharing one cache directory.
"""

from repro.eval.persistence import CACHE_DIR_ENV, CACHE_ENV
from repro.eval.runner import EvalContext
from repro.sched.machine import MachineConfig


def test_store_once_hit_from_nearest_tier(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_ENV, "1")
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    machine = MachineConfig(2, "4/2")
    cell = ("crc32", machine, "O3", "MI")

    # Lifetime 1: cold miss explores + stores to disk once; the repeat
    # request is a memory hit that never touches the disk tier again.
    with EvalContext(profile="quick", seed=7,
                     workload_names=["crc32"]) as first:
        __, explored_cold = first.explored(*cell)
        ___, explored_repeat = first.explored(*cell)
        assert explored_repeat is explored_cold        # memory tier
        stats = first.cache_stats()
        assert stats["memory_misses"] == 1 and stats["memory_hits"] == 1
        assert stats["disk_misses"] == 1               # the cold probe
        assert stats["disk_stores"] == 1               # stored exactly once
        assert stats["disk_hits"] == 0
        assert first.disk_cache.stored_bytes > 0

    stored = sorted(tmp_path.glob("*.pkl"))
    assert len(stored) == 1

    # Lifetime 2: fresh memory tier, so the disk tier serves the hit —
    # and nothing is re-stored (no double-storing across lifetimes).
    with EvalContext(profile="quick", seed=7,
                     workload_names=["crc32"]) as second:
        __, explored_disk = second.explored(*cell)
        ___, explored_mem = second.explored(*cell)
        assert explored_mem is explored_disk
        stats = second.cache_stats()
        assert stats["disk_hits"] == 1 and stats["disk_misses"] == 0
        assert stats["disk_stores"] == 0
        assert stats["memory_misses"] == 1 and stats["memory_hits"] == 1
        assert second.disk_cache.stored_bytes == 0
        # The served bundle is equivalent to the one explored cold.
        assert explored_disk.baseline_cycles == explored_cold.baseline_cycles
        assert len(explored_disk.candidates) == len(explored_cold.candidates)

    assert sorted(tmp_path.glob("*.pkl")) == stored    # still one file
