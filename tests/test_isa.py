"""Tests for the ISA layer: opcodes, operations, register file."""

import pytest

from repro.errors import ConfigError, UnknownOpcodeError
from repro.isa import (
    OpCategory,
    Operation,
    RegisterFile,
    all_opcodes,
    groupable_opcodes,
    is_known,
    opcode,
)


class TestOpcodes:
    def test_lookup_known(self):
        assert opcode("addu").name == "addu"
        assert opcode("sll").category == OpCategory.SHIFT
        assert opcode("mult").category == OpCategory.MULTIPLY

    def test_lookup_unknown_raises(self):
        with pytest.raises(UnknownOpcodeError):
            opcode("frobnicate")

    def test_is_known(self):
        assert is_known("xor")
        assert not is_known("vadd")

    def test_memory_ops_not_groupable(self):
        for name in ("lw", "lb", "lbu", "lh", "lhu", "sw", "sh", "sb"):
            assert opcode(name).is_memory
            assert not opcode(name).groupable

    def test_branches_not_groupable(self):
        for name in ("beq", "bne", "blez", "bgtz", "j", "jr", "jal"):
            assert opcode(name).is_control
            assert not opcode(name).groupable

    def test_ise_pseudo_opcode(self):
        pseudo = opcode("ise")
        assert pseudo.category == OpCategory.PSEUDO
        assert not pseudo.groupable

    def test_groupable_set_matches_table_5_1_1(self):
        names = {op.name for op in groupable_opcodes()}
        expected = {
            "add", "addi", "addu", "addiu", "sub", "subu", "mult", "multu",
            "and", "andi", "or", "ori", "xor", "xori", "nor",
            "slt", "slti", "sltu", "sltiu",
            "sll", "sllv", "srl", "srlv", "sra", "srav",
        }
        assert names == expected

    def test_immediate_forms_read_one_register(self):
        assert opcode("addiu").register_reads == 1
        assert opcode("addu").register_reads == 2
        assert opcode("sll").register_reads == 1

    def test_equality_and_hash(self):
        assert opcode("addu") == opcode("addu")
        assert opcode("addu") != opcode("subu")
        assert len({opcode("addu"), opcode("addu")}) == 1

    def test_all_opcodes_sorted_and_unique(self):
        names = [op.name for op in all_opcodes()]
        assert names == sorted(names)
        assert len(names) == len(set(names))


class TestOperation:
    def test_basic_fields(self):
        op = Operation(3, "addu", sources=("x", "y"), dests=("z",))
        assert op.uid == 3
        assert op.name == "addu"
        assert op.groupable
        assert op.register_reads == 2
        assert op.register_writes == 1

    def test_identity_by_uid(self):
        a = Operation(1, "addu", sources=("x", "y"), dests=("z",))
        b = Operation(1, "subu", sources=("p", "q"), dests=("r",))
        assert a == b
        assert hash(a) == hash(b)

    def test_string_opcode_lookup(self):
        op = Operation(0, "lw", sources=("p",), dests=("v",))
        assert op.is_memory
        assert not op.groupable

    def test_unknown_opcode_raises(self):
        with pytest.raises(UnknownOpcodeError):
            Operation(0, "nosuch")

    def test_pretty_contains_operands(self):
        op = Operation(0, "addiu", sources=("x",), dests=("y",), immediate=4)
        text = op.pretty()
        assert "addiu" in text and "x" in text and "4" in text


class TestRegisterFile:
    def test_spec_roundtrip(self):
        rf = RegisterFile.from_spec("6/3")
        assert rf.read_ports == 6
        assert rf.write_ports == 3
        assert rf.spec == "6/3"

    def test_invalid_spec(self):
        with pytest.raises(ConfigError):
            RegisterFile.from_spec("six-three")

    def test_zero_ports_rejected(self):
        with pytest.raises(ConfigError):
            RegisterFile(0, 1)
        with pytest.raises(ConfigError):
            RegisterFile(4, 0)

    def test_equality(self):
        assert RegisterFile(4, 2) == RegisterFile(4, 2)
        assert RegisterFile(4, 2) != RegisterFile(6, 3)
        assert len({RegisterFile(4, 2), RegisterFile(4, 2)}) == 1
