"""Tests for the exploration statistics module."""

import pytest

from repro.core.candidate import ISECandidate
from repro.eval.stats import ExplorationStats, stats_of
from repro.hwlib import DEFAULT_DATABASE, DEFAULT_TECHNOLOGY

from conftest import chain_dfg


def candidate(dfg, members, fastest=True):
    option_of = {}
    for uid in members:
        options = DEFAULT_DATABASE.hardware_options(dfg.op(uid).name)
        key = (lambda o: o.delay_ns) if fastest else (lambda o: -o.delay_ns)
        option_of[uid] = min(options, key=key)
    return ISECandidate(dfg, members, option_of, DEFAULT_TECHNOLOGY)


class TestStats:
    def test_empty(self):
        stats = ExplorationStats([])
        assert stats.count == 0
        assert stats.mean_size() == 0.0
        assert stats.summary() == "no candidates"
        assert stats.fast_option_fraction() == 0.0

    def test_histograms(self):
        dfg = chain_dfg(6)
        stats = ExplorationStats([
            candidate(dfg, {0, 1}),
            candidate(dfg, {2, 3, 4}),
        ])
        assert stats.count == 2
        assert stats.size_histogram() == {2: 1, 3: 1}
        assert stats.total_operations() == 5
        assert stats.mean_size() == 2.5
        assert stats.opcode_mix()["addu"] == 5

    def test_option_mix_and_fast_fraction(self):
        dfg = chain_dfg(4)
        fast = candidate(dfg, {0, 1}, fastest=True)
        slow = candidate(dfg, {2, 3}, fastest=False)
        stats = ExplorationStats([fast, slow])
        mix = stats.option_mix()
        assert sum(mix.values()) == 4
        assert stats.fast_option_fraction() == pytest.approx(0.5)

    def test_summary_text(self):
        dfg = chain_dfg(3)
        stats = ExplorationStats([candidate(dfg, {0, 1})])
        text = stats.summary()
        assert "1 candidates" in text
        assert "addu" in text
        assert "fast-point fraction" in text

    def test_stats_of_explored(self):
        from repro.config import ExplorationParams
        from repro.core.flow import ISEDesignFlow
        from repro.sched import MachineConfig
        from repro.workloads import get_workload
        program, args = get_workload("dijkstra").build()
        flow = ISEDesignFlow(
            MachineConfig(2, "4/2"),
            params=ExplorationParams(max_iterations=30, restarts=1,
                                     max_rounds=2),
            seed=1, max_blocks=2)
        explored = flow.explore_application(program, args=args)
        stats = stats_of(explored)
        assert stats.count == len(explored.candidates)
        if stats.count:
            assert stats.total_area() > 0
