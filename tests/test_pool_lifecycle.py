"""Teardown idempotency and ordering safety of the pool lifecycle.

The serve daemon gave the pool three concurrent owners — a server's
``stop()``, ``EvalContext.close()`` and the ``atexit`` fallback — so
``shutdown_pools()`` and ``EvalContext.close()`` must be idempotent,
thread-safe, and ordering-safe against in-flight dispatches.  This
suite also covers the dispatch hooks the server's instrumentation
hangs off :func:`repro.core.pool.dispatch`.
"""

import threading
import time

from repro.core.pool import (
    active_pool,
    add_dispatch_hook,
    dispatch,
    get_pool,
    remove_dispatch_hook,
    shutdown_pools,
)
from repro.eval.runner import EvalContext


def _square(x):
    return x * x


def _sleepy(x, delay):
    time.sleep(delay)
    return x


class TestShutdownIdempotency:
    def test_shutdown_pools_twice_is_noop(self):
        get_pool(2)
        assert active_pool() is not None
        shutdown_pools()
        assert active_pool() is None
        shutdown_pools()                              # second call: no-op
        assert active_pool() is None

    def test_worker_pool_shutdown_twice(self):
        pool = get_pool(2)
        pool.shutdown()
        pool.shutdown()                               # idempotent
        shutdown_pools()                              # registry-level too

    def test_concurrent_shutdown_pools_single_teardown(self):
        """Many threads racing shutdown_pools(): exactly one wins, none
        raise, and the pool is gone afterwards."""
        get_pool(2)
        errors = []

        def closer():
            try:
                shutdown_pools()
            except Exception as error:    # noqa: BLE001 - recorded
                errors.append(error)

        threads = [threading.Thread(target=closer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert active_pool() is None

    def test_shutdown_waits_for_inflight_dispatch(self):
        """Ordering safety: a shutdown racing a dispatch never tears the
        pool down under it — the dispatch completes with correct
        results, then teardown proceeds."""
        get_pool(2)
        results = {}

        def worker():
            results["out"] = dispatch(
                _sleepy, [(i, 0.05) for i in range(6)], 2)

        thread = threading.Thread(target=worker)
        thread.start()
        time.sleep(0.05)                  # dispatch is likely mid-flight
        shutdown_pools()                  # must block, not break it
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert results["out"] == list(range(6))
        assert active_pool() is None


class TestEvalContextClose:
    def test_close_twice(self):
        context = EvalContext(profile="quick", workload_names=["crc32"])
        context.close()
        context.close()                               # idempotent

    def test_concurrent_close_from_many_threads(self):
        context = EvalContext(profile="quick", workload_names=["crc32"])
        errors = []

        def closer():
            try:
                context.close()
            except Exception as error:    # noqa: BLE001 - recorded
                errors.append(error)

        threads = [threading.Thread(target=closer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors

    def test_close_interleaves_with_shutdown_pools(self):
        """Any interleaving of context.close() and shutdown_pools() is
        safe — the serve daemon's stop path runs both."""
        get_pool(2)
        context = EvalContext(profile="quick", workload_names=["crc32"])
        shutdown_pools()
        context.close()                   # pool already gone: still fine
        shutdown_pools()
        assert active_pool() is None


class TestDispatchHooks:
    def test_hooks_fire_start_and_end_with_ok(self):
        seen = []

        def hook(phase, info):
            seen.append((phase, dict(info)))

        add_dispatch_hook(hook)
        try:
            out = dispatch(_square, [(i,) for i in range(4)], 2)
        finally:
            remove_dispatch_hook(hook)
        assert out == [0, 1, 4, 9]
        assert [phase for phase, __ in seen] == ["start", "end"]
        start, end = seen[0][1], seen[1][1]
        assert start == {"tasks": 4, "jobs": 2}
        assert end == {"tasks": 4, "jobs": 2, "ok": True}
        shutdown_pools()

    def test_hook_exceptions_are_swallowed(self):
        def bad_hook(phase, info):
            raise RuntimeError("hooks must never break dispatch")

        add_dispatch_hook(bad_hook)
        try:
            assert dispatch(_square, [(i,) for i in range(3)], 2) \
                == [0, 1, 4]
        finally:
            remove_dispatch_hook(bad_hook)
        shutdown_pools()

    def test_remove_unknown_hook_is_noop(self):
        remove_dispatch_hook(lambda phase, info: None)

    def test_failed_dispatch_reports_ok_false(self):
        seen = []

        def hook(phase, info):
            if phase == "end":
                seen.append(dict(info))

        add_dispatch_hook(hook)
        try:
            try:
                dispatch(_square, [("not-a-number",)], 2)
            except Exception:             # noqa: BLE001 - expected
                pass
        finally:
            remove_dispatch_hook(hook)
        assert seen and seen[0]["ok"] is False
        shutdown_pools()
