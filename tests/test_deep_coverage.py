"""Second deep-coverage batch: corner cases across all subsystems."""

import pytest

from repro.config import ExplorationParams, ISEConstraints
from repro.errors import ConfigError
from repro.hwlib import DEFAULT_DATABASE, DEFAULT_TECHNOLOGY
from repro.sched import MachineConfig

from conftest import chain_dfg, dfg_from_block, diamond_dfg


class TestInterpreterSignExtension:
    def _run(self, emit, args=(), params=()):
        from repro.ir import FunctionBuilder, Program, run_program
        b = FunctionBuilder("main", params=params)
        b.label("entry")
        result = emit(b)
        b.ret(result)
        program = Program("p")
        program.add_function(b.finish())
        value, __, ___ = run_program(program, args=args)
        return value

    def test_lb_sign_extends(self):
        def emit(b):
            addr = b.li(0x100)
            val = b.li(0x80)
            b.sb(val, addr)
            return b.emit("lb", dest=b.fresh(), sources=(addr,), imm=0)
        assert self._run(emit) == 0xFFFFFF80

    def test_lh_sign_extends(self):
        def emit(b):
            addr = b.li(0x100)
            val = b.li(0x8001)
            b.sh(val, addr)
            return b.emit("lh", dest=b.fresh(), sources=(addr,), imm=0)
        assert self._run(emit) == 0xFFFF8001

    def test_lbu_lhu_zero_extend(self):
        def emit(b):
            addr = b.li(0x100)
            val = b.li(0xFFFF)
            b.sh(val, addr)
            h = b.lhu(addr)
            byte = b.lbu(addr)
            return b.subu(h, byte)
        assert self._run(emit) == 0xFFFF - 0xFF

    def test_lui_shifts(self):
        def emit(b):
            return b.emit("lui", dest=b.fresh(), imm=0x1234)
        assert self._run(emit) == 0x12340000


class TestWorkloadParameterisation:
    def test_crc32_custom_length(self):
        from repro.ir import run_program
        from repro.workloads import crc32
        program, args = crc32.build(length=16)
        result, __, ___ = run_program(program, args=args)
        assert result == crc32.reference(length=16)

    def test_bitcount_custom_count(self):
        from repro.ir import run_program
        from repro.workloads import bitcount
        program, args = bitcount.build(count=8)
        result, __, ___ = run_program(program, args=args)
        assert result == bitcount.reference(count=8)

    def test_dijkstra_custom_source(self):
        from repro.ir import run_program
        from repro.workloads import dijkstra
        program, args = dijkstra.build(source=3)
        result, __, ___ = run_program(program, args=args)
        assert result == dijkstra.reference(source=3)

    def test_blowfish_custom_blocks(self):
        from repro.ir import run_program
        from repro.workloads import blowfish
        program, args = blowfish.build(count=2)
        result, __, ___ = run_program(program, args=args)
        assert result == blowfish.reference(count=2)


class TestStateDetails:
    def _state(self, dfg, **overrides):
        from repro.core.state import ExplorationState
        from repro.hwlib import default_io_table
        tables = {uid: default_io_table(dfg.op(uid), DEFAULT_DATABASE)
                  for uid in dfg.nodes}
        return ExplorationState(dfg, tables,
                                ExplorationParams(**overrides))

    def test_lambda_zero_ignores_sp(self):
        dfg = diamond_dfg()
        state = self._state(dfg, lam=0.0)
        entries = dict(state.cp_weights([0, 2]))
        # With identical option tables and no SP term, weights match
        # across operations.
        by_label = {}
        for (uid, option), weight in entries.items():
            by_label.setdefault(option.label, set()).add(round(weight, 9))
        assert all(len(values) == 1 for values in by_label.values())

    def test_lambda_boosts_high_fanout(self):
        dfg = diamond_dfg()
        state = self._state(dfg, lam=1.0)
        entries = dict(state.cp_weights([2, 3]))
        w3 = max(w for (uid, __), w in entries.items() if uid == 3)
        w2 = max(w for (uid, __), w in entries.items() if uid == 2)
        assert w3 > w2            # node 3 has two children

    def test_sp_uniform_when_all_zero(self):
        dfg = chain_dfg(2)
        state = self._state(dfg)
        for key in state.trail:
            state.trail[key] = 0.0
        for key in state.merit:
            state.merit[key] = 0.0
        sp = state.sp_of(0)
        values = set(round(v, 9) for v in sp.values())
        assert len(values) == 1


class TestMeritCase4Branches:
    def test_fast_option_preferred_on_critical_path(self):
        """On a pure chain (everything critical) the fast adder ends up
        with more merit than the slow one after grouping succeeds."""
        from repro.core.iteration import IterationSchedule
        from repro.core.merit import update_merits
        from repro.core.state import ExplorationState
        from repro.hwlib import default_io_table

        dfg = chain_dfg(4)
        tables = {uid: default_io_table(dfg.op(uid), DEFAULT_DATABASE)
                  for uid in dfg.nodes}
        state = ExplorationState(dfg, tables, ExplorationParams())
        sched = IterationSchedule(dfg, MachineConfig(2, "4/2"),
                                  DEFAULT_TECHNOLOGY, ISEConstraints())
        # Everyone picks the FAST hardware option -> one cluster.
        for uid in dfg.nodes:
            fast = min(state.hardware_options(uid),
                       key=lambda o: o.delay_ns)
            sched.schedule_hardware(uid, fast)
        update_merits(dfg, state, sched.verify(), ISEConstraints())
        fast_label = min(state.hardware_options(1),
                         key=lambda o: o.delay_ns).label
        slow_label = max(state.hardware_options(1),
                         key=lambda o: o.delay_ns).label
        assert state.merit[(1, fast_label)] >= state.merit[(1, slow_label)]


class TestMachineParsing:
    @pytest.mark.parametrize("spec,issue,ports", [
        ("2-issue 4/2", 2, "4/2"),
        ("(6/3, 3IS)", 3, "6/3"),
        ("4is 10/5", 4, "10/5"),
    ])
    def test_spec_forms(self, spec, issue, ports):
        machine = MachineConfig.from_paper_case(spec)
        assert machine.issue_width == issue
        assert machine.register_file.spec == ports

    def test_fu_override(self):
        machine = MachineConfig(2, "8/4", fu_counts={"mem": 2})
        assert machine.fu_counts["mem"] == 2
        with pytest.raises(ConfigError):
            MachineConfig(2, "8/4", fu_counts={"mem": -1})


class TestFindMatchCaps:
    def test_mapping_cap_limits_work(self):
        from repro.graph import find_matches, pattern_graph
        # Many identical independent pairs -> combinatorially many
        # monomorphisms; the cap keeps the result bounded.
        def body(b):
            outs = []
            for __ in range(6):
                t = b.addu("a", "b")
                outs.append(b.xor(t, "c"))
            acc = outs[0]
            for other in outs[1:]:
                acc = b.or_(acc, other)
            return acc
        dfg = dfg_from_block(body)
        pattern = pattern_graph(dfg, {0, 1})
        capped = find_matches(dfg, pattern, max_matches=3)
        assert len(capped) <= 3
        full = find_matches(dfg, pattern)
        assert len(full) >= 6


class TestCliSelftest:
    def test_selftest_passes(self, capsys):
        from repro.cli import main
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "all ok" in out
        assert "sha1" in out


class TestHotBlockSelection:
    def test_coverage_knob(self):
        from repro.core.flow import ISEDesignFlow
        from repro.workloads import get_workload
        program, args = get_workload("adpcm").build()
        narrow = ISEDesignFlow(MachineConfig(2, "4/2"), coverage=0.4,
                               max_blocks=8)
        wide = ISEDesignFlow(MachineConfig(2, "4/2"), coverage=0.999,
                             max_blocks=8)
        blocks_n = narrow._select_hot_blocks(
            narrow.profile_blocks(program, args=args))
        blocks_w = wide._select_hot_blocks(
            wide.profile_blocks(program, args=args))
        assert len(blocks_n) <= len(blocks_w)

    def test_max_blocks_cap(self):
        from repro.core.flow import ISEDesignFlow
        from repro.workloads import get_workload
        program, args = get_workload("dijkstra").build()
        flow = ISEDesignFlow(MachineConfig(2, "4/2"), coverage=0.9999,
                             max_blocks=2)
        chosen = flow._select_hot_blocks(
            flow.profile_blocks(program, args=args))
        assert len(chosen) <= 2
