"""Worker-pool tests: stealing, ordered replay, persistence, shared
evalcache scoping and shared-memory leak guards.

Everything here drives the pool explicitly (``parallel_map`` with
``jobs>1`` or :class:`WorkerPool` directly) — the ``resolve_jobs``
clamp would otherwise serialise the whole file on a one-core CI box.
"""

import io
import os
import signal
import threading
import time
from multiprocessing import shared_memory

import pytest

from repro.core import pool as pool_mod
from repro.core.evalcache import EvalCache
from repro.core.parallel import parallel_map
from repro.core.pool import (
    SharedEvalCache,
    WorkerPool,
    active_pool,
    dispatch,
    get_pool,
    pool_persist_enabled,
    shared_key_bytes,
    shutdown_pools,
)
from repro.errors import ReproError
from repro.obs import MemorySink, Observer, ProgressSink


@pytest.fixture(autouse=True)
def _clean_pool():
    """Every test starts and ends without a persistent pool."""
    shutdown_pools()
    yield
    shutdown_pools()


def _square(x):
    return x * x


def _sleepy(index, delay):
    time.sleep(delay)
    return index


def _boom(x):
    raise ValueError("boom {}".format(x))


def _emit(obs, index, delay):
    """Sleep, then emit one round event tagged with the task index."""
    time.sleep(delay)
    obs.event("round", function="f", label="b", restart=index, round=0,
              iterations=1, converged=True, proposals=0, tet_best=index)
    obs.count("pool_test.tasks")
    return index


class TestSharedEvalCache:
    def test_insert_lookup_roundtrip(self):
        cache = SharedEvalCache(slots=256)
        try:
            assert cache.lookup(b"missing") is None
            assert cache.insert(b"alpha", 42)
            assert cache.insert(b"beta", -7)
            assert cache.lookup(b"alpha") == 42
            assert cache.lookup(b"beta") == -7
            assert not cache.insert(b"alpha", 99)     # first write wins
            assert cache.lookup(b"alpha") == 42
            assert cache.count == 2
        finally:
            cache.close()

    def test_load_limit_stops_inserts(self):
        cache = SharedEvalCache(slots=64)
        try:
            inserted = sum(
                cache.insert(str(i).encode(), i) for i in range(64))
            assert inserted == cache.limit
            assert not cache.insert(b"one-more", 1)
        finally:
            cache.close()

    def test_attach_sees_owner_entries(self):
        owner = SharedEvalCache(slots=128)
        reader = None
        try:
            owner.insert(b"key", 1234)
            reader = SharedEvalCache.attach(owner.name, owner.slots)
            assert reader.lookup(b"key") == 1234
            assert reader.lookup(b"nope") is None
        finally:
            if reader is not None:
                reader.close()
            owner.close()

    def test_snapshot_preload_carries_entries(self):
        first = SharedEvalCache(slots=128)
        second = SharedEvalCache(slots=256)
        try:
            for i in range(10):
                first.insert(str(i).encode(), i * 11)
            second.preload(first.snapshot_rows())
            for i in range(10):
                assert second.lookup(str(i).encode()) == i * 11
        finally:
            first.close()
            second.close()

    def test_close_unlinks_segment(self):
        cache = SharedEvalCache(slots=64)
        name = cache.name
        cache.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        cache.close()                                  # idempotent


class TestEvalCacheSharedTier:
    """The per-explorer cache's hooks into the worker shared tier,
    simulated in-process by installing the worker globals."""

    @pytest.fixture()
    def worker_tier(self):
        shared = SharedEvalCache(slots=256)
        pool_mod._WORKER_SHARED = shared
        pool_mod._WORKER_LOG = log = []
        yield shared, log
        pool_mod._WORKER_SHARED = None
        pool_mod._WORKER_LOG = None
        shared.close()

    def test_put_logs_and_parent_fold_makes_it_a_hit(self, worker_tier):
        shared, log = worker_tier
        cache = EvalCache(scope="2is|4/2")
        key = ("dfg-fp", (), None)
        assert cache.get(key) is None                  # miss everywhere
        cache.put(key, 42)
        assert log == [(shared_key_bytes("2is|4/2", key), 42)]
        for key_bytes, value in log:                   # the parent fold
            shared.insert(key_bytes, value)
        fresh = EvalCache(scope="2is|4/2")
        assert fresh.get(key) == 42
        assert fresh.shared_hits == 1 and fresh.hits == 1
        # Promoted locally: the second probe never touches the table.
        shared.close()
        pool_mod._WORKER_SHARED = None
        assert fresh.get(key) == 42

    def test_shared_entries_are_scope_keyed(self, worker_tier):
        shared, __ = worker_tier
        key = ("dfg-fp", (), None)
        shared.insert(shared_key_bytes("2is|4/2", key), 10)
        same_scope = EvalCache(scope="2is|4/2")
        other_scope = EvalCache(scope="4is|10/5")
        assert same_scope.get(key) == 10
        # A different machine must never see this cycle count.
        assert other_scope.get(key) is None
        assert other_scope.shared_hits == 0

    def test_non_int_values_stay_out_of_the_shared_log(self, worker_tier):
        __, log = worker_tier
        cache = EvalCache(scope="s")
        cache.put(("k",), 1.5)
        assert log == []
        assert cache.get(("k",)) == 1.5                # local tier still has it


class TestWorkerPool:
    def test_results_keep_submission_order(self):
        pool = WorkerPool(3)
        try:
            results = pool.run(_square, [(i,) for i in range(20)])
            assert results == [i * i for i in range(20)]
        finally:
            pool.shutdown()

    def test_work_stealing_backfills_a_long_task(self):
        pool = WorkerPool(3)
        try:
            tasks = [(i, 0.5 if i == 0 else 0.005) for i in range(9)]
            results = pool.run(_sleepy, tasks)
            assert results == list(range(9))
            assert pool.stats["steals"] >= 1
        finally:
            pool.shutdown()

    def test_costs_front_load_without_reordering_results(self):
        pool = WorkerPool(2)
        try:
            tasks = [(i,) for i in range(10)]
            plain = pool.run(_square, tasks)
            guided = pool.run(_square, tasks, costs=list(range(10)))
            assert plain == guided == [i * i for i in range(10)]
        finally:
            pool.shutdown()

    def test_task_exception_propagates_and_pool_survives(self):
        pool = WorkerPool(2)
        try:
            with pytest.raises(ValueError, match="boom"):
                pool.run(_boom, [(i,) for i in range(4)])
            assert not pool.broken
            assert pool.run(_square, [(i,) for i in range(4)]) \
                == [0, 1, 4, 9]
        finally:
            pool.shutdown()

    def test_replay_order_matches_submission_not_completion(self):
        """Satellite: a stolen task that finishes early must not render
        its round line out of task order."""
        stream = io.StringIO()
        memory = MemorySink()
        obs = Observer(sinks=[memory, ProgressSink(stream=stream)])
        # Task 0 sleeps; later tasks finish (and are partly stolen)
        # long before it — completion order is guaranteed != task order.
        tasks = [(obs, i, 0.4 if i == 0 else 0.005) for i in range(6)]
        results = parallel_map(_emit, tasks, 3, obs=obs)
        assert results == list(range(6))
        assert active_pool().stats["steals"] >= 1
        restarts = [e.data["restart"] for e in memory.of_kind("round")]
        assert restarts == list(range(6))
        lines = [line for line in stream.getvalue().splitlines()
                 if "round" in line]
        rendered = [int(line.split(" r")[1].split()[0]) for line in lines]
        assert rendered == list(range(6))
        assert obs.metrics.counters["pool_test.tasks"] == 6
        assert obs.metrics.counters["pool.dispatches"] == 1
        assert obs.metrics.gauges["pool.workers"] == 3

    def test_parallel_map_uses_persistent_pool(self):
        first = parallel_map(_square, [(i,) for i in range(6)], 3)
        pool = active_pool()
        assert pool is not None
        pids = pool.worker_pids()
        second = parallel_map(_square, [(i,) for i in range(6)], 3)
        assert first == second == [i * i for i in range(6)]
        assert active_pool() is pool
        assert pool.worker_pids() == pids
        assert pool.stats["dispatches"] == 2

    def test_persist_escape_hatch(self, monkeypatch):
        monkeypatch.setenv(pool_mod.POOL_PERSIST_ENV, "0")
        assert not pool_persist_enabled()
        results = dispatch(_square, [(i,) for i in range(5)], 2)
        assert results == [i * i for i in range(5)]
        assert active_pool() is None                   # nothing retained

    def test_get_pool_grows_and_keeps_shared_cache(self):
        small = get_pool(2)
        small.cache.insert(b"carried", 77)
        grown = get_pool(4)
        assert grown is not small
        assert grown.workers == 4
        assert grown.cache.lookup(b"carried") == 77
        assert get_pool(2) is grown                    # no shrink churn

    def test_shutdown_pools_is_idempotent(self):
        get_pool(2)
        shutdown_pools()
        assert active_pool() is None
        shutdown_pools()                               # second call: no-op


class TestLeakGuards:
    def test_killed_worker_does_not_strand_segments(self):
        """Satellite: SIGKILL-ing a worker must not leave shared memory
        behind once the pool is torn down."""
        pool = get_pool(2)
        cache_name = pool.cache.name
        os.kill(pool.worker_pids()[0], signal.SIGKILL)
        time.sleep(0.1)
        with pytest.raises(ReproError):
            pool.run(_square, [(i,) for i in range(6)])
        assert pool.broken
        shutdown_pools()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=cache_name)
        # The registry recovers with a fresh pool on the next dispatch.
        assert parallel_map(_square, [(i,) for i in range(4)], 2) \
            == [0, 1, 4, 9]

    def test_worker_killed_mid_dispatch_raises_and_unlinks(self):
        pool = get_pool(2)
        cache_name = pool.cache.name
        victim = pool.worker_pids()[0]
        outcome = {}

        def run():
            try:
                pool.run(_sleepy, [(i, 0.4) for i in range(4)])
            except BaseException as exc:   # noqa: BLE001 - recorded
                outcome["error"] = exc

        thread = threading.Thread(target=run)
        thread.start()
        time.sleep(0.15)                   # workers are mid-sleep
        os.kill(victim, signal.SIGKILL)
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert isinstance(outcome.get("error"), ReproError)
        assert pool.broken
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=cache_name)

    def test_eval_context_close_releases_pool(self):
        from repro.eval.runner import EvalContext

        get_pool(2)
        assert active_pool() is not None
        context = EvalContext(profile="quick", workload_names=["crc32"])
        context.close()
        assert active_pool() is None
