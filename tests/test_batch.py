"""Lockstep batched ant construction: parity, units and counters.

The batched runner is a *pure* performance transformation at width 1:
the schedule it builds from a draw stream must be the one the scalar
loop builds from the same stream, bit for bit, including the RNG
position afterwards.  Widths above 1 deliberately reorder the draw
stream (one draw per ant per step, in ant order) against a per-batch
frozen trail/merit state — a different but pinned RNG lineage, covered
here by fixed-seed regression digests at ``batch=4`` and ``batch=16``.
"""

import hashlib
import random

import pytest

from repro.config import ExplorationParams
from repro.engines import aco as aco_engine
from repro.core.batch import (
    BatchedAntRunner,
    DEFAULT_BATCH,
    effective_batch,
    resolve_batch,
)
from repro.core.exploration import MultiIssueExplorer
from repro.core.flow import ISEDesignFlow
from repro.core.merit import update_merits
from repro.core.state import ExplorationState
from repro.core.trail import update_trails
from repro.errors import ConfigError, SchedulingError
from repro.hwlib import DEFAULT_DATABASE, default_io_table
from repro.ir.passes.pipeline import optimize
from repro.obs import Observer
from repro.sched import MachineConfig
from repro.sched.resources import Needs, ReservationTable, first_fit_batch
from repro.workloads import get_workload

from conftest import diamond_dfg


def _hot_dfgs(workload_name, max_blocks=2):
    program, args = get_workload(workload_name).build()
    flow = ISEDesignFlow(MachineConfig(2, "4/2"), seed=3,
                         max_blocks=max_blocks)
    blocks = flow.profile_blocks(optimize(program, "O3"), args=args)
    return [b.dfg for b in flow._select_hot_blocks(blocks)]


def _result_digest(results):
    sigs = [(r.dfg.function, r.dfg.label, r.base_cycles, r.final_cycles,
             r.rounds, r.iterations,
             tuple(tuple(sorted(c.members)) for c in r.candidates),
             tuple(map(tuple, r.traces)))
            for r in results]
    return hashlib.sha256(repr(sigs).encode()).hexdigest()


# -- resolve_batch / effective_batch units -----------------------------------

class TestResolveBatch:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ANT_BATCH", raising=False)
        assert resolve_batch() == DEFAULT_BATCH

    def test_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANT_BATCH", "5")
        assert resolve_batch() == 5

    def test_explicit_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANT_BATCH", "5")
        assert resolve_batch(3) == 3

    def test_auto_and_zero_select_default(self):
        assert resolve_batch("auto") == DEFAULT_BATCH
        assert resolve_batch(0) == DEFAULT_BATCH
        assert resolve_batch("0") == DEFAULT_BATCH

    def test_string_coercion(self):
        assert resolve_batch("8") == 8

    def test_rejects_garbage(self):
        with pytest.raises(ConfigError):
            resolve_batch("many")
        with pytest.raises(ConfigError):
            resolve_batch(-2)

    def test_records_gauge(self):
        obs = Observer()
        resolve_batch(7, obs=obs)
        assert obs.metrics.snapshot()["gauges"]["batch.effective"] == 7


class TestEffectiveBatch:
    def test_caps_at_half_the_nodes(self):
        assert effective_batch(16, 44) == 16
        assert effective_batch(16, 8) == 4
        assert effective_batch(4, 100) == 4

    def test_tiny_dfgs_fall_back_to_scalar(self):
        assert effective_batch(16, 1) == 1
        assert effective_batch(16, 2) == 1
        assert effective_batch(1, 50) == 1


# -- width-1 runner vs scalar loop: bit parity -------------------------------

def _schedule_signature(schedule):
    return (
        dict(schedule.start),
        {uid: option.label for uid, option in schedule.chosen.items()},
        sorted((sorted(c.members), c.start, c.cycles)
               for c in schedule.clusters),
        schedule.makespan,
        dict(schedule.order),
    )


class TestWidthOneParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_runner_matches_scalar_iteration_stream(self, seed):
        """Three consecutive iterations with trail/merit feedback in
        between: identical schedules AND identical RNG positions."""
        dfg = _hot_dfgs("crc32", max_blocks=1)[0]
        tables = {uid: default_io_table(dfg.op(uid), DEFAULT_DATABASE)
                  for uid in dfg.nodes}
        params = ExplorationParams()
        explorer = MultiIssueExplorer(MachineConfig(2, "4/2"),
                                      params=params, seed=0, batch=1)
        state_a = ExplorationState(dfg, tables, params,
                                   priority=explorer.priority)
        state_b = ExplorationState(dfg, tables, params,
                                   priority=explorer.priority)
        rng_a = random.Random(seed)
        rng_b = random.Random(seed)
        runner = BatchedAntRunner(dfg, state_b, explorer.machine,
                                  explorer.technology,
                                  explorer.constraints)
        tet_a = tet_b = None
        prev_a, prev_b = {}, {}
        for __ in range(3):
            scalar = explorer._run_iteration(dfg, state_a, rng_a)
            batched = runner.run(rng_b, 1)[0]
            assert (_schedule_signature(scalar)
                    == _schedule_signature(batched))
            tet_a = update_trails(state_a, scalar, prev_a, tet_a)
            tet_b = update_trails(state_b, batched, prev_b, tet_b)
            prev_a, prev_b = dict(scalar.order), dict(batched.order)
            update_merits(dfg, state_a, scalar, explorer.constraints)
            update_merits(dfg, state_b, batched, explorer.constraints)
        # Same number of draws consumed: the streams stay aligned.
        assert rng_a.random() == rng_b.random()

    def test_explorer_batch1_is_the_scalar_path(self):
        dfgs = _hot_dfgs("crc32")
        params = ExplorationParams(max_iterations=40, restarts=2,
                                   max_rounds=3)
        scalar = MultiIssueExplorer(MachineConfig(2, "4/2"), params=params,
                                    seed=11, batch=1)
        digest = _result_digest(scalar.explore_many(dfgs, jobs=1))
        assert digest == _FIXED_SEED_DIGESTS["scalar"]


# -- fixed-seed regression: the batched RNG lineage is pinned ----------------

#: crc32 hot blocks, params (40, 2, 3), seed 11 — regenerate with the
#: procedure in docs/PARAMETERS.md whenever the draw scheme changes.
_FIXED_SEED_DIGESTS = {
    "scalar":
        "05d76c7e5f666731e07d9c85e179fee82fbac20c7bc0d873d52bc2c56aaee008",
    4: "b058cab20518bca3259b6ade7c469a9c8efb5f36afc49076f4f028889f56fbff",
    16: "8c6c39c0afc57e10abde82e6621a435659e6e743c3fdd81ffc8af84edfa1ab56",
}


class TestBatchedGoldenRegression:
    @pytest.mark.parametrize("batch", [4, 16])
    def test_fixed_seed_digest(self, batch):
        dfgs = _hot_dfgs("crc32")
        params = ExplorationParams(max_iterations=40, restarts=2,
                                   max_rounds=3)
        explorer = MultiIssueExplorer(MachineConfig(2, "4/2"),
                                      params=params, seed=11, batch=batch)
        digest = _result_digest(explorer.explore_many(dfgs, jobs=1))
        assert digest == _FIXED_SEED_DIGESTS[batch]

    def test_pool_invisible_at_batched_default(self):
        dfgs = _hot_dfgs("crc32")
        params = ExplorationParams(max_iterations=30, restarts=2,
                                   max_rounds=3)

        def digest_at(jobs):
            explorer = MultiIssueExplorer(MachineConfig(2, "4/2"),
                                          params=params, seed=11,
                                          batch=DEFAULT_BATCH)
            return _result_digest(explorer.explore_many(dfgs, jobs=jobs))

        assert digest_at(1) == digest_at(2)


# -- satellite: the scalar ready list stays sorted ---------------------------

class TestReadyListStaysSorted:
    def test_sorted_across_a_full_exploration(self, monkeypatch):
        """The bisect-based removal is only correct on a sorted list;
        assert the invariant at every insertion and removal point."""
        checked = {"count": 0}
        real_insort = aco_engine.insort
        real_bisect = aco_engine.bisect_left

        def checked_insort(seq, value):
            assert seq == sorted(seq)
            checked["count"] += 1
            return real_insort(seq, value)

        def checked_bisect(seq, value):
            assert seq == sorted(seq)
            checked["count"] += 1
            return real_bisect(seq, value)

        monkeypatch.setattr(aco_engine, "insort", checked_insort)
        monkeypatch.setattr(aco_engine, "bisect_left",
                            checked_bisect)
        dfg = diamond_dfg()
        params = ExplorationParams(max_iterations=20, restarts=1,
                                   max_rounds=2)
        explorer = MultiIssueExplorer(MachineConfig(2, "4/2"),
                                      params=params, seed=2, batch=1)
        explorer.explore(dfg, jobs=1)
        assert checked["count"] > 0


# -- batched first-fit probes match the scalar scan --------------------------

class TestFirstFitBatch:
    def _random_table(self, rng, machine):
        table = ReservationTable(machine)
        for __ in range(rng.randrange(12)):
            needs = Needs(reads=rng.randrange(3), writes=rng.randrange(2),
                          fu_kind=rng.choice(["alu", "asfu"]))
            table.place(table.first_fit(needs,
                                        not_before=rng.randrange(4)),
                        needs)
        return table

    @pytest.mark.parametrize("count", [3, 40])
    def test_matches_scalar_first_fit(self, count):
        """Both dispatch regimes (scalar below the tensor cutover, the
        stacked tensor scan above it) agree with per-table first_fit."""
        rng = random.Random(count)
        machine = MachineConfig(2, "4/2")
        tables, needs_list, not_befores = [], [], []
        for __ in range(count):
            tables.append(self._random_table(rng, machine))
            needs_list.append(Needs(reads=rng.randrange(4),
                                    writes=rng.randrange(3),
                                    fu_kind=rng.choice(["alu", "asfu"])))
            not_befores.append(rng.randrange(6))
        expected = [table.first_fit(needs, not_before=not_before)
                    for table, needs, not_before
                    in zip(tables, needs_list, not_befores)]
        assert first_fit_batch(tables, needs_list, not_befores) == expected

    def test_rejects_mismatched_lengths(self):
        machine = MachineConfig(2, "4/2")
        table = ReservationTable(machine)
        with pytest.raises(SchedulingError):
            first_fit_batch([table], [Needs()], [0, 1])


# -- observability ----------------------------------------------------------

class TestBatchCounters:
    def test_batched_round_emits_counters(self):
        dfgs = _hot_dfgs("crc32", max_blocks=1)
        params = ExplorationParams(max_iterations=20, restarts=1,
                                   max_rounds=2)
        obs = Observer()
        explorer = MultiIssueExplorer(MachineConfig(2, "4/2"),
                                      params=params, seed=1,
                                      batch=DEFAULT_BATCH, obs=obs)
        explorer.explore_many(dfgs, jobs=1)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["batch.ants_batched"] > 0
        assert counters["batch.rows_vectorized"] > 0
        assert "batch.scalar_fallbacks" in counters
        assert obs.metrics.snapshot()["gauges"]["batch.effective"] \
            == DEFAULT_BATCH

    def test_scalar_path_emits_no_batch_counters(self):
        dfgs = _hot_dfgs("crc32", max_blocks=1)
        params = ExplorationParams(max_iterations=10, restarts=1,
                                   max_rounds=1)
        obs = Observer()
        explorer = MultiIssueExplorer(MachineConfig(2, "4/2"),
                                      params=params, seed=1, batch=1,
                                      obs=obs)
        explorer.explore_many(dfgs, jobs=1)
        counters = obs.metrics.snapshot()["counters"]
        assert "batch.ants_batched" not in counters


# -- template-open path: clone instead of edge re-walk -----------------------

class TestTemplateOpenNoRewalk:
    """The per-operation tracker templates are walked once at runner
    construction; every actual cluster open clones that state instead
    of re-walking the operation's edges."""

    def _counted_tracker(self, monkeypatch):
        from repro.graph.analysis import SubgraphIOTracker
        calls = []
        original = SubgraphIOTracker.preview_add

        def counted(self, uid, n_in_limit=None):
            calls.append(uid)
            return original(self, uid, n_in_limit=n_in_limit)

        monkeypatch.setattr(SubgraphIOTracker, "preview_add", counted)
        return calls

    def _runner(self, dfg):
        params = ExplorationParams()
        explorer = MultiIssueExplorer(MachineConfig(2, "4/2"),
                                      params=params, seed=0,
                                      batch=DEFAULT_BATCH)
        tables = {uid: default_io_table(dfg.op(uid), DEFAULT_DATABASE)
                  for uid in dfg.nodes}
        state = ExplorationState(dfg, tables, params,
                                 priority=explorer.priority)
        return BatchedAntRunner(dfg, state, explorer.machine,
                                explorer.technology,
                                explorer.constraints)

    def test_construction_walks_each_operation_once(self, monkeypatch):
        dfg = _hot_dfgs("crc32", max_blocks=1)[0]
        calls = self._counted_tracker(monkeypatch)
        self._runner(dfg)
        # Exactly one preview walk per operation — the template build.
        assert sorted(calls) == sorted(dfg.nodes)

    def test_opens_are_clone_only(self, monkeypatch):
        dfg = _hot_dfgs("crc32", max_blocks=1)[0]
        runner = self._runner(dfg)
        calls = self._counted_tracker(monkeypatch)
        opened = []
        for uid, (template, needs) in runner._open_template.items():
            io = template.clone()
            opened.append(io)
            assert io.members == {uid}
            assert (needs.reads, needs.writes) == (io.n_in, io.n_out)
        # Zero edge re-walks across every open; clones stay independent.
        assert calls == []
        opened[0].members.add(-1)
        assert -1 not in runner._open_template[
            sorted(runner._open_template)[0]][0].members

    def test_batched_run_walks_only_on_scalar_fallbacks(self, monkeypatch):
        """A full lockstep batch constructs fresh trackers (the
        edge-walking kind) only on the scalar-fallback path; every
        other cluster open is a template clone."""
        from repro.graph.analysis import SubgraphIOTracker
        dfg = _hot_dfgs("crc32", max_blocks=1)[0]
        runner = self._runner(dfg)
        built = []
        original = SubgraphIOTracker.__init__

        def counted(self, dfg):
            built.append(dfg)
            original(self, dfg)

        monkeypatch.setattr(SubgraphIOTracker, "__init__", counted)
        schedules = runner.run(random.Random(11), DEFAULT_BATCH)
        opened = sum(len(schedule.clusters) for schedule in schedules)
        assert opened > 0
        # Fresh walks are bounded by the fallbacks; the (many more)
        # remaining opens all went through clone().
        assert len(built) <= runner.stat_scalar_fallbacks
        assert opened > len(built)

    def test_clone_beats_rewalk_microbench(self):
        """Micro-benchmark backing: cloning the template is no slower
        than re-walking the operation's edges (min-of-many, generous
        2x guard against host noise)."""
        import time
        from repro.graph.analysis import SubgraphIOTracker
        from repro.graph.fuzz import random_dfg
        dfg = random_dfg(13, n_nodes=96)
        seed_uid = max(dfg.nodes,
                       key=lambda u: len(dfg.neighbours(u)))
        template = SubgraphIOTracker(dfg)
        template.add(seed_uid)

        def best_of(fn, reps=2000):
            best = float("inf")
            for __ in range(reps):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        walk = best_of(lambda: SubgraphIOTracker(dfg).add(seed_uid))
        clone = best_of(template.clone)
        assert clone <= walk * 2.0
