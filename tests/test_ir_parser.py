"""Tests for the text assembler."""

import pytest

from repro.ir import run_program
from repro.ir.parser import ParseError, parse_functions, parse_program

FIR = """
# an 8-tap accumulate loop
func fir(coef, x):
entry:
    acc = li 0
    i = li 0
    zero = li 0
    j loop
loop:
    off = sll i, 2
    ca = addu coef, off
    c = lw [ca+0]
    xa = addu x, off
    v = lw [xa+0]
    p = mult c, v
    acc = addu acc, p
    i = addiu i, 1
    t = slti i, 8
    bne t, zero -> loop, exit
exit:
    ret acc
"""


class TestParsing:
    def test_parse_fir(self):
        funcs = parse_functions(FIR)
        assert len(funcs) == 1
        func = funcs[0]
        assert func.name == "fir"
        assert func.params == ("coef", "x")
        assert func.labels == ["entry", "loop", "exit"]
        assert len(func.block("loop").body) == 9

    def test_semantics_match_builder(self):
        from repro.ir.program import DataSegment
        data = DataSegment()
        coef = data.place_words("coef", [1, 2, 3, 4, 5, 6, 7, 8])
        x = data.place_words("x", [8, 7, 6, 5, 4, 3, 2, 1])
        program = parse_program(FIR, data=data)
        result, __, ___ = run_program(program, args=(coef, x))
        expected = sum(a * b for a, b in zip(
            [1, 2, 3, 4, 5, 6, 7, 8], [8, 7, 6, 5, 4, 3, 2, 1]))
        assert result == expected

    def test_store_and_negative_offsets(self):
        text = """
func f(p):
entry:
    v = lw [p+4]
    w = lw [p-4]
    sw v, [p+8]
    ret w
"""
        func = parse_functions(text)[0]
        ops = [i.op for i in func.block("entry").body]
        assert ops == ["lw", "lw", "sw"]
        assert func.block("entry").body[1].imm == -4

    def test_hex_immediates(self):
        text = """
func f():
entry:
    a = li 0xFF
    b = andi a, 0x0F
    ret b
"""
        program = parse_program(text)
        result, __, ___ = run_program(program)
        assert result == 0x0F

    def test_call_syntax(self):
        text = """
func helper(x):
entry:
    y = addu x, x
    ret y
func main(v):
entry:
    r = call helper(v)
    ret r
"""
        program = parse_program(text)
        result, __, ___ = run_program(program, args=(21,),
                                      func_name="main")
        assert result == 42

    def test_one_operand_branches(self):
        text = """
func f(x):
entry:
    blez x -> neg, pos
neg:
    a = li 1
    ret a
pos:
    b = li 2
    ret b
"""
        program = parse_program(text)
        result, __, ___ = run_program(program, args=(0,))
        assert result == 1


class TestParseErrors:
    @pytest.mark.parametrize("text,fragment", [
        ("x = li 0", "before any 'func'"),
        ("func f():\nx = li 0", "outside any block"),
        ("func f():\nentry:\n    x = frob a, b", "unknown mnemonic"),
        ("func f():\nentry:\n    x = lw p", "base+offset"),
        ("func f():\nentry:\n    sw v", "store needs"),
        ("func f():\nentry:\n    x = li lots", "expected a number"),
        ("func f():\nentry:\n    bne a -> x, y", "takes 2 operand"),
        ("", "no functions"),
    ])
    def test_error_messages(self, text, fragment):
        with pytest.raises(ParseError) as err:
            parse_functions(text)
        assert fragment in str(err.value)

    def test_register_form_rejects_literals(self):
        text = """
func f(a):
entry:
    x = addu a, 5
    ret x
"""
        with pytest.raises(ParseError):
            parse_functions(text)

    def test_duplicate_label(self):
        text = """
func f():
entry:
    j entry2
entry:
    ret
"""
        with pytest.raises(ParseError):
            parse_functions(text)

    def test_line_numbers_reported(self):
        text = "func f():\nentry:\n    x = frob a\n"
        with pytest.raises(ParseError) as err:
            parse_functions(text)
        assert err.value.line_no == 3


class TestRoundTrip:
    def test_parsed_function_explorable(self):
        """Parsed kernels flow through DFG lowering + exploration."""
        from repro.config import ExplorationParams
        from repro.core import MultiIssueExplorer
        from repro.graph import build_dfg
        from repro.ir.analysis import liveness
        from repro.sched import MachineConfig
        text = """
func k(a, b, c):
entry:
    t1 = xor a, b
    t2 = addu t1, c
    t3 = xor t2, a
    t4 = addu t3, b
    ret t4
"""
        func = parse_functions(text)[0]
        __, live_out = liveness(func)
        dfg = build_dfg(func.block("entry"), live_out["entry"],
                        function="k")
        explorer = MultiIssueExplorer(
            MachineConfig(2, "4/2"),
            params=ExplorationParams(max_iterations=40, restarts=1,
                                     max_rounds=2), seed=1)
        result = explorer.explore(dfg)
        assert result.final_cycles <= result.base_cycles
