"""Tests for the evaluation harness (metrics, runner, reporting)."""

import pytest

from repro.config import ISEConstraints
from repro.errors import ReproError
from repro.eval import (
    EvalContext,
    PROFILES,
    arithmetic_mean,
    geometric_mean,
    machine_for_case,
    reduction_percent,
    render_area_vs_reduction,
    render_headline,
    render_stacked_figure,
    render_table_5_1_1,
    summarize,
)
from repro.hwlib import DEFAULT_DATABASE


class TestMetrics:
    def test_reduction_percent(self):
        assert reduction_percent(100, 80) == pytest.approx(20.0)
        assert reduction_percent(100, 100) == 0.0

    def test_reduction_rejects_zero_base(self):
        with pytest.raises(ReproError):
            reduction_percent(0, 10)

    def test_means(self):
        assert arithmetic_mean([2, 4]) == 3.0
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([0.0, 4.0]) == 2.0   # falls back

    def test_summarize(self):
        assert summarize([3.0, 1.0, 2.0]) == (3.0, 1.0, 2.0)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            summarize([])


class TestRunner:
    def test_profiles_exist(self):
        assert {"quick", "normal", "full"} <= set(PROFILES)

    def test_unknown_profile(self):
        with pytest.raises(ReproError):
            EvalContext(profile="turbo")

    def test_machine_for_case(self):
        machine = machine_for_case("6/3", 3)
        assert machine.issue_width == 3
        assert machine.register_file.spec == "6/3"

    def test_context_caches_explorations(self):
        ctx = EvalContext(profile="quick", workload_names=["dijkstra"],
                          seed=3)
        machine = machine_for_case("4/2", 2)
        flow1, explored1 = ctx.explored("dijkstra", machine, "O0", "MI")
        flow2, explored2 = ctx.explored("dijkstra", machine, "O0", "MI")
        assert explored1 is explored2 and flow1 is flow2

    def test_reduction_cell(self):
        ctx = EvalContext(profile="quick", workload_names=["dijkstra"],
                          seed=3)
        machine = machine_for_case("4/2", 2)
        value = ctx.reduction("dijkstra", machine, "O0", "MI",
                              ISEConstraints(max_ises=1))
        assert 0.0 <= value < 100.0

    def test_unknown_algorithm(self):
        ctx = EvalContext(profile="quick", workload_names=["dijkstra"])
        machine = machine_for_case("4/2", 2)
        with pytest.raises(ReproError):
            ctx.explored("dijkstra", machine, "O0", "QUANTUM")


class TestReporting:
    def test_stacked_figure_layout(self):
        rows = {("MI", "4/2", 2, "O3"): {10: 5.0, 20: 6.0}}
        text = render_stacked_figure(rows, "A=", "title")
        assert "title" in text
        assert "MI (4/2, 2IS, O3)" in text
        assert "5.00%" in text

    def test_area_vs_reduction_layout(self):
        series = {"MI": [(1, 1000.0, 10.0)]}
        text = render_area_vs_reduction(series, "fig")
        assert "MI" in text and "1000" in text

    def test_headline_layout(self):
        text = render_headline("H1", (1.0, 2.0, 3.0), (4.0, 5.0, 6.0),
                               {"case": 7.0})
        assert "paper" in text and "measured" in text and "case" in text

    def test_table_5_1_1_contains_all_groups(self):
        text = render_table_5_1_1(DEFAULT_DATABASE)
        for token in ("mult", "sll sllv", "84428"):
            assert token in text
