"""The sharded sweep dispatcher: partitioning, merging, bit-parity.

The headline contract: for any shard count, running every shard
independently and merging the parts yields *bit-identical* rows (and
digest) to one serial sweep — partitioning is deterministic by cell
fingerprint, cells are independent, and the merge re-imposes canonical
grid order.  Everything here runs a tiny effort grid so the whole
module stays in CI-smoke territory.
"""

import json

import pytest

from repro.api import sweep as api_sweep
from repro.dist.client import REMOTE_ENV, remote_cache, reset_remote_cache
from repro.dist.server import EvalCacheServer
from repro.dist.sweep import (
    SweepResult,
    SweepRow,
    cell_fingerprint,
    cell_grid,
    merge_sweeps,
    parse_shard,
    render_sweep,
    run_sweep,
    shard_of,
    sweep_digest,
)
from repro.errors import ReproError
from repro.eval.persistence import CACHE_DIR_ENV, CACHE_ENV

MACHINES = (("4/2", 2), ("6/3", 3))
BUDGETS = (20_000.0, 320_000.0)
TINY = dict(workloads=("crc32",), machines=MACHINES, budgets=BUDGETS,
            iterations=6, restarts=1)


@pytest.fixture
def shared_disk_cache(tmp_path_factory, monkeypatch):
    """One disk cache for the module's repeated identical explorations."""
    monkeypatch.setenv(CACHE_ENV, "1")
    monkeypatch.setenv(
        CACHE_DIR_ENV,
        str(tmp_path_factory.getbasetemp() / "sweep_cache"))
    monkeypatch.delenv(REMOTE_ENV, raising=False)
    reset_remote_cache()


# -- partitioning -----------------------------------------------------------

def test_cell_grid_order_is_machines_outer():
    cells = cell_grid(("a", "b"), MACHINES)
    assert cells == (("a", "4/2", 2), ("b", "4/2", 2),
                     ("a", "6/3", 3), ("b", "6/3", 3))


def test_shard_partition_is_disjoint_complete_deterministic():
    cells = cell_grid(("adpcm", "jpeg", "crc32", "sha"), MACHINES)
    for count in (1, 2, 3, 5):
        owners = {
            cell: shard_of(
                cell_fingerprint(cell, "O3", "quick", 0, "aco"), count)
            for cell in cells
        }
        assert set(owners.values()) <= set(range(count))
        # Every cell lands on exactly one shard (dict: trivially), and
        # re-hashing assigns the same owner.
        again = {
            cell: shard_of(
                cell_fingerprint(cell, "O3", "quick", 0, "aco"), count)
            for cell in cells
        }
        assert owners == again
    # The fingerprint covers every grid-spec field: changing any one
    # moves to a fresh fingerprint (no accidental collisions).
    base = cell_fingerprint(("w", "4/2", 2), "O3", "quick", 0, "aco")
    assert base != cell_fingerprint(("w", "4/2", 2), "O0", "quick", 0, "aco")
    assert base != cell_fingerprint(("w", "4/2", 2), "O3", "quick", 1, "aco")
    assert base != cell_fingerprint(("w", "8/4", 2), "O3", "quick", 0, "aco")


def test_parse_shard():
    assert parse_shard("0/4") == (0, 4)
    assert parse_shard("3/4") == (3, 4)
    for bad in ("4/4", "-1/4", "0/0", "nope", "1", ""):
        with pytest.raises(ReproError):
            parse_shard(bad)


def test_run_sweep_validates_inputs():
    with pytest.raises(ReproError):
        run_sweep(workloads=(), machines=MACHINES, budgets=BUDGETS)
    with pytest.raises(ReproError):
        run_sweep(workloads=("crc32",), machines=MACHINES,
                  budgets=BUDGETS, shard=(2, 2))


# -- the bit-parity contract ------------------------------------------------

def test_sharded_merge_equals_serial(shared_disk_cache):
    serial = api_sweep(**TINY)
    assert len(serial.rows) == len(MACHINES) * len(BUDGETS)
    parts = [api_sweep(**TINY, shard=(i, 2)) for i in range(2)]
    assert sum(len(part.rows) for part in parts) == len(serial.rows)
    merged = merge_sweeps(parts)
    assert merged.rows == serial.rows                 # bit-identical
    assert merged.digest == serial.digest
    assert merged.shard_index is None


def test_sweep_payload_roundtrip(shared_disk_cache):
    result = api_sweep(**TINY, shard=(0, 2))
    payload = json.loads(json.dumps(result.to_payload()))
    assert SweepResult.from_payload(payload) == result
    # Tampering with a row breaks the digest check on load.
    payload["rows"][0]["final_cycles"] += 1
    with pytest.raises(ReproError):
        SweepResult.from_payload(payload)
    payload["_schema"] = 999
    with pytest.raises(ReproError):
        SweepResult.from_payload(payload)


def test_dead_remote_server_changes_nothing(shared_disk_cache,
                                            monkeypatch, tmp_path):
    """Acceptance: an unreachable cache server degrades to the local
    tiers without error or result change."""
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "local_only"))
    local = api_sweep(**TINY)
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "dead_remote"))
    monkeypatch.setenv(REMOTE_ENV, "127.0.0.1:1")     # nothing listens
    monkeypatch.setenv("REPRO_REMOTE_TIMEOUT", "0.05")
    reset_remote_cache()
    try:
        degraded = api_sweep(**TINY)
    finally:
        reset_remote_cache()
    assert degraded.rows == local.rows
    assert degraded.digest == local.digest


def test_live_remote_server_shares_work(monkeypatch, tmp_path):
    """A second host (fresh disk cache) reuses the first host's work
    through the cache server — and gets identical rows."""
    server = EvalCacheServer(port=0)
    server.start_in_thread()
    monkeypatch.setenv(CACHE_ENV, "1")
    monkeypatch.setenv(REMOTE_ENV, server.address)
    monkeypatch.setenv("REPRO_REMOTE_TIMEOUT", "5.0")
    reset_remote_cache()
    try:
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "host_a"))
        cold = api_sweep(**TINY)
        assert server.store.inserted > 0              # work published
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "host_b"))
        warm = api_sweep(**TINY)
        tallies = remote_cache().tallies
        assert tallies["hits"] + tallies["blob_hits"] > 0
    finally:
        reset_remote_cache()
        server.stop()
    assert warm.rows == cold.rows
    assert warm.digest == cold.digest


# -- merge error paths ------------------------------------------------------

def _row(workload="w", ports="4/2", issue=2, budget=1.0):
    return SweepRow(workload=workload, ports=ports, issue=issue,
                    budget=budget, baseline_cycles=100, final_cycles=80,
                    reduction=0.2, num_ises=1, area=50.0)


def _result(rows, workloads=("w",), machines=(("4/2", 2),),
            budgets=(1.0,), shard_index=0, shard_count=1, seed=0):
    return SweepResult(workloads=workloads, machines=machines,
                       budgets=budgets, opt="O3", profile="quick",
                       seed=seed, engine="aco", shard_index=shard_index,
                       shard_count=shard_count, rows=tuple(rows))


def test_merge_rejects_empty_and_mismatched_specs():
    with pytest.raises(ReproError):
        merge_sweeps([])
    with pytest.raises(ReproError):
        merge_sweeps([_result([_row()]), _result([_row()], seed=1)])


def test_merge_rejects_duplicate_and_missing_cells():
    with pytest.raises(ReproError, match="duplicate"):
        merge_sweeps([_result([_row()]), _result([_row()])])
    with pytest.raises(ReproError, match="missing"):
        merge_sweeps([_result([], workloads=("w",))])


def test_merge_reimposes_canonical_order():
    rows = [_row(budget=2.0), _row(budget=1.0)]       # reversed order
    part = _result(rows, budgets=(1.0, 2.0))
    merged = merge_sweeps([part])
    assert [row.budget for row in merged.rows] == [1.0, 2.0]
    assert merged.digest == sweep_digest(merged.rows)


# -- rendering and observability --------------------------------------------

def test_render_sweep_matrix():
    part = _result([_row(budget=1.0), _row(budget=2.0)],
                   budgets=(1.0, 2.0))
    text = render_sweep(part)
    assert "(4/2, 2IS)" in text and "20.00%" in text
    assert "Best cell" in text


def test_sweep_trace_summary(shared_disk_cache, tmp_path):
    from repro.obs import load_trace, render_summary, summarize_trace

    trace = str(tmp_path / "sweep.jsonl")
    api_sweep(**TINY, shard=(0, 2), trace=trace)
    summary = summarize_trace(load_trace(trace))
    assert summary["sweep"] is not None
    assert summary["sweep"]["sweep.cells"] == len(MACHINES)
    assert summary["sweep"]["done"]["shard_index"] == 0
    rendered = render_summary(summary)
    assert "sweep:" in rendered


def test_cli_sweep_shard_and_merge(shared_disk_cache, tmp_path, capsys):
    from repro.cli import main

    parts = []
    for i in range(2):
        out = str(tmp_path / "part{}.json".format(i))
        code = main(["sweep", "--workloads", "crc32",
                     "--machines", "2:4/2,3:6/3",
                     "--budgets", "20000,320000",
                     "--iterations", "6", "--restarts", "1",
                     "--shard", "{}/2".format(i), "--out", out])
        assert code == 0
        parts.append(out)
    code = main(["sweep", "--merge"] + parts)
    assert code == 0
    merged_text = capsys.readouterr().out
    assert "digest   :" in merged_text and "Execution-time" in merged_text
