"""Additional coverage: memory model, data segments, reservation
introspection, flow lowering internals, exploration traces, reporting."""

import pytest

from repro.config import ExplorationParams, ISEConstraints
from repro.core import MultiIssueExplorer
from repro.core.flow import ISEDesignFlow, _lower_segments
from repro.errors import TrapError
from repro.eval import render_per_workload
from repro.ir import DataSegment, FunctionBuilder
from repro.ir.analysis import liveness
from repro.ir.interp import Memory
from repro.sched import MachineConfig, Needs, ReservationTable

from conftest import chain_dfg


class TestMemoryModel:
    def test_default_zero(self):
        mem = Memory()
        assert mem.load_word(0x100) == 0
        assert mem.load_byte(0xFFFF) == 0

    def test_word_byte_consistency(self):
        mem = Memory()
        mem.store_word(0x40, 0xA1B2C3D4)
        assert [mem.load_byte(0x40 + i) for i in range(4)] == \
            [0xD4, 0xC3, 0xB2, 0xA1]

    def test_half_word_alignment(self):
        mem = Memory()
        with pytest.raises(TrapError):
            mem.load_half(0x41)
        with pytest.raises(TrapError):
            mem.store_half(0x43, 1)

    def test_words_helper(self):
        mem = Memory()
        for i in range(3):
            mem.store_word(0x10 + 4 * i, i + 1)
        assert mem.words(0x10, 3) == [1, 2, 3]

    def test_image_constructor(self):
        mem = Memory({0x20: 0xFF, 0x21: 0x01})
        assert mem.load_half(0x20) == 0x01FF


class TestDataSegment:
    def test_word_alignment(self):
        data = DataSegment(base=0x101)
        addr = data.place_words("w", [7])
        assert addr % 4 == 0

    def test_reserve_zeroes(self):
        data = DataSegment()
        addr = data.reserve_words("buf", 4)
        image = data.image
        assert all(image[addr + i] == 0 for i in range(16))

    def test_sequential_layout(self):
        data = DataSegment(base=0x1000)
        a = data.place_words("a", [1, 2])
        b = data.place_words("b", [3])
        assert b == a + 8

    def test_unknown_symbol(self):
        from repro.errors import IRError
        data = DataSegment()
        with pytest.raises(IRError):
            data.address_of("ghost")


class TestReservationIntrospection:
    def test_usage_snapshot(self):
        table = ReservationTable(MachineConfig(2, "4/2"))
        table.place(3, Needs(reads=2, writes=1, fu_kind="alu"))
        issue, reads, writes, fus = table.usage(3)
        assert (issue, reads, writes) == (1, 2, 1)
        assert fus == {"alu": 1}
        assert table.usage(4) == (0, 0, 0, {})

    def test_zero_issue_needs(self):
        table = ReservationTable(MachineConfig(1, "4/2"))
        table.place(0, Needs(issue=1, reads=1))
        # A zero-issue, zero-FU revision (cluster bookkeeping) fits even
        # when the issue slot is taken.
        assert table.fits(0, Needs(issue=0, reads=1, fu_count=0))
        assert not table.fits(0, Needs(issue=1, reads=1, fu_count=0))


class TestLowerSegments:
    def _func_with_call(self):
        b = FunctionBuilder("main", params=("v",))
        b.label("entry")
        t = b.addu("v", "v")
        r = b.call("helper", (t,))
        u = b.xor(r, "v")
        b.ret(u)
        return b.finish()

    def test_split_at_call(self):
        func = self._func_with_call()
        __, live_out = liveness(func)
        segments, calls = _lower_segments(
            func, func.block("entry"), live_out["entry"])
        assert calls == 1
        assert len(segments) == 2
        assert len(segments[0]) == 1   # addu
        assert len(segments[1]) == 1   # xor

    def test_no_call_single_segment_keeps_label(self):
        b = FunctionBuilder("f", params=("a",))
        b.label("bb")
        t = b.addu("a", "a")
        b.ret(t)
        func = b.finish()
        __, live_out = liveness(func)
        segments, calls = _lower_segments(
            func, func.block("bb"), live_out["bb"])
        assert calls == 0
        assert segments[0].label == "bb"

    def test_empty_block(self):
        b = FunctionBuilder("f", params=("a",))
        b.label("bb")
        b.ret("a")
        func = b.finish()
        __, live_out = liveness(func)
        segments, calls = _lower_segments(
            func, func.block("bb"), live_out["bb"])
        assert len(segments) == 1 and len(segments[0]) == 0


class TestExplorationTraces:
    def test_traces_recorded(self):
        dfg = chain_dfg(5)
        params = ExplorationParams(max_iterations=30, restarts=1,
                                   max_rounds=2)
        explorer = MultiIssueExplorer(MachineConfig(2, "4/2"),
                                      params=params, seed=1)
        result = explorer.explore(dfg)
        assert result.traces
        assert len(result.traces) == result.rounds
        assert sum(len(t) for t in result.traces) == result.iterations
        # Rounds on fully-contracted DFGs legitimately record empty
        # traces; non-empty ones hold per-iteration makespans.
        assert all(all(c >= 1 for c in t) for t in result.traces)
        assert any(t for t in result.traces)


class TestRenderPerWorkload:
    def test_layout(self):
        table = {"crc32": {"MI": (50.0, 2, 1000.0),
                           "SI": (40.0, 3, 2000.0)}}
        text = render_per_workload(table, "title")
        assert "crc32" in text
        assert "50.00%" in text and "40.00%" in text
        assert "title" in text


class TestFlowEdgeCases:
    def test_unprofiled_program_yields_no_hot_blocks(self):
        # A program whose main never loops: every block freq 1, zero
        # weight blocks are still explorable but hot selection works.
        b = FunctionBuilder("main", params=("a",))
        b.label("entry")
        t = b.addu("a", "a")
        b.ret(t)
        from repro.ir import Program
        program = Program("p")
        program.add_function(b.finish())
        flow = ISEDesignFlow(MachineConfig(2, "4/2"),
                             params=ExplorationParams(
                                 max_iterations=20, restarts=1,
                                 max_rounds=1))
        report = flow.run(program, args=(1,),
                          constraints=ISEConstraints(max_ises=1))
        assert report.baseline_cycles >= 1
        assert report.final_cycles <= report.baseline_cycles

    def test_opt_level_none_means_as_is(self):
        from repro.workloads import get_workload
        program, args = get_workload("dijkstra").build()
        flow = ISEDesignFlow(MachineConfig(2, "4/2"),
                             params=ExplorationParams(
                                 max_iterations=20, restarts=1,
                                 max_rounds=1))
        explored = flow.explore_application(program, args=args,
                                            opt_level=None)
        assert explored.program is program
