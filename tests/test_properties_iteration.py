"""Property tests for Operation-Scheduling's cluster invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ISEConstraints
from repro.core.iteration import IterationSchedule
from repro.graph import is_convex
from repro.hwlib import DEFAULT_DATABASE, DEFAULT_TECHNOLOGY, \
    default_io_table
from repro.sched import MachineConfig

from test_properties import lower, straight_line_blocks

SLOW = settings(max_examples=30, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def build_schedule(dfg, hw_flags, machine):
    """Schedule in program order with per-node hw/sw choices."""
    constraints = ISEConstraints(
        n_in=machine.register_file.read_ports,
        n_out=machine.register_file.write_ports)
    sched = IterationSchedule(dfg, machine, DEFAULT_TECHNOLOGY,
                              constraints)
    for index, uid in enumerate(dfg.nodes):
        table = default_io_table(dfg.op(uid), DEFAULT_DATABASE)
        want_hw = hw_flags[index % len(hw_flags)] if hw_flags else False
        if want_hw and table.has_hardware:
            sched.schedule_hardware(uid, table.hardware[0])
        else:
            sched.schedule_software(uid, table.software[0])
    return sched


machines = st.sampled_from([MachineConfig(1, "4/2"),
                            MachineConfig(2, "4/2"),
                            MachineConfig(2, "6/3"),
                            MachineConfig(4, "10/5")])


class TestClusterInvariants:
    @SLOW
    @given(straight_line_blocks(), st.lists(st.booleans(), min_size=1,
                                            max_size=8), machines)
    def test_schedule_always_verifies(self, instrs, hw_flags, machine):
        dfg = lower(instrs)
        sched = build_schedule(dfg, hw_flags, machine)
        sched.verify()                    # dependences hold
        assert set(sched.start) == set(dfg.nodes)

    @SLOW
    @given(straight_line_blocks(), st.lists(st.booleans(), min_size=1,
                                            max_size=8), machines)
    def test_clusters_convex_and_port_legal(self, instrs, hw_flags,
                                            machine):
        from repro.graph import input_values, output_values
        dfg = lower(instrs)
        sched = build_schedule(dfg, hw_flags, machine)
        for cluster in sched.clusters:
            assert is_convex(dfg, cluster.members)
            n_in = len(input_values(dfg, cluster.members))
            n_out = len(output_values(dfg, cluster.members))
            if len(cluster.members) > 1:
                assert n_in <= machine.register_file.read_ports
                assert n_out <= machine.register_file.write_ports

    @SLOW
    @given(straight_line_blocks(), st.lists(st.booleans(), min_size=1,
                                            max_size=8), machines)
    def test_cluster_members_share_start(self, instrs, hw_flags, machine):
        dfg = lower(instrs)
        sched = build_schedule(dfg, hw_flags, machine)
        for cluster in sched.clusters:
            starts = {sched.start[uid] for uid in cluster.members}
            assert starts == {cluster.start}
            # Latency consistent with the combinational model.
            expected = DEFAULT_TECHNOLOGY.cycles_for_delay(
                cluster.delay_ns)
            assert cluster.cycles == expected

    @SLOW
    @given(straight_line_blocks(), machines)
    def test_all_software_matches_node_count_bound(self, instrs, machine):
        dfg = lower(instrs)
        sched = build_schedule(dfg, [False], machine)
        # A legal schedule never exceeds one op per cycle and never
        # beats the dependence bound.
        assert sched.makespan <= len(dfg)
        from repro.graph import longest_path_cycles
        assert sched.makespan >= longest_path_cycles(dfg, lambda u: 1)
