"""Tests for ISECandidate, Make-Convex/legalisation and contraction."""

import pytest

from repro.config import ISEConstraints
from repro.core.candidate import ISECandidate
from repro.core.contract import contract_candidate
from repro.core.make_convex import legalize_components, make_convex
from repro.errors import ConstraintError
from repro.graph import is_convex
from repro.hwlib import DEFAULT_DATABASE, DEFAULT_TECHNOLOGY, \
    default_io_table

from conftest import chain_dfg, dfg_from_block, diamond_dfg, wide_dfg


def fastest_options(dfg, members):
    return {uid: min(DEFAULT_DATABASE.hardware_options(dfg.op(uid).name),
                     key=lambda o: o.delay_ns)
            for uid in members}


def make_candidate(dfg, members):
    return ISECandidate(dfg, members, fastest_options(dfg, members),
                        DEFAULT_TECHNOLOGY)


class TestISECandidate:
    def test_metrics(self):
        dfg = chain_dfg(3)          # three addu, fast option 2.12 ns
        candidate = make_candidate(dfg, {0, 1, 2})
        assert candidate.size == 3
        assert candidate.delay_ns == pytest.approx(3 * 2.12)
        assert candidate.cycles == 1
        assert candidate.area == pytest.approx(3 * 2075.35)
        assert candidate.software_chain_cycles() == 3

    def test_io_counts(self):
        dfg = chain_dfg(3)
        candidate = make_candidate(dfg, {0, 1, 2})
        assert candidate.num_inputs() == 2       # a, b
        assert candidate.num_outputs() == 1

    def test_validate(self):
        dfg = chain_dfg(3)
        make_candidate(dfg, {0, 1, 2}).validate(ISEConstraints())
        with pytest.raises(ConstraintError):
            make_candidate(dfg, {0, 2}).validate(ISEConstraints())

    def test_pattern_and_describe(self):
        dfg = chain_dfg(2)
        candidate = make_candidate(dfg, {0, 1})
        assert candidate.pattern().number_of_nodes() == 2
        assert "addu" in candidate.describe()

    def test_equality(self):
        dfg = chain_dfg(2)
        assert make_candidate(dfg, {0, 1}) == make_candidate(dfg, {0, 1})


class TestMakeConvex:
    def test_convex_set_untouched(self):
        dfg = chain_dfg(4)
        pieces = make_convex(dfg, {1, 2})
        assert pieces == [frozenset({1, 2})]

    def test_gap_split(self):
        dfg = chain_dfg(4)
        pieces = make_convex(dfg, {0, 2})
        assert sorted(sorted(p) for p in pieces) == [[0], [2]]

    def test_reconvergent_split(self):
        def body(b):
            t = b.addu("a", "b")      # 0
            u = b.xor(t, "c")         # 1  (outside witness)
            v = b.or_(t, "d")         # 2
            return b.and_(u, v)       # 3
        dfg = dfg_from_block(body)
        pieces = make_convex(dfg, {0, 3})
        assert all(is_convex(dfg, p) for p in pieces)
        assert all(len(p) == 1 for p in pieces)

    def test_all_pieces_convex_on_diamond(self):
        dfg = diamond_dfg()
        pieces = make_convex(dfg, {0, 2, 7, 8})
        assert all(is_convex(dfg, p) for p in pieces)
        covered = set().union(*pieces)
        assert covered == {0, 2, 7, 8}


class TestLegalize:
    def test_drops_singletons(self):
        dfg = chain_dfg(4)
        legal = legalize_components(dfg, {0, 2}, ISEConstraints())
        assert legal == []

    def test_trims_port_overflow(self):
        dfg = wide_dfg(8)
        members = set(dfg.nodes)
        tight = ISEConstraints(n_in=3, n_out=1)
        legal = legalize_components(dfg, members, tight)
        from repro.graph import input_values, output_values
        for piece in legal:
            assert len(piece) >= 2
            assert is_convex(dfg, piece)
            assert len(input_values(dfg, piece)) <= 3
            assert len(output_values(dfg, piece)) <= 1

    def test_legal_set_passes_through(self):
        dfg = chain_dfg(3)
        legal = legalize_components(dfg, {0, 1, 2},
                                    ISEConstraints(n_in=4, n_out=2))
        assert legal == [frozenset({0, 1, 2})]


class TestContractCandidate:
    def _tables(self, dfg):
        return {uid: default_io_table(dfg.op(uid), DEFAULT_DATABASE)
                for uid in dfg.nodes}

    def test_supernode_shape(self):
        dfg = chain_dfg(4)
        candidate = make_candidate(dfg, {1, 2})
        new_dfg, tables = contract_candidate(dfg, candidate,
                                             self._tables(dfg))
        assert len(new_dfg) == 3
        super_uid = max(new_dfg.nodes)
        assert new_dfg.op(super_uid).name == "ise"
        assert not new_dfg.op(super_uid).groupable
        assert new_dfg.graph.has_edge(0, super_uid)
        assert new_dfg.graph.has_edge(super_uid, 3)

    def test_supernode_latency_option(self):
        dfg = chain_dfg(4)
        slow = {uid: max(DEFAULT_DATABASE.hardware_options("addu"),
                         key=lambda o: o.delay_ns)
                for uid in (1, 2)}
        candidate = ISECandidate(dfg, {1, 2}, slow, DEFAULT_TECHNOLOGY)
        __, tables = contract_candidate(dfg, candidate, self._tables(dfg))
        super_uid = max(tables)
        option = tables[super_uid].software[0]
        assert option.fu_kind == "asfu"
        assert option.cycles == candidate.cycles

    def test_uids_preserved_for_survivors(self):
        dfg = chain_dfg(4)
        candidate = make_candidate(dfg, {1, 2})
        new_dfg, __ = contract_candidate(dfg, candidate, self._tables(dfg))
        assert 0 in new_dfg and 3 in new_dfg

    def test_output_node_propagation(self):
        dfg = chain_dfg(3)
        candidate = make_candidate(dfg, {1, 2})  # 2 is the output node
        new_dfg, __ = contract_candidate(dfg, candidate, self._tables(dfg))
        super_uid = max(new_dfg.nodes)
        assert new_dfg.is_output(super_uid)

    def test_sequential_contraction(self):
        dfg = chain_dfg(6)
        tables = self._tables(dfg)
        c1 = make_candidate(dfg, {0, 1})
        dfg2, tables2 = contract_candidate(dfg, c1, tables)
        c2_members = {3, 4}
        c2 = make_candidate(dfg, c2_members)
        dfg3, tables3 = contract_candidate(dfg2, c2, tables2)
        assert len(dfg3) == 4
        ise_nodes = [uid for uid in dfg3.nodes
                     if dfg3.op(uid).name == "ise"]
        assert len(ise_nodes) == 2
