"""Tests for the extra SHA-1 workload (extension suite)."""

import pytest

from repro.ir import run_program
from repro.ir.passes import optimize
from repro.workloads import all_workloads, extra_workloads, get_workload
from repro.workloads import sha1


class TestSha1Registry:
    def test_extra_not_in_paper_suite(self):
        assert "sha1" not in [w.name for w in all_workloads()]
        assert "sha1" in [w.name for w in extra_workloads()]

    def test_lookup_by_name(self):
        assert get_workload("sha1").name == "sha1"


class TestSha1Correctness:
    def test_mirror_matches_hashlib(self):
        assert sha1.mirror_digest() == sha1.hashlib_digest()

    def test_mirror_matches_hashlib_other_messages(self):
        for message in (b"", b"abc", b"a" * 55):
            assert sha1.mirror_digest(message) == \
                sha1.hashlib_digest(message), message

    def test_interpreter_matches_reference_o0(self):
        workload = get_workload("sha1")
        program, args = workload.build()
        result, __, ___ = run_program(program, args=args)
        assert result == workload.reference()

    def test_interpreter_matches_reference_o3(self):
        workload = get_workload("sha1")
        program, args = workload.build()
        optimized = optimize(program, "O3")
        result, __, ___ = run_program(optimized, args=args)
        assert result == workload.reference()

    def test_hash_words_in_memory(self):
        program, args = sha1.build()
        __, ___, interp = run_program(program, args=args)
        h_base = args[1]
        words = interp.memory.words(h_base, 5)
        assert tuple(words) == sha1.compress()

    def test_multiblock_rejected(self):
        with pytest.raises(AssertionError):
            sha1.padded_block(b"x" * 56)


class TestSha1Structure:
    def test_schedule_loop_unrolls(self):
        program, __ = sha1.build()
        optimized = optimize(program, "O3")
        func = optimized.function("sha1_compress")
        assert func.block("sched_loop").annotations.get(
            "unrolled_by", 1) >= 2
        assert func.block("phase0").annotations.get("unrolled_by", 1) >= 2

    def test_rotate_idiom_present(self):
        program, __ = sha1.build()
        func = program.function("sha1_compress")
        ops = [i.op for i in func.block("phase0").body]
        # rol5 and rol30: two sll/srl/or triples per round.
        assert ops.count("sll") >= 2 and ops.count("srl") >= 2
