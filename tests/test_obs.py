"""Tests for the observability layer (:mod:`repro.obs`).

The contract under test: observers are opt-in and inert by default
(``NULL_OBSERVER`` is falsy and free), events survive the process-pool
fan-out with the same multiset at any ``jobs`` setting (and the same
*order* for the per-colony iteration/round stream), metrics registries
merge and render, sinks round-trip through JSON lines, and — crucially
— the engine's numeric results are bit-identical whether observability
is on or off.
"""

import io
import json
import logging
import pickle

import pytest

from repro.config import ExplorationParams
from repro.core.flow import ISEDesignFlow
from repro.errors import ReproError
from repro.eval.persistence import ExplorationCache
from repro.eval.runner import EvalContext
from repro.obs import (
    NULL_OBSERVER,
    Event,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NullObserver,
    Observer,
    ProgressSink,
    ensure_observer,
    load_trace,
    render_summary,
    summarize_trace,
)
from repro.obs import capture
from repro.sched import MachineConfig
from repro.workloads import get_workload

QUICK = ExplorationParams(max_iterations=20, restarts=1, max_rounds=3)


def _run_flow(workload="crc32", jobs=None, obs=None, seed=3):
    program, args = get_workload(workload).build()
    flow = ISEDesignFlow(MachineConfig(2, "4/2"), params=QUICK,
                         seed=seed, jobs=jobs, max_blocks=2, obs=obs)
    explored = flow.explore_application(program, args=args, opt_level="O3")
    return flow, explored


def _signature(explored):
    return (
        explored.baseline_cycles,
        [(sorted(c.members), c.cycles, repr(c.area))
         for c in explored.candidates],
    )


class TestMetricsRegistry:
    def test_count_gauge_timer(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.count("a", 4)
        reg.gauge("g", 2.5)
        reg.time("t", 0.25)
        reg.time("t", 0.25)
        snap = reg.snapshot()
        assert snap["counters"]["a"] == 5
        assert snap["gauges"]["g"] == 2.5
        assert snap["timers"]["t"]["count"] == 2
        assert snap["timers"]["t"]["total_s"] == pytest.approx(0.5)

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("x", 2)
        b.count("x", 3)
        b.gauge("g", 1.0)
        b.time("t", 0.1)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["x"] == 5
        assert snap["gauges"]["g"] == 1.0
        assert snap["timers"]["t"]["count"] == 1

    def test_render_mentions_everything(self):
        reg = MetricsRegistry()
        reg.count("hits", 7)
        reg.gauge("level", 1.5)
        reg.time("step", 0.1)
        text = reg.render()
        for token in ("hits", "7", "level", "step"):
            assert token in text


class TestObserver:
    def test_null_observer_is_falsy_and_inert(self):
        assert not NULL_OBSERVER
        NULL_OBSERVER.event("anything", x=1)
        NULL_OBSERVER.count("c")
        NULL_OBSERVER.gauge("g", 1.0)
        with NULL_OBSERVER.timer("t"):
            pass
        NULL_OBSERVER.close()
        assert NULL_OBSERVER.metrics.snapshot()["counters"] == {}

    def test_null_observer_pickles_to_singleton(self):
        clone = pickle.loads(pickle.dumps(NULL_OBSERVER))
        assert clone is NULL_OBSERVER

    def test_ensure_observer(self):
        assert ensure_observer(None) is NULL_OBSERVER
        obs = Observer()
        assert ensure_observer(obs) is obs

    def test_events_are_sequenced(self):
        sink = MemorySink()
        obs = Observer(sinks=[sink])
        obs.event("a", x=1)
        obs.event("b", y=2)
        assert [e.kind for e in sink.events] == ["a", "b"]
        assert [e.seq for e in sink.events] == [0, 1]
        assert sink.events[0].data == {"x": 1}

    def test_event_identity_ignores_seq_and_time(self):
        first = Event("k", {"a": 1}, seq=0, t=0.0)
        second = Event("k", {"a": 1}, seq=9, t=5.0)
        assert first.identity() == second.identity()

    def test_close_emits_metrics_event_once(self):
        sink = MemorySink()
        obs = Observer(sinks=[sink])
        obs.count("n", 3)
        obs.close()
        obs.close()
        finals = sink.of_kind("metrics")
        assert len(finals) == 1
        assert finals[0].data["counters"]["n"] == 3

    def test_pickle_drops_sinks_keeps_enabled(self):
        obs = Observer(sinks=[MemorySink()])
        clone = pickle.loads(pickle.dumps(obs))
        assert bool(clone) and clone.sinks == []
        disabled = pickle.loads(pickle.dumps(
            Observer(sinks=[MemorySink()], enabled=False)))
        assert not disabled and disabled.sinks == []

    def test_capture_buffers_and_replay_delivers(self):
        obs = Observer(sinks=[MemorySink()])
        capture.begin()
        try:
            obs.event("worker", step=1)
            obs.count("worker.count", 2)
            records = capture.end()
        finally:
            pass
        assert not obs.sinks[0].events  # nothing delivered in "worker"
        parent_sink = MemorySink()
        parent = Observer(sinks=[parent_sink])
        parent.replay(records)
        assert parent_sink.kinds() == ["worker"]
        assert parent.metrics.snapshot()["counters"]["worker.count"] == 2


class TestSinks:
    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs = Observer(sinks=[JsonlSink(str(path))])
        obs.event("round", round=1, tet_best=7)
        obs.close()
        records = load_trace(str(path))
        kinds = [r["kind"] for r in records]
        assert kinds == ["round", "metrics"]
        assert records[0]["tet_best"] == 7

    def test_jsonl_sink_no_file_without_events(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        sink = JsonlSink(str(path))
        sink.close()
        assert not path.exists()

    def test_load_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(ReproError):
            load_trace(str(path))
        with pytest.raises(ReproError):
            load_trace(str(tmp_path / "missing.jsonl"))

    def test_progress_sink_formats_known_kinds(self):
        stream = io.StringIO()
        sink = ProgressSink(stream=stream)
        obs = Observer(sinks=[sink])
        obs.event("flow.profile", program="p", opt="O3", blocks=4,
                  explorable=2)
        obs.event("round", function="f", label="b", restart=0, round=1,
                  iterations=12, converged=True, proposals=3, tet_best=9)
        obs.event("iteration", round=0, iteration=5)  # skipped
        obs.close()
        text = stream.getvalue()
        # iteration + metrics events are skipped: two lines remain
        assert "f:b" in text
        assert len(text.splitlines()) == 2


class TestEngineEvents:
    def test_flow_emits_schema_kinds(self):
        sink = MemorySink()
        flow, explored = _run_flow(obs=Observer(sinks=[sink]))
        kinds = set(sink.kinds())
        assert {"flow.profile", "flow.hot_block", "flow.explored",
                "iteration", "round", "block"} <= kinds
        counters = flow.obs.metrics.snapshot()["counters"]
        assert counters["explore.rounds"] >= 1
        assert counters["explore.iterations"] >= 1
        assert counters["state.weight_row_rebuilds"] >= 1
        assert counters["grouping.memo_hits"] + \
            counters["grouping.memo_misses"] >= 1

    def test_iteration_stream_is_ordered(self):
        sink = MemorySink()
        _run_flow(obs=Observer(sinks=[sink]))
        per_colony = {}
        for event in sink.of_kind("iteration"):
            key = (event.data["function"], event.data["label"],
                   event.data["restart"])
            per_colony.setdefault(key, []).append(
                (event.data["round"], event.data["iteration"]))
        for seen in per_colony.values():
            assert seen == sorted(seen)

    def test_iteration_events_carry_p_end(self):
        sink = MemorySink()
        _run_flow(obs=Observer(sinks=[sink]))
        sps = [e.data["min_sp"] for e in sink.of_kind("iteration")]
        assert sps and all(0.0 <= sp <= 1.0 for sp in sps)

    def test_results_identical_with_and_without_observer(self):
        __, plain = _run_flow(obs=None)
        ___, observed = _run_flow(obs=Observer(sinks=[MemorySink()]))
        assert _signature(plain) == _signature(observed)

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_parity(self, jobs):
        serial_sink, pooled_sink = MemorySink(), MemorySink()
        __, serial = _run_flow(jobs=1, obs=Observer(sinks=[serial_sink]))
        ___, pooled = _run_flow(jobs=jobs,
                                obs=Observer(sinks=[pooled_sink]))
        # Results are bit-identical; the full event multiset matches,
        # and the per-colony iteration/round stream matches *in order*
        # (block/flow events may interleave differently with a pool).
        assert _signature(serial) == _signature(pooled)

        def norm(identity):
            # flow.explored records the jobs *setting* — config, not
            # outcome — so it legitimately differs between the runs.
            kind, payload = identity
            return (kind, tuple(kv for kv in payload
                                if kv[0] != "jobs"))

        assert sorted(map(norm, serial_sink.identities())) \
            == sorted(map(norm, pooled_sink.identities()))
        ordered = ("iteration", "round")
        assert [e.identity() for e in serial_sink.events
                if e.kind in ordered] \
            == [e.identity() for e in pooled_sink.events
                if e.kind in ordered]

    def test_trace_summary_of_real_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs = Observer(sinks=[JsonlSink(str(path))])
        _run_flow(obs=obs)
        obs.close()
        summary = summarize_trace(load_trace(str(path)))
        assert summary["iterations"] > 0 and summary["rounds"] > 0
        assert summary["p_end"]["last"] >= summary["p_end"]["first"] - 1.0
        text = render_summary(summary)
        assert "events" in text and "rounds" in text


class TestCacheObservability:
    def test_disk_cache_counts_hits_and_misses(self, tmp_path):
        sink = MemorySink()
        obs = Observer(sinks=[sink])
        cache = ExplorationCache(directory=str(tmp_path), enabled=True,
                                 obs=obs)
        key = cache.key(workload="w", machine="m")
        assert cache.load(key) is None
        cache.store(key, {"payload": 1})
        assert cache.load(key) == {"payload": 1}
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["cache.disk_miss"] == 1
        assert counters["cache.disk_hit"] == 1
        assert counters["cache.disk_store"] == 1
        ops = [(e.data["op"], e.data["status"])
               for e in sink.of_kind("cache")]
        assert ops == [("load", "miss"), ("store", "store"),
                       ("load", "hit")]

    def test_eval_context_memory_counters_and_close(self, caplog):
        obs = Observer(sinks=[MemorySink()])
        ctx = EvalContext(profile="quick", seed=3,
                          workload_names=["crc32"],
                          disk_cache=ExplorationCache(enabled=False),
                          obs=obs)
        machine = MachineConfig(2, "4/2")
        ctx.params = QUICK
        ctx.max_blocks = 2
        ctx.explored("crc32", machine, "O3")
        ctx.explored("crc32", machine, "O3")
        stats = ctx.cache_stats()
        assert stats["memory_misses"] == 1
        assert stats["memory_hits"] == 1
        counters = obs.metrics.snapshot()["counters"]
        assert counters["cache.memory_miss"] == 1
        assert counters["cache.memory_hit"] == 1
        with caplog.at_level(logging.INFO, logger="repro.eval"):
            ctx.close()
            ctx.close()  # idempotent
        summaries = [r for r in caplog.records
                     if "EvalContext cache" in r.getMessage()]
        assert len(summaries) == 1
        events = obs.sinks[0].of_kind("eval.cache_summary")
        assert len(events) == 1 and events[0].data["memory_hits"] == 1

    def test_eval_context_is_a_context_manager(self):
        with EvalContext(profile="quick", seed=3,
                         workload_names=["crc32"],
                         disk_cache=ExplorationCache(enabled=False)) as ctx:
            assert ctx.cache_stats()["memory_misses"] == 0
        assert ctx._closed
