"""Tests for the pluggable engine protocol (:mod:`repro.engines`).

Four contracts:

* **registry** — registration, lazy lookup, error paths (unknown names
  raise :class:`~repro.errors.ReproError` listing the valid set);
* **budget metering** — an engine stopped at ``EvalBudget(N)`` performed
  exactly ``N`` uncached evaluations (cache hits free, charge before
  compute);
* **determinism** — same seed → same result per engine, serially and
  with the work fanned over ``jobs=2`` pool workers;
* **protocol conformance** — every registered engine explores a real
  hot block end-to-end, returns a well-formed
  :class:`~repro.engines.base.ExplorationResult` stamped with its name,
  and only ever fixes constraint-legal candidates.
"""

import warnings

import pytest

from repro import engines
from repro.config import ExplorationParams
from repro.core.flow import ISEDesignFlow
from repro.engines import EvalBudget, ExplorerEngine
from repro.engines.aco import AcoEngine
from repro.engines.base import EngineStats
from repro.errors import BudgetExhausted, ConfigError, ReproError
from repro.ir.passes.pipeline import optimize
from repro.sched import MachineConfig
from repro.workloads import get_workload

MACHINE = MachineConfig(2, "4/2")
FAST = ExplorationParams(max_iterations=12, restarts=2, max_rounds=3)


@pytest.fixture(scope="module")
def hot_dfgs():
    """Hot explorable crc32 blocks (one real, one trivial)."""
    program, args = get_workload("crc32").build()
    flow = ISEDesignFlow(MACHINE, seed=3, max_blocks=2)
    blocks = flow.profile_blocks(optimize(program, "O3"), args=args)
    return [b.dfg for b in flow._select_hot_blocks(blocks)]


def _engine(name, **kwargs):
    kwargs.setdefault("params", FAST)
    kwargs.setdefault("seed", 3)
    kwargs.setdefault("batch", 1)
    return engines.create(name, MACHINE, **kwargs)


def _signature(result):
    return (result.base_cycles, result.final_cycles, result.rounds,
            result.iterations,
            tuple(tuple(sorted(c.members)) for c in result.candidates))


class TestRegistry:
    def test_builtins_registered(self):
        names = engines.available()
        assert {"aco", "isegen", "greedy", "genetic"} <= set(names)
        assert names == tuple(sorted(names))

    def test_describe_and_lazy_class(self):
        assert "ant-colony" in engines.describe("aco")
        assert engines.engine_class("aco") is AcoEngine
        assert issubclass(engines.engine_class("isegen"), ExplorerEngine)

    def test_unknown_name_lists_valid_set(self):
        with pytest.raises(ReproError, match="unknown engine 'nope'"):
            engines.create("nope", MACHINE)
        with pytest.raises(ReproError, match="aco"):
            engines.describe("nope")
        with pytest.raises(ReproError):
            engines.engine_class("nope")
        with pytest.raises(ReproError):
            engines.unregister("nope")

    def test_register_and_unregister_custom(self):
        class MyEngine(ExplorerEngine):
            """Test-only engine."""
            name = "custom-test"
            description = "a throwaway test engine"

        engines.register("custom-test", MyEngine)
        try:
            assert "custom-test" in engines.available()
            assert engines.describe("custom-test") == \
                "a throwaway test engine"
            instance = engines.create("custom-test", MACHINE)
            assert isinstance(instance, MyEngine)
            with pytest.raises(ReproError, match="already registered"):
                engines.register("custom-test", MyEngine)
            engines.register("custom-test", MyEngine, replace=True,
                             description="replaced")
            assert engines.describe("custom-test") == "replaced"
        finally:
            engines.unregister("custom-test")
        assert "custom-test" not in engines.available()

    def test_register_rejects_bad_names(self):
        with pytest.raises(ReproError):
            engines.register("", ExplorerEngine)
        with pytest.raises(ReproError):
            engines.register(None, ExplorerEngine)

    def test_flow_and_api_validate_engine_early(self):
        with pytest.raises(ReproError, match="unknown engine"):
            ISEDesignFlow(MACHINE, engine="nope")
        import repro
        with pytest.raises(ReproError, match="unknown engine"):
            repro.explore("crc32", engine="nope")

    def test_list_engines_matches_registry(self):
        import repro
        listed = repro.list_engines()
        assert tuple(name for name, __ in listed) == engines.available()
        assert all(description for __, description in listed)


class TestBudget:
    def test_budget_validation(self):
        with pytest.raises(ConfigError):
            EvalBudget(0)
        budget = EvalBudget(2)
        assert budget.remaining == 2 and not budget.exhausted
        budget.charge()
        budget.charge()
        assert budget.exhausted and not budget.denied
        with pytest.raises(BudgetExhausted):
            budget.charge()
        assert budget.denied and budget.spent == 2

    @pytest.mark.parametrize("name", ["aco", "isegen", "greedy",
                                      "genetic"])
    @pytest.mark.parametrize("limit", [1, 5])
    def test_stopped_engine_spent_exactly_n(self, hot_dfgs, name, limit):
        budget = EvalBudget(limit)
        engine = _engine(name, budget=budget)
        try:
            engine.explore(hot_dfgs[0])
        except BudgetExhausted:
            pass          # died before the block baseline: still metered
        assert engine.stat_evaluations == budget.spent
        assert budget.spent <= limit
        if budget.denied:
            assert budget.spent == limit

    def test_unbudgeted_stats_have_no_budget_fields(self, hot_dfgs):
        engine = _engine("greedy")
        engine.explore(hot_dfgs[0])
        stats = engine.stats()
        assert isinstance(stats, EngineStats)
        assert stats.budget_spent is None and stats.budget_limit is None
        assert stats.evaluations == engine.stat_evaluations > 0
        assert 0.0 <= stats.cache_hit_rate <= 1.0

    def test_budget_outcome_no_worse_with_more_evals(self, hot_dfgs):
        tight = _engine("isegen", budget=EvalBudget(3))
        roomy = _engine("isegen", budget=EvalBudget(200))
        a = tight.explore(hot_dfgs[0])
        b = roomy.explore(hot_dfgs[0])
        assert b.final_cycles <= a.final_cycles


class TestDeterminism:
    @pytest.mark.parametrize("name", ["aco", "isegen", "greedy",
                                      "genetic"])
    def test_same_seed_same_result(self, hot_dfgs, name):
        first = _engine(name).explore(hot_dfgs[0])
        second = _engine(name).explore(hot_dfgs[0])
        assert _signature(first) == _signature(second)

    @pytest.mark.parametrize("name", ["aco", "isegen", "greedy",
                                      "genetic"])
    def test_serial_matches_pooled(self, hot_dfgs, name):
        serial = _engine(name).explore_many(hot_dfgs, jobs=1)
        pooled = _engine(name).explore_many(hot_dfgs, jobs=2)
        assert [_signature(r) for r in serial] == \
            [_signature(r) for r in pooled]

    def test_different_seeds_allowed_to_differ(self, hot_dfgs):
        # Not an equality assertion — just that seed reaches the RNG:
        # both runs are valid explorations of the same block.
        a = _engine("aco", seed=3).explore(hot_dfgs[0])
        b = _engine("aco", seed=4).explore(hot_dfgs[0])
        assert a.base_cycles == b.base_cycles


class TestProtocolConformance:
    @pytest.mark.parametrize("name", ["aco", "isegen", "greedy",
                                      "genetic"])
    def test_explore_contract(self, hot_dfgs, name):
        engine = _engine(name)
        assert engine.name == name
        assert engine.description
        result = engine.explore(hot_dfgs[0])
        assert result.engine == name
        assert result.final_cycles <= result.base_cycles
        assert result.cycle_saving == \
            result.base_cycles - result.final_cycles
        for candidate in result.candidates:
            candidate.validate(engine.constraints)
            assert candidate.members <= set(hot_dfgs[0].nodes)

    @pytest.mark.parametrize("name", ["aco", "isegen", "greedy",
                                      "genetic"])
    def test_explore_many_matches_per_block(self, hot_dfgs, name):
        engine = _engine(name)
        many = engine.explore_many(hot_dfgs, jobs=1)
        singles = [_engine(name).explore(dfg) for dfg in hot_dfgs]
        assert [_signature(r) for r in many] == \
            [_signature(r) for r in singles]

    @pytest.mark.parametrize("name", ["isegen", "greedy", "genetic"])
    def test_flow_runs_with_engine(self, name):
        program, args = get_workload("bitcount").build()
        flow = ISEDesignFlow(MACHINE, params=FAST, seed=3, max_blocks=1,
                             engine=name)
        report = flow.run(program, args=args, opt_level="O3")
        assert report.final_cycles <= report.baseline_cycles
        assert 0.0 <= report.reduction < 1.0


class TestDeprecationShim:
    def test_multi_issue_explorer_warns_and_is_aco(self):
        from repro.core.exploration import MultiIssueExplorer
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim = MultiIssueExplorer(MACHINE, params=FAST, seed=3)
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert isinstance(shim, AcoEngine)
        assert shim.name == "aco"

    def test_default_flow_factory_does_not_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            flow = ISEDesignFlow(MACHINE, params=FAST, seed=3)
            engine = flow._explorer_factory(flow)
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert type(engine) is AcoEngine

    def test_exploration_result_reexported(self):
        from repro.core.exploration import ExplorationResult
        from repro.engines.base import ExplorationResult as Canonical
        assert ExplorationResult is Canonical
