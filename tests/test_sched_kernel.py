"""Scheduling-kernel invariants: reservation-table revision cycles and
the Fig. 4.3.4 cluster-join reject paths."""

import pickle

import pytest

from repro.config import ISEConstraints
from repro.core.iteration import IterationSchedule
from repro.errors import SchedulingError
from repro.hwlib import DEFAULT_DATABASE, DEFAULT_TECHNOLOGY, \
    default_io_table
from repro.hwlib.options import HardwareOption
from repro.sched import MachineConfig
from repro.sched.resources import Needs, ReservationTable

from conftest import chain_dfg, dfg_from_block, wide_dfg


def make_table(machine=None):
    return ReservationTable(machine or MachineConfig(2, "4/2"))


def make_schedule(dfg, machine=None, constraints=None):
    machine = machine or MachineConfig(2, "4/2")
    constraints = constraints or ISEConstraints()
    return IterationSchedule(dfg, machine, DEFAULT_TECHNOLOGY, constraints)


def options_of(dfg, uid):
    return default_io_table(dfg.op(uid), DEFAULT_DATABASE)


class TestReservationInvariants:
    def test_place_release_replace_no_leak(self):
        """Cluster revision (release + wider re-place) leaks nothing."""
        table = make_table()
        small = Needs(reads=2, writes=1, fu_kind="asfu")
        wide = Needs(reads=3, writes=2, fu_kind="asfu")
        baseline = table.usage(0)
        for __ in range(5):
            table.place(0, small)
            table.release(0, small)
            table.place(0, wide)
            table.release(0, wide)
        assert table.usage(0) == baseline
        assert table.verify_nonnegative() is True

    def test_release_without_place_raises(self):
        table = make_table()
        with pytest.raises(SchedulingError):
            table.release(0, Needs(reads=1))
        # Same for a cycle that was touched but not by this demand.
        table.place(3, Needs(reads=1, writes=1, fu_kind="alu"))
        with pytest.raises(SchedulingError):
            table.release(3, Needs(reads=2, writes=1, fu_kind="alu"))

    def test_verify_nonnegative_detects_tampering(self):
        table = make_table()
        table.place(2, Needs(reads=1, writes=1))
        table._use[1][2] = -1        # corrupt the RF-read row directly
        with pytest.raises(SchedulingError):
            table.verify_nonnegative()

    def test_usage_drops_zeroed_fu_kinds(self):
        """Released FU capacity leaves no stale zero entries behind."""
        table = make_table()
        needs = Needs(reads=1, writes=1, fu_kind="asfu")
        table.place(0, needs)
        assert table.usage(0)[3] == {"asfu": 1}
        table.release(0, needs)
        assert table.usage(0)[3] == {}

    def test_pickle_roundtrip_preserves_usage(self):
        table = make_table()
        table.place(0, Needs(reads=2, writes=1, fu_kind="alu"))
        table.place(7, Needs(reads=1, writes=1, fu_kind="asfu"))
        clone = pickle.loads(pickle.dumps(table))
        for cycle in (0, 7, 8):
            assert clone.usage(cycle) == table.usage(cycle)
        assert clone.verify_nonnegative() is True


def consumer_dfg():
    """0 feeds both a software consumer (1) and a join candidate (2)."""

    def body(b):
        t0 = b.xor("a", "b")
        t1 = b.addu(t0, "c")
        t2 = b.addu(t0, "d")
        return b.or_(t1, t2)

    return dfg_from_block(body)


class TestTryJoinRejects:
    def test_port_overflow_counts_rejects(self):
        dfg = wide_dfg(6)
        constraints = ISEConstraints(n_in=2, n_out=1)
        sched = make_schedule(dfg, MachineConfig(4, "8/4"), constraints)
        for uid in dfg.nodes:
            sched.schedule_hardware(uid, options_of(dfg, uid).hardware[0])
        assert len(sched.clusters) > 1
        assert sched.stat_join_rejects > 0
        sched.verify()

    def test_pipestage_limit_splits_chain(self):
        # 4.04 ns adders at 100 MHz: two chain fit one cycle, the third
        # join would need two — rejected under max_ise_cycles=1.
        dfg = chain_dfg(4)
        sched = make_schedule(
            dfg, constraints=ISEConstraints(max_ise_cycles=1))
        for uid in dfg.nodes:
            sched.schedule_hardware(uid, options_of(dfg, uid).hardware[0])
        assert all(c.cycles == 1 for c in sched.clusters)
        assert len(sched.clusters) == 2
        assert sched.stat_join_rejects > 0
        sched.verify()

    def test_placed_consumer_blocks_growth(self):
        # A scheduled external consumer caps the cluster's finish: a
        # slow op that would stretch the critical path past it must
        # open its own cluster instead of fusing.
        dfg = consumer_dfg()
        sched = make_schedule(dfg)
        sched.schedule_hardware(0, options_of(dfg, 0).hardware[0])
        sched.schedule_software(1, options_of(dfg, 1).software[0])
        cluster = sched.clusters[0]
        assert cluster.min_ext_start == sched.start[1]
        rejects_before = sched.stat_join_rejects
        sched.schedule_hardware(2, HardwareOption("slow", 50.0, 1.0))
        assert sched.stat_join_rejects == rejects_before + 1
        assert len(sched.clusters) == 2
        assert sched.cluster_of[2] is not cluster
        sched.verify()

    def test_join_keeps_table_consistent_after_reject(self):
        # The probing release/re-place inside _try_join must restore
        # the table exactly when the grown reservation does not fit the
        # cycle (a software op already holds the register ports).
        def body(b):
            t0 = b.xor("a", "b")          # 0 — hw, opens the cluster
            blocker = b.addu("c", "d")    # 1 — sw, same cycle, 2 reads
            t2 = b.addu(t0, "e")          # 2 — join would need 3 reads
            return b.or_(blocker, t2)     # 3

        dfg = dfg_from_block(body, params=("a", "b", "c", "d", "e"))
        sched = make_schedule(dfg)
        sched.schedule_hardware(0, options_of(dfg, 0).hardware[0])
        sched.schedule_software(1, options_of(dfg, 1).software[0])
        cluster = sched.clusters[0]
        assert sched.start[1] == cluster.start
        usage_before = sched.table.usage(cluster.start)
        rejects_before = sched.stat_join_rejects
        sched.schedule_hardware(2, options_of(dfg, 2).hardware[0])
        assert sched.stat_join_rejects == rejects_before + 1
        assert sched.cluster_of[2] is not cluster
        assert sched.table.usage(cluster.start) == usage_before
        assert sched.table.verify_nonnegative() is True
        sched.verify()


class TestVerifyRaises:
    def test_tampered_start_raises(self):
        dfg = chain_dfg(3)
        sched = make_schedule(dfg)
        for uid in dfg.nodes:
            sched.schedule_software(uid, options_of(dfg, uid).software[0])
        sched.verify()
        sched.start[1] = 0            # now overlaps its parent's cycle
        with pytest.raises(SchedulingError):
            sched.verify()
