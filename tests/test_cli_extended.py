"""Extended CLI tests: manual/gantt commands, argument handling."""

import pytest

from repro.cli import main


class TestManualCommand:
    def test_manual_prints_datasheet(self, capsys):
        code = main(["manual", "dijkstra", "--iterations", "30",
                     "--restarts", "1", "--max-ises", "1", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Custom instructions" in out
        assert "latency" in out or "no instructions" in out

    def test_manual_respects_area_budget(self, capsys):
        code = main(["manual", "dijkstra", "--iterations", "30",
                     "--restarts", "1", "--area", "0", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "no instructions" in out


class TestGanttCommand:
    def test_gantt_prints_cycles(self, capsys):
        code = main(["gantt", "adpcm", "--iterations", "30",
                     "--restarts", "1", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline:" in out
        assert "C1" in out


class TestArgumentHandling:
    def test_unknown_workload_raises(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            main(["explore", "quake3", "--iterations", "10",
                  "--restarts", "1"])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_opt_choice_enforced(self):
        with pytest.raises(SystemExit):
            main(["explore", "crc32", "--opt", "O2"])
