"""Tests for the engine tournament harness (:mod:`repro.eval.tournament`).

Covers the race mechanics on a real crc32 hot block: every registered
engine appears exactly once, rows are ordered best-saving first, the
per-block budget is respected, renders are well-formed, and the JSON
record round-trips through :mod:`json`.
"""

import json

import pytest

from repro import engines
from repro.config import ExplorationParams
from repro.core.flow import ISEDesignFlow
from repro.errors import ReproError
from repro.eval.tournament import (EngineRow, TournamentResult,
                                   render_tournament, run_tournament,
                                   tournament_record)
from repro.ir.passes.pipeline import optimize
from repro.sched import MachineConfig
from repro.workloads import get_workload

MACHINE = MachineConfig(2, "4/2")
FAST = ExplorationParams(max_iterations=10, restarts=1, max_rounds=2)


@pytest.fixture(scope="module")
def hot_dfgs():
    """Hot explorable crc32 blocks."""
    program, args = get_workload("crc32").build()
    flow = ISEDesignFlow(MACHINE, seed=3, max_blocks=2)
    blocks = flow.profile_blocks(optimize(program, "O3"), args=args)
    return [b.dfg for b in flow._select_hot_blocks(blocks)]


@pytest.fixture(scope="module")
def tourney(hot_dfgs):
    """One small full-field tournament shared by the read-only tests."""
    return run_tournament(hot_dfgs, MACHINE, budget=15, params=FAST,
                          seed=3, batch=1)


class TestRace:
    def test_every_registered_engine_races_once(self, tourney):
        raced = [row.engine for row in tourney.rows]
        assert sorted(raced) == sorted(engines.available())
        assert len(raced) == len(set(raced))

    def test_rows_ordered_best_saving_first(self, tourney):
        savings = [row.saving for row in tourney.rows]
        assert savings == sorted(savings, reverse=True)
        assert tourney.winner is tourney.rows[0]

    def test_budget_respected_per_block(self, tourney, hot_dfgs):
        assert tourney.budget == 15
        assert tourney.num_blocks == len(hot_dfgs)
        for row in tourney.rows:
            assert row.budget == 15
            assert row.evaluations <= 15 * len(hot_dfgs)
            assert row.evaluations > 0

    def test_rows_are_consistent(self, tourney, hot_dfgs):
        for row in tourney.rows:
            assert isinstance(row, EngineRow)
            assert row.best_cycles <= row.base_cycles
            assert row.saving == row.base_cycles - row.best_cycles
            assert 0.0 <= row.cache_hit_rate <= 1.0
            assert row.wall_s >= 0.0
            assert 0 <= row.exhausted_blocks <= len(hot_dfgs)
            assert len(row.blocks) == len(hot_dfgs)
            assert sum(base for __, __, base, __ in row.blocks) == \
                row.base_cycles
            assert sum(final for __, __, __, final in row.blocks) == \
                row.best_cycles

    def test_common_baseline_across_engines(self, tourney):
        bases = {row.base_cycles for row in tourney.rows}
        assert len(bases) == 1

    def test_subset_of_names(self, hot_dfgs):
        result = run_tournament(hot_dfgs[:1], MACHINE, budget=8,
                                names=["greedy", "isegen"], params=FAST,
                                seed=3, batch=1)
        assert sorted(row.engine for row in result.rows) == \
            ["greedy", "isegen"]

    def test_unknown_name_raises(self, hot_dfgs):
        with pytest.raises(ReproError, match="unknown engine"):
            run_tournament(hot_dfgs[:1], MACHINE, budget=8,
                           names=["nope"], params=FAST, seed=3)

    def test_deterministic_rerun(self, hot_dfgs, tourney):
        again = run_tournament(hot_dfgs, MACHINE, budget=15, params=FAST,
                               seed=3, batch=1)
        key = lambda r: [(row.engine, row.base_cycles, row.best_cycles,
                          row.candidates, row.evaluations)
                         for row in r.rows]
        assert key(again) == key(tourney)


class TestReporting:
    def test_render_contains_every_engine(self, tourney):
        text = render_tournament(tourney)
        assert "budget 15 eval(s)/block" in text
        for row in tourney.rows:
            assert row.engine in text
        assert len(text.splitlines()) == 3 + len(tourney.rows)

    def test_record_round_trips_through_json(self, tourney):
        record = tournament_record(tourney)
        clone = json.loads(json.dumps(record))
        assert clone["budget_per_block"] == 15
        assert clone["blocks"] == tourney.num_blocks
        assert len(clone["engines"]) == len(tourney.rows)
        for entry, row in zip(clone["engines"], tourney.rows):
            assert entry["engine"] == row.engine
            assert entry["saving"] == row.saving
            assert len(entry["per_block"]) == len(row.blocks)
            assert all(":" in block["block"]
                       for block in entry["per_block"])

    def test_result_is_frozen(self, tourney):
        with pytest.raises(Exception):
            tourney.rows[0].engine = "other"
        assert isinstance(tourney, TournamentResult)
