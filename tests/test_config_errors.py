"""Tests for configuration validation and the error hierarchy."""

import pytest

from repro import errors
from repro.config import (
    DEFAULT_CONSTRAINTS,
    DEFAULT_PARAMS,
    ExplorationParams,
    ISEConstraints,
)


class TestExplorationParams:
    def test_paper_defaults(self):
        p = DEFAULT_PARAMS
        assert p.alpha == 0.25
        assert (p.rho1, p.rho2, p.rho3, p.rho4, p.rho5) == (4, 2, 2, 2, 0.4)
        assert p.beta_cp == 0.9
        assert p.beta_size == 0.7
        assert p.beta_io == 0.8
        assert p.beta_convex == 0.4
        assert p.p_end == 0.99
        assert p.initial_merit_software == 100.0
        assert p.initial_merit_hardware == 200.0
        assert p.restarts == 5

    @pytest.mark.parametrize("field,value", [
        ("alpha", -0.1), ("alpha", 1.5),
        ("lam", -1.0),
        ("p_end", 0.0), ("p_end", 1.0),
        ("rho1", -1.0), ("rho5", -0.1),
        ("beta_cp", 0.0), ("beta_cp", 1.1),
        ("beta_convex", -0.4),
        ("max_iterations", 0), ("max_rounds", 0), ("restarts", 0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(errors.ConfigError):
            ExplorationParams(**{field: value})

    def test_with_replaces(self):
        p = DEFAULT_PARAMS.with_(alpha=0.5)
        assert p.alpha == 0.5
        assert DEFAULT_PARAMS.alpha == 0.25

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_PARAMS.alpha = 0.9


class TestISEConstraints:
    def test_defaults(self):
        c = DEFAULT_CONSTRAINTS
        assert c.n_in == 4 and c.n_out == 2
        assert c.max_ises is None and c.max_area is None
        assert c.forbid_memory_ops

    @pytest.mark.parametrize("kwargs", [
        dict(n_in=0), dict(n_out=0),
        dict(max_ises=-1), dict(max_area=-5.0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(errors.ConfigError):
            ISEConstraints(**kwargs)

    def test_with_replaces(self):
        c = DEFAULT_CONSTRAINTS.with_(max_area=100.0)
        assert c.max_area == 100.0


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        leaves = [
            errors.ISAError, errors.UnknownOpcodeError, errors.IRError,
            errors.VerificationError, errors.InterpreterError,
            errors.TrapError, errors.StepLimitExceeded,
            errors.SchedulingError, errors.ExplorationError,
            errors.ConvergenceError, errors.ConstraintError,
            errors.ConfigError,
        ]
        for cls in leaves:
            assert issubclass(cls, errors.ReproError)

    def test_specific_parents(self):
        assert issubclass(errors.TrapError, errors.InterpreterError)
        assert issubclass(errors.ConvergenceError, errors.ExplorationError)
        assert issubclass(errors.UnknownOpcodeError, errors.ISAError)

    def test_unknown_opcode_payload(self):
        err = errors.UnknownOpcodeError("vmul")
        assert err.name == "vmul"
        assert "vmul" in str(err)
