"""Tests for ISE replacement and the end-to-end design flow."""

import pytest

from repro.config import ExplorationParams, ISEConstraints
from repro.core.candidate import ISECandidate
from repro.core.flow import ISEDesignFlow
from repro.core.merging import merge_candidates
from repro.core.replacement import plan_block_replacements, \
    replace_and_schedule
from repro.hwlib import DEFAULT_DATABASE, DEFAULT_TECHNOLOGY
from repro.sched import MachineConfig
from repro.workloads import get_workload

from conftest import dfg_from_block


def fastest_candidate(dfg, members, saving=1.0):
    option_of = {uid: min(DEFAULT_DATABASE.hardware_options(dfg.op(uid).name),
                          key=lambda o: o.delay_ns)
                 for uid in members}
    candidate = ISECandidate(dfg, members, option_of, DEFAULT_TECHNOLOGY)
    candidate.weighted_saving = saving
    return candidate


def repeated_dfg():
    def body(b):
        x1 = b.addu("a", "b")
        y1 = b.xor(x1, "c")
        x2 = b.addu("c", "d")
        y2 = b.xor(x2, "a")
        x3 = b.addu("b", "d")
        y3 = b.xor(x3, "c")
        m = b.or_(y1, y2)
        return b.or_(m, y3)
    return dfg_from_block(body)


class TestReplacement:
    def test_all_occurrences_replaced(self):
        dfg = repeated_dfg()
        candidate = fastest_candidate(dfg, {0, 1})
        merged = merge_candidates([candidate])
        groups = plan_block_replacements(dfg, merged, ISEConstraints())
        assert len(groups) == 3           # three addu->xor sites
        covered = set().union(*(m for m, __ in groups))
        assert covered == {0, 1, 2, 3, 4, 5}

    def test_no_overlapping_matches(self):
        dfg = repeated_dfg()
        two_op = fastest_candidate(dfg, {0, 1}, saving=1.0)
        merged = merge_candidates([two_op])
        groups = plan_block_replacements(dfg, merged, ISEConstraints())
        seen = set()
        for members, __ in groups:
            assert not (members & seen)
            seen |= members

    def test_schedule_improves(self):
        dfg = repeated_dfg()
        machine = MachineConfig(2, "4/2")
        candidate = fastest_candidate(dfg, {0, 1})
        merged = merge_candidates([candidate])
        schedule, groups = replace_and_schedule(
            dfg, merged, machine, DEFAULT_TECHNOLOGY, ISEConstraints())
        baseline, __ = replace_and_schedule(
            dfg, [], machine, DEFAULT_TECHNOLOGY, ISEConstraints())
        assert schedule.makespan <= baseline.makespan
        assert groups

    def test_option_transfer_by_opcode(self):
        dfg = repeated_dfg()
        candidate = fastest_candidate(dfg, {0, 1})
        merged = merge_candidates([candidate])
        groups = plan_block_replacements(dfg, merged, ISEConstraints())
        for members, option_of in groups:
            for uid in members:
                assert option_of[uid].is_hardware


class TestDesignFlow:
    @pytest.fixture(scope="class")
    def flow_and_explored(self):
        program, args = get_workload("crc32").build()
        machine = MachineConfig(2, "4/2")
        params = ExplorationParams(max_iterations=60, restarts=1,
                                   max_rounds=6)
        flow = ISEDesignFlow(machine, params=params, seed=3, max_blocks=3)
        explored = flow.explore_application(program, args=args,
                                            opt_level="O3")
        return flow, explored

    def test_profile_blocks_have_frequencies(self, flow_and_explored):
        __, explored = flow_and_explored
        hot = [b for b in explored.blocks if b.freq > 0]
        assert hot
        assert any(b.label == "bit_loop" for b in hot)

    def test_baseline_cycles_positive(self, flow_and_explored):
        __, explored = flow_and_explored
        assert explored.baseline_cycles > 0

    def test_candidates_found(self, flow_and_explored):
        __, explored = flow_and_explored
        assert explored.candidates
        assert all(c.weighted_saving >= 0 for c in explored.candidates)

    def test_evaluation_improves(self, flow_and_explored):
        flow, explored = flow_and_explored
        report = flow.evaluate(explored, ISEConstraints(max_ises=2))
        assert report.final_cycles < report.baseline_cycles
        assert 0.0 < report.reduction < 1.0
        assert report.num_ises <= 2

    def test_area_budget_respected(self, flow_and_explored):
        flow, explored = flow_and_explored
        report = flow.evaluate(explored, ISEConstraints(max_area=5000))
        assert report.area <= 5000

    def test_zero_budget_is_baseline(self, flow_and_explored):
        flow, explored = flow_and_explored
        report = flow.evaluate(explored, ISEConstraints(max_ises=0))
        assert report.final_cycles == report.baseline_cycles
        assert report.reduction == 0.0

    def test_monotone_count_budgets(self, flow_and_explored):
        flow, explored = flow_and_explored
        reductions = [flow.evaluate(explored,
                                    ISEConstraints(max_ises=n)).reduction
                      for n in (0, 1, 2)]
        assert reductions[0] <= reductions[1] + 1e-9

    def test_call_blocks_cost_model(self):
        # O0 keeps the helper call; the flow must still cost the block.
        from repro.ir import FunctionBuilder, Program
        callee = FunctionBuilder("helper", params=("x",))
        callee.label("entry")
        t = callee.addu("x", "x")
        callee.ret(t)
        caller = FunctionBuilder("main", params=("v",))
        caller.label("entry")
        a = caller.addu("v", "v")
        r = caller.call("helper", (a,))
        out = caller.xor(r, "v")
        caller.ret(out)
        program = Program("p")
        program.add_function(caller.finish())
        program.add_function(callee.finish())
        flow = ISEDesignFlow(MachineConfig(2, "4/2"))
        blocks = flow.profile_blocks(program, args=(3,))
        main_entry = next(b for b in blocks
                          if b.function == "main" and b.label == "entry")
        assert main_entry.calls == 1
        assert not main_entry.explorable
        assert main_entry.base_cycles >= 3   # two segments + call
