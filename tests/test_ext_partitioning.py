"""Tests for the HW/SW partitioning extension (§6 future work)."""

import pytest

from repro.config import ExplorationParams
from repro.errors import ConfigError, IRError
from repro.ext import TaskGraph, partition

TINY = ExplorationParams(max_iterations=60, restarts=1, max_rounds=4)


def pipeline_graph():
    """A linear media pipeline with one side branch."""
    tg = TaskGraph("pipeline")
    tg.add_task("read", 4)
    tg.add_task("transform", 10, hw_bins=[(3.0, 900.0), (2.0, 1500.0)],
                deps=["read"])
    tg.add_task("quant", 5, hw_bins=[(1.0, 250.0)], deps=["transform"])
    tg.add_task("pack", 3, hw_bins=[(1.0, 100.0)], deps=["quant"])
    tg.add_task("stats", 4, hw_bins=[(2.0, 150.0)], deps=["read"])
    tg.add_task("emit", 2, deps=["pack", "stats"])
    return tg


class TestTaskGraph:
    def test_build_and_lower(self):
        tg = pipeline_graph()
        dfg, tables = tg.to_dfg()
        assert len(dfg) == 6
        assert set(tables) == set(range(6))
        # Software-only tasks carry no hardware options.
        read_uid = 0
        assert not tables[read_uid].has_hardware
        # Latencies carried through.
        assert tables[1].software[0].cycles == 10

    def test_duplicate_task_rejected(self):
        tg = TaskGraph()
        tg.add_task("a", 1)
        with pytest.raises(IRError):
            tg.add_task("a", 2)

    def test_unknown_dep_rejected(self):
        tg = TaskGraph()
        with pytest.raises(IRError):
            tg.add_task("b", 1, deps=["ghost"])

    def test_bad_latency_rejected(self):
        tg = TaskGraph()
        with pytest.raises(ConfigError):
            tg.add_task("a", 0)
        with pytest.raises(ConfigError):
            tg.add_task("b", 1, hw_bins=[(0.0, 10.0)])

    def test_sink_tasks_are_outputs(self):
        tg = pipeline_graph()
        dfg, __ = tg.to_dfg()
        assert dfg.is_output(5)        # emit
        assert not dfg.is_output(0)


class TestPartition:
    def test_speedup_on_pipeline(self):
        result = partition(pipeline_graph(), params=TINY, seed=3)
        assert result.makespan_partitioned <= result.makespan_software
        assert result.speedup >= 1.0
        assert result.hardware_area >= 0.0

    def test_all_software_when_no_bins(self):
        tg = TaskGraph()
        tg.add_task("a", 3)
        tg.add_task("b", 4, deps=["a"])
        result = partition(tg, params=TINY)
        assert result.hardware_blocks() == []
        assert result.speedup == 1.0
        assert result.software_tasks() == {"a", "b"}

    def test_partition_is_a_partition(self):
        result = partition(pipeline_graph(), params=TINY, seed=3)
        hw = result.hardware_tasks()
        sw = result.software_tasks()
        names = {t.name for t in pipeline_graph().tasks}
        assert hw | sw == names
        assert not (hw & sw)

    def test_area_budget_respected(self):
        unbounded = partition(pipeline_graph(), params=TINY, seed=3)
        if unbounded.hardware_area == 0:
            pytest.skip("nothing mapped to hardware at this effort")
        budget = unbounded.hardware_area / 2
        bounded = partition(pipeline_graph(), params=TINY, seed=3,
                            max_area=budget)
        assert bounded.hardware_area <= budget

    def test_more_processors_faster_software_baseline(self):
        tg = pipeline_graph()
        one = partition(tg, processors=1, params=TINY, seed=3)
        two = partition(tg, processors=2, params=TINY, seed=3)
        assert two.makespan_software <= one.makespan_software
