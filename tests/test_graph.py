"""Tests for DFG construction and the graph analyses of §4.2."""

import pytest

from repro.config import ISEConstraints
from repro.errors import ConstraintError
from repro.graph import (
    alap_schedule,
    asap_schedule,
    check_candidate,
    critical_nodes,
    grown_group,
    hardware_components,
    input_values,
    is_convex,
    is_legal,
    longest_path_cycles,
    output_values,
    pattern_graph,
    same_pattern,
    contains_pattern,
    slack,
    violates_memory_rule,
)

from conftest import chain_dfg, diamond_dfg, dfg_from_block, memory_dfg, \
    wide_dfg

UNIT = lambda uid: 1


class TestDFGConstruction:
    def test_chain_edges(self):
        dfg = chain_dfg(4)
        assert len(dfg) == 4
        assert list(dfg.data_successors(0)) == [1]
        assert list(dfg.data_predecessors(3)) == [2]

    def test_external_inputs(self):
        dfg = chain_dfg(3)
        assert "a" in dfg.external_inputs(0)
        # Later links read 'b' externally and the chain value internally.
        assert dfg.external_inputs(1) == ["b"]

    def test_output_nodes_from_terminator(self):
        dfg = chain_dfg(3)
        assert dfg.is_output(2)
        assert not dfg.is_output(0)

    def test_redefined_value_edges(self):
        def body(b):
            b.addu("a", "b", dest="x")
            b.xor("x", "c", dest="x")
            return b.or_("x", "d")
        dfg = dfg_from_block(body)
        # or reads the second definition of x only.
        assert list(dfg.data_predecessors(2)) == [1]

    def test_memory_ordering_edges(self):
        dfg = memory_dfg()
        # load #0 ... store #2 ... load #3: order edges keep program order.
        kinds = {(u, v): dfg.graph.edges[u, v]["kind"]
                 for u, v in dfg.graph.edges}
        assert kinds.get((0, 2)) in ("data", "order")
        assert kinds.get((2, 3)) == "order"

    def test_producer_map(self):
        dfg = chain_dfg(2)
        assert set(dfg.producer_of.values()) == {0, 1}


class TestInOutValues:
    def test_chain_in_out(self):
        dfg = chain_dfg(4)
        members = {1, 2}
        ins = input_values(dfg, members)
        outs = output_values(dfg, members)
        assert len(ins) == 2          # chain value from #0 + external 'b'
        assert len(outs) == 1

    def test_whole_graph_inputs_are_block_inputs(self):
        dfg = diamond_dfg()
        ins = input_values(dfg, set(dfg.nodes))
        assert ins == {"a", "b", "c", "d"}

    def test_internal_value_not_output(self):
        dfg = chain_dfg(3)
        outs = output_values(dfg, {0, 1, 2})
        assert len(outs) == 1         # only the final value escapes

    def test_multi_consumer_output(self):
        def body(b):
            t = b.addu("a", "b")
            u = b.xor(t, "c")
            v = b.or_(t, "d")
            return b.and_(u, v)
        dfg = dfg_from_block(body)
        outs = output_values(dfg, {0, 1})     # t escapes to #2
        assert len(outs) == 2


class TestConvexity:
    def test_chain_convex(self):
        dfg = chain_dfg(4)
        assert is_convex(dfg, {1, 2, 3})

    def test_gap_not_convex(self):
        dfg = chain_dfg(4)
        assert not is_convex(dfg, {0, 2})

    def test_diamond_sides_convex(self):
        dfg = diamond_dfg()
        assert is_convex(dfg, {0, 3})

    def test_singleton_and_empty_convex(self):
        dfg = chain_dfg(3)
        assert is_convex(dfg, {1})
        assert is_convex(dfg, set())

    def test_reconvergent_violation(self):
        def body(b):
            t = b.addu("a", "b")      # 0
            u = b.xor(t, "c")         # 1
            v = b.or_(t, "d")         # 2
            return b.and_(u, v)       # 3
        dfg = dfg_from_block(body)
        assert not is_convex(dfg, {0, 3})
        assert is_convex(dfg, {0, 1, 2, 3})


class TestLegality:
    def test_memory_rule(self):
        dfg = memory_dfg()
        loads = [uid for uid in dfg.nodes if dfg.op(uid).is_memory]
        assert violates_memory_rule(dfg, loads)
        constraints = ISEConstraints()
        assert not is_legal(dfg, set(loads), constraints)

    def test_port_limits(self):
        dfg = wide_dfg(6)
        constraints = ISEConstraints(n_in=2, n_out=1)
        everything = set(dfg.nodes)
        assert not is_legal(dfg, everything, constraints)

    def test_check_candidate_messages(self):
        dfg = chain_dfg(3)
        with pytest.raises(ConstraintError):
            check_candidate(dfg, set(), ISEConstraints())
        with pytest.raises(ConstraintError):
            check_candidate(dfg, {0, 2}, ISEConstraints())   # non-convex

    def test_legal_chain(self):
        dfg = chain_dfg(3)
        assert is_legal(dfg, {0, 1, 2}, ISEConstraints(n_in=4, n_out=2))


class TestTiming:
    def test_asap_chain(self):
        dfg = chain_dfg(4)
        asap = asap_schedule(dfg, UNIT)
        assert [asap[uid] for uid in dfg.nodes] == [0, 1, 2, 3]

    def test_alap_horizon(self):
        dfg = chain_dfg(3)
        alap = alap_schedule(dfg, UNIT, horizon=5)
        assert alap[2] == 4
        assert alap[0] == 2

    def test_slack_zero_on_critical(self):
        dfg = diamond_dfg()
        s = slack(dfg, UNIT)
        crit = critical_nodes(dfg, UNIT)
        assert all(s[uid] == 0 for uid in crit)
        assert any(s[uid] > 0 for uid in dfg.nodes if uid not in crit)

    def test_critical_path_of_diamond(self):
        dfg = diamond_dfg()
        crit = critical_nodes(dfg, UNIT)
        # The long chain 0 -> 3 -> (5,6) -> 7 -> 8 is critical.
        assert {0, 3, 7, 8} <= crit
        # The short side chain is not.
        assert 2 not in crit and 4 not in crit

    def _count_asap(self, monkeypatch):
        from repro.graph import analysis
        calls = []
        original = analysis.asap_schedule

        def counted(dfg, latency_of):
            calls.append(dfg)
            return original(dfg, latency_of)

        monkeypatch.setattr(analysis, "asap_schedule", counted)
        return calls

    def test_alap_with_horizon_skips_asap(self, monkeypatch):
        calls = self._count_asap(monkeypatch)
        alap_schedule(diamond_dfg(), UNIT, horizon=9)
        assert len(calls) == 0

    def test_alap_reuses_threaded_asap(self, monkeypatch):
        from repro.graph import analysis
        dfg = diamond_dfg()
        asap = asap_schedule(dfg, UNIT)
        calls = self._count_asap(monkeypatch)
        threaded = analysis.alap_schedule(dfg, UNIT, asap=asap)
        assert len(calls) == 0
        assert threaded == alap_schedule(dfg, UNIT)

    def test_slack_computes_asap_once(self, monkeypatch):
        from repro.graph import analysis
        calls = self._count_asap(monkeypatch)
        analysis.slack(diamond_dfg(), UNIT)
        assert len(calls) == 1

    def test_longest_path_cycles(self):
        assert longest_path_cycles(chain_dfg(5), UNIT) == 5

    def test_multicycle_latency(self):
        dfg = chain_dfg(3)
        latency = lambda uid: 2
        assert longest_path_cycles(dfg, latency) == 6


class TestSubgraphUtilities:
    def test_grown_group_respects_software_blockers(self):
        dfg = chain_dfg(5)
        group = grown_group(dfg, 2, chosen_hw={1, 3})
        assert group == {1, 2, 3}

    def test_grown_group_grows_both_directions(self):
        dfg = diamond_dfg()
        group = grown_group(dfg, 3, chosen_hw={0, 5, 6, 7})
        assert group == {0, 3, 5, 6, 7}

    def test_hardware_components(self):
        dfg = chain_dfg(5)
        comps = hardware_components(dfg, {0, 1, 3, 4})
        assert sorted(sorted(c) for c in comps) == [[0, 1], [3, 4]]

    def test_pattern_graph_labels(self):
        dfg = chain_dfg(3, op="xor")
        pattern = pattern_graph(dfg, {0, 1})
        assert pattern.number_of_nodes() == 2
        assert all(d["opcode"] == "xor"
                   for __, d in pattern.nodes(data=True))

    def test_same_pattern_isomorphism(self):
        dfg = chain_dfg(4)
        p1 = pattern_graph(dfg, {0, 1})
        p2 = pattern_graph(dfg, {2, 3})
        assert same_pattern(p1, p2)

    def test_contains_pattern(self):
        dfg = chain_dfg(4)
        big = pattern_graph(dfg, {0, 1, 2})
        small = pattern_graph(dfg, {1, 2})
        assert contains_pattern(big, small)
        assert not contains_pattern(small, big)

    def test_find_matches_in_repeated_code(self):
        from repro.graph import find_matches

        def body(b):
            x1 = b.addu("a", "b")
            y1 = b.xor(x1, "c")
            x2 = b.addu("c", "d")
            y2 = b.xor(x2, "a")
            return b.or_(y1, y2)
        dfg = dfg_from_block(body)
        pattern = pattern_graph(dfg, {0, 1})
        matches = find_matches(dfg, pattern)
        assert {frozenset(m) for m in matches} >= {
            frozenset({0, 1}), frozenset({2, 3})}

    def test_find_matches_respects_exclude(self):
        from repro.graph import find_matches
        dfg = chain_dfg(4)
        pattern = pattern_graph(dfg, {0, 1})
        matches = find_matches(dfg, pattern, exclude={0, 1})
        assert all(not (set(m) & {0, 1}) for m in matches)
