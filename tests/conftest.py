"""Shared fixtures and DFG builders for the test suite."""

import pytest

from repro.config import ExplorationParams, ISEConstraints
from repro.graph import build_dfg
from repro.ir import FunctionBuilder
from repro.ir.analysis import liveness
from repro.sched import MachineConfig


def dfg_from_block(build_body, params=("a", "b", "c", "d"), ret=None):
    """Build a one-block function via ``build_body(builder)`` and lower
    the block to a DFG.  ``build_body`` returns the value to return."""
    b = FunctionBuilder("test_func", params=params)
    b.label("bb")
    result = build_body(b)
    b.ret(result if ret is None else ret)
    func = b.finish()
    __, live_out = liveness(func)
    return build_dfg(func.block("bb"), live_out["bb"], function="test_func")


def chain_dfg(length=4, op="addu"):
    """A pure dependence chain of ``length`` operations."""

    def body(b):
        value = "a"
        for __ in range(length):
            value = getattr(b, op if op != "and" else "and_")(value, "b")
        return value

    return dfg_from_block(body)


def diamond_dfg():
    """Fig 4.0.1-like: two parallel chains joining."""

    def body(b):
        t1 = b.xor("a", "b")
        t2 = b.and_("a", "c")
        t3 = b.or_("b", "c")
        t4 = b.addu(t1, "d")
        t5 = b.subu(t3, "c")
        t6 = b.addu(t4, t2)
        t7 = b.xor(t4, "a")
        t8 = b.addu(t6, t7)
        return b.or_(t8, t5)

    return dfg_from_block(body)


def wide_dfg(width=6):
    """``width`` independent operations merged pairwise (high ILP)."""

    def body(b):
        tops = [b.xor("a", "b") if i % 2 else b.addu("c", "d")
                for i in range(width)]
        value = tops[0]
        for other in tops[1:]:
            value = b.or_(value, other)
        return value

    return dfg_from_block(body)


def memory_dfg():
    """Chain with loads/stores interleaved (memory rules exercised)."""

    def body(b):
        v1 = b.lw("a")
        v2 = b.addu(v1, "b")
        b.sw(v2, "a")
        v3 = b.lw("a", 4)
        return b.xor(v3, v2)

    return dfg_from_block(body)


@pytest.fixture
def dual_issue():
    return MachineConfig(2, "4/2")


@pytest.fixture
def quad_issue():
    return MachineConfig(4, "10/5")


@pytest.fixture
def single_issue():
    return MachineConfig(1, "4/2")


@pytest.fixture
def tiny_params():
    """Small ACO budgets so explorer tests stay fast."""
    return ExplorationParams(max_iterations=60, restarts=1, max_rounds=4)


@pytest.fixture
def loose_constraints():
    return ISEConstraints(n_in=4, n_out=2)
