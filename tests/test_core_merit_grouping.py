"""Tests for Hardware-Grouping, ScheduleAnalysis and the merit function."""

import pytest

from repro.config import ExplorationParams, ISEConstraints
from repro.core.analysis import ScheduleAnalysis
from repro.core.grouping import best_group_of, hardware_grouping
from repro.core.iteration import IterationSchedule
from repro.core.merit import update_merits
from repro.core.state import ExplorationState
from repro.hwlib import DEFAULT_DATABASE, DEFAULT_TECHNOLOGY, \
    default_io_table
from repro.sched import MachineConfig

from conftest import chain_dfg, diamond_dfg


def build_state(dfg, **overrides):
    params = ExplorationParams(**overrides)
    tables = {uid: default_io_table(dfg.op(uid), DEFAULT_DATABASE)
              for uid in dfg.nodes}
    return ExplorationState(dfg, tables, params)


def schedule_all(dfg, state, hardware=()):
    sched = IterationSchedule(dfg, MachineConfig(2, "4/2"),
                              DEFAULT_TECHNOLOGY, ISEConstraints())
    for uid in dfg.nodes:
        table = state.options[uid]
        if uid in hardware:
            option = next(o for o in table if o.is_hardware)
            sched.schedule_hardware(uid, option)
        else:
            option = next(o for o in table if o.is_software)
            sched.schedule_software(uid, option)
    return sched.verify()


class TestHardwareGrouping:
    def test_group_around_seed(self):
        dfg = chain_dfg(4)
        state = build_state(dfg)
        sched = schedule_all(dfg, state, hardware={1, 2})
        groups = hardware_grouping(dfg, state, sched)
        hw_label = state.hardware_options(0)[0].label
        group = groups[(0, hw_label)]
        assert group.members == {0, 1, 2}

    def test_software_node_blocks_growth(self):
        dfg = chain_dfg(5)
        state = build_state(dfg)
        sched = schedule_all(dfg, state, hardware={1, 3})   # 2 is software
        groups = hardware_grouping(dfg, state, sched)
        hw_label = state.hardware_options(0)[0].label
        assert groups[(0, hw_label)].members == {0, 1}

    def test_per_option_evaluations_differ(self):
        dfg = chain_dfg(2)          # addu has two design points
        state = build_state(dfg)
        sched = schedule_all(dfg, state, hardware={1})
        groups = hardware_grouping(dfg, state, sched)
        evaluations = [g for (seed, __), g in groups.items() if seed == 0]
        assert len(evaluations) == 2
        delays = {g.delay_ns for g in evaluations}
        assert len(delays) == 2        # fast vs slow adder

    def test_best_group_is_fastest(self):
        dfg = chain_dfg(2)
        state = build_state(dfg)
        sched = schedule_all(dfg, state, hardware={1})
        groups = hardware_grouping(dfg, state, sched)
        best = best_group_of(groups, 0)
        assert best.delay_ns == min(
            g.delay_ns for (s, __), g in groups.items() if s == 0)


class TestScheduleAnalysis:
    def test_critical_path_of_diamond(self):
        dfg = diamond_dfg()
        state = build_state(dfg)
        sched = schedule_all(dfg, state)
        analysis = ScheduleAnalysis(dfg, sched)
        assert analysis.is_critical(0)
        assert analysis.is_critical(8)
        assert not analysis.is_critical(2)     # short side chain

    def test_cluster_counts_as_unit(self):
        dfg = chain_dfg(4)
        state = build_state(dfg)
        sched = schedule_all(dfg, state, hardware={1, 2})
        analysis = ScheduleAnalysis(dfg, sched)
        # Chain collapsed: dependence makespan shrinks below 4.
        assert analysis.dependence_makespan < 4

    def test_max_aec_of_critical_group_is_tight(self):
        dfg = chain_dfg(4)
        state = build_state(dfg)
        sched = schedule_all(dfg, state)
        analysis = ScheduleAnalysis(dfg, sched)
        # Middle of the only chain: window = makespan - head - tail.
        assert analysis.max_aec({1, 2}) == 2

    def test_max_aec_of_slack_group_is_wide(self):
        dfg = diamond_dfg()
        state = build_state(dfg)
        sched = schedule_all(dfg, state)
        analysis = ScheduleAnalysis(dfg, sched)
        off_path = analysis.max_aec({2, 4})
        on_path = analysis.max_aec({3, 5})
        assert off_path >= on_path


class TestMeritFunction:
    def test_critical_path_boost(self):
        dfg = diamond_dfg()
        state = build_state(dfg)
        sched = schedule_all(dfg, state)
        before = dict(state.merit)
        update_merits(dfg, state, sched, ISEConstraints())
        # Compare critical vs non-critical op with identical opcode mix:
        # node 0 (critical xor) should end with hardware merit at least
        # that of node 2 (non-critical or).
        hw0 = state.hardware_options(0)[0].label
        hw2 = state.hardware_options(2)[0].label
        del before
        assert state.merit[(0, hw0)] >= state.merit[(2, hw2)]

    def test_singleton_damping(self):
        dfg = chain_dfg(3)
        state = build_state(dfg)
        sched = schedule_all(dfg, state)     # nothing chose hardware

        def hw_sw_ratio(uid):
            hw_label = state.hardware_options(uid)[0].label
            return state.merit[(uid, hw_label)] / state.merit[(uid, "SW")]

        # All groups are singletons: repeated merit updates shrink the
        # hardware/software merit ratio iteration over iteration.
        update_merits(dfg, state, sched, ISEConstraints())
        first = hw_sw_ratio(1)
        update_merits(dfg, state, sched, ISEConstraints())
        second = hw_sw_ratio(1)
        assert second < first

    def test_io_violation_damping(self):
        from conftest import wide_dfg
        dfg = wide_dfg(8)
        state = build_state(dfg)
        hardware = set(dfg.nodes)
        sched = schedule_all(dfg, state, hardware=hardware)
        tight = ISEConstraints(n_in=2, n_out=1)
        update_merits(dfg, state, sched, tight)
        loose_state = build_state(dfg)
        sched2 = schedule_all(dfg, loose_state, hardware=hardware)
        update_merits(dfg, loose_state, sched2,
                      ISEConstraints(n_in=16, n_out=8))
        # Tighter constraints leave hardware merits lower on average.
        def avg_hw(s):
            vals = [s.merit[k] for k in s.merit if k[1] != "SW"]
            return sum(vals) / len(vals)
        assert avg_hw(state) <= avg_hw(loose_state)

    def test_merits_stay_positive_and_normalized(self):
        dfg = diamond_dfg()
        state = build_state(dfg)
        sched = schedule_all(dfg, state, hardware={0, 3})
        update_merits(dfg, state, sched, ISEConstraints())
        for uid in dfg.nodes:
            keys = state.keys_of(uid)
            total = sum(state.merit[k] for k in keys)
            assert total == pytest.approx(
                state.params.merit_scale * len(keys))
            assert all(state.merit[k] > 0 for k in keys)

    def test_ablation_toggles(self):
        dfg = diamond_dfg()
        baseline = build_state(dfg)
        sched = schedule_all(dfg, baseline)
        update_merits(dfg, baseline, sched, ISEConstraints())

        blind = build_state(dfg, use_critical_path_boost=False)
        sched_b = schedule_all(dfg, blind)
        update_merits(dfg, blind, sched_b, ISEConstraints())
        hw0 = baseline.hardware_options(0)[0].label
        # With the boost, critical node 0's hardware merit is larger
        # than without it.
        assert baseline.merit[(0, hw0)] >= blind.merit[(0, hw0)]
