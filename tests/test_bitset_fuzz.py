"""Property-based parity fuzz: packed bitset kernel vs set-based oracle.

The first slice of the workload-fleet fuzz harness (ROADMAP item 3c):
seeded random DFGs from :func:`repro.graph.fuzz.random_dfg` — forward
edges, memory-ordering edges, external inputs and deliberately
**multi-producer** (non-SSA) destination names — are probed with mixed
connected/scattered candidate sets, and every §4.2 question is asked
three ways:

* the set-based reference (``*_reference`` / ``input_values`` /
  ``output_values``) — the oracle,
* the scalar bitset fast path,
* the batched row APIs (whole candidate pool as one matrix op).

All three must agree **exactly** on every (block, candidate) pair —
convexity, IN/OUT counts, legality, ``check_candidate`` error
messages and connectivity (the last against networkx directly).  Any
failure reproduces from the printed seeds alone.
"""

import random

import networkx as nx
import pytest

from repro.config import ISEConstraints
from repro.errors import ConstraintError
from repro.graph import analysis
from repro.graph.bitset import bitset_view
from repro.graph.fuzz import random_dfg, random_members

#: (block seeds, candidates per block) — 24 blocks x 45 candidates =
#: 1080 (block, candidate) pairs, each checked on all three paths.
BLOCK_SEEDS = range(24)
CANDIDATES_PER_BLOCK = 45

#: Mix of port budgets so both IN- and OUT-limited kills occur.
CONSTRAINT_GRID = (ISEConstraints(),
                   ISEConstraints(n_in=2, n_out=1))


def _block(seed):
    rng = random.Random(seed)
    n_nodes = rng.choice([6, 16, 33, 65, 96])
    return random_dfg(seed, n_nodes=n_nodes,
                      n_values=max(3, n_nodes // 4))


@pytest.mark.parametrize("seed", BLOCK_SEEDS)
def test_bitset_matches_reference(seed):
    dfg = _block(seed)
    view = bitset_view(dfg)
    assert view is not None
    rng = random.Random(10_000 + seed)
    pools = [random_members(rng, dfg, max_size=12)
             for __ in range(CANDIDATES_PER_BLOCK)]

    rows = view.pack_rows(pools)
    conv_rows = view.convex_rows(rows)
    nin_rows, nout_rows = view.io_counts_rows(rows)
    legal_rows = {cons: view.legal_rows(rows, cons)
                  for cons in CONSTRAINT_GRID}

    for k, members in enumerate(pools):
        where = "seed={} candidate={} members={}".format(
            seed, k, sorted(members))
        # Convexity: scalar and batched vs oracle.
        expected = analysis.is_convex_reference(dfg, members)
        assert view.is_convex(members) == expected, where
        assert bool(conv_rows[k]) == expected, where
        # IN/OUT counts (the multi-producer stress lives here).
        counts = (len(analysis.input_values(dfg, members)),
                  len(analysis.output_values(dfg, members)))
        assert view.io_counts(members) == counts, where
        assert (int(nin_rows[k]), int(nout_rows[k])) == counts, where
        # Legality + error-message parity under both port budgets.
        for cons in CONSTRAINT_GRID:
            legal = analysis.is_legal_reference(dfg, members, cons)
            assert view.is_legal(members, cons) == legal, where
            assert bool(legal_rows[cons][k]) == legal, where
            try:
                analysis.check_candidate_reference(dfg, members, cons)
                message = None
            except ConstraintError as err:
                message = str(err)
            if message is None:
                view.check_candidate(members, cons)
            else:
                with pytest.raises(ConstraintError) as caught:
                    view.check_candidate(members, cons)
                assert str(caught.value) == message, where
        # Connectivity against networkx.
        connected = bool(members) and nx.is_weakly_connected(
            dfg.graph.subgraph(members))
        assert view.is_connected(members) == connected, where


def test_fuzz_blocks_are_multi_producer():
    """The generator must actually produce non-SSA names, or the parity
    sweep above is not exercising the hard counting case."""
    multi = 0
    for seed in BLOCK_SEEDS:
        dfg = _block(seed)
        producers = {}
        for uid in dfg.nodes:
            for name in dfg.op(uid).dests:
                producers.setdefault(name, set()).add(uid)
        if any(len(p) > 1 for p in producers.values()):
            multi += 1
    assert multi >= len(list(BLOCK_SEEDS)) // 2


def test_fuzz_dfgs_are_reproducible():
    a, b = _block(5), _block(5)
    assert a.nodes == b.nodes
    assert sorted(a.edge_pairs()) == sorted(b.edge_pairs())
    assert a.output_nodes == b.output_nodes
    assert [a.op(u).name for u in a.nodes] \
        == [b.op(u).name for u in b.nodes]
