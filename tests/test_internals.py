"""Third coverage batch: internals of exploration, partitioning fit,
export quoting, parser operand forms."""

import pytest

from repro.config import ExplorationParams, ISEConstraints
from repro.core import MultiIssueExplorer
from repro.core.exploration import _roulette
from repro.hwlib import DEFAULT_DATABASE, DEFAULT_TECHNOLOGY
from repro.sched import MachineConfig

from conftest import chain_dfg, diamond_dfg


class TestRoulette:
    class _FixedRandom:
        def __init__(self, value):
            self.value = value

        def random(self):
            return self.value

    def test_proportional_selection(self):
        entries = [("a", 1.0), ("b", 3.0)]
        assert _roulette(entries, self._FixedRandom(0.0)) == "a"
        assert _roulette(entries, self._FixedRandom(0.5)) == "b"
        assert _roulette(entries, self._FixedRandom(0.99)) == "b"

    def test_single_entry(self):
        assert _roulette([("only", 0.5)], self._FixedRandom(0.7)) == "only"


class TestExplorerInternals:
    def _explorer(self):
        return MultiIssueExplorer(
            MachineConfig(2, "4/2"),
            params=ExplorationParams(max_iterations=40, restarts=1,
                                     max_rounds=2),
            seed=2)

    def test_run_iteration_schedules_everything(self):
        import random
        from repro.core.state import ExplorationState
        from repro.hwlib import default_io_table
        dfg = diamond_dfg()
        explorer = self._explorer()
        tables = {uid: default_io_table(dfg.op(uid), DEFAULT_DATABASE)
                  for uid in dfg.nodes}
        state = ExplorationState(dfg, tables, explorer.params)
        schedule = explorer._run_iteration(dfg, state, random.Random(1))
        assert set(schedule.start) == set(dfg.nodes)
        assert schedule.makespan >= 1

    def test_candidate_sources_include_best_schedule(self):
        import random
        from repro.core.state import ExplorationState
        from repro.hwlib import default_io_table
        dfg = chain_dfg(4)
        explorer = self._explorer()
        tables = {uid: default_io_table(dfg.op(uid), DEFAULT_DATABASE)
                  for uid in dfg.nodes}
        state = ExplorationState(dfg, tables, explorer.params)
        schedule = explorer._run_iteration(dfg, state, random.Random(1))
        sources = explorer._candidate_sources(dfg, state, schedule)
        assert 1 <= len(sources) <= 2
        for chosen_hw, option_of in sources:
            assert chosen_hw <= set(dfg.nodes)
            for uid in chosen_hw:
                assert option_of[uid].is_hardware

    def test_evaluate_empty_candidates(self):
        dfg = chain_dfg(3)
        explorer = self._explorer()
        assert explorer._evaluate(dfg, []) == 3


class TestPartitionFit:
    def test_fit_shrinks_to_budget(self):
        from repro.ext.partitioning import TaskGraph, partition
        tg = TaskGraph("t")
        tg.add_task("a", 6, hw_bins=[(1.0, 500.0)])
        tg.add_task("b", 6, hw_bins=[(1.0, 500.0)], deps=["a"])
        tg.add_task("c", 6, hw_bins=[(1.0, 500.0)], deps=["b"])
        tg.add_task("d", 2, deps=["c"])
        unlimited = partition(tg, seed=1)
        assert unlimited.hardware_area == 1500.0
        limited = partition(tg, seed=1, max_area=1000.0)
        assert 0 < limited.hardware_area <= 1000.0
        assert limited.makespan_partitioned <= \
            limited.makespan_software

    def test_fit_gives_up_below_two_tasks(self):
        from repro.ext.partitioning import TaskGraph, partition
        tg = TaskGraph("t")
        tg.add_task("a", 6, hw_bins=[(1.0, 500.0)])
        tg.add_task("b", 6, hw_bins=[(1.0, 500.0)], deps=["a"])
        tg.add_task("c", 2, deps=["b"])
        limited = partition(tg, seed=1, max_area=400.0)
        assert limited.hardware_area == 0.0


class TestExportQuoting:
    def test_dot_escapes_quotes(self):
        from repro.graph.export import _quote
        assert _quote('say "hi"') == r'"say \"hi\""'

    def test_dot_title_override(self):
        from repro.graph.export import dfg_to_dot
        dfg = chain_dfg(2)
        dot = dfg_to_dot(dfg, title="custom title")
        assert "custom title" in dot


class TestParserOperandForms:
    def test_shift_register_and_immediate_forms(self):
        from repro.ir import parse_functions, Program, run_program
        text = """
func f(a, n):
entry:
    x = sll a, 4
    y = sllv a, n
    z = sra x, 2
    w = srlv y, n
    out = or z, w
    ret out
"""
        program = Program("p")
        program.add_function(parse_functions(text)[0])
        result, __, ___ = run_program(program, args=(0x10, 1))
        expected = ((0x10 << 4) >> 2) | ((0x10 << 1) >> 1)
        assert result == expected

    def test_nor_and_compare_ops(self):
        from repro.ir import parse_functions, Program, run_program
        text = """
func f(a, b):
entry:
    n = nor a, b
    c = sltu a, b
    d = slt a, b
    s = addu c, d
    out = xor n, s
    ret out
"""
        program = Program("p")
        program.add_function(parse_functions(text)[0])
        result, __, ___ = run_program(program, args=(1, 2))
        expected = (~(1 | 2) & 0xFFFFFFFF) ^ 2
        assert result == expected


class TestMergedISEProperties:
    def test_all_candidates_and_cycles(self):
        from repro.core.candidate import ISECandidate
        from repro.core.merging import MergedISE
        dfg = chain_dfg(3)
        option = DEFAULT_DATABASE.hardware_options("addu")[0]
        rep = ISECandidate(dfg, {0, 1}, {0: option, 1: option},
                           DEFAULT_TECHNOLOGY)
        entry = MergedISE(rep)
        assert entry.all_candidates() == [rep]
        assert entry.cycles == rep.cycles
        assert entry.area == rep.area
        assert "MergedISE" in repr(entry)
