"""Property-based tests for the flow stages: merging, selection,
sharing, replacement."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ISEConstraints
from repro.core.candidate import ISECandidate
from repro.core.merging import merge_candidates
from repro.core.replacement import plan_block_replacements
from repro.core.selection import select_ises, shared_area
from repro.graph import is_legal
from repro.hwlib import DEFAULT_DATABASE, DEFAULT_TECHNOLOGY

from test_properties import lower, straight_line_blocks

SLOW = settings(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def _random_candidates(dfg, picks, constraints):
    """Legal candidates built from hypothesis-picked seed nodes."""
    candidates = []
    used = set()
    for seed, saving in picks:
        if seed not in dfg.graph or seed in used:
            continue
        members = {seed}
        for succ in dfg.data_successors(seed):
            if dfg.op(succ).groupable and succ not in used:
                members.add(succ)
                break
        if len(members) < 2:
            continue
        if not is_legal(dfg, members, constraints):
            continue
        option_of = {
            uid: DEFAULT_DATABASE.hardware_options(dfg.op(uid).name)[0]
            for uid in members}
        candidate = ISECandidate(dfg, members, option_of,
                                 DEFAULT_TECHNOLOGY)
        candidate.weighted_saving = float(saving)
        candidates.append(candidate)
        used |= members
    return candidates


picks_strategy = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 50)),
    min_size=0, max_size=6)


class TestMergingProperties:
    @SLOW
    @given(straight_line_blocks(), picks_strategy)
    def test_merging_conserves_candidates(self, instrs, picks):
        dfg = lower(instrs)
        constraints = ISEConstraints()
        candidates = _random_candidates(dfg, picks, constraints)
        merged = merge_candidates(candidates)
        assert len(merged) <= len(candidates)
        total = sum(len(entry.all_candidates()) for entry in merged)
        assert total == len(candidates)
        # Weighted saving is conserved exactly.
        assert sum(e.weighted_saving for e in merged) == \
            sum(c.weighted_saving for c in candidates)

    @SLOW
    @given(straight_line_blocks(), picks_strategy)
    def test_sharing_never_exceeds_sum(self, instrs, picks):
        dfg = lower(instrs)
        candidates = _random_candidates(dfg, picks, ISEConstraints())
        merged = merge_candidates(candidates)
        shared = shared_area(merged, enable_sharing=True)
        unshared = shared_area(merged, enable_sharing=False)
        assert 0.0 <= shared <= unshared + 1e-9


class TestSelectionProperties:
    @SLOW
    @given(straight_line_blocks(), picks_strategy,
           st.integers(0, 4), st.floats(0, 50_000))
    def test_budgets_always_respected(self, instrs, picks, count, area):
        dfg = lower(instrs)
        candidates = _random_candidates(dfg, picks, ISEConstraints())
        merged = merge_candidates(candidates)
        constraints = ISEConstraints(max_ises=count, max_area=area)
        result = select_ises(merged, constraints)
        assert result.count <= count
        assert result.area <= area + 1e-9
        # Greedy picks positive-saving entries only, best first.
        savings = [e.weighted_saving for e in result.selected]
        assert all(s > 0 for s in savings)


class TestReplacementProperties:
    @SLOW
    @given(straight_line_blocks(), picks_strategy)
    def test_replacement_groups_disjoint_and_legal(self, instrs, picks):
        dfg = lower(instrs)
        constraints = ISEConstraints()
        candidates = _random_candidates(dfg, picks, constraints)
        merged = merge_candidates(candidates)
        groups = plan_block_replacements(dfg, merged, constraints)
        seen = set()
        for members, option_of in groups:
            assert not (members & seen)
            seen |= members
            assert is_legal(dfg, members, constraints)
            assert set(option_of) == set(members)
