"""Tests for the ACO state: trails, merits, cp/sp probabilities."""

import pytest

from repro.config import ExplorationParams, ISEConstraints
from repro.core.iteration import IterationSchedule
from repro.core.state import ExplorationState
from repro.core.trail import update_trails
from repro.hwlib import DEFAULT_DATABASE, DEFAULT_TECHNOLOGY, \
    default_io_table
from repro.sched import MachineConfig

from conftest import chain_dfg, diamond_dfg


def make_state(dfg, **overrides):
    params = ExplorationParams(**overrides)
    tables = {uid: default_io_table(dfg.op(uid), DEFAULT_DATABASE)
              for uid in dfg.nodes}
    return ExplorationState(dfg, tables, params)


def greedy_schedule(dfg, state, hardware=()):
    """Deterministic schedule: given nodes pick their first hw option."""
    machine = MachineConfig(2, "4/2")
    sched = IterationSchedule(dfg, machine, DEFAULT_TECHNOLOGY,
                              ISEConstraints())
    for uid in dfg.nodes:                      # program order = topological
        options = state.options[uid]
        if uid in hardware:
            option = next(o for o in options if o.is_hardware)
            sched.schedule_hardware(uid, option)
        else:
            option = next(o for o in options if o.is_software)
            sched.schedule_software(uid, option)
    return sched.verify()


class TestStateInit:
    def test_initial_values(self):
        dfg = chain_dfg(3)
        state = make_state(dfg)
        sw_key = (0, "SW")
        assert state.trail[sw_key] == 0.0
        assert state.merit[sw_key] == 100.0
        hw_keys = [k for k in state.merit if k[0] == 0 and k[1] != "SW"]
        assert all(state.merit[k] == 200.0 for k in hw_keys)

    def test_sp_term_tracks_children(self):
        dfg = diamond_dfg()
        state = make_state(dfg)
        assert state.sp_term[3] == max(state.sp_term.values())

    def test_option_lookup(self):
        dfg = chain_dfg(2)
        state = make_state(dfg)
        assert state.option(0, "SW").is_software
        assert all(o.is_hardware for o in state.hardware_options(0))


class TestProbabilities:
    def test_cp_weights_cover_ready_matrix(self):
        dfg = chain_dfg(3)
        state = make_state(dfg)
        entries = state.cp_weights([0, 1])
        uids = {uid for (uid, __), ___ in entries}
        assert uids == {0, 1}
        assert all(w > 0 for __, w in entries)

    def test_sp_sums_to_one(self):
        dfg = chain_dfg(2)
        state = make_state(dfg)
        sp = state.sp_of(0)
        assert sum(sp.values()) == pytest.approx(1.0)

    def test_taken_option_follows_trail(self):
        dfg = chain_dfg(2)
        state = make_state(dfg)
        label = state.options[0][1].label       # a hardware option
        state.trail[(0, label)] = 1e6
        option, prob = state.taken_option(0)
        assert option.label == label
        assert prob > 0.9

    def test_convergence_detection(self):
        dfg = chain_dfg(2)
        state = make_state(dfg, p_end=0.9)
        assert not state.converged()
        for uid in dfg.nodes:
            state.trail[(uid, "SW")] = 1e9
        assert state.converged()

    def test_normalize_merits_scale(self):
        dfg = chain_dfg(2)
        state = make_state(dfg)
        state.merit[(0, "SW")] = 1e9
        state.normalize_merits()
        keys = state.keys_of(0)
        total = sum(state.merit[k] for k in keys)
        assert total == pytest.approx(state.params.merit_scale * len(keys))

    def test_normalize_handles_zero_vector(self):
        dfg = chain_dfg(2)
        state = make_state(dfg)
        for key in state.keys_of(0):
            state.merit[key] = 0.0
        state.normalize_merits()
        assert all(state.merit[k] == pytest.approx(100.0)
                   for k in state.keys_of(0))


class TestTrailUpdate:
    def test_improvement_rewards_chosen(self):
        dfg = chain_dfg(3)
        state = make_state(dfg)
        schedule = greedy_schedule(dfg, state)
        tet = update_trails(state, schedule, {}, None)
        assert tet == schedule.makespan
        assert state.trail[(0, "SW")] == state.params.rho1
        hw_label = state.options[0][1].label
        assert state.trail[(0, hw_label)] == 0.0      # clipped at zero

    def test_regression_punishes_chosen(self):
        dfg = chain_dfg(3)
        state = make_state(dfg)
        schedule = greedy_schedule(dfg, state)
        # Pretend previous iteration was much faster.
        new_ref = update_trails(state, schedule, dict(schedule.order), 0)
        assert new_ref == 0                      # reference kept
        hw_label = state.options[0][1].label
        assert state.trail[(0, hw_label)] == state.params.rho4

    def test_reorder_penalty(self):
        dfg = chain_dfg(3)
        state = make_state(dfg)
        schedule = greedy_schedule(dfg, state)
        prev_order = {uid: order + 10 for uid, order
                      in schedule.order.items()}
        update_trails(state, schedule, prev_order, 0)  # regression + moved
        hw_label = state.options[0][1].label
        expected = state.params.rho4 - state.params.rho5
        assert state.trail[(0, hw_label)] == pytest.approx(expected)

    def test_equal_time_counts_as_improvement(self):
        dfg = chain_dfg(2)
        state = make_state(dfg)
        schedule = greedy_schedule(dfg, state)
        tet = update_trails(state, schedule, {}, schedule.makespan)
        assert tet == schedule.makespan
        assert state.trail[(0, "SW")] == state.params.rho1
