"""Parity and edge cases for the hot-path overhaul.

The array-backed state, incremental cluster geometry and the process
pool are pure performance work: at any ``jobs`` setting the engine must
return *bit-identical* results to a serial run — same candidates, same
per-iteration TET traces, same reports.  These tests pin that contract,
plus the edge cases of the roulette draw, merit normalisation, jobs
resolution and the on-disk exploration cache.
"""

import pytest

from repro.config import ExplorationParams
from repro.core import parallel
from repro.core.exploration import MultiIssueExplorer, _roulette
from repro.core.flow import ISEDesignFlow
from repro.core.parallel import parallel_map, resolve_jobs
from repro.core.state import ExplorationState
from repro.errors import ConfigError, ReproError
from repro.eval.persistence import ExplorationCache
from repro.eval.runner import EvalContext
from repro.hwlib import DEFAULT_DATABASE, default_io_table
from repro.sched import MachineConfig
from repro.workloads import get_workload

from conftest import chain_dfg, diamond_dfg


def _result_signature(result):
    """Everything observable about an exploration outcome."""
    return {
        "final": result.final_cycles,
        "base": result.base_cycles,
        "rounds": result.rounds,
        "iterations": result.iterations,
        "traces": result.traces,
        "candidates": [
            (sorted(c.members),
             sorted((uid, c.option_of[uid].label) for uid in c.members),
             c.cycles, repr(c.delay_ns), repr(c.area), c.cycle_saving)
            for c in result.candidates
        ],
    }


def _hot_dfgs(workload_name, max_blocks=2):
    """The hot explorable block DFGs of one workload at -O3."""
    program, args = get_workload(workload_name).build()
    flow = ISEDesignFlow(MachineConfig(2, "4/2"), seed=3,
                        max_blocks=max_blocks)
    from repro.ir.passes.pipeline import optimize
    blocks = flow.profile_blocks(optimize(program, "O3"), args=args)
    hot = flow._select_hot_blocks(blocks)
    return [b.dfg for b in hot]


class TestParallelParity:
    def test_explore_serial_vs_jobs2(self):
        dfgs = _hot_dfgs("crc32")
        params = ExplorationParams(max_iterations=40, restarts=2,
                                   max_rounds=3)
        explorer = MultiIssueExplorer(MachineConfig(2, "4/2"),
                                      params=params, seed=11)
        for dfg in dfgs:
            serial = explorer.explore(dfg, jobs=1)
            pooled = explorer.explore(dfg, jobs=2)
            assert _result_signature(serial) == _result_signature(pooled)

    def test_explore_many_matches_blockwise(self):
        dfgs = _hot_dfgs("bitcount")
        params = ExplorationParams(max_iterations=30, restarts=2,
                                   max_rounds=3)
        explorer = MultiIssueExplorer(MachineConfig(2, "4/2"),
                                      params=params, seed=5)
        serial = [explorer.explore(dfg, jobs=1) for dfg in dfgs]
        pooled = explorer.explore_many(dfgs, jobs=2)
        assert ([_result_signature(r) for r in serial]
                == [_result_signature(r) for r in pooled])

    def test_flow_report_identical_across_jobs(self):
        program, args = get_workload("crc32").build()
        params = ExplorationParams(max_iterations=30, restarts=2,
                                   max_rounds=3)
        reports = []
        for jobs in (1, 2):
            flow = ISEDesignFlow(MachineConfig(2, "4/2"), params=params,
                                 seed=9, max_blocks=2, jobs=jobs)
            explored = flow.explore_application(program, args=args,
                                                opt_level="O3")
            report = flow.evaluate(explored)
            reports.append((report.baseline_cycles, report.final_cycles,
                            report.num_ises, repr(report.area)))
        assert reports[0] == reports[1]


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(parallel.JOBS_ENV, raising=False)
        assert resolve_jobs() == 1

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setattr(parallel, "_available_cpus", lambda: 8)
        monkeypatch.setenv(parallel.JOBS_ENV, "3")
        assert resolve_jobs() == 3
        assert resolve_jobs(2) == 2            # explicit beats env

    def test_auto_uses_cpu_count(self):
        assert resolve_jobs("auto") >= 1
        assert resolve_jobs(0) == resolve_jobs("auto")

    def test_clamps_to_available_cpus(self, monkeypatch):
        monkeypatch.setattr(parallel, "_available_cpus", lambda: 2)
        assert resolve_jobs(16) == 2
        assert resolve_jobs(2) == 2
        assert resolve_jobs(1) == 1
        monkeypatch.setenv(parallel.JOBS_ENV, "64")
        assert resolve_jobs() == 2             # env requests clamp too

    def test_clamp_emits_effective_gauge(self, monkeypatch):
        from repro.obs.observer import Observer

        monkeypatch.setattr(parallel, "_available_cpus", lambda: 4)
        obs = Observer()
        assert resolve_jobs(32, obs=obs) == 4
        assert obs.metrics.snapshot()["gauges"]["jobs.effective"] == 4

    def test_rejects_garbage(self):
        with pytest.raises(ConfigError):
            resolve_jobs("many")
        with pytest.raises(ConfigError):
            resolve_jobs(-2)

    def test_workers_never_nest(self, monkeypatch):
        monkeypatch.setattr(parallel, "_in_worker", True)
        assert resolve_jobs(8) == 1

    def test_parallel_map_keeps_order(self):
        tasks = [(index,) for index in range(7)]
        assert parallel_map(_square, tasks, 3) == \
            [index * index for index in range(7)]


def _square(value):
    return value * value


class _FixedRng:
    def __init__(self, value):
        self.value = value

    def random(self):
        return self.value


class TestRouletteEdges:
    ENTRIES = [("a", 1.0), ("b", 2.0), ("c", 1.0)]

    def test_extremes_hit_first_and_last(self):
        assert _roulette(self.ENTRIES, _FixedRng(0.0)) == "a"
        assert _roulette(self.ENTRIES, _FixedRng(1.0)) == "c"

    def test_mass_proportionality(self):
        assert _roulette(self.ENTRIES, _FixedRng(0.5)) == "b"

    def test_single_entry(self):
        assert _roulette([("only", 0.25)], _FixedRng(0.7)) == "only"

    def test_all_zero_weights_draws_uniformly(self):
        # Degenerate wheel: the draw must spread over the entries, not
        # collapse onto one of them.
        entries = [("a", 0.0), ("b", 0.0)]
        assert _roulette(entries, _FixedRng(0.0)) == "a"
        assert _roulette(entries, _FixedRng(0.49)) == "a"
        assert _roulette(entries, _FixedRng(0.51)) == "b"
        assert _roulette(entries, _FixedRng(0.9)) == "b"
        # rng.random() beyond [0, 1) (only possible from a fake) still
        # lands on a valid entry.
        assert _roulette(entries, _FixedRng(1.0)) == "b"

    def test_all_zero_weights_consumes_one_draw(self):
        # The degenerate path must consume exactly one rng.random(),
        # like the proportional path, so later draws are unshifted.
        class _CountingRng:
            calls = 0

            def random(self):
                self.calls += 1
                return 0.25

        rng = _CountingRng()
        _roulette([("a", 0.0), ("b", 0.0)], rng)
        assert rng.calls == 1
        _roulette([("a", 1.0), ("b", 1.0)], rng)
        assert rng.calls == 2


class TestStateEdges:
    @staticmethod
    def _state(dfg, **overrides):
        params = ExplorationParams(**overrides)
        tables = {uid: default_io_table(dfg.op(uid), DEFAULT_DATABASE)
                  for uid in dfg.nodes}
        return ExplorationState(dfg, tables, params)

    def test_normalize_merits_all_zero_uses_floor(self):
        state = self._state(chain_dfg(2))
        for uid in (0, 1):
            for key in state.keys_of(uid):
                state.merit[key] = 0.0
        state.normalize_merits()
        for uid in (0, 1):
            keys = state.keys_of(uid)
            values = [state.merit[k] for k in keys]
            assert all(v == values[0] > 0.0 for v in values)
            total = sum(values)
            assert total == pytest.approx(
                state.params.merit_scale * len(keys))

    def test_option_map_lookup_matches_tables(self):
        dfg = diamond_dfg()
        state = self._state(dfg)
        for uid in dfg.nodes:
            for option in state.options[uid]:
                assert state.option(uid, option.label) is option
        from repro.errors import ExplorationError
        with pytest.raises(ExplorationError):
            state.option(0, "NO-SUCH-LABEL")


class TestEvalContextGuards:
    def test_empty_workloads_raise(self):
        with pytest.raises(ReproError):
            EvalContext(workload_names=[])

    def test_unknown_profile_raises(self):
        with pytest.raises(ReproError):
            EvalContext(profile="warp")


class TestExplorationCache:
    def test_round_trip(self, tmp_path):
        cache = ExplorationCache(directory=str(tmp_path), enabled=True)
        key = cache.key(workload="crc32", machine="2x[4/2]", opt="O3")
        assert cache.load(key) is None
        cache.store(key, {"answer": 42})
        assert cache.load(key) == {"answer": 42}

    def test_key_depends_on_every_field(self):
        cache = ExplorationCache(enabled=False)
        base = cache.key(workload="crc32", seed=7)
        assert cache.key(workload="crc32", seed=8) != base
        assert cache.key(workload="sha1", seed=7) != base
        assert cache.key(workload="crc32", seed=7) == base

    def test_disabled_cache_is_inert(self, tmp_path):
        cache = ExplorationCache(directory=str(tmp_path), enabled=False)
        key = cache.key(workload="x")
        cache.store(key, "payload")
        assert cache.load(key) is None
        assert list(tmp_path.iterdir()) == []

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ExplorationCache(directory=str(tmp_path), enabled=True)
        key = cache.key(workload="x")
        tmp_path.mkdir(exist_ok=True)
        with open(cache.path_for(key), "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.load(key) is None

    def test_env_opt_out(self, monkeypatch):
        from repro.eval import persistence
        monkeypatch.setenv(persistence.CACHE_ENV, "0")
        assert not ExplorationCache().enabled
        monkeypatch.setenv(persistence.CACHE_ENV, "1")
        assert ExplorationCache().enabled

    def test_eval_context_uses_disk_cache(self, tmp_path, monkeypatch):
        from repro.eval import persistence
        monkeypatch.setenv(persistence.CACHE_ENV, "1")
        monkeypatch.setenv(persistence.CACHE_DIR_ENV, str(tmp_path))
        machine = MachineConfig(2, "4/2")
        first = EvalContext(profile="quick", workload_names=["crc32"])
        __, explored = first.explored("crc32", machine, "O3", "MI")
        assert len(list(tmp_path.glob("*.pkl"))) == 1
        second = EvalContext(profile="quick", workload_names=["crc32"])
        __, reloaded = second.explored("crc32", machine, "O3", "MI")
        assert reloaded.baseline_cycles == explored.baseline_cycles
        assert ([sorted(c.members) for c in reloaded.candidates]
                == [sorted(c.members) for c in explored.candidates])
