"""Tests for the custom-instruction manual generator."""

import pytest

from repro.config import ISEConstraints
from repro.core.candidate import ISECandidate
from repro.core.manual import (
    ISEEntry,
    build_manual,
    expression_of,
    render_manual,
)
from repro.core.merging import merge_candidates
from repro.core.selection import select_ises
from repro.hwlib import DEFAULT_DATABASE, DEFAULT_TECHNOLOGY

from conftest import chain_dfg, dfg_from_block


def make_candidate(dfg, members, saving=1.0):
    option_of = {uid: DEFAULT_DATABASE.hardware_options(
        dfg.op(uid).name)[0] for uid in members}
    candidate = ISECandidate(dfg, members, option_of, DEFAULT_TECHNOLOGY)
    candidate.weighted_saving = saving
    return candidate


class TestExpressions:
    def test_chain_expression_nests(self):
        dfg = chain_dfg(3)            # t = ((a+b)+b)+b
        candidate = make_candidate(dfg, {0, 1, 2})
        expr = expression_of(candidate, 2)
        assert expr == "(((a + b) + b) + b)"

    def test_external_operands_stay_names(self):
        def body(b):
            t = b.xor("a", "b")
            u = b.addu(t, "c")
            return b.or_(u, "d")
        dfg = dfg_from_block(body)
        candidate = make_candidate(dfg, {1, 2})
        expr = expression_of(candidate, 2)
        # t0 comes from outside the candidate.
        assert expr == "((t0 + c) | d)"

    def test_immediate_forms(self):
        def body(b):
            t = b.andi("a", 0xFF)
            return b.sll(t, 3)
        dfg = dfg_from_block(body)
        candidate = make_candidate(dfg, {0, 1})
        expr = expression_of(candidate, 1)
        assert expr == "((a & 255) << 3)"

    def test_shift_and_compare_notation(self):
        def body(b):
            s = b.sra("a", 4)
            return b.sltu(s, "b")
        dfg = dfg_from_block(body)
        candidate = make_candidate(dfg, {0, 1})
        assert expression_of(candidate, 1) == "((a >>a 4) <u b)"


class TestEntries:
    def test_entry_fields(self):
        dfg = chain_dfg(3)
        entry = ISEEntry("ise0", make_candidate(dfg, {0, 1, 2}))
        assert entry.inputs == ["a", "b"]
        assert len(entry.outputs) == 1
        (value, expression), = entry.semantics.items()
        assert expression.count("+") == 3

    def test_render_contains_costs(self):
        dfg = chain_dfg(2)
        text = ISEEntry("mac0", make_candidate(dfg, {0, 1})).render()
        assert text.startswith("mac0 ")
        assert "latency" in text and "um2" in text
        assert "datapath" in text

    def test_build_manual_numbers_instructions(self):
        dfg = chain_dfg(6)
        merged = merge_candidates(
            [make_candidate(dfg, {0, 1}, saving=2.0)]) + merge_candidates(
            [make_candidate(dfg, {3, 4}, saving=1.0)])
        selection = select_ises(merged, ISEConstraints())
        entries = build_manual(selection)
        assert [e.mnemonic for e in entries] == ["ise0", "ise1"]

    def test_render_manual_empty(self):
        text = render_manual([])
        assert "no instructions" in text

    def test_render_manual_full(self):
        dfg = chain_dfg(4)
        merged = merge_candidates([make_candidate(dfg, {0, 1}, 2.0)])
        selection = select_ises(merged, ISEConstraints())
        text = render_manual(selection, title="Test ISA")
        assert text.startswith("Test ISA")
        assert "ise0" in text
