"""Tests for the public facade (:mod:`repro.api`) and its CLI surface.

The facade contract: ``repro.explore`` / ``repro.evaluate`` are the one
supported entry point — keyword-only, frozen results, observability via
``trace=``/``observer=`` — and they produce *exactly* the numbers the
engine classes produce when driven by hand.  The old positional
``ISEDesignFlow(machine, params, seed, jobs)`` form still works but
warns.
"""

import dataclasses
import json

import pytest

import repro
from repro import ExploreResult, SelectionResult, evaluate, explore
from repro.cli import main
from repro.config import ExplorationParams, ISEConstraints
from repro.core.flow import ISEDesignFlow
from repro.errors import ReproError
from repro.obs import MemorySink, Observer
from repro.sched import MachineConfig
from repro.workloads import get_workload

FAST = dict(profile=None, iterations=15, restarts=1, seed=3)


@pytest.fixture(scope="module")
def crc_result():
    return explore("crc32", **FAST)


class TestExplore:
    def test_returns_frozen_result(self, crc_result):
        assert isinstance(crc_result, ExploreResult)
        assert crc_result.workload == "crc32"
        assert crc_result.baseline_cycles > 0
        assert crc_result.num_candidates == len(crc_result.candidates)
        assert all(isinstance(c, str) for c in crc_result.candidates)
        with pytest.raises(dataclasses.FrozenInstanceError):
            crc_result.seed = 99

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            explore("crc32", 2)

    def test_unknown_profile_raises(self):
        with pytest.raises(ReproError):
            explore("crc32", profile="turbo")

    def test_unknown_workload_raises(self):
        with pytest.raises(ReproError):
            explore("no-such-workload")

    def test_matches_hand_driven_flow(self, crc_result):
        program, args = get_workload("crc32").build()
        flow = ISEDesignFlow(
            MachineConfig(2, "4/2"),
            params=ExplorationParams(max_iterations=15, restarts=1),
            seed=3)
        explored = flow.explore_application(program, args=args,
                                            opt_level="O3")
        assert crc_result.baseline_cycles == explored.baseline_cycles
        assert list(crc_result.candidates) \
            == [c.describe() for c in explored.candidates]

    def test_trace_written(self, tmp_path):
        path = tmp_path / "api.jsonl"
        result = explore("crc32", trace=str(path), **FAST)
        assert result.trace_path == str(path)
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        kinds = {r["kind"] for r in records}
        assert {"flow.profile", "iteration", "round", "block",
                "metrics"} <= kinds
        assert result.metrics["counters"]["explore.blocks"] >= 1

    def test_caller_owned_observer_not_closed(self):
        sink = MemorySink()
        obs = Observer(sinks=[sink])
        explore("crc32", observer=obs, **FAST)
        assert not sink.of_kind("metrics")  # close() not called
        assert "round" in sink.kinds()


class TestEvaluate:
    def test_reuses_exploration(self, crc_result):
        selection = evaluate(crc_result, max_area=80_000)
        assert isinstance(selection, SelectionResult)
        assert selection.workload == "crc32"
        assert selection.baseline_cycles == crc_result.baseline_cycles
        assert 0.0 <= selection.reduction < 1.0
        assert selection.num_ises == len(selection.ises)
        assert selection.area <= 80_000
        with pytest.raises(dataclasses.FrozenInstanceError):
            selection.area = 0.0

    def test_budget_monotone(self, crc_result):
        tight = evaluate(crc_result, max_area=10_000)
        loose = evaluate(crc_result, max_area=500_000)
        assert loose.reduction >= tight.reduction

    def test_from_workload_name(self, crc_result):
        selection = evaluate("crc32", **FAST)
        baseline = evaluate(crc_result)
        assert selection.final_cycles == baseline.final_cycles
        assert selection.ises == baseline.ises

    def test_max_ises_budget(self, crc_result):
        capped = evaluate(crc_result, max_ises=1)
        assert capped.num_ises <= 1

    def test_matches_hand_driven_report(self, crc_result):
        flow = crc_result.flow
        report = flow.evaluate(crc_result.explored,
                               ISEConstraints(max_area=80_000))
        selection = evaluate(crc_result, max_area=80_000)
        assert selection.final_cycles == report.final_cycles
        assert selection.reduction == report.reduction
        assert selection.area == report.area


class TestLegacyShim:
    def test_positional_flow_warns_but_works(self):
        machine = MachineConfig(2, "4/2")
        params = ExplorationParams(max_iterations=15, restarts=1)
        with pytest.warns(DeprecationWarning):
            flow = ISEDesignFlow(machine, params, 5, 2)
        assert flow.seed == 5
        assert flow.jobs == 2

    def test_keyword_flow_does_not_warn(self, recwarn):
        ISEDesignFlow(MachineConfig(2, "4/2"), seed=5, jobs=2)
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]


class TestPackageSurface:
    def test_facade_reexported(self):
        assert repro.explore is explore
        assert repro.evaluate is evaluate
        for name in ("ExploreResult", "SelectionResult", "Observer",
                     "MemorySink", "JsonlSink", "ProgressSink",
                     "MetricsRegistry", "NULL_OBSERVER"):
            assert name in repro.__all__
            assert hasattr(repro, name)


CLI_EFFORT = ["--iterations", "10", "--restarts", "1"]


class TestCli:
    def test_explore_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "cli.jsonl"
        code = main(["explore", "crc32", *CLI_EFFORT,
                     "--trace", str(trace), "--metrics"])
        out = capsys.readouterr().out
        assert code == 0
        assert "reduction:" in out
        assert "counters:" in out and "explore.rounds" in out
        assert trace.exists()

    def test_metrics_subcommand(self, tmp_path, capsys):
        trace = tmp_path / "cli.jsonl"
        assert main(["explore", "crc32", *CLI_EFFORT,
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["metrics", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "events by kind" in out
        assert "P_END trajectory" in out

    def test_metrics_subcommand_rejects_bad_file(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("nope\n")
        with pytest.raises(ReproError):
            main(["metrics", str(bad)])

    def test_explore_progress_goes_to_stderr(self, capsys):
        assert main(["explore", "crc32", *CLI_EFFORT,
                     "--progress"]) == 0
        captured = capsys.readouterr()
        assert "[obs]" in captured.err
        assert "[obs]" not in captured.out

    def test_selftest_trace_and_metrics(self, tmp_path, capsys,
                                        monkeypatch):
        import repro.workloads as workloads

        crc = get_workload("crc32")
        monkeypatch.setattr(workloads, "all_workloads", lambda: [crc])
        monkeypatch.setattr(workloads, "extra_workloads", lambda: [])
        trace = tmp_path / "selftest.jsonl"
        code = main(["selftest", "--trace", str(trace), "--metrics"])
        out = capsys.readouterr().out
        assert code == 0
        assert "selftest: all ok" in out
        assert "selftest.checks" in out
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        checks = [r for r in records if r["kind"] == "selftest"]
        assert [(r["workload"], r["level"], r["ok"]) for r in checks] \
            == [("crc32", "O0", True), ("crc32", "O3", True)]
