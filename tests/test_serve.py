"""Exploration service: schema, protocol resilience, server semantics.

Three layers, cheapest first:

* request-schema units — strict validation, canonical fingerprints;
* protocol fuzz — malformed / truncated / oversized / garbage frames
  must each answer a structured ERR without killing the server loop
  (the serve-side extension of test_dist.py's garbage-frame contract);
* server semantics — quotas, timeouts, cancellation, job surface,
  event streaming, and the bit-identity acceptance check against the
  one-shot :func:`repro.api.explore`.
"""

import random
import socket
import struct
import time

import pytest

from repro import api
from repro.dist import protocol
from repro.serve import schema
from repro.serve.client import ServiceClient, ServiceError
from repro.serve.server import ExploreServer
from repro.serve.schema import RequestError

#: Minimal-effort explore settings (sub-100ms per fresh fingerprint).
FAST = dict(profile="quick", iterations=8, restarts=1)


@pytest.fixture
def server():
    srv = ExploreServer(port=0)
    srv.start_in_thread()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    with ServiceClient(server.address, timeout=120.0) as c:
        yield c


# -- schema units ------------------------------------------------------------

def test_validate_applies_explore_defaults():
    req = schema.validate_request({"op": "explore", "workload": "crc32"})
    assert req["issue"] == 2 and req["ports"] == "4/2"
    assert req["profile"] == "quick" and req["seed"] == 0
    assert req["engine"] == "aco" and req["opt"] == "O3"
    assert req["jobs"] is None and req["batch"] is None


def test_validate_rejects_unknown_op():
    with pytest.raises(RequestError) as err:
        schema.validate_request({"op": "detonate"})
    assert err.value.code == "bad-op"


def test_validate_rejects_unknown_keys_and_bad_types():
    with pytest.raises(RequestError):
        schema.validate_request(
            {"op": "explore", "workload": "crc32", "bogus": 1})
    with pytest.raises(RequestError):
        schema.validate_request({"op": "explore", "workload": ""})
    with pytest.raises(RequestError):
        schema.validate_request(
            {"op": "explore", "workload": "crc32", "issue": "two"})
    with pytest.raises(RequestError):
        schema.validate_request(
            {"op": "explore", "workload": "crc32", "timeout": -1})
    with pytest.raises(RequestError):
        schema.validate_request([1, 2, 3])


def test_validate_cancel_needs_exactly_one_target():
    with pytest.raises(RequestError):
        schema.validate_request({"op": "cancel"})
    with pytest.raises(RequestError):
        schema.validate_request({"op": "cancel", "request": 1, "job": "J1"})
    assert schema.validate_request(
        {"op": "cancel", "job": "J1"})["job"] == "J1"


def test_validate_sweep_shapes():
    req = schema.validate_request({
        "op": "sweep", "workloads": ["crc32"],
        "machines": [["4/2", 2]], "budgets": [20000.0],
        "shard": [0, 2]})
    assert req["machines"] == [("4/2", 2)]
    assert req["shard"] == (0, 2)
    with pytest.raises(RequestError):
        schema.validate_request({"op": "sweep", "workloads": []})
    with pytest.raises(RequestError):
        schema.validate_request(
            {"op": "sweep", "workloads": ["crc32"], "machines": [[2, "4/2"]]})


def test_fingerprint_ignores_jobs_but_compat_key_does_not():
    a = schema.validate_request(
        {"op": "explore", "workload": "crc32", "jobs": None})
    b = schema.validate_request(
        {"op": "explore", "workload": "crc32", "jobs": 2})
    assert schema.explore_fingerprint(a) == schema.explore_fingerprint(b)
    assert schema.compat_key(a) != schema.compat_key(b)


def test_compat_key_ignores_workload_and_opt():
    a = schema.validate_request({"op": "explore", "workload": "crc32"})
    b = schema.validate_request(
        {"op": "explore", "workload": "bitcount", "opt": "O0"})
    assert schema.explore_fingerprint(a) != schema.explore_fingerprint(b)
    assert schema.compat_key(a) == schema.compat_key(b)


def test_request_scope_is_the_machine_scope():
    a = schema.validate_request({"op": "explore", "workload": "crc32"})
    b = schema.validate_request(
        {"op": "explore", "workload": "crc32", "issue": 3, "ports": "8/4"})
    assert schema.request_scope(a) != schema.request_scope(b)
    assert schema.request_scope(a).startswith("2is|4/2|")
    sweep = schema.validate_request({"op": "sweep", "workloads": ["crc32"]})
    assert schema.request_scope(sweep) == "sweep"


def test_payload_digest_is_order_insensitive_and_content_sensitive():
    assert schema.payload_digest({"a": 1, "b": 2}) \
        == schema.payload_digest({"b": 2, "a": 1})
    assert schema.payload_digest({"a": 1}) != schema.payload_digest({"a": 2})


# -- protocol fuzz: the server loop must survive every garbage frame ---------

def _raw_connection(server):
    return socket.create_connection(("127.0.0.1", server.port),
                                    timeout=30.0)


def _recv_exact(sock, n):
    data = b""
    while len(data) < n:
        chunk = sock.recv(n - len(data))
        if not chunk:
            raise ConnectionError("server closed the connection")
        data += chunk
    return data


def _read_response(sock):
    length = protocol.frame_length(_recv_exact(sock, 4))
    return protocol.decode_serve_response(_recv_exact(sock, length))


def _assert_still_serving(sock):
    """A valid status request on ``sock`` still gets an OK answer."""
    sock.sendall(protocol.pack_frame(
        protocol.encode_serve_request(99, {"op": "status"})))
    while True:
        kind, request_id, body = _read_response(sock)
        if request_id == 99:
            assert kind == "ok" and "counters" in body
            return body


@pytest.mark.parametrize("payload", [
    b"Z-completely-unknown-op",
    b"",
    protocol.OP_SERVE + b"\x00" * 4,                      # truncated id
    protocol.OP_SERVE + b"\x00" * 8 + struct.pack("!I", 100) + b"short",
    protocol.OP_SERVE + b"\x00" * 8
    + struct.pack("!I", 8) + b"not json",
    protocol.OP_SERVE + b"\x00" * 8
    + struct.pack("!I", 6) + b"[1, 2]",                   # not an object
], ids=["garbage-op", "empty", "truncated-id", "truncated-body",
        "bad-json", "non-object"])
def test_malformed_frames_answer_err_and_loop_survives(server, payload):
    with _raw_connection(server) as sock:
        sock.sendall(protocol.pack_frame(payload))
        kind, request_id, body = _read_response(sock)
        assert kind == "err" and request_id == 0
        assert body["code"] == "protocol"
        _assert_still_serving(sock)
    assert server.counters.get("serve.protocol_errors", 0) >= 1


def test_oversized_declared_frame_answers_err_then_disconnects(server):
    with _raw_connection(server) as sock:
        sock.sendall(struct.pack("!I", protocol.MAX_FRAME + 1))
        kind, request_id, body = _read_response(sock)
        assert kind == "err" and body["code"] == "protocol"
        # No resync point exists past a corrupt prefix: the connection
        # closes, but the server itself keeps accepting clients.
        sock.settimeout(10.0)
        assert sock.recv(1) == b""
    with _raw_connection(server) as sock:
        _assert_still_serving(sock)


def test_oversized_body_answers_err_and_loop_survives(server):
    big = protocol.OP_SERVE + b"\x00" * 8 \
        + struct.pack("!I", schema.MAX_BODY + 16) \
        + b"{" * (schema.MAX_BODY + 16)
    with _raw_connection(server) as sock:
        sock.sendall(protocol.pack_frame(big))
        kind, __, body = _read_response(sock)
        assert kind == "err" and body["code"] == "protocol"
        _assert_still_serving(sock)


def test_random_garbage_never_kills_the_server(server):
    rng = random.Random(1234)
    for trial in range(20):
        with _raw_connection(server) as sock:
            payload = bytes(rng.randrange(256)
                            for __ in range(rng.randrange(1, 64)))
            try:
                sock.sendall(protocol.pack_frame(payload))
                kind, __, body = _read_response(sock)
                assert kind == "err"
            except ConnectionError:
                pass               # a drop is acceptable; a hang is not
    with _raw_connection(server) as sock:
        _assert_still_serving(sock)


def test_valid_op_with_invalid_body_is_structured_not_protocol(client):
    with pytest.raises(ServiceError) as err:
        client.request({"op": "explore"})      # workload missing
    assert err.value.code == "bad-request"
    with pytest.raises(ServiceError) as err:
        client.request({"op": "nonsense"})
    assert err.value.code == "bad-op"
    # The session is still perfectly usable afterwards.
    assert "counters" in client.status()


# -- server semantics --------------------------------------------------------

def test_served_explore_is_bit_identical_to_one_shot(server, client):
    served = client.explore("crc32", seed=11, **FAST)
    reference = schema.explore_payload(
        api.explore("crc32", seed=11, **FAST))
    assert schema.explore_digest(served) \
        == schema.explore_digest(reference)
    assert served["baseline_cycles"] == reference["baseline_cycles"]
    assert served["candidates"] == reference["candidates"]


def test_served_evaluate_matches_one_shot(server, client):
    served = client.evaluate("crc32", seed=11, max_area=80_000.0, **FAST)
    reference = api.evaluate("crc32", seed=11, max_area=80_000.0, **FAST)
    assert served["final_cycles"] == reference.final_cycles
    assert served["reduction"] == reference.reduction
    assert served["ises"] == list(reference.ises)
    assert schema.selection_digest(served) == schema.selection_digest(
        schema.selection_payload(reference))


def test_served_sweep_matches_one_shot_digest(server, client):
    served = client.sweep(["crc32"], machines=[["4/2", 2]],
                          budgets=[80_000.0], **FAST)
    reference = api.sweep(["crc32"], machines=[("4/2", 2)],
                          budgets=(80_000.0,), **FAST)
    assert served["digest"] == reference.digest
    assert served["rows"] == [row.to_payload() for row in reference.rows]


def test_memo_serves_repeat_fingerprints(server, client):
    first = client.explore("crc32", seed=5, **FAST)
    again = client.explore("crc32", seed=5, **FAST)
    assert first == again
    assert server.counters.get("serve.memo_hits", 0) >= 1


def test_request_multiplexing_out_of_order_waits(server, client):
    rid_a = client.send(dict(FAST, op="explore", workload="crc32", seed=21))
    rid_b = client.send({"op": "status"})
    status = client.wait(rid_b)       # answered while A still explores
    assert "counters" in status
    result = client.wait(rid_a)
    assert result["workload"] == "crc32"


def test_quota_rejects_excess_inflight_requests():
    srv = ExploreServer(port=0, max_inflight=1)
    srv.start_in_thread()
    try:
        with ServiceClient(srv.address, timeout=120.0) as c:
            rids = [c.send(dict(FAST, op="explore", workload="crc32",
                                seed=100 + i)) for i in range(4)]
            codes = []
            for rid in rids:
                try:
                    c.wait(rid)
                    codes.append("ok")
                except ServiceError as error:
                    codes.append(error.code)
            assert codes[0] == "ok"
            assert "quota" in codes
            assert srv.counters.get("serve.quota_rejections", 0) >= 1
            # The client is not poisoned: a fresh request succeeds.
            assert c.explore("crc32", seed=100, **FAST)["workload"] \
                == "crc32"
    finally:
        srv.stop()


def test_request_timeout_answers_structured_timeout(server, client):
    with pytest.raises(ServiceError) as err:
        client.explore("crc32", seed=31, timeout=0.0001, **FAST)
    assert err.value.code == "timeout"
    assert server.counters.get("serve.timeouts", 0) == 1
    # The lane finishes (and memoises) regardless; the next identical
    # request answers from the memo.
    assert client.explore("crc32", seed=31, **FAST)["workload"] == "crc32"


def test_cancel_inflight_request(server, client):
    rid = client.send(dict(op="explore", workload="crc32", seed=41,
                           profile="quick", iterations=400, restarts=4))
    ack = client.request({"op": "cancel", "request": rid})
    if ack.get("cancelled"):
        with pytest.raises(ServiceError) as err:
            client.wait(rid)
        assert err.value.code == "cancelled"
        assert server.counters.get("serve.cancelled", 0) >= 1
    else:                          # lost the race: request had finished
        client.wait(rid)


def test_submit_poll_fetch_job_surface(server, client):
    job = client.submit("crc32", seed=51, **FAST)
    state = client.poll(job)
    assert state in ("pending", "done")
    deadline = time.time() + 60.0
    while client.poll(job) != "done" and time.time() < deadline:
        time.sleep(0.02)
    assert client.poll(job) == "done"
    fetched = client.fetch(job)
    reference = schema.explore_payload(
        api.explore("crc32", seed=51, **FAST))
    assert schema.explore_digest(fetched) \
        == schema.explore_digest(reference)
    with pytest.raises(ServiceError) as err:
        client.poll("J999999")
    assert err.value.code == "unknown-job"


def test_cancel_pending_job(server, client):
    # A heavier job occupies the lane so the second stays pending long
    # enough to cancel; if the race is lost the cancel reports so.
    client.submit("crc32", seed=61, profile="quick", iterations=200,
                  restarts=3)
    victim = client.submit("bitcount", seed=62, **FAST)
    ack = client.cancel(job=victim)
    if ack["cancelled"]:
        assert client.poll(victim) == "cancelled"
        with pytest.raises(ServiceError) as err:
            client.fetch(victim)
        assert err.value.code == "cancelled"
    else:
        assert ack["state"] in ("done", "error")


def test_subscribe_streams_progress_events(server, client):
    client.subscribe()
    rid = client.send(dict(FAST, op="explore", workload="crc32", seed=71))
    client.wait(rid)
    kinds = {record.get("kind") for __, record in client.events}
    assert client.events, "no EVENT frames streamed"
    assert any(request_id == rid for request_id, __ in client.events)
    assert "round" in kinds or "block" in kinds
    assert server.counters.get("serve.events", 0) >= len(client.events)
    # Unsubscribe turns the stream back off for later requests.
    client.subscribe(events=False)
    before = len(client.events)
    client.explore("crc32", seed=72, **FAST)
    assert len(client.events) == before


def test_status_reports_counters_scopes_and_jobs(server, client):
    client.explore("crc32", seed=81, **FAST)
    job = client.submit("crc32", seed=81, **FAST)
    status = client.status()
    assert status["counters"]["serve.requests"] >= 2
    assert any(scope.startswith("2is|") for scope in status["scopes"])
    assert job in status["jobs"]
    assert status["sessions"] == 1
    assert status["max_inflight"] == server.max_inflight


def test_server_stop_is_idempotent(server):
    server.stop()
    server.stop()                  # second stop must be a clean no-op


def test_client_surfaces_connection_loss_as_service_error(server):
    client = ServiceClient(server.address, timeout=30.0)
    rid = client.send({"op": "status"})
    client.wait(rid)
    server.stop()
    with pytest.raises(ServiceError) as err:
        client.request({"op": "status"})
    assert err.value.code == "connection"
    client.close()


def test_cli_serve_subcommand_is_wired():
    from repro.cli import build_parser

    args = build_parser().parse_args(["serve", "--port", "0",
                                      "--max-inflight", "3"])
    assert args.func.__name__ == "_cmd_serve"
    assert args.max_inflight == 3


def test_api_serve_helper_round_trip():
    server = api.serve(port=0, max_inflight=4)
    try:
        with ServiceClient(server.address, timeout=60.0) as c:
            assert c.status()["max_inflight"] == 4
    finally:
        server.stop()
