"""Documentation quality gate.

Deliverable (e) requires doc comments on every public item; this test
walks the whole package and fails on any public module, class, function
or method without a docstring, so documentation debt cannot creep in.
"""

import importlib
import inspect
import pkgutil

import repro

#: Names that are legitimately docstring-free (dataclass auto-methods
#: and the like are filtered structurally, not listed here).
_EXEMPT_MODULES = {"repro.__main__"}


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in _EXEMPT_MODULES:
            continue
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.ismodule(obj):
            continue
        defined_here = getattr(obj, "__module__", None) == module.__name__
        if not defined_here:
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def test_every_module_documented():
    missing = [module.__name__ for module in _walk_modules()
               if not (module.__doc__ or "").strip()]
    assert not missing, "undocumented modules: {}".format(missing)


def test_every_public_class_and_function_documented():
    missing = []
    for module in _walk_modules():
        for name, obj in _public_members(module):
            if not (obj.__doc__ or "").strip():
                missing.append("{}.{}".format(module.__name__, name))
    assert not missing, "undocumented: {}".format(missing)


def test_public_methods_documented():
    missing = []
    for module in _walk_modules():
        for cls_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, member in vars(cls).items():
                if name.startswith("_"):
                    continue
                func = member
                if isinstance(member, (staticmethod, classmethod)):
                    func = member.__func__
                elif isinstance(member, property):
                    func = member.fget
                if not inspect.isfunction(func):
                    continue
                if not (func.__doc__ or "").strip():
                    missing.append("{}.{}.{}".format(
                        module.__name__, cls_name, name))
    assert not missing, \
        "undocumented methods: {}".format(sorted(missing))
