"""Tests for the comparator algorithms: SI, greedy, exact oracle."""

import pytest

from repro.baselines import (
    ExactExplorer,
    GreedyExplorer,
    SingleIssueExplorer,
)
from repro.config import ExplorationParams, ISEConstraints
from repro.core import MultiIssueExplorer
from repro.errors import ExplorationError
from repro.graph import check_candidate
from repro.sched import MachineConfig

from conftest import chain_dfg, diamond_dfg, memory_dfg


TINY = dict(max_iterations=60, restarts=1, max_rounds=4)


class TestSingleIssue:
    def test_believes_single_issue(self):
        explorer = SingleIssueExplorer(MachineConfig(4, "10/5"))
        assert explorer.machine.issue_width == 1
        assert explorer.machine.register_file.spec == "10/5"

    def test_locality_disabled(self):
        explorer = SingleIssueExplorer(
            MachineConfig(2, "4/2"), params=ExplorationParams(**TINY))
        params = explorer._inner.params
        assert not params.use_critical_path_boost
        assert not params.use_slack_window

    def test_finds_legal_candidates(self):
        dfg = diamond_dfg()
        explorer = SingleIssueExplorer(
            MachineConfig(2, "4/2"), params=ExplorationParams(**TINY),
            seed=2)
        result = explorer.explore(dfg)
        for candidate in result.candidates:
            assert candidate.source == "SI"
            check_candidate(dfg, candidate.members, explorer.constraints)

    def test_base_cycles_are_sequential(self):
        dfg = diamond_dfg()
        explorer = SingleIssueExplorer(
            MachineConfig(2, "4/2"), params=ExplorationParams(**TINY))
        result = explorer.explore(dfg)
        # On a 1-issue machine the baseline is one op per cycle.
        assert result.base_cycles == len(dfg)


class TestGreedy:
    def test_compresses_chain(self):
        dfg = chain_dfg(6)
        explorer = GreedyExplorer(MachineConfig(2, "4/2"))
        result = explorer.explore(dfg)
        assert result.final_cycles < result.base_cycles
        assert all(c.source == "GREEDY" for c in result.candidates)

    def test_deterministic(self):
        dfg = diamond_dfg()
        a = GreedyExplorer(MachineConfig(2, "4/2")).explore(dfg)
        b = GreedyExplorer(MachineConfig(2, "4/2")).explore(dfg)
        assert [c.members for c in a.candidates] == \
            [c.members for c in b.candidates]

    def test_candidates_legal(self):
        dfg = diamond_dfg()
        explorer = GreedyExplorer(MachineConfig(2, "4/2"))
        result = explorer.explore(dfg)
        for candidate in result.candidates:
            check_candidate(dfg, candidate.members, explorer.constraints)

    def test_respects_memory_rule(self):
        dfg = memory_dfg()
        result = GreedyExplorer(MachineConfig(2, "4/2")).explore(dfg)
        for candidate in result.candidates:
            assert all(not dfg.op(uid).is_memory
                       for uid in candidate.members)

    def test_max_size_cap(self):
        dfg = chain_dfg(8)
        explorer = GreedyExplorer(MachineConfig(2, "4/2"), max_size=3)
        result = explorer.explore(dfg)
        assert all(c.size <= 3 for c in result.candidates)


class TestExact:
    def test_size_guard(self):
        dfg = chain_dfg(8)
        explorer = ExactExplorer(MachineConfig(2, "4/2"), max_nodes=4)
        with pytest.raises(ExplorationError):
            explorer.explore(dfg)

    def test_optimal_on_chain(self):
        dfg = chain_dfg(5)
        exact = ExactExplorer(MachineConfig(2, "4/2")).explore(dfg)
        assert exact.final_cycles < exact.base_cycles
        for candidate in exact.candidates:
            assert candidate.source == "EXACT"

    def test_dominates_greedy(self):
        for dfg in (chain_dfg(5), diamond_dfg()):
            machine = MachineConfig(2, "4/2")
            exact = ExactExplorer(machine).explore(dfg)
            greedy = GreedyExplorer(machine).explore(dfg)
            assert exact.final_cycles <= greedy.final_cycles

    def test_aco_close_to_exact(self):
        dfg = diamond_dfg()
        machine = MachineConfig(2, "4/2")
        exact = ExactExplorer(machine).explore(dfg)
        aco = MultiIssueExplorer(
            machine, params=ExplorationParams(
                max_iterations=150, restarts=3, max_rounds=4),
            seed=4).explore(dfg)
        # The heuristic may trail the oracle by at most one cycle on
        # this 9-node example.
        assert aco.final_cycles <= exact.final_cycles + 1
