"""Tests for IR instructions, basic blocks, functions and the builder."""

import pytest

from repro.errors import IRError, VerificationError
from repro.ir import FunctionBuilder, IRFunction, IRInstr


class TestIRInstr:
    def test_classification(self):
        assert IRInstr("beq", sources=("a", "b"),
                       targets=("x", "y")).is_conditional
        assert IRInstr("j", targets=("x",)).is_branch
        assert IRInstr("ret").is_return
        assert IRInstr("lw", dest="v", sources=("p",), imm=0).is_load
        assert IRInstr("sw", sources=("v", "p"), imm=0).is_store
        assert IRInstr("li", dest="x", imm=1).is_constant
        assert IRInstr("call", dest="r", callee="f", args=("a",)).is_call

    def test_def_use(self):
        instr = IRInstr("addu", dest="z", sources=("x", "y"))
        assert instr.defs() == ("z",)
        assert instr.uses() == ("x", "y")
        call = IRInstr("call", dest="r", callee="f", args=("p", "q"))
        assert call.uses() == ("p", "q")

    def test_rename(self):
        instr = IRInstr("addu", dest="z", sources=("x", "y"))
        renamed = instr.rename({"x": "x1", "z": "z1"})
        assert renamed.dest == "z1"
        assert renamed.sources == ("x1", "y")

    def test_unknown_mnemonic(self):
        with pytest.raises(IRError):
            IRInstr("blorp")

    def test_pretty_forms(self):
        assert "addu" in IRInstr("addu", dest="z", sources=("x", "y")).pretty()
        assert "[p+4]" in IRInstr("lw", dest="v", sources=("p",),
                                  imm=4).pretty()
        assert "call" in IRInstr("call", dest="r", callee="f").pretty()


class TestBasicBlockRules:
    def test_terminator_goes_last(self):
        func = IRFunction("f")
        block = func.add_block("entry")
        with pytest.raises(IRError):
            block.append(IRInstr("ret"))
        block.terminate(IRInstr("ret"))
        with pytest.raises(IRError):
            block.append(IRInstr("li", dest="x", imm=0))

    def test_double_terminate(self):
        func = IRFunction("f")
        block = func.add_block("entry")
        block.terminate(IRInstr("ret"))
        with pytest.raises(IRError):
            block.terminate(IRInstr("ret"))

    def test_successors(self):
        func = IRFunction("f")
        a = func.add_block("a")
        func.add_block("b")
        func.add_block("c")
        a.terminate(IRInstr("bne", sources=("x", "y"), targets=("b", "c")))
        assert a.successors() == ("b", "c")


class TestIRFunction:
    def _two_block(self):
        func = IRFunction("f", params=("x",))
        entry = func.add_block("entry")
        entry.append(IRInstr("li", dest="y", imm=1))
        entry.terminate(IRInstr("j", targets=("exit",)))
        exit_ = func.add_block("exit")
        exit_.terminate(IRInstr("ret", sources=("y",)))
        return func

    def test_verify_ok(self):
        self._two_block().verify()

    def test_verify_unterminated(self):
        func = IRFunction("f")
        func.add_block("entry")
        with pytest.raises(VerificationError):
            func.verify()

    def test_verify_unknown_target(self):
        func = IRFunction("f")
        entry = func.add_block("entry")
        entry.terminate(IRInstr("j", targets=("nowhere",)))
        with pytest.raises(VerificationError):
            func.verify()

    def test_duplicate_label(self):
        func = IRFunction("f")
        func.add_block("a")
        with pytest.raises(IRError):
            func.add_block("a")

    def test_cfg_edges_and_preds(self):
        func = self._two_block()
        assert list(func.cfg_edges()) == [("entry", "exit")]
        assert func.predecessors()["exit"] == ["entry"]

    def test_clone_is_deep(self):
        func = self._two_block()
        copy = func.clone()
        copy.block("entry").body.clear()
        assert len(func.block("entry").body) == 1

    def test_virtual_registers(self):
        func = self._two_block()
        assert func.virtual_registers() == {"x", "y"}

    def test_remove_entry_rejected(self):
        func = self._two_block()
        with pytest.raises(IRError):
            func.remove_block("entry")


class TestFunctionBuilder:
    def test_expression_composition(self):
        b = FunctionBuilder("f", params=("a", "b"))
        b.label("entry")
        t = b.addu("a", "b")
        u = b.xor(t, "a")
        b.ret(u)
        func = b.finish()
        assert len(func.block("entry").body) == 2

    def test_fresh_names_unique(self):
        b = FunctionBuilder("f")
        names = {b.fresh() for __ in range(100)}
        assert len(names) == 100

    def test_emit_without_block(self):
        b = FunctionBuilder("f")
        with pytest.raises(IRError):
            b.li(0)

    def test_branches_close_block(self):
        b = FunctionBuilder("f", params=("a",))
        b.label("entry")
        b.jump("next")
        with pytest.raises(IRError):
            b.li(0)
        b.label("next")
        b.ret("a")
        b.finish()

    def test_not_is_nor_idiom(self):
        b = FunctionBuilder("f", params=("a",))
        b.label("entry")
        t = b.not_("a")
        b.ret(t)
        func = b.finish()
        instr = func.block("entry").body[0]
        assert instr.op == "nor"
        assert instr.sources == ("a", "a")

    def test_memory_helpers(self):
        b = FunctionBuilder("f", params=("p",))
        b.label("entry")
        v = b.lw("p", offset=8)
        b.sw(v, "p", offset=12)
        b.ret(v)
        func = b.finish()
        load, store = func.block("entry").body
        assert load.imm == 8 and store.imm == 12

    def test_annotations(self):
        b = FunctionBuilder("f", params=("a",))
        b.label("entry")
        b.annotate("k", 42)
        b.ret("a")
        assert b.finish().block("entry").annotations == {"k": 42}
