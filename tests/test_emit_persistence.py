"""Tests for VLIW bundle emission and result persistence."""

import pytest

from repro.core.candidate import ISECandidate
from repro.errors import ReproError
from repro.eval.persistence import (
    candidate_record,
    figure_record,
    load_figure,
    load_json,
    report_record,
    save_json,
)
from repro.hwlib import DEFAULT_DATABASE, DEFAULT_TECHNOLOGY, HardwareOption
from repro.sched import MachineConfig, contract_dfg, emit_block_listing, \
    emit_bundles, list_schedule

from conftest import chain_dfg, diamond_dfg


def schedule_of(dfg, groups=(), machine=None):
    machine = machine or MachineConfig(2, "4/2")
    graph, units = contract_dfg(dfg, list(groups), DEFAULT_TECHNOLOGY)
    return list_schedule(graph, units, machine)


class TestEmit:
    def test_one_bundle_per_cycle(self):
        dfg = diamond_dfg()
        schedule = schedule_of(dfg)
        text = emit_bundles(schedule, dfg=dfg)
        assert text.count("\n") + 1 == schedule.makespan
        assert text.count("{") == schedule.makespan

    def test_parallel_ops_joined(self):
        dfg = diamond_dfg()
        schedule = schedule_of(dfg)
        text = emit_bundles(schedule, dfg=dfg)
        assert "||" in text

    def test_ise_rendered_with_values(self):
        dfg = chain_dfg(4)
        option = DEFAULT_DATABASE.hardware_options("addu")[1]
        groups = [({1, 2}, {1: option, 2: option})]
        schedule = schedule_of(dfg, groups)
        text = emit_bundles(schedule, dfg=dfg)
        assert "ise0" in text and "<-" in text

    def test_multicycle_latency_marked(self):
        dfg = chain_dfg(4)
        slow = HardwareOption("HW", delay_ns=25.0, area=10.0)
        groups = [({1, 2}, {1: slow, 2: slow})]
        schedule = schedule_of(dfg, groups)
        text = emit_bundles(schedule, dfg=dfg)
        assert "[5cyc]" in text      # 2 x 25 ns chained = 5 cycles

    def test_name_overrides(self):
        dfg = chain_dfg(3)
        option = DEFAULT_DATABASE.hardware_options("addu")[0]
        groups = [({0, 1}, {0: option, 1: option})]
        schedule = schedule_of(dfg, groups)
        text = emit_bundles(schedule, names={"ise0": "crc_step"})
        assert "crc_step" in text

    def test_listing_header(self):
        dfg = diamond_dfg()
        schedule = schedule_of(dfg)
        text = emit_block_listing(dfg, schedule)
        assert text.startswith(";")
        assert "units/cycle" in text


class TestPersistence:
    def _candidate(self):
        dfg = chain_dfg(3)
        option = DEFAULT_DATABASE.hardware_options("addu")[0]
        return ISECandidate(dfg, {0, 1}, {0: option, 1: option},
                            DEFAULT_TECHNOLOGY)

    def test_candidate_record_fields(self):
        record = candidate_record(self._candidate())
        assert record["members"] == [0, 1]
        assert record["opcodes"]["0"] == "addu"
        assert record["cycles"] >= 1
        assert record["num_inputs"] == 2

    def test_figure_roundtrip(self, tmp_path):
        rows = {("MI", "4/2", 2, "O3"): {20000: 12.5, 40000: 13.5}}
        path = tmp_path / "fig.json"
        save_json(path, figure_record(rows))
        loaded = load_figure(load_json(path))
        assert loaded == rows

    def test_malformed_level_rejected(self):
        with pytest.raises(ReproError):
            load_figure([{"algorithm": "MI", "ports": "4/2", "issue": 2,
                          "opt": "O3", "cells": {"twenty": 1.0}}])

    def test_report_record(self):
        from repro.config import ExplorationParams, ISEConstraints
        from repro.core.flow import ISEDesignFlow
        from repro.workloads import get_workload
        program, args = get_workload("dijkstra").build()
        flow = ISEDesignFlow(
            MachineConfig(2, "4/2"),
            params=ExplorationParams(max_iterations=30, restarts=1,
                                     max_rounds=2),
            seed=1, max_blocks=2)
        report = flow.run(program, args=args,
                          constraints=ISEConstraints(max_ises=2))
        record = report_record(report)
        assert record["baseline_cycles"] == report.baseline_cycles
        assert len(record["selected"]) == report.num_ises

    def test_save_json_stable(self, tmp_path):
        path = tmp_path / "x.json"
        save_json(path, {"b": 1, "a": 2})
        text = path.read_text()
        assert text.index('"a"') < text.index('"b"')
