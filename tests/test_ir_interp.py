"""Tests for the IR interpreter: 32-bit semantics, memory, profiling."""

import pytest

from repro.errors import InterpreterError, StepLimitExceeded, TrapError
from repro.ir import DataSegment, FunctionBuilder, Interpreter, Program, \
    run_program

_MASK = 0xFFFFFFFF


def single_block_program(emit, params=("a", "b")):
    """Program with one function whose block is built by ``emit``."""
    b = FunctionBuilder("main", params=params)
    b.label("entry")
    result = emit(b)
    b.ret(result)
    program = Program("p")
    program.add_function(b.finish())
    return program


def run_expr(emit, args=(), params=("a", "b")):
    program = single_block_program(emit, params)
    result, __, ___ = run_program(program, args=args)
    return result


class TestALUSemantics:
    def test_wrapping_add(self):
        assert run_expr(lambda b: b.addu("a", "b"),
                        (0xFFFFFFFF, 2)) == 1

    def test_wrapping_sub(self):
        assert run_expr(lambda b: b.subu("a", "b"), (0, 1)) == _MASK

    def test_signed_mult_low_bits(self):
        assert run_expr(lambda b: b.mult("a", "b"),
                        (0xFFFFFFFF, 3)) == (-3) & _MASK

    def test_multu(self):
        assert run_expr(lambda b: b.multu("a", "b"),
                        (0x10000, 0x10000)) == 0

    def test_logic(self):
        assert run_expr(lambda b: b.and_("a", "b"), (0xF0, 0x3C)) == 0x30
        assert run_expr(lambda b: b.or_("a", "b"), (0xF0, 0x0F)) == 0xFF
        assert run_expr(lambda b: b.xor("a", "b"), (0xFF, 0x0F)) == 0xF0
        assert run_expr(lambda b: b.nor("a", "b"), (0, 0)) == _MASK

    def test_slt_signed_vs_unsigned(self):
        assert run_expr(lambda b: b.slt("a", "b"), (0xFFFFFFFF, 0)) == 1
        assert run_expr(lambda b: b.sltu("a", "b"), (0xFFFFFFFF, 0)) == 0

    def test_shifts(self):
        assert run_expr(lambda b: b.sll("a", 4), (0x1,)," a".split()) == 0x10
        assert run_expr(lambda b: b.srl("a", 4),
                        (0x80000000,), ("a",)) == 0x08000000
        assert run_expr(lambda b: b.sra("a", 4),
                        (0x80000000,), ("a",)) == 0xF8000000

    def test_variable_shift_mod_32(self):
        assert run_expr(lambda b: b.sllv("a", "b"), (1, 33)) == 2

    def test_immediates(self):
        assert run_expr(lambda b: b.addiu("a", -1), (0,), ("a",)) == _MASK
        assert run_expr(lambda b: b.slti("a", 5), (4,), ("a",)) == 1

    def test_li_and_lui(self):
        def emit(b):
            t = b.li(0x12345678)
            return t
        assert run_expr(emit, (), ()) == 0x12345678


class TestControlFlow:
    def test_branch_taken_and_not(self):
        def build(op, sources_vals):
            b = FunctionBuilder("main", params=("x", "y"))
            b.label("entry")
            getattr(b, op)("x", "y", "yes", "no") if op in ("beq", "bne") \
                else getattr(b, op)("x", "yes", "no")
            b.label("yes")
            one = b.li(1)
            b.ret(one)
            b.label("no")
            zero = b.li(0)
            b.ret(zero)
            program = Program("p")
            program.add_function(b.finish())
            result, __, ___ = run_program(program, args=sources_vals)
            return result

        assert build("beq", (5, 5)) == 1
        assert build("beq", (5, 6)) == 0
        assert build("bne", (5, 6)) == 1
        assert build("blez", (0, 0)) == 1
        assert build("bgtz", (0xFFFFFFFF, 0)) == 0   # -1 not > 0
        assert build("bltz", (0xFFFFFFFF, 0)) == 1

    def test_loop_profile_counts(self):
        b = FunctionBuilder("main", params=())
        b.label("entry")
        b.li(0, dest="i")
        b.li(0, dest="zero")
        b.jump("loop")
        b.label("loop")
        b.addiu("i", 1, dest="i")
        t = b.slti("i", 7)
        b.bne(t, "zero", "loop", "exit")
        b.label("exit")
        b.ret("i")
        program = Program("p")
        program.add_function(b.finish())
        result, profile, __ = run_program(program)
        assert result == 7
        assert profile.count("main", "loop") == 7
        assert profile.count("main", "entry") == 1

    def test_undefined_register_read(self):
        def emit(b):
            return b.addu("nope", "a")
        with pytest.raises(InterpreterError):
            run_expr(emit, (1, 2))

    def test_step_limit(self):
        b = FunctionBuilder("main", params=())
        b.label("spin")
        b.jump("spin")
        program = Program("p")
        program.add_function(b.finish())
        with pytest.raises(StepLimitExceeded):
            run_program(program, step_limit=100)


class TestMemory:
    def test_word_roundtrip(self):
        def emit(b):
            addr = b.li(0x100)
            val = b.li(0xDEADBEEF)
            b.sw(val, addr)
            return b.lw(addr)
        assert run_expr(emit, (), ()) == 0xDEADBEEF

    def test_little_endian_bytes(self):
        def emit(b):
            addr = b.li(0x100)
            val = b.li(0x11223344)
            b.sw(val, addr)
            return b.lbu(addr)
        assert run_expr(emit, (), ()) == 0x44

    def test_halfword(self):
        def emit(b):
            addr = b.li(0x100)
            val = b.li(0xABCD)
            b.sh(val, addr)
            return b.lhu(addr)
        assert run_expr(emit, (), ()) == 0xABCD

    def test_unaligned_word_traps(self):
        def emit(b):
            addr = b.li(0x101)
            return b.lw(addr)
        with pytest.raises(TrapError):
            run_expr(emit, (), ())

    def test_data_segment_image(self):
        data = DataSegment(base=0x200)
        base = data.place_words("tab", [1, 2, 3])
        b = FunctionBuilder("main", params=("tab",))
        b.label("entry")
        v = b.lw("tab", offset=8)
        b.ret(v)
        program = Program("p", data=data)
        program.add_function(b.finish())
        result, __, ___ = run_program(program, args=(base,))
        assert result == 3

    def test_data_segment_symbols(self):
        data = DataSegment()
        a = data.place_words("a", [0])
        b = data.place_bytes("b", b"\x01\x02")
        assert data.address_of("a") == a
        assert data.address_of("b") == b
        assert data.end > b


class TestCalls:
    def test_call_and_return(self):
        callee = FunctionBuilder("double", params=("x",))
        callee.label("entry")
        t = callee.addu("x", "x")
        callee.ret(t)

        caller = FunctionBuilder("main", params=("v",))
        caller.label("entry")
        r = caller.call("double", ("v",))
        r2 = caller.call("double", (r,))
        caller.ret(r2)

        program = Program("p")
        program.add_function(caller.finish())
        program.add_function(callee.finish())
        result, profile, __ = run_program(program, args=(5,))
        assert result == 20
        assert profile.count("double", "entry") == 2

    def test_unknown_callee_rejected(self):
        caller = FunctionBuilder("main", params=())
        caller.label("entry")
        r = caller.call("ghost", ())
        caller.ret(r)
        program = Program("p")
        program.add_function(caller.finish())
        with pytest.raises(Exception):
            run_program(program)

    def test_recursion_depth_guard(self):
        f = FunctionBuilder("f", params=("x",))
        f.label("entry")
        r = f.call("f", ("x",))
        f.ret(r)
        program = Program("p")
        program.add_function(f.finish())
        with pytest.raises(InterpreterError):
            run_program(program, args=(1,))


class TestProfile:
    def test_merge(self):
        from repro.ir.interp import Profile
        a, b = Profile(), Profile()
        a.record("f", "x", 3)
        b.record("f", "x", 3)
        b.record("f", "y", 1)
        a.merge(b)
        assert a.count("f", "x") == 2
        assert a.count("f", "y") == 1
        assert a.total() == 3

    def test_items_hottest_first(self):
        from repro.ir.interp import Profile
        p = Profile()
        for __ in range(3):
            p.record("f", "hot", 1)
        p.record("f", "cold", 1)
        assert p.items()[0][0] == ("f", "hot")
