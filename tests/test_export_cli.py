"""Tests for the DOT/Gantt exporters and the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.core.candidate import ISECandidate
from repro.graph.export import candidate_to_dot, dfg_to_dot, \
    schedule_to_gantt
from repro.hwlib import DEFAULT_DATABASE, DEFAULT_TECHNOLOGY
from repro.sched import MachineConfig, contract_dfg, list_schedule

from conftest import chain_dfg, diamond_dfg


class TestDotExport:
    def test_contains_all_nodes_and_edges(self):
        dfg = diamond_dfg()
        dot = dfg_to_dot(dfg)
        assert dot.startswith("digraph")
        for uid in dfg.nodes:
            assert "n{} [".format(uid) in dot
        assert dot.count("->") == dfg.graph.number_of_edges()

    def test_highlight_colours_members(self):
        dfg = chain_dfg(4)
        dot = dfg_to_dot(dfg, highlight=[{1, 2}])
        assert "fillcolor" in dot
        assert dot.count("fillcolor") == 2

    def test_output_nodes_double_bordered(self):
        dfg = chain_dfg(3)
        dot = dfg_to_dot(dfg)
        assert "peripheries=2" in dot

    def test_candidate_to_dot(self):
        dfg = chain_dfg(3)
        option_of = {uid: DEFAULT_DATABASE.hardware_options("addu")[0]
                     for uid in (0, 1)}
        candidate = ISECandidate(dfg, {0, 1}, option_of,
                                 DEFAULT_TECHNOLOGY)
        dot = candidate_to_dot(candidate)
        assert "fillcolor" in dot and "addu" in dot


class TestGantt:
    def test_rows_per_cycle(self):
        dfg = chain_dfg(3)
        graph, units = contract_dfg(dfg, [], DEFAULT_TECHNOLOGY)
        schedule = list_schedule(graph, units, MachineConfig(2, "4/2"))
        gantt = schedule_to_gantt(schedule)
        assert gantt.count("\n") + 1 == schedule.makespan

    def test_multicycle_marked(self):
        from repro.hwlib import HardwareOption
        dfg = chain_dfg(4)
        slow = HardwareOption("HW", delay_ns=25.0, area=1.0)
        graph, units = contract_dfg(
            dfg, [({1, 2}, {1: slow, 2: slow})], DEFAULT_TECHNOLOGY)
        schedule = list_schedule(graph, units, MachineConfig(2, "4/2"))
        gantt = schedule_to_gantt(schedule)
        assert "ise0*" in gantt

    def test_empty_schedule(self):
        import networkx as nx
        from repro.sched.list_scheduler import Schedule
        empty = Schedule(nx.DiGraph(), {}, {})
        assert "empty" in schedule_to_gantt(empty)


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["workloads"])
        assert args.command == "workloads"
        args = parser.parse_args(
            ["explore", "crc32", "--issue", "3", "--ports", "6/3",
             "--area", "50000"])
        assert args.issue == 3 and args.area == 50000.0

    def test_workloads_command(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "crc32" in out and "dijkstra" in out

    def test_table_command(self, capsys):
        assert main(["table"]) == 0
        out = capsys.readouterr().out
        assert "84428" in out

    def test_explore_command(self, capsys):
        code = main(["explore", "dijkstra", "--iterations", "30",
                     "--restarts", "1", "--max-ises", "1",
                     "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reduction:" in out
        assert "baseline" in out

    def test_dot_command(self, capsys):
        code = main(["dot", "dijkstra", "--iterations", "30",
                     "--restarts", "1", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
