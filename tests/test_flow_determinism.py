"""Determinism of the whole pipeline under a fixed seed.

The evaluation is only reproducible if every stage — profiling, pass
pipelines, exploration, merging, selection, replacement, scheduling —
is deterministic for a given seed.  These tests run the complete flow
twice and require identical outputs, and check that different seeds are
actually allowed to differ (the RNG is really used).
"""

import pytest

from repro.config import ExplorationParams, ISEConstraints
from repro.core.flow import ISEDesignFlow
from repro.sched import MachineConfig
from repro.workloads import get_workload

TINY = ExplorationParams(max_iterations=40, restarts=1, max_rounds=3)


def run_flow(seed, workload="crc32"):
    program, args = get_workload(workload).build()
    flow = ISEDesignFlow(MachineConfig(2, "4/2"), params=TINY, seed=seed,
                         max_blocks=2)
    explored = flow.explore_application(program, args=args,
                                        opt_level="O3")
    report = flow.evaluate(explored, ISEConstraints(max_ises=4))
    return explored, report


def fingerprint(explored, report):
    return (
        tuple(sorted((tuple(sorted(c.members)), c.area, c.cycles)
                     for c in explored.candidates)),
        report.final_cycles,
        report.area,
        report.num_ises,
    )


class TestDeterminism:
    def test_same_seed_identical(self):
        a = fingerprint(*run_flow(seed=11))
        b = fingerprint(*run_flow(seed=11))
        assert a == b

    def test_optimizer_is_deterministic(self):
        from repro.ir.passes import optimize
        program, __ = get_workload("fft").build()
        text_a = "\n".join(f.pretty() for f in
                           optimize(program, "O3").functions)
        text_b = "\n".join(f.pretty() for f in
                           optimize(program, "O3").functions)
        assert text_a == text_b

    def test_profile_is_deterministic(self):
        from repro.ir import run_program
        program, args = get_workload("adpcm").build()
        __, profile_a, ___ = run_program(program, args=args)
        ____, profile_b, _____ = run_program(program, args=args)
        assert profile_a.items() == profile_b.items()

    def test_seeds_can_differ(self):
        # Across many seeds the ACO must explore different solutions at
        # least once (otherwise the RNG is not wired through).
        baseline = fingerprint(*run_flow(seed=0))
        assert any(fingerprint(*run_flow(seed=s)) != baseline
                   for s in (1, 2, 3, 4, 5))
