"""Structural regression tests for the workloads' hot-block DFGs.

The evaluation's shape claims rest on the kernels having the DFG
profiles described in docs/WORKLOADS.md (chains for crc32/blowfish,
wide ILP for jpeg/fft, branchy small blocks for adpcm/dijkstra).
These tests pin those properties so compiler-pass changes that would
silently alter the evaluation substrate fail loudly.
"""

import pytest

from repro.graph import build_dfg, longest_path_cycles
from repro.ir.analysis import liveness
from repro.ir.passes import optimize
from repro.workloads import get_workload

UNIT = lambda uid: 1


def hot_dfg(workload_name, func_name, label, opt="O3"):
    program, __ = get_workload(workload_name).build()
    program = optimize(program, opt)
    func = program.function(func_name)
    ___, live_out = liveness(func)
    return build_dfg(func.block(label), live_out[label],
                     function=func_name)


def ilp_of(dfg):
    """Average width: ops per critical-path level."""
    chain = longest_path_cycles(dfg, UNIT)
    return len(dfg) / chain if chain else 0.0


class TestChainKernels:
    def test_crc32_bit_loop_is_a_chain(self):
        dfg = hot_dfg("crc32", "crc32", "bit_loop")
        assert len(dfg) >= 20
        # Chain-dominated: depth over half the node count.
        assert longest_path_cycles(dfg, UNIT) >= len(dfg) * 0.5
        assert ilp_of(dfg) < 2.0

    def test_sha1_schedule_loop_rotates(self):
        dfg = hot_dfg("sha1", "sha1_compress", "sched_loop")
        names = [dfg.op(uid).name for uid in dfg.nodes]
        assert names.count("xor") >= 8
        assert "sll" in names and "srl" in names


class TestWideKernels:
    def test_jpeg_row_pass_is_wide(self):
        dfg = hot_dfg("jpeg", "fdct", "row_loop")
        assert len(dfg) >= 80
        assert ilp_of(dfg) >= 2.5
        mults = sum(1 for uid in dfg.nodes
                    if dfg.op(uid).name in ("mult", "multu", "sll"))
        assert mults >= 8

    def test_fft_butterfly_mixes_mults_and_memory(self):
        dfg = hot_dfg("fft", "fft", "bfly")
        names = [dfg.op(uid).name for uid in dfg.nodes]
        assert names.count("mult") >= 4
        assert names.count("lw") >= 4
        assert names.count("sw") >= 4


class TestMemoryBoundKernels:
    def test_blowfish_round_loop_load_interleaved(self):
        dfg = hot_dfg("blowfish", "bf_encrypt", "round_loop")
        loads = sum(1 for uid in dfg.nodes if dfg.op(uid).is_memory)
        groupable = len(dfg.groupable_nodes())
        assert loads >= 10
        assert groupable >= 2 * loads   # plenty of ALU work around them


class TestBranchyKernels:
    @pytest.mark.parametrize("workload,func,blocks", [
        ("adpcm", "adpcm_encode",
         ["sample_loop", "quant1", "update", "emit"]),
        ("dijkstra", "dijkstra",
         ["scan_loop", "relax_loop", "outer_loop"]),
    ])
    def test_blocks_stay_small(self, workload, func, blocks):
        program, __ = get_workload(workload).build()
        program = optimize(program, "O3")
        function = program.function(func)
        ___, live_out = liveness(function)
        for label in blocks:
            dfg = build_dfg(function.block(label), live_out[label],
                            function=func)
            assert len(dfg) <= 12, label


class TestOptLevelEffect:
    @pytest.mark.parametrize("workload,func,label", [
        ("crc32", "crc32", "bit_loop"),
        ("blowfish", "bf_encrypt", "round_loop"),
    ])
    def test_o3_unrolling_grows_blocks(self, workload, func, label):
        o0 = hot_dfg(workload, func, label, opt="O0")
        o3 = hot_dfg(workload, func, label, opt="O3")
        assert len(o3) > len(o0)

    def test_jpeg_body_hits_unroll_size_cap(self):
        # The DCT body is already near the unroller's max_body cap, so
        # -O3 cleans it (CSE removes duplicated constants) but does not
        # replicate it — mirroring gcc's max-unrolled-insns behaviour.
        o0 = hot_dfg("jpeg", "fdct", "row_loop", opt="O0")
        o3 = hot_dfg("jpeg", "fdct", "row_loop", opt="O3")
        assert len(o3) <= len(o0)
        assert len(o3) >= 80

    def test_o0_keeps_raw_body(self):
        # O0 crc32 bit loop is the raw 7-op body (5 computation ops +
        # induction increment + exit compare).
        o0 = hot_dfg("crc32", "crc32", "bit_loop", opt="O0")
        assert len(o0) == 7
