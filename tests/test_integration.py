"""End-to-end integration tests: whole flow on every workload.

These run the complete pipeline (build → optimize → profile → explore →
merge → select → replace → schedule) at a reduced ACO effort, asserting
the system-level invariants the paper's evaluation rests on.
"""

import pytest

from repro.baselines import si_explorer_factory
from repro.config import ExplorationParams, ISEConstraints
from repro.core.flow import ISEDesignFlow
from repro.sched import MachineConfig
from repro.workloads import all_workloads, get_workload

TINY = ExplorationParams(max_iterations=50, restarts=1, max_rounds=4)


@pytest.fixture(scope="module")
def crc_reports():
    """One exploration reused by several assertions."""
    program, args = get_workload("crc32").build()
    flow = ISEDesignFlow(MachineConfig(2, "4/2"), params=TINY, seed=5,
                         max_blocks=3)
    explored = flow.explore_application(program, args=args, opt_level="O3")
    return flow, explored


class TestFullFlowPerWorkload:
    @pytest.mark.parametrize("name", [w.name for w in all_workloads()])
    def test_flow_improves_or_holds(self, name):
        program, args = get_workload(name).build()
        flow = ISEDesignFlow(MachineConfig(2, "4/2"), params=TINY, seed=5,
                             max_blocks=3, max_dfg_nodes=150)
        report = flow.run(program, args=args, opt_level="O3",
                          constraints=ISEConstraints(max_area=80_000))
        assert report.final_cycles <= report.baseline_cycles
        assert 0.0 <= report.reduction < 1.0
        assert report.area <= 80_000

    @pytest.mark.parametrize("opt", ["O0", "O3"])
    def test_both_opt_levels_work(self, opt):
        program, args = get_workload("adpcm").build()
        flow = ISEDesignFlow(MachineConfig(2, "4/2"), params=TINY, seed=5,
                             max_blocks=3)
        report = flow.run(program, args=args, opt_level=opt,
                          constraints=ISEConstraints(max_ises=2))
        assert report.final_cycles <= report.baseline_cycles


class TestCrossAlgorithm:
    def test_si_factory_in_flow(self):
        program, args = get_workload("dijkstra").build()
        flow = ISEDesignFlow(MachineConfig(2, "4/2"), params=TINY, seed=5,
                             max_blocks=3,
                             explorer_factory=si_explorer_factory)
        report = flow.run(program, args=args, opt_level="O0",
                          constraints=ISEConstraints(max_ises=2))
        assert report.final_cycles <= report.baseline_cycles
        assert all(c.source == "SI"
                   for c in report.explored.candidates)


class TestBudgetSemantics:
    def test_budget_sweep_reuses_exploration(self, crc_reports):
        flow, explored = crc_reports
        r1 = flow.evaluate(explored, ISEConstraints(max_ises=1))
        r2 = flow.evaluate(explored, ISEConstraints(max_ises=4))
        assert r2.reduction >= r1.reduction - 1e-9
        assert r1.num_ises <= 1

    def test_single_ise_double_digit_on_crc(self, crc_reports):
        flow, explored = crc_reports
        report = flow.evaluate(explored, ISEConstraints(max_ises=1))
        # CRC32's bit chain is the paper's best case: one ISE buys a
        # large reduction.
        assert report.reduction > 0.10

    def test_area_accounting_consistent(self, crc_reports):
        flow, explored = crc_reports
        report = flow.evaluate(explored, ISEConstraints(max_area=30_000))
        assert report.area <= 30_000
        assert report.num_ises == len(report.selection.selected)

    def test_sharing_never_increases_area(self, crc_reports):
        flow, explored = crc_reports
        shared = flow.evaluate(explored, ISEConstraints(max_ises=4),
                               enable_sharing=True)
        unshared = flow.evaluate(explored, ISEConstraints(max_ises=4),
                                 enable_sharing=False)
        assert shared.area <= unshared.area + 1e-9


class TestMachineTrends:
    def test_wider_issue_lower_baseline(self):
        program, args = get_workload("fft").build()
        baselines = {}
        for width, ports in ((2, "8/4"), (4, "8/4")):
            flow = ISEDesignFlow(MachineConfig(width, ports), params=TINY,
                                 seed=5, max_blocks=3)
            blocks = flow.profile_blocks(program, args=args)
            baselines[width] = sum(
                b.freq * (b.base_cycles + 1) for b in blocks if b.freq > 0)
        assert baselines[4] <= baselines[2]
