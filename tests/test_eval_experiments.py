"""Unit tests for the figure-regeneration functions (reduced grids)."""

import pytest

from repro.eval import (
    EvalContext,
    figure_5_2_1,
    figure_5_2_2,
    figure_5_2_3,
    headline_single_ise,
    headline_vs_baseline,
    per_workload_table,
)


@pytest.fixture(scope="module")
def tiny_ctx():
    """One cheap workload so each figure runs in seconds."""
    return EvalContext(profile="quick", workload_names=["dijkstra"],
                       seed=5)


SMALL_CASES = (("4/2", 2),)


class TestFigureFunctions:
    def test_figure_5_2_1_shape(self, tiny_ctx):
        rows = figure_5_2_1(tiny_ctx, budgets=(20_000, 40_000),
                            cases=SMALL_CASES, opts=("O0",),
                            algos=("MI",))
        assert set(rows) == {("MI", "4/2", 2, "O0")}
        cells = rows[("MI", "4/2", 2, "O0")]
        assert set(cells) == {20_000, 40_000}
        assert all(0.0 <= v < 100.0 for v in cells.values())

    def test_figure_5_2_2_shape(self, tiny_ctx):
        rows = figure_5_2_2(tiny_ctx, counts=(1, 2), cases=SMALL_CASES,
                            opts=("O0",), algos=("MI",))
        cells = rows[("MI", "4/2", 2, "O0")]
        assert cells[2] >= cells[1] - 1e-9

    def test_figure_5_2_3_series(self, tiny_ctx):
        series = figure_5_2_3(tiny_ctx, counts=(1, 2), ports="4/2",
                              issue=2, opt="O0", algos=("MI",))
        points = series["MI"]
        assert [n for n, __, ___ in points] == [1, 2]
        areas = [a for __, a, ___ in points]
        assert areas[1] >= areas[0] - 1e-9

    def test_headline_single_ise(self, tiny_ctx):
        (maximum, minimum, average), per_case = headline_single_ise(
            tiny_ctx, cases=SMALL_CASES, opts=("O0",))
        assert maximum >= average >= minimum
        assert len(per_case) == 1

    def test_headline_vs_baseline(self, tiny_ctx):
        (maximum, minimum, average), per_case = headline_vs_baseline(
            tiny_ctx, cases=SMALL_CASES, opts=("O0",),
            budgets=(40_000,))
        assert maximum >= average >= minimum
        assert len(per_case) == 1

    def test_per_workload_table(self, tiny_ctx):
        table = per_workload_table(tiny_ctx, ports="4/2", issue=2,
                                   opt="O0", algos=("MI",),
                                   budget=40_000)
        assert set(table) == {"dijkstra"}
        reduction, count, area = table["dijkstra"]["MI"]
        assert 0.0 <= reduction < 100.0
        assert count >= 0 and area >= 0.0

    def test_cells_are_cached_across_figures(self, tiny_ctx):
        # Both figures touched the same (workload, machine, opt, algo)
        # cell; the context must hold exactly the explored variants.
        keys = {key[3] for key in tiny_ctx._cache}
        assert keys <= {"MI", "SI"}
        assert len(tiny_ctx._cache) <= 4
