"""Tests for the pipestage-timing constraint (max_ise_cycles)."""

import pytest

from repro.config import ExplorationParams, ISEConstraints
from repro.core import MultiIssueExplorer
from repro.core.candidate import ISECandidate
from repro.core.flow import ISEDesignFlow
from repro.errors import ConfigError, ConstraintError
from repro.hwlib import DEFAULT_DATABASE, DEFAULT_TECHNOLOGY
from repro.sched import MachineConfig
from repro.workloads import get_workload

from conftest import chain_dfg

TINY = dict(max_iterations=60, restarts=1, max_rounds=4)


def slow_candidate(dfg, members):
    """Realize with the slowest options (4.04 ns adders)."""
    option_of = {uid: max(DEFAULT_DATABASE.hardware_options("addu"),
                          key=lambda o: o.delay_ns)
                 for uid in members}
    return ISECandidate(dfg, members, option_of, DEFAULT_TECHNOLOGY)


class TestConstraint:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ISEConstraints(max_ise_cycles=0)
        assert ISEConstraints(max_ise_cycles=1).max_ise_cycles == 1

    def test_candidate_validate(self):
        dfg = chain_dfg(4)
        candidate = slow_candidate(dfg, {0, 1, 2})  # 12.12 ns -> 2 cycles
        assert candidate.cycles == 2
        candidate.validate(ISEConstraints())            # unbounded ok
        candidate.validate(ISEConstraints(max_ise_cycles=2))
        with pytest.raises(ConstraintError):
            candidate.validate(ISEConstraints(max_ise_cycles=1))

    def test_exploration_respects_limit(self):
        dfg = chain_dfg(8)
        params = ExplorationParams(**TINY)
        machine = MachineConfig(2, "4/2")
        constrained = MultiIssueExplorer(
            machine, params=params, seed=2,
            constraints=ISEConstraints(max_ise_cycles=1))
        result = constrained.explore(dfg)
        assert all(c.cycles <= 1 for c in result.candidates)

    def test_limit_reduces_compression(self):
        dfg = chain_dfg(10)
        params = ExplorationParams(**TINY)
        machine = MachineConfig(2, "4/2")
        free = MultiIssueExplorer(machine, params=params, seed=2).explore(dfg)
        tight = MultiIssueExplorer(
            machine, params=params, seed=2,
            constraints=ISEConstraints(max_ise_cycles=1)).explore(dfg)
        assert tight.final_cycles >= free.final_cycles

    def test_flow_end_to_end_with_limit(self):
        program, args = get_workload("crc32").build()
        params = ExplorationParams(**TINY)
        flow = ISEDesignFlow(
            MachineConfig(2, "4/2"), params=params, seed=2, max_blocks=2,
            constraints=ISEConstraints(max_ise_cycles=1))
        report = flow.run(program, args=args, opt_level="O3",
                          constraints=ISEConstraints(max_ise_cycles=1,
                                                     max_ises=4))
        for entry in report.selection.selected:
            assert entry.representative.cycles <= 1
        assert report.final_cycles <= report.baseline_cycles
