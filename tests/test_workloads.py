"""Tests for the seven benchmark kernels.

Every workload's IR must compute the same result as its bit-exact
Python reference, at -O0 and at -O3, and expose the structural
properties the evaluation depends on (hot loops, unrollability).
"""

import pytest

from repro.errors import ReproError
from repro.ir import run_program
from repro.ir.passes import optimize
from repro.workloads import all_workloads, get_workload, workload_names
from repro.workloads import blowfish, crc32, fft, jpeg


@pytest.fixture(scope="module")
def built():
    """Programs + args, built once per module."""
    return {w.name: (w, w.build()) for w in all_workloads()}


class TestRegistry:
    def test_names_in_paper_order(self):
        assert workload_names() == [
            "crc32", "fft", "adpcm", "bitcount", "blowfish", "jpeg",
            "dijkstra"]

    def test_get_by_name(self):
        workload = get_workload("fft")
        assert workload.name == "fft"

    def test_unknown_name(self):
        with pytest.raises(ReproError):
            get_workload("doom")

    def test_descriptions_nonempty(self):
        assert all(w.description for w in all_workloads())


class TestCorrectness:
    @pytest.mark.parametrize("name", [w.name for w in all_workloads()])
    def test_o0_matches_reference(self, built, name):
        workload, (program, args) = built[name]
        result, __, ___ = run_program(program, args=args)
        assert result == workload.reference()

    @pytest.mark.parametrize("name", [w.name for w in all_workloads()])
    def test_o3_matches_reference(self, built, name):
        workload, (program, args) = built[name]
        optimized = optimize(program, "O3")
        result, __, ___ = run_program(optimized, args=args)
        assert result == workload.reference()

    @pytest.mark.parametrize("name", [w.name for w in all_workloads()])
    def test_programs_verify(self, built, name):
        __, (program, ___) = built[name]
        program.verify()


class TestStructure:
    def test_crc32_bit_loop_unrolls(self, built):
        __, (program, ___) = built["crc32"]
        optimized = optimize(program, "O3")
        loop = optimized.function("crc32").block("bit_loop")
        assert loop.annotations.get("unrolled_by", 1) >= 2

    def test_blowfish_round_loop_unrolls(self, built):
        __, (program, ___) = built["blowfish"]
        optimized = optimize(program, "O3")
        loop = optimized.function("bf_encrypt").block("round_loop")
        assert loop.annotations.get("unrolled_by", 1) >= 2

    def test_fft_butterfly_unrolls(self, built):
        __, (program, ___) = built["fft"]
        optimized = optimize(program, "O3")
        loop = optimized.function("fft").block("bfly")
        assert loop.annotations.get("unrolled_by", 1) >= 2

    def test_hot_blocks_dominate_profile(self, built):
        for name in ("crc32", "blowfish", "jpeg"):
            workload, (program, args) = built[name]
            __, profile, ___ = run_program(program, args=args)
            (top, count), *__rest = profile.items()
            assert count >= 8, (name, top)

    def test_o3_reduces_dynamic_instructions(self, built):
        for name in ("crc32", "fft", "jpeg"):
            __, (program, args) = built[name]
            ___, profile0, ____ = run_program(program, args=args)
            optimized = optimize(program, "O3")
            ___, profile3, ____ = run_program(optimized, args=args)
            assert (profile3.instructions_executed
                    < profile0.instructions_executed), name


class TestDeterminism:
    def test_inputs_are_deterministic(self):
        assert crc32.message_bytes() == crc32.message_bytes()
        assert fft.input_samples() == fft.input_samples()
        assert blowfish.input_blocks() == blowfish.input_blocks()
        assert jpeg.input_block() == jpeg.input_block()

    def test_crc32_matches_binascii(self):
        # Independent cross-check of the reference itself.
        import binascii
        assert crc32.reference() == \
            binascii.crc32(crc32.message_bytes()) & 0xFFFFFFFF

    def test_fft_twiddles_q14(self):
        wr, wi = fft.twiddles()
        assert wr[0] == 1 << 14          # cos(0) in Q14
        assert wi[0] == 0

    def test_bit_reverse_table_is_permutation(self):
        table = fft.bit_reverse_table()
        assert sorted(table) == list(range(16))
