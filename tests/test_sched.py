"""Tests for the multi-issue machine model and list scheduler."""

import networkx as nx
import pytest

from repro.errors import ConfigError, SchedulingError
from repro.hwlib import DEFAULT_TECHNOLOGY, HardwareOption
from repro.sched import (
    MachineConfig,
    Needs,
    ReservationTable,
    SchedUnit,
    contract_dfg,
    get_priority,
    list_schedule,
    paper_machines,
    priority_names,
    software_needs,
)
from repro.isa import Operation

from conftest import chain_dfg, diamond_dfg, wide_dfg


class TestMachineConfig:
    def test_defaults(self):
        m = MachineConfig(2, "4/2")
        assert m.issue_width == 2
        assert m.register_file.read_ports == 4
        assert m.fu_counts["alu"] == 2
        assert m.fu_counts["asfu"] == 1

    def test_paper_cases(self):
        machines = paper_machines()
        assert len(machines) == 6
        assert machines[0].label == "(4/2, 2IS)"
        assert machines[-1].label == "(10/5, 4IS)"

    def test_from_paper_case_spec(self):
        m = MachineConfig.from_paper_case("3-issue 8/4")
        assert m.issue_width == 3
        assert m.register_file.spec == "8/4"
        m2 = MachineConfig.from_paper_case("(6/3, 2IS)")
        assert m2.issue_width == 2

    def test_bad_spec(self):
        with pytest.raises(ConfigError):
            MachineConfig.from_paper_case("huge")

    def test_invalid_width(self):
        with pytest.raises(ConfigError):
            MachineConfig(0, "4/2")

    def test_equality_hash(self):
        assert MachineConfig(2, "4/2") == MachineConfig(2, "4/2")
        assert MachineConfig(2, "4/2") != MachineConfig(3, "4/2")


class TestReservationTable:
    def test_issue_width_enforced(self):
        table = ReservationTable(MachineConfig(2, "8/4"))
        needs = Needs(reads=1, writes=1)
        table.place(0, needs)
        table.place(0, needs)
        assert not table.fits(0, needs)
        assert table.fits(1, needs)

    def test_read_ports_enforced(self):
        table = ReservationTable(MachineConfig(4, "4/2"))
        needs = Needs(reads=2, writes=1)
        table.place(0, needs)
        table.place(0, needs)
        assert not table.fits(0, Needs(reads=1))

    def test_fu_kind_enforced(self):
        table = ReservationTable(MachineConfig(4, "8/4"))
        mul = Needs(reads=2, writes=1, fu_kind="mul")
        table.place(0, mul)
        assert not table.fits(0, mul)         # one multiplier
        assert table.fits(0, Needs(fu_kind="alu"))

    def test_release_and_refill(self):
        table = ReservationTable(MachineConfig(1, "4/2"))
        needs = Needs(reads=2, writes=1)
        table.place(0, needs)
        table.release(0, needs)
        assert table.fits(0, needs)

    def test_release_without_place_raises(self):
        table = ReservationTable(MachineConfig(1, "4/2"))
        with pytest.raises(SchedulingError):
            table.release(0, Needs(reads=1))

    def test_first_fit_skips_full_cycles(self):
        table = ReservationTable(MachineConfig(1, "4/2"))
        needs = Needs(reads=1, writes=1)
        table.place(0, needs)
        table.place(1, needs)
        assert table.first_fit(needs) == 2
        assert table.first_fit(needs, not_before=5) == 5


class TestPriorities:
    def test_registry(self):
        assert set(priority_names()) == {"children", "depth", "mobility"}
        with pytest.raises(ConfigError):
            get_priority("nope")

    def test_children_count(self):
        dfg = diamond_dfg()
        sp = get_priority("children")(dfg.graph)
        assert sp[3] == 2          # node 3 feeds 5 and 6

    def test_depth_longest_tail(self):
        dfg = chain_dfg(4)
        sp = get_priority("depth")(dfg.graph)
        assert sp[0] == 4 and sp[3] == 1

    def test_mobility_critical_first(self):
        dfg = diamond_dfg()
        sp = get_priority("mobility")(dfg.graph)
        assert sp[0] == 0               # critical: zero slack
        assert sp[2] < 0                # slack: lower priority


class TestContraction:
    def _fast_option(self):
        return HardwareOption("HW", delay_ns=2.0, area=100.0)

    def test_plain_contraction(self):
        dfg = chain_dfg(4)
        graph, units = contract_dfg(dfg, [], DEFAULT_TECHNOLOGY)
        assert len(units) == 4
        assert all(not u.is_ise for u in units.values())

    def test_group_becomes_supernode(self):
        dfg = chain_dfg(4)
        option_of = {1: self._fast_option(), 2: self._fast_option()}
        graph, units = contract_dfg(
            dfg, [({1, 2}, option_of)], DEFAULT_TECHNOLOGY)
        assert len(units) == 3
        ise = units["ise0"]
        assert ise.is_ise and ise.latency == 1
        assert ise.area == 200.0
        assert graph.has_edge(0, "ise0") and graph.has_edge("ise0", 3)

    def test_overlapping_groups_rejected(self):
        dfg = chain_dfg(4)
        option_of = {1: self._fast_option(), 2: self._fast_option()}
        with pytest.raises(SchedulingError):
            contract_dfg(dfg, [({1, 2}, option_of), ({2, 3}, option_of)],
                         DEFAULT_TECHNOLOGY)

    def test_nonconvex_group_rejected(self):
        dfg = chain_dfg(3)
        option_of = {0: self._fast_option(), 2: self._fast_option()}
        with pytest.raises(SchedulingError):
            contract_dfg(dfg, [({0, 2}, option_of)], DEFAULT_TECHNOLOGY)

    def test_software_needs_kinds(self):
        op = Operation(0, "mult", sources=("a", "b"), dests=("c",))
        assert software_needs(op).fu_kind == "mul"
        op2 = Operation(1, "lw", sources=("p",), dests=("v",))
        assert software_needs(op2).fu_kind == "mem"


class TestListScheduler:
    def test_chain_serializes(self):
        dfg = chain_dfg(4)
        graph, units = contract_dfg(dfg, [], DEFAULT_TECHNOLOGY)
        schedule = list_schedule(graph, units, MachineConfig(4, "10/5"))
        assert schedule.makespan == 4

    def test_wide_parallelism_uses_issue_width(self):
        dfg = wide_dfg(6)
        graph, units = contract_dfg(dfg, [], DEFAULT_TECHNOLOGY)
        two = list_schedule(graph, units, MachineConfig(2, "10/5")).makespan
        four = list_schedule(graph, units, MachineConfig(4, "10/5")).makespan
        assert four <= two

    def test_schedule_verifies(self, dual_issue):
        dfg = diamond_dfg()
        graph, units = contract_dfg(dfg, [], DEFAULT_TECHNOLOGY)
        schedule = list_schedule(graph, units, dual_issue)
        schedule.verify(dual_issue)       # must not raise

    def test_multicycle_ise_blocks_successors(self):
        dfg = chain_dfg(4)
        slow = HardwareOption("HW", delay_ns=25.0, area=10.0)  # 3 cycles
        option_of = {1: slow, 2: slow}
        graph, units = contract_dfg(
            dfg, [({1, 2}, option_of)], DEFAULT_TECHNOLOGY)
        schedule = list_schedule(graph, units, MachineConfig(2, "8/4"))
        ise_start = schedule.start["ise0"]
        assert schedule.start[3] >= ise_start + units["ise0"].latency

    def test_infeasible_demand_raises(self):
        graph = nx.DiGraph()
        graph.add_node("x")
        units = {"x": SchedUnit("x", 1, Needs(reads=9), ("x",))}
        with pytest.raises(SchedulingError):
            list_schedule(graph, units, MachineConfig(2, "4/2"))

    def test_priority_dict_accepted(self):
        dfg = wide_dfg(4)
        graph, units = contract_dfg(dfg, [], DEFAULT_TECHNOLOGY)
        schedule = list_schedule(graph, units, MachineConfig(2, "8/4"),
                                 priority={uid: 0 for uid in units})
        assert schedule.makespan >= 1

    def test_cyclic_graph_rejected(self):
        graph = nx.DiGraph([("a", "b"), ("b", "a")])
        units = {u: SchedUnit(u, 1, Needs(reads=1), (u,)) for u in "ab"}
        with pytest.raises(SchedulingError):
            list_schedule(graph, units, MachineConfig(2, "8/4"))

    def test_at_cycle_listing(self):
        dfg = wide_dfg(4)
        graph, units = contract_dfg(dfg, [], DEFAULT_TECHNOLOGY)
        schedule = list_schedule(graph, units, MachineConfig(2, "8/4"))
        issued = [schedule.at_cycle(c) for c in range(schedule.makespan)]
        assert sum(len(batch) for batch in issued) == len(units)
        assert all(len(batch) <= 2 for batch in issued)
