"""Tests for loop-invariant code motion."""

import pytest

from repro.ir import FunctionBuilder, Program, run_program
from repro.ir.passes import (
    loop_invariant_code_motion,
    optimize,
    unroll_loops,
)


def counted_loop_with_invariant():
    """acc += (k*3 + 1) each of 10 trips; k*3+1 is invariant."""
    b = FunctionBuilder("f", params=("k",))
    b.label("entry")
    b.li(0, dest="i")
    b.li(0, dest="acc")
    b.li(0, dest="zero")
    b.jump("loop")
    b.label("loop")
    c3 = b.li(3)
    prod = b.mult("k", c3)
    inv = b.addiu(prod, 1)
    b.addu("acc", inv, dest="acc")
    b.addiu("i", 1, dest="i")
    t = b.slti("i", 10)
    b.bne(t, "zero", "loop", "exit")
    b.label("exit")
    b.ret("acc")
    return b.finish()


class TestLICM:
    def test_invariant_hoisted_to_preheader(self):
        func = counted_loop_with_invariant()
        before = len(func.block("loop").body)
        loop_invariant_code_motion(func)
        assert func.has_block("loop.preheader")
        assert len(func.block("loop").body) < before
        pre_ops = [i.op for i in func.block("loop.preheader").body]
        assert "mult" in pre_ops

    def test_semantics_preserved(self):
        func = counted_loop_with_invariant()
        program = Program("p")
        program.add_function(func)
        before, __, ___ = run_program(program, args=(7,))
        loop_invariant_code_motion(func)
        after, profile, ___ = run_program(program, args=(7,))
        assert before == after == 10 * (7 * 3 + 1)
        assert profile.count("f", "loop.preheader") == 1
        assert profile.count("f", "loop") == 10

    def test_loop_carried_not_hoisted(self):
        func = counted_loop_with_invariant()
        loop_invariant_code_motion(func)
        loop_ops = [i.op for i in func.block("loop").body]
        assert "addu" in loop_ops           # acc accumulation stays
        assert loop_ops.count("addiu") >= 1  # i++ stays

    def test_loads_not_hoisted(self):
        b = FunctionBuilder("f", params=("p",))
        b.label("entry")
        b.li(0, dest="i")
        b.li(0, dest="acc")
        b.li(0, dest="zero")
        b.jump("loop")
        b.label("loop")
        v = b.lw("p")                       # may alias the store below
        b.addu("acc", v, dest="acc")
        b.sw("acc", "p")
        b.addiu("i", 1, dest="i")
        t = b.slti("i", 4)
        b.bne(t, "zero", "loop", "exit")
        b.label("exit")
        b.ret("acc")
        func = b.finish()
        loop_invariant_code_motion(func)
        assert not func.has_block("loop.preheader")

    def test_no_invariants_no_preheader(self):
        b = FunctionBuilder("f", params=())
        b.label("entry")
        b.li(0, dest="i")
        b.li(0, dest="zero")
        b.jump("loop")
        b.label("loop")
        b.addiu("i", 1, dest="i")
        t = b.slti("i", 4)
        b.bne(t, "zero", "loop", "exit")
        b.label("exit")
        b.ret("i")
        func = b.finish()
        loop_invariant_code_motion(func)
        assert not func.has_block("loop.preheader")

    def test_entry_self_loop_gets_preheader_as_entry(self):
        b = FunctionBuilder("f", params=("k",))
        b.label("loop")
        c = b.li(5)
        inv = b.mult("k", c)
        b.move(inv, dest="acc")
        b.addiu("acc", 1, dest="acc")       # make it non-trivial
        b.li(0, dest="zero")
        b.blez("acc", "loop", "exit")
        b.label("exit")
        b.ret("acc")
        func = b.finish()
        loop_invariant_code_motion(func)
        if func.has_block("loop.preheader"):
            assert func.entry == "loop.preheader"
            func.verify()

    def test_unroll_sees_through_preheader(self):
        func = counted_loop_with_invariant()
        loop_invariant_code_motion(func)
        unroll_loops(func, factor=5)
        assert func.block("loop").annotations.get("unrolled_by") == 5

    def test_o3_pipeline_with_licm_on_workloads(self):
        from repro.workloads import all_workloads
        for workload in all_workloads():
            program, args = workload.build()
            optimized = optimize(program, "O3")
            result, __, ___ = run_program(optimized, args=args)
            assert result == workload.reference(), workload.name
