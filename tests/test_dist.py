"""The remote evalcache tier: protocol, server, client and the stack.

The contracts under test, bottom-up:

* the wire format round-trips every op and rejects truncation,
  trailing bytes and unknown tags as :class:`ProtocolError`;
* the server store is a bounded first-write-wins LRU;
* the client never raises on network trouble — a dead server, a rogue
  peer speaking garbage, a mid-sweep kill all degrade to local misses
  behind a circuit breaker, bit-identically;
* the four-tier stack (local dict → shared shm table → remote TCP →
  recompute) answers from the *nearest* tier that has the value and
  promotes farther hits into nearer tiers;
* scope isolation: a cycle count stored under one machine scope never
  answers a probe from another.
"""

import pickle
import socket
import socketserver
import threading

import pytest

from repro.core.evalcache import EvalCache
from repro.core.pool import SharedEvalCache, shared_key_bytes
from repro.dist import protocol
from repro.dist.client import (
    REMOTE_ENV,
    CircuitBreaker,
    RemoteEvalCache,
    remote_cache,
    reset_remote_cache,
)
from repro.dist.server import CacheStore, EvalCacheServer
from repro.eval.persistence import (
    CACHE_DIR_ENV,
    CACHE_ENV,
    CACHE_MAX_BYTES_ENV,
    ExplorationCache,
)


@pytest.fixture
def server():
    instance = EvalCacheServer(port=0)
    instance.start_in_thread()
    yield instance
    instance.stop()


@pytest.fixture
def client(server):
    instance = RemoteEvalCache(server.address, timeout=5.0)
    yield instance
    instance.close()


@pytest.fixture
def remote_env(server, monkeypatch):
    """Point the process-wide singleton at the fixture server."""
    monkeypatch.setenv(REMOTE_ENV, server.address)
    monkeypatch.setenv("REPRO_REMOTE_TIMEOUT", "5.0")
    reset_remote_cache()
    yield server
    reset_remote_cache()


# -- protocol ---------------------------------------------------------------

def test_request_roundtrips():
    cases = [
        (protocol.encode_get(b"key"), protocol.OP_GET, (b"key",)),
        (protocol.encode_mget([b"a", b"b"]), protocol.OP_MGET,
         ([b"a", b"b"],)),
        (protocol.encode_put(b"k", b"v"), protocol.OP_PUT, (b"k", b"v")),
        (protocol.encode_mput([(b"k", b"v"), (b"l", b"w")]),
         protocol.OP_MPUT, ([(b"k", b"v"), (b"l", b"w")],)),
        (protocol.encode_stats(), protocol.OP_STATS, ()),
        (protocol.encode_snap(10, 8), protocol.OP_SNAP, (10, 8)),
    ]
    for payload, want_op, want_args in cases:
        op, args = protocol.decode_request(payload)
        assert (op, args) == (want_op, want_args)


def test_response_roundtrips():
    assert protocol.decode_get_response(
        protocol.encode_ok(protocol.encode_found(b"value"))) == b"value"
    assert protocol.decode_get_response(
        protocol.encode_ok(protocol.encode_found(None))) is None
    assert protocol.decode_mget_response(
        protocol.encode_mget_response([b"x", None]), 2) == [b"x", None]
    assert protocol.decode_count_response(
        protocol.encode_count_response(7)) == 7
    assert protocol.decode_stats_response(
        protocol.encode_stats_response({"hits": 3})) == {"hits": 3}
    assert protocol.decode_snap_response(
        protocol.encode_snap_response([(b"k", b"v")])) == [(b"k", b"v")]


def test_protocol_rejects_malformed_frames():
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_request(b"")                  # empty
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_request(b"Z")                 # unknown op
    truncated = protocol.encode_put(b"key", b"value")[:-3]
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_request(truncated)
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_request(protocol.encode_get(b"k") + b"extra")
    with pytest.raises(protocol.ProtocolError):
        protocol.frame_length(b"\xff\xff\xff\xff")    # > MAX_FRAME
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_get_response(
            protocol.encode_err("boom"))              # ERR status raises
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_mget_response(
            protocol.encode_mget_response([b"x"]), 2)  # count mismatch


def test_cycles_pack_unpack():
    for value in (0, 1, 123456789, -1, 2**62):
        assert protocol.unpack_cycles(protocol.pack_cycles(value)) == value
    assert protocol.unpack_cycles(b"short") is None   # blobs are not cycles


# -- the server store -------------------------------------------------------

def test_store_first_write_wins_and_lru():
    store = CacheStore(max_entries=3)
    assert store.put(b"a", b"1") and store.put(b"b", b"2") \
        and store.put(b"c", b"3")
    assert store.put(b"a", b"other") is False         # first write wins
    assert store.get(b"a") == b"1"
    # "a" was just refreshed, so inserting two more evicts b then c.
    store.put(b"d", b"4")
    store.put(b"e", b"5")
    assert store.get(b"b") is None and store.get(b"c") is None
    assert store.get(b"a") == b"1"
    assert store.evictions == 2


def test_store_byte_bound_and_snapshot():
    store = CacheStore(max_entries=100, max_bytes=10)
    store.put(b"big", b"x" * 8)
    store.put(b"small", b"yy")                        # 10 bytes: both fit
    assert len(store) == 2
    store.put(b"third", b"zzz")                       # over budget: evict
    assert store.get(b"big") is None
    assert store.value_bytes <= 10
    # Snapshot returns youngest first and filters by value length.
    pairs = store.snapshot(limit=10, max_value_len=2)
    assert (b"small", b"yy") in pairs
    assert all(len(value) <= 2 for __, value in pairs)
    assert store.snapshot(limit=0, max_value_len=0) == []


def test_store_never_evicts_sole_entry():
    store = CacheStore(max_entries=10, max_bytes=4)
    store.put(b"huge", b"x" * 100)                    # alone: stays
    assert store.get(b"huge") is not None


# -- client against a live server -------------------------------------------

def test_cycles_roundtrip_and_batching(client):
    client.put_cycles(b"scope|k1", 123)
    assert client.pending == 1                        # logged, not sent
    assert client.get_cycles(b"scope|k1") is None     # not flushed yet
    assert client.flush() == 1
    assert client.get_cycles(b"scope|k1") == 123
    assert client.tallies["hits"] == 1
    assert client.mget_cycles([b"scope|k1", b"scope|k2"]) == [123, None]
    assert client.mget_cycles([]) == []


def test_flush_threshold_triggers_mput(server):
    client = RemoteEvalCache(server.address, timeout=5.0,
                             flush_threshold=3)
    try:
        client.put_cycles(b"a", 1)
        client.put_cycles(b"b", 2)
        assert client.pending == 2
        client.put_cycles(b"c", 3)                    # hits the threshold
        assert client.pending == 0
        assert client.tallies["flushes"] == 1
        assert server.store.inserted == 3
    finally:
        client.close()


def test_blob_roundtrip_and_size_cap(server):
    client = RemoteEvalCache(server.address, timeout=5.0, max_blob=16)
    try:
        assert client.put_blob(b"blob|k", b"payload") is True
        assert client.get_blob(b"blob|k") == b"payload"
        assert client.get_blob(b"blob|missing") is None
        assert client.put_blob(b"blob|big", b"x" * 17) is False  # capped
    finally:
        client.close()


def test_server_stats_and_snapshot(client):
    client.put_cycles(b"k1", 11)
    client.flush()
    client.put_blob(b"k2", b"not-a-cycle-count")
    stats = client.server_stats()
    assert stats["entries"] == 2 and stats["inserted"] == 2
    rows = client.snapshot_cycle_rows()
    assert rows == [(b"k1", 11)]                      # blob filtered out


def test_cross_scope_isolation(client):
    key = ("fingerprint", (), 100)
    client.put_cycles(shared_key_bytes("2is|4/2", key), 42)
    client.flush()
    assert client.get_cycles(shared_key_bytes("2is|4/2", key)) == 42
    assert client.get_cycles(shared_key_bytes("4is|8/4", key)) is None


# -- fault paths ------------------------------------------------------------

def _free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def test_dead_server_is_instant_miss_behind_breaker():
    client = RemoteEvalCache("127.0.0.1:{}".format(_free_port()),
                             timeout=0.2)
    try:
        assert client.get_cycles(b"k") is None
        assert client.tallies["errors"] == 1
        assert client.available is False              # breaker open
        assert client.get_cycles(b"k") is None        # no dial attempted
        assert client.tallies["errors"] == 1
        assert client.tallies["skipped"] >= 1
        client.put_cycles(b"k", 1)
        assert client.flush() == 0                    # dropped, not raised
        assert client.tallies["put_drops"] == 1
    finally:
        client.close()


def test_breaker_backoff_doubles_and_resets():
    breaker = CircuitBreaker()
    assert breaker.allow(now=0.0)
    breaker.record_failure(now=0.0)
    assert not breaker.allow(now=0.4) and breaker.allow(now=0.6)
    breaker.record_failure(now=1.0)                   # backoff now 1.0s
    assert not breaker.allow(now=1.9) and breaker.allow(now=2.1)
    assert breaker.opens == 2
    breaker.record_success()
    assert breaker.allow(now=0.0) and breaker.backoff == 0.5


class _RogueHandler(socketserver.BaseRequestHandler):
    """Answers any frame with a corrupt (truncated-body) response."""

    def handle(self):
        try:
            self.request.recv(4096)
            # Valid length prefix, garbage body: decodes must fail.
            self.request.sendall(protocol.pack_frame(b"K\xff\xff\xff\xff"))
        except OSError:
            pass


def test_corrupted_response_counts_error_not_crash():
    rogue = socketserver.ThreadingTCPServer(("127.0.0.1", 0), _RogueHandler)
    thread = threading.Thread(target=rogue.serve_forever, daemon=True)
    thread.start()
    client = RemoteEvalCache(
        "127.0.0.1:{}".format(rogue.server_address[1]), timeout=2.0)
    try:
        assert client.get_cycles(b"k") is None        # corrupt GET body
        assert client.tallies["errors"] == 1
        assert client.tallies["misses"] == 1
    finally:
        client.close()
        rogue.shutdown()
        rogue.server_close()
        thread.join(timeout=5.0)


def test_server_rejects_garbage_and_stays_up(server, client):
    """A malformed frame gets an ERR answer; the server keeps serving."""
    raw = socket.create_connection((server.host, server.port), timeout=5.0)
    try:
        raw.sendall(protocol.pack_frame(b"Z-unknown-op"))
        prefix = raw.recv(4)
        body = raw.recv(protocol.frame_length(prefix))
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_count_response(body)      # ERR raises
    finally:
        raw.close()
    client.put_cycles(b"after", 9)
    client.flush()
    assert client.get_cycles(b"after") == 9           # unaffected
    assert server.protocol_errors == 1


# -- the four-tier stack ----------------------------------------------------

def test_evalcache_promotes_remote_hits(remote_env):
    """A remote hit is served, tallied and promoted into the local dict."""
    writer = EvalCache(scope="2is|4/2")
    writer.put(("key", 1), 777)
    remote_cache().flush()

    reader = EvalCache(scope="2is|4/2")
    assert reader.get(("key", 1)) == 777
    assert reader.remote_hits == 1 and reader.hits == 1
    # Promoted: the repeat probe is a pure dict hit (no new remote get).
    gets_before = remote_cache().tallies["gets"]
    assert reader.get(("key", 1)) == 777
    assert remote_cache().tallies["gets"] == gets_before

    other_scope = EvalCache(scope="4is|8/4")
    assert other_scope.get(("key", 1)) is None        # isolation holds


def test_shared_tier_answers_before_remote(remote_env, monkeypatch):
    """Tier order: the shm table wins; its hit never dials the server."""
    from repro.core import pool as pool_module

    shared = SharedEvalCache(slots=256)
    try:
        cache = EvalCache(scope="s")
        key = ("k",)
        shared.insert(shared_key_bytes("s", key), 555)
        monkeypatch.setattr(pool_module, "_WORKER_SHARED", shared)
        gets_before = remote_cache().tallies["gets"]
        assert cache.get(key) == 555
        assert cache.shared_hits == 1 and cache.remote_hits == 0
        assert remote_cache().tallies["gets"] == gets_before
    finally:
        shared.close()


def test_worker_remote_hit_feeds_insert_log(remote_env, monkeypatch):
    """In a worker, a remote hit lands in the shm insert log (promotion
    into the shared table happens via the parent's fold), and a worker
    put never writes to the server directly."""
    from repro.core import parallel as parallel_module
    from repro.core import pool as pool_module

    writer = EvalCache(scope="s")
    writer.put(("warm",), 888)
    remote_cache().flush()

    log = []
    monkeypatch.setattr(pool_module, "_WORKER_LOG", log)
    monkeypatch.setattr(parallel_module, "_in_worker", True)
    worker_cache = EvalCache(scope="s")
    assert worker_cache.get(("warm",)) == 888
    assert log == [(shared_key_bytes("s", ("warm",)), 888)]

    pending_before = remote_cache().pending
    worker_cache.put(("computed",), 999)
    assert remote_cache().pending == pending_before   # parent's job
    assert log[-1] == (shared_key_bytes("s", ("computed",)), 999)


def test_disk_cache_remote_blob_promotion(remote_env, tmp_path,
                                          monkeypatch):
    monkeypatch.setenv(CACHE_ENV, "1")
    monkeypatch.delenv(CACHE_MAX_BYTES_ENV, raising=False)
    payload = {"result": [1, 2, 3]}

    first = ExplorationCache(directory=str(tmp_path / "host_a"))
    first.store("deadbeef", payload)
    assert first.stats["remote_stores"] == 1

    # A different "host" (fresh directory) misses disk, hits remote,
    # and promotes the bundle onto its own disk.
    second = ExplorationCache(directory=str(tmp_path / "host_b"))
    assert second.load("deadbeef") == payload
    assert second.stats["remote_hits"] == 1
    assert (tmp_path / "host_b" / "deadbeef.pkl").exists()
    # Third load is a pure disk hit.
    assert second.load("deadbeef") == payload
    assert second.stats["hits"] == 1


def test_disk_cache_corrupt_remote_blob_is_miss(remote_env, tmp_path):
    client = remote_cache()
    client.put_blob(b"explored|badblob", b"this is not a pickle")
    cache = ExplorationCache(directory=str(tmp_path), enabled=True)
    assert cache.load("badblob") is None
    assert cache.stats["remote_hits"] == 0
    assert cache.stats["misses"] == 1


def test_disk_cache_lru_eviction(tmp_path, monkeypatch):
    monkeypatch.delenv(REMOTE_ENV, raising=False)
    reset_remote_cache()
    blob_size = len(pickle.dumps("x" * 100, pickle.HIGHEST_PROTOCOL))
    cache = ExplorationCache(directory=str(tmp_path), enabled=True,
                             max_bytes=2 * blob_size)
    cache.store("aa", "x" * 100)
    cache.store("bb", "x" * 100)
    assert sorted(p.name for p in tmp_path.glob("*.pkl")) \
        == ["aa.pkl", "bb.pkl"]
    # Refresh "aa" so "bb" is the LRU victim of the next store.
    import os
    import time
    old = time.time() - 1000
    os.utime(tmp_path / "bb.pkl", (old, old))
    assert cache.load("aa") == "x" * 100
    cache.store("cc", "x" * 100)
    names = sorted(p.name for p in tmp_path.glob("*.pkl"))
    assert names == ["aa.pkl", "cc.pkl"]
    assert cache.evictions == 1
    assert cache.load("bb") is None


def test_fresh_store_never_self_evicts(tmp_path, monkeypatch):
    monkeypatch.delenv(REMOTE_ENV, raising=False)
    reset_remote_cache()
    cache = ExplorationCache(directory=str(tmp_path), enabled=True,
                             max_bytes=8)
    cache.store("oversized", "y" * 1000)              # alone over budget
    assert (tmp_path / "oversized.pkl").exists()
    assert cache.load("oversized") == "y" * 1000


def test_pool_preloads_shared_table_from_remote(remote_env):
    """A new pool seeds its shm table from the server before forking."""
    from repro.core.pool import WorkerPool

    writer = EvalCache(scope="s")
    writer.put(("hot",), 321)
    remote_cache().flush()

    pool = WorkerPool(workers=1)
    try:
        assert pool.stats["remote_preload_rows"] >= 1
        assert pool.cache.lookup(shared_key_bytes("s", ("hot",))) == 321
    finally:
        pool.shutdown()


def test_singleton_lifecycle(monkeypatch):
    monkeypatch.delenv(REMOTE_ENV, raising=False)
    reset_remote_cache()
    assert remote_cache() is None
    monkeypatch.setenv(REMOTE_ENV, "not-an-address")
    assert remote_cache() is None                     # malformed: disabled
    monkeypatch.setenv(REMOTE_ENV, "127.0.0.1:1")
    first = remote_cache()
    assert first is not None and remote_cache() is first
    monkeypatch.setenv(REMOTE_ENV, "127.0.0.1:2")
    assert remote_cache() is not first                # address change
    reset_remote_cache()
