"""Tests for Operation-Scheduling (Figs. 4.3.3/4.3.4) and clusters."""

import pytest

from repro.config import ISEConstraints
from repro.core.iteration import IterationSchedule
from repro.hwlib import DEFAULT_DATABASE, DEFAULT_TECHNOLOGY, \
    default_io_table
from repro.sched import MachineConfig

from conftest import chain_dfg, diamond_dfg, wide_dfg


def make_schedule(dfg, machine=None, constraints=None):
    machine = machine or MachineConfig(2, "4/2")
    constraints = constraints or ISEConstraints()
    return IterationSchedule(dfg, machine, DEFAULT_TECHNOLOGY, constraints)


def options_of(dfg, uid):
    return default_io_table(dfg.op(uid), DEFAULT_DATABASE)


class TestSoftwareScheduling:
    def test_chain_start_after_parent(self):
        dfg = chain_dfg(3)
        sched = make_schedule(dfg)
        for uid in dfg.nodes:
            sched.schedule_software(uid, options_of(dfg, uid).software[0])
        assert [sched.start[uid] for uid in dfg.nodes] == [0, 1, 2]
        assert sched.makespan == 3

    def test_issue_width_respected(self):
        dfg = wide_dfg(6)
        sched = make_schedule(dfg, MachineConfig(2, "10/5"))
        roots = [uid for uid in dfg.nodes
                 if not list(dfg.predecessors(uid))]
        for uid in roots:
            sched.schedule_software(uid, options_of(dfg, uid).software[0])
        per_cycle = {}
        for uid in roots:
            per_cycle.setdefault(sched.start[uid], []).append(uid)
        assert all(len(v) <= 2 for v in per_cycle.values())

    def test_read_ports_respected(self):
        dfg = wide_dfg(6)
        sched = make_schedule(dfg, MachineConfig(4, "4/2"))
        roots = [uid for uid in dfg.nodes
                 if not list(dfg.predecessors(uid))]
        for uid in roots:
            sched.schedule_software(uid, options_of(dfg, uid).software[0])
        # 2 reads per op, 4 read ports -> at most 2 ops per cycle.
        per_cycle = {}
        for uid in roots:
            per_cycle.setdefault(sched.start[uid], []).append(uid)
        assert all(len(v) <= 2 for v in per_cycle.values())


class TestHardwareScheduling:
    def test_chain_fuses_into_one_cluster(self):
        dfg = chain_dfg(3)
        sched = make_schedule(dfg)
        for uid in dfg.nodes:
            hw = options_of(dfg, uid).hardware[0]
            sched.schedule_hardware(uid, hw)
        assert len(sched.clusters) == 1
        cluster = sched.clusters[0]
        assert cluster.members == {0, 1, 2}
        assert all(sched.start[uid] == cluster.start for uid in dfg.nodes)

    def test_cluster_delay_accumulates(self):
        dfg = chain_dfg(4)
        sched = make_schedule(dfg)
        for uid in dfg.nodes:
            hw = options_of(dfg, uid).hardware[0]   # 4.04 ns adders
            sched.schedule_hardware(uid, hw)
        cluster = sched.clusters[0]
        assert cluster.delay_ns == pytest.approx(4.04 * 4)
        assert cluster.cycles == 2

    def test_port_limit_blocks_fusion(self):
        dfg = wide_dfg(6)
        constraints = ISEConstraints(n_in=2, n_out=1)
        sched = make_schedule(dfg, MachineConfig(4, "8/4"), constraints)
        for uid in dfg.nodes:
            table = options_of(dfg, uid)
            sched.schedule_hardware(uid, table.hardware[0])
        # With IN(S) <= 2 a single cluster covering everything is
        # impossible: several clusters must exist.
        assert len(sched.clusters) > 1
        sched.verify()

    def test_sw_parent_prevents_same_cycle(self):
        dfg = chain_dfg(2)
        sched = make_schedule(dfg)
        sched.schedule_software(0, options_of(dfg, 0).software[0])
        sched.schedule_hardware(1, options_of(dfg, 1).hardware[0])
        assert sched.start[1] >= sched.finish(0)

    def test_mixed_chain_verifies(self):
        dfg = diamond_dfg()
        sched = make_schedule(dfg)
        for uid in dfg.nodes:
            table = options_of(dfg, uid)
            if uid % 2 == 0 and table.has_hardware:
                sched.schedule_hardware(uid, table.hardware[0])
            else:
                sched.schedule_software(uid, table.software[0])
        sched.verify()

    def test_join_does_not_overrun_scheduled_consumer(self):
        # 0 -> 1 -> 2 and 0 -> 3; schedule 0 hw, 1 sw consumer at next
        # cycle, then try to fuse 3 into 0's cluster with a huge delay.
        dfg = diamond_dfg()
        sched = make_schedule(dfg)
        table0 = options_of(dfg, 0)
        sched.schedule_hardware(0, table0.hardware[0])
        consumer = next(iter(dfg.data_successors(0)))
        sched.schedule_software(
            consumer, options_of(dfg, consumer).software[0])
        start_before = dict(sched.start)
        # Any further hw op fusing into the cluster must keep the
        # consumer's start legal.
        sched.verify()
        assert sched.start == start_before


class TestQueries:
    def test_order_tracking(self):
        dfg = chain_dfg(3)
        sched = make_schedule(dfg)
        for uid in dfg.nodes:
            sched.schedule_software(uid, options_of(dfg, uid).software[0])
        assert [sched.order[uid] for uid in dfg.nodes] == [0, 1, 2]

    def test_double_schedule_rejected(self):
        dfg = chain_dfg(2)
        sched = make_schedule(dfg)
        opt = options_of(dfg, 0).software[0]
        sched.schedule_software(0, opt)
        with pytest.raises(Exception):
            sched.schedule_software(0, opt)

    def test_ise_groups_view(self):
        dfg = chain_dfg(2)
        sched = make_schedule(dfg)
        for uid in dfg.nodes:
            sched.schedule_hardware(uid, options_of(dfg, uid).hardware[0])
        groups = sched.ise_groups()
        assert len(groups) == 1
        members, option_of = groups[0]
        assert members == frozenset({0, 1})
        assert set(option_of) == {0, 1}

    def test_software_cycles_view(self):
        dfg = chain_dfg(2)
        sched = make_schedule(dfg)
        sched.schedule_software(0, options_of(dfg, 0).software[0])
        sched.schedule_hardware(1, options_of(dfg, 1).hardware[0])
        assert sched.software_cycles() == {0: 1}
