"""Unit tests for the packed-bitset legality kernel
(:mod:`repro.graph.bitset`).

Parity against the set-based reference implementations is covered in
breadth by ``tests/test_bitset_fuzz.py``; here the contracts around
the kernel itself are pinned: packing round-trips, the ``REPRO_BITSET``
escape hatch, lazy-cache lifetime (mutation invalidation, output-set
freshness, pickling), error-message parity of ``check_candidate``, the
two-stage :meth:`~repro.graph.bitset.BitsetDFG.classify_match` verdicts
and the batched row APIs on known shapes.
"""

import pickle

import numpy as np
import pytest

from repro.config import ISEConstraints
from repro.errors import ConstraintError
from repro.graph import analysis
from repro.graph.bitset import BITSET_ENV, BitsetDFG, bitset_enabled, \
    bitset_view
from repro.graph.fuzz import random_dfg

from conftest import chain_dfg, diamond_dfg, dfg_from_block

CONS = ISEConstraints()


class TestEscapeHatch:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(BITSET_ENV, raising=False)
        assert bitset_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "no", "off", " OFF "])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv(BITSET_ENV, value)
        assert not bitset_enabled()
        assert bitset_view(chain_dfg()) is None

    @pytest.mark.parametrize("value", ["1", "true", "", "yes"])
    def test_enabling_values(self, monkeypatch, value):
        monkeypatch.setenv(BITSET_ENV, value)
        assert bitset_enabled()

    def test_dispatchers_fall_back_to_reference(self, monkeypatch):
        dfg = diamond_dfg()
        members = set(dfg.nodes[:2])
        enabled = (analysis.is_convex(dfg, members),
                   analysis.io_counts(dfg, members),
                   analysis.is_legal(dfg, members, CONS))
        monkeypatch.setenv(BITSET_ENV, "0")
        disabled = (analysis.is_convex(dfg, members),
                    analysis.io_counts(dfg, members),
                    analysis.is_legal(dfg, members, CONS))
        assert enabled == disabled


class TestPacking:
    def test_row_of_bit_positions(self):
        dfg = chain_dfg(5)
        view = bitset_view(dfg)
        uids = view.uids
        assert view.row_of([uids[0], uids[3]]) == (1 << 0) | (1 << 3)
        assert view.row_of([]) == 0

    def test_members_roundtrip(self):
        dfg = diamond_dfg()
        view = bitset_view(dfg)
        members = sorted(dfg.nodes[:3])
        assert view.members_of(view.row_of(members)) == members

    def test_pack_rows_shape_and_roundtrip(self):
        dfg = random_dfg(3, n_nodes=70)       # crosses the word boundary
        view = bitset_view(dfg)
        sets = [set(dfg.nodes[:1]), set(dfg.nodes[60:70]), set()]
        rows = view.pack_rows(sets)
        assert rows.dtype == np.uint64
        assert rows.shape == (3, view.n_words)
        bools = view.unpack_rows(rows)
        assert bools.shape == (3, view.n)
        for k, members in enumerate(sets):
            assert {view.uids[i] for i in np.flatnonzero(bools[k])} \
                == members

    def test_padding_bits_stay_zero(self):
        dfg = random_dfg(5, n_nodes=70)
        view = bitset_view(dfg)
        rows = view.pack_rows([set(dfg.nodes)])
        bits = np.unpackbits(rows.view(np.uint8), bitorder="little")
        assert not bits[view.n:].any()


class TestCacheLifetime:
    def test_view_is_cached(self):
        dfg = chain_dfg()
        assert bitset_view(dfg) is bitset_view(dfg)

    def test_mutators_invalidate(self):
        from repro.isa.instruction import Operation
        dfg = chain_dfg(4)
        before = bitset_view(dfg)
        uid = dfg.add_operation(Operation(99, "addu",
                                          sources=("a", "b"),
                                          dests=("z",)),
                                ext_inputs=("a", "b"))
        after = bitset_view(dfg)
        assert after is not before
        assert uid in after.index
        dfg.add_data_edge(dfg.nodes[0], 99, "t0")
        assert bitset_view(dfg) is not after

    def test_output_edit_detected_by_freshness(self):
        dfg = chain_dfg(4)
        view = bitset_view(dfg)
        # Direct output_nodes edits bypass the mutator hooks; fresh()
        # catches the drift and bitset_view rebuilds.
        dfg.output_nodes.add(dfg.nodes[0])
        assert not view.fresh()
        rebuilt = bitset_view(dfg)
        assert rebuilt is not view
        assert rebuilt.fresh()

    def test_pickle_drops_view(self):
        dfg = diamond_dfg()
        view = bitset_view(dfg)
        assert view is not None
        clone = pickle.loads(pickle.dumps(dfg))
        assert clone._bitset is None
        # The clone rebuilds its own, with identical verdicts.
        members = set(dfg.nodes)
        assert bitset_view(clone).io_counts(members) \
            == view.io_counts(members)

    def test_cycle_raises(self):
        dfg = chain_dfg(3)
        dfg.graph.add_edge(dfg.nodes[-1], dfg.nodes[0], kind="order",
                           values=set())
        dfg._adj = None
        dfg._bitset = None
        with pytest.raises(ConstraintError, match="cycle"):
            BitsetDFG(dfg)


class TestScalarChecks:
    def test_check_candidate_message_parity(self):
        dfg = random_dfg(11, n_nodes=32)
        view = bitset_view(dfg)
        pools = [set(), set(dfg.nodes[:6]), set(dfg.nodes),
                 {dfg.nodes[0], dfg.nodes[-1]}]
        for members in pools:
            try:
                analysis.check_candidate_reference(dfg, members, CONS)
                expected = None
            except ConstraintError as err:
                expected = str(err)
            if expected is None:
                view.check_candidate(members, CONS)
            else:
                with pytest.raises(ConstraintError) as caught:
                    view.check_candidate(members, CONS)
                assert str(caught.value) == expected

    def test_io_counts_multi_producer_name(self):
        # One name defined twice; candidate holds only the later
        # producer, so the earlier producer's edge still pulls the
        # name in and OUT counts it once.
        def body(b):
            t = b.addu("a", "b")
            t = b.addu(t, "c")      # redefines the temp name lineage
            return b.xor(t, "d")

        dfg = dfg_from_block(body)
        view = bitset_view(dfg)
        for members in ({dfg.nodes[1]}, set(dfg.nodes[1:]),
                        set(dfg.nodes)):
            assert view.io_counts(members) == (
                len(analysis.input_values(dfg, members)),
                len(analysis.output_values(dfg, members)))

    def test_is_connected(self):
        dfg = diamond_dfg()
        view = bitset_view(dfg)
        assert view.is_connected(set(dfg.nodes))
        assert view.is_connected({dfg.nodes[0]})
        assert not view.is_connected(set())
        # The two middle nodes of a diamond are not adjacent.
        assert not view.is_connected({dfg.nodes[1], dfg.nodes[2]})

    def test_classify_match_verdicts(self):
        dfg = random_dfg(23, n_nodes=48, p_memory=0.2)
        view = bitset_view(dfg)
        memory = [uid for uid in dfg.nodes if dfg.op(uid).is_memory]
        assert memory, "fuzz block lost its memory ops"
        assert view.classify_match(set(), CONS) == "cheap"
        assert view.classify_match({memory[0]}, CONS) == "cheap"
        seen = set()
        for uid in dfg.nodes:
            members = {uid}
            verdict = view.classify_match(members, CONS)
            legal = analysis.is_legal_reference(dfg, members, CONS)
            assert (verdict == "legal") == legal
            seen.add(verdict)
        # A convexity-only kill ("illegal"): endpoints of a chain.
        chain = chain_dfg(4)
        cview = bitset_view(chain)
        gap = {chain.nodes[0], chain.nodes[-1]}
        assert cview.classify_match(gap, CONS) == "illegal"


class _CountingObs:
    def __init__(self):
        self.counters = {}

    def count(self, name, n=1):
        self.counters[name] = self.counters.get(name, 0) + n


class TestMatchCounters:
    """find_matches splits mapping verdicts into the cheap pre-filter
    (``match.prefilter_rejected``) vs the full legality stage
    (``match.legality_checked``)."""

    def _dfg(self):
        def body(b):
            t = b.xor("a", "b")       # 0
            u = b.xor(t, "c")         # 1
            return b.xor(t, u)        # 2
        return dfg_from_block(body)

    def _pattern(self, dfg):
        from repro.graph import pattern_graph
        return pattern_graph(dfg, {0, 1})

    def test_port_kills_count_as_prefilter(self):
        from repro.graph import find_matches
        dfg = self._dfg()
        obs = _CountingObs()
        tight = ISEConstraints(n_in=2, n_out=1)
        matches = find_matches(dfg, self._pattern(dfg),
                               constraints=tight, obs=obs)
        # {0,1} and {0,2} die on IN(S)=3; {1,2} survives.
        assert obs.counters == {"match.prefilter_rejected": 2,
                                "match.legality_checked": 1}
        assert {frozenset(m) for m in matches} == {frozenset({1, 2})}

    def test_convexity_kills_go_the_distance(self):
        from repro.graph import find_matches
        dfg = self._dfg()
        obs = _CountingObs()
        matches = find_matches(dfg, self._pattern(dfg),
                               constraints=CONS, obs=obs)
        # All three pairs clear the cheap masks; only {0,2} is killed
        # (non-convex via the 0 -> 1 -> 2 escape path).
        assert obs.counters == {"match.legality_checked": 3}
        assert {frozenset(m) for m in matches} == {
            frozenset({0, 1}), frozenset({1, 2})}

    def test_fallback_counts_everything_as_checked(self, monkeypatch):
        from repro.graph import find_matches
        monkeypatch.setenv(BITSET_ENV, "0")
        dfg = self._dfg()
        obs = _CountingObs()
        tight = ISEConstraints(n_in=2, n_out=1)
        matches = find_matches(dfg, self._pattern(dfg),
                               constraints=tight, obs=obs)
        assert obs.counters == {"match.legality_checked": 3}
        assert {frozenset(m) for m in matches} == {frozenset({1, 2})}


class TestBatchedRows:
    def test_legal_rows_matches_scalar(self):
        dfg = random_dfg(29, n_nodes=40)
        view = bitset_view(dfg)
        pools = [set(dfg.nodes[k:k + 4]) for k in range(0, 36, 3)]
        pools += [set(), set(dfg.nodes)]
        rows = view.pack_rows(pools)
        legal = view.legal_rows(rows, CONS)
        for k, members in enumerate(pools):
            assert bool(legal[k]) == \
                analysis.is_legal_reference(dfg, members, CONS)

    def test_io_counts_rows_matches_scalar(self):
        dfg = random_dfg(31, n_nodes=40)
        view = bitset_view(dfg)
        pools = [set(dfg.nodes[k:k + 5]) for k in range(0, 35, 5)]
        n_in, n_out = view.io_counts_rows(view.pack_rows(pools))
        for k, members in enumerate(pools):
            assert (int(n_in[k]), int(n_out[k])) == (
                len(analysis.input_values(dfg, members)),
                len(analysis.output_values(dfg, members)))

    def test_convex_rows_matches_scalar(self):
        dfg = random_dfg(37, n_nodes=40)
        view = bitset_view(dfg)
        pools = [set(dfg.nodes[k:k + 6]) for k in range(0, 30, 2)]
        pools.append({dfg.nodes[0], dfg.nodes[-1]})
        convex = view.convex_rows(view.pack_rows(pools))
        for k, members in enumerate(pools):
            assert bool(convex[k]) == \
                analysis.is_convex_reference(dfg, members)

    def test_empty_batch(self):
        view = bitset_view(chain_dfg())
        rows = view.pack_rows([])
        assert view.legal_rows(rows, CONS).shape == (0,)
