"""Tests for the simulated-annealing comparator."""

import pytest

from repro.baselines import AnnealingExplorer
from repro.graph import check_candidate
from repro.sched import MachineConfig

from conftest import chain_dfg, diamond_dfg, memory_dfg


def make_explorer(seed=3, steps=300, **kwargs):
    return AnnealingExplorer(MachineConfig(2, "4/2"), seed=seed,
                             steps=steps, **kwargs)


class TestAnnealing:
    def test_improves_chain(self):
        result = make_explorer().explore(chain_dfg(8))
        assert result.final_cycles < result.base_cycles
        assert result.candidates

    def test_candidates_legal(self):
        dfg = diamond_dfg()
        explorer = make_explorer()
        result = explorer.explore(dfg)
        for candidate in result.candidates:
            assert candidate.source == "SA"
            check_candidate(dfg, candidate.members, explorer.constraints)

    def test_memory_never_grouped(self):
        dfg = memory_dfg()
        result = make_explorer().explore(dfg)
        for candidate in result.candidates:
            assert all(not dfg.op(uid).is_memory
                       for uid in candidate.members)

    def test_deterministic_under_seed(self):
        dfg = diamond_dfg()
        a = make_explorer(seed=9).explore(dfg)
        b = make_explorer(seed=9).explore(dfg)
        assert a.final_cycles == b.final_cycles
        assert [c.members for c in a.candidates] == \
            [c.members for c in b.candidates]

    def test_zero_steps_is_all_software(self):
        result = make_explorer(steps=0).explore(chain_dfg(5))
        assert result.final_cycles == result.base_cycles
        assert result.candidates == []

    def test_more_steps_never_worse(self):
        dfg = diamond_dfg()
        short = make_explorer(seed=4, steps=50).explore(dfg)
        long = make_explorer(seed=4, steps=600).explore(dfg)
        assert long.final_cycles <= short.final_cycles

    def test_iterations_reported(self):
        result = make_explorer(steps=120).explore(chain_dfg(4))
        assert 0 < result.iterations <= 120
