"""Property-based tests (hypothesis) for core invariants."""

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ExplorationParams, ISEConstraints
from repro.core import MultiIssueExplorer
from repro.core.make_convex import legalize_components, make_convex
from repro.graph import (
    alap_schedule,
    asap_schedule,
    build_dfg,
    check_candidate,
    input_values,
    is_convex,
    is_legal,
)
from repro.hwlib import DEFAULT_TECHNOLOGY
from repro.ir import FunctionBuilder, Program, run_program
from repro.ir.analysis import liveness
from repro.ir.passes import optimize
from repro.sched import MachineConfig, contract_dfg, list_schedule

_MASK = 0xFFFFFFFF

#: Opcodes used by the random straight-line generator (register forms).
_BINARY_OPS = ("addu", "subu", "and", "or", "xor", "nor", "slt", "sltu",
               "sllv", "srlv", "mult")

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])
FAST = settings(max_examples=60, deadline=None)


@st.composite
def straight_line_blocks(draw, min_ops=3, max_ops=16):
    """A random straight-line block as (op, src1_idx, src2_idx) picks.

    Sources index into params (negative) or earlier results, so the
    lowered DFG is always a well-formed DAG.
    """
    n = draw(st.integers(min_ops, max_ops))
    instrs = []
    for i in range(n):
        op = draw(st.sampled_from(_BINARY_OPS))
        a = draw(st.integers(-4, i - 1))
        b = draw(st.integers(-4, i - 1))
        instrs.append((op, a, b))
    return instrs


def lower(instrs):
    params = ("p0", "p1", "p2", "p3")
    b = FunctionBuilder("rand", params=params)
    b.label("bb")
    values = []

    def operand(idx):
        return params[-idx - 1] if idx < 0 else values[idx]

    for op, a_idx, b_idx in instrs:
        method = {"and": "and_", "or": "or_"}.get(op, op)
        values.append(getattr(b, method)(operand(a_idx), operand(b_idx)))
    b.ret(values[-1])
    func = b.finish()
    __, live_out = liveness(func)
    return build_dfg(func.block("bb"), live_out["bb"], function="rand")


class TestDFGProperties:
    @FAST
    @given(straight_line_blocks())
    def test_dfg_acyclic_and_uid_order_topological(self, instrs):
        dfg = lower(instrs)
        assert nx.is_directed_acyclic_graph(dfg.graph)
        for src, dst in dfg.graph.edges:
            assert src < dst

    @FAST
    @given(straight_line_blocks())
    def test_asap_never_after_alap(self, instrs):
        dfg = lower(instrs)
        unit = lambda uid: 1
        asap = asap_schedule(dfg, unit)
        alap = alap_schedule(dfg, unit)
        assert all(asap[uid] <= alap[uid] for uid in dfg.nodes)

    @FAST
    @given(straight_line_blocks())
    def test_whole_graph_inputs_are_external(self, instrs):
        dfg = lower(instrs)
        ins = input_values(dfg, set(dfg.nodes))
        assert ins <= {"p0", "p1", "p2", "p3"}


class TestConvexityProperties:
    @FAST
    @given(straight_line_blocks(), st.sets(st.integers(0, 15)))
    def test_make_convex_pieces_are_convex_partition(self, instrs, picks):
        dfg = lower(instrs)
        members = {uid for uid in picks if uid in dfg.graph}
        pieces = make_convex(dfg, members)
        union = set().union(*pieces) if pieces else set()
        assert union == members
        for piece in pieces:
            assert is_convex(dfg, piece)
        for a in pieces:
            for b in pieces:
                assert a is b or not (set(a) & set(b))

    @FAST
    @given(straight_line_blocks(), st.sets(st.integers(0, 15)))
    def test_legalize_outputs_are_legal(self, instrs, picks):
        dfg = lower(instrs)
        members = {uid for uid in picks if uid in dfg.graph}
        constraints = ISEConstraints(n_in=3, n_out=1)
        for piece in legalize_components(dfg, members, constraints):
            assert len(piece) >= 2
            assert is_legal(dfg, piece, constraints)

    @FAST
    @given(straight_line_blocks())
    def test_convex_set_contracts_to_dag(self, instrs):
        dfg = lower(instrs)
        nodes = sorted(dfg.nodes)
        members = set(nodes[: max(2, len(nodes) // 2)])
        pieces = [p for p in make_convex(dfg, members) if len(p) >= 1]
        group_of = {}
        for index, piece in enumerate(pieces):
            for uid in piece:
                group_of[uid] = index
        quotient = nx.DiGraph()
        for src, dst in dfg.graph.edges:
            u = group_of.get(src, "n{}".format(src))
            v = group_of.get(dst, "n{}".format(dst))
            if u != v:
                quotient.add_edge(u, v)
        assert nx.is_directed_acyclic_graph(quotient)


class TestSchedulerProperties:
    @SLOW
    @given(straight_line_blocks(),
           st.sampled_from([(1, "4/2"), (2, "4/2"), (2, "6/3"),
                            (3, "8/4"), (4, "10/5")]))
    def test_list_schedule_always_legal(self, instrs, spec):
        width, ports = spec
        dfg = lower(instrs)
        machine = MachineConfig(width, ports)
        graph, units = contract_dfg(dfg, [], DEFAULT_TECHNOLOGY)
        schedule = list_schedule(graph, units, machine)
        schedule.verify(machine)      # raises on any violation
        assert schedule.makespan <= len(units) * 2

    @SLOW
    @given(straight_line_blocks())
    def test_wider_machines_never_slower(self, instrs):
        dfg = lower(instrs)
        graph, units = contract_dfg(dfg, [], DEFAULT_TECHNOLOGY)
        spans = [list_schedule(graph, units,
                               MachineConfig(w, "10/5")).makespan
                 for w in (1, 2, 4)]
        assert spans[0] >= spans[1] >= spans[2]


class TestInterpreterProperties:
    @FAST
    @given(st.sampled_from(_BINARY_OPS),
           st.integers(0, _MASK), st.integers(0, _MASK))
    def test_alu_matches_constfold_model(self, op, a, b):
        """The interpreter and the constant folder are two independent
        implementations of the PISA semantics; they must agree."""
        from repro.ir.passes.constfold import _EVAL
        builder = FunctionBuilder("f", params=("a", "b"))
        builder.label("entry")
        method = {"and": "and_", "or": "or_"}.get(op, op)
        t = getattr(builder, method)("a", "b")
        builder.ret(t)
        program = Program("p")
        program.add_function(builder.finish())
        result, __, ___ = run_program(program, args=(a, b))
        assert result == _EVAL[op](a, b) & _MASK


class TestPipelineProperties:
    @SLOW
    @given(st.integers(2, 40), st.integers(2, 6), st.integers(1, 9))
    def test_unrolled_counted_loop_preserves_sum(self, trips, factor, step):
        b = FunctionBuilder("f", params=())
        b.label("entry")
        b.li(0, dest="i")
        b.li(0, dest="acc")
        b.li(0, dest="zero")
        b.jump("loop")
        b.label("loop")
        b.addu("acc", "i", dest="acc")
        b.addiu("i", step, dest="i")
        t = b.slti("i", trips * step)
        b.bne(t, "zero", "loop", "exit")
        b.label("exit")
        b.ret("acc")
        program = Program("p")
        program.add_function(b.finish())
        expected, __, ___ = run_program(program)
        optimized = optimize(program, "O3", unroll_factor=factor)
        actual, __, ___ = run_program(optimized)
        assert actual == expected

    @SLOW
    @given(straight_line_blocks(min_ops=4, max_ops=12),
           st.tuples(st.integers(0, _MASK), st.integers(0, _MASK),
                     st.integers(0, _MASK), st.integers(0, _MASK)))
    def test_o3_preserves_straight_line_semantics(self, instrs, args):
        params = ("p0", "p1", "p2", "p3")
        b = FunctionBuilder("f", params=params)
        b.label("bb")
        values = []

        def operand(idx):
            return params[-idx - 1] if idx < 0 else values[idx]

        for op, a_idx, b_idx in instrs:
            method = {"and": "and_", "or": "or_"}.get(op, op)
            values.append(getattr(b, method)(operand(a_idx),
                                             operand(b_idx)))
        b.ret(values[-1])
        program = Program("p")
        program.add_function(b.finish())
        expected, __, ___ = run_program(program, args=args)
        optimized = optimize(program, "O3")
        actual, __, ___ = run_program(optimized, args=args)
        assert actual == expected


class TestExplorationProperties:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(straight_line_blocks(min_ops=4, max_ops=10),
           st.integers(0, 3))
    def test_explorer_outputs_always_legal(self, instrs, seed):
        dfg = lower(instrs)
        machine = MachineConfig(2, "4/2")
        params = ExplorationParams(max_iterations=30, restarts=1,
                                   max_rounds=2)
        explorer = MultiIssueExplorer(machine, params=params, seed=seed)
        result = explorer.explore(dfg)
        assert result.final_cycles <= result.base_cycles
        for candidate in result.candidates:
            check_candidate(dfg, candidate.members, explorer.constraints)
            assert candidate.cycles >= 1
            assert candidate.area > 0
