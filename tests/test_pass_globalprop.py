"""Tests for global (cross-block) constant propagation."""

import pytest

from repro.ir import FunctionBuilder, Program, run_program
from repro.ir.passes import (
    dead_code_elimination,
    global_constant_propagation,
    optimize,
)


def cross_block_function():
    """Constant mask defined in entry, used in a later block."""
    b = FunctionBuilder("f", params=("x",))
    b.label("entry")
    b.li(0xFF, dest="mask")
    b.li(0, dest="zero")
    t = b.slt("x", "zero")
    b.bne(t, "zero", "neg", "pos")
    b.label("neg")
    r1 = b.and_("x", "mask")
    b.ret(r1)
    b.label("pos")
    s = b.addu("x", "mask")
    r2 = b.and_(s, "mask")
    b.ret(r2)
    return b.finish()


class TestGlobalProp:
    def test_cross_block_use_rewritten(self):
        func = cross_block_function()
        global_constant_propagation(func)
        ops = [i.op for i in func.block("pos").body]
        assert "addiu" in ops          # addu x, mask -> addiu x, 255
        assert "andi" in ops

    def test_defining_li_untouched_until_dce(self):
        func = cross_block_function()
        global_constant_propagation(func)
        entry_ops = [i.op for i in func.block("entry").body]
        assert entry_ops.count("li") == 2
        dead_code_elimination(func)
        entry_ops = [i.op for i in func.block("entry").body]
        assert entry_ops.count("li") <= 1   # mask li now dead

    def test_semantics_preserved(self):
        func = cross_block_function()
        program = Program("p")
        program.add_function(func)
        cases = [0, 5, 0x80000000, 0xFFFFFFFF]
        before = [run_program(program, args=(x,))[0] for x in cases]
        global_constant_propagation(func)
        after = [run_program(program, args=(x,))[0] for x in cases]
        assert before == after

    def test_commutative_operand_swap(self):
        b = FunctionBuilder("f", params=("x",))
        b.label("entry")
        b.li(7, dest="c")
        b.jump("use")
        b.label("use")
        r = b.addu("c", "x")       # constant in the FIRST position
        b.ret(r)
        func = b.finish()
        global_constant_propagation(func)
        instr = func.block("use").body[0]
        assert instr.op == "addiu"
        assert instr.sources == ("x",)
        assert instr.imm == 7

    def test_non_commutative_first_operand_kept(self):
        b = FunctionBuilder("f", params=("x",))
        b.label("entry")
        b.li(7, dest="c")
        b.jump("use")
        b.label("use")
        r = b.subu("c", "x")       # 7 - x has no immediate form
        b.ret(r)
        func = b.finish()
        global_constant_propagation(func)
        assert func.block("use").body[0].op == "subu"

    def test_redefined_register_not_propagated(self):
        b = FunctionBuilder("f", params=("x",))
        b.label("entry")
        b.li(7, dest="c")
        b.addiu("c", 1, dest="c")      # second def: not unique
        b.jump("use")
        b.label("use")
        r = b.addu("x", "c")
        b.ret(r)
        func = b.finish()
        global_constant_propagation(func)
        assert func.block("use").body[0].op == "addu"

    def test_move_of_constant_becomes_li(self):
        b = FunctionBuilder("f", params=())
        b.label("entry")
        b.li(42, dest="c")
        b.jump("use")
        b.label("use")
        b.move("c", dest="out")
        b.ret("out")
        func = b.finish()
        global_constant_propagation(func)
        instr = func.block("use").body[0]
        assert instr.op == "li" and instr.imm == 42

    def test_fully_constant_fold(self):
        b = FunctionBuilder("f", params=())
        b.label("entry")
        b.li(6, dest="a")
        b.li(7, dest="bb")
        b.jump("use")
        b.label("use")
        r = b.mult("a", "bb")
        b.ret(r)
        func = b.finish()
        global_constant_propagation(func)
        instr = func.block("use").body[0]
        assert instr.op == "li" and instr.imm == 42

    def test_o3_still_correct_on_all_workloads(self):
        from repro.workloads import all_workloads, extra_workloads
        for workload in all_workloads() + extra_workloads():
            program, args = workload.build()
            optimized = optimize(program, "O3")
            result, __, ___ = run_program(optimized, args=args)
            assert result == workload.reference(), workload.name
