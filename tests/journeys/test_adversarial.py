"""Adversarial service journeys: hostile concurrency, dying workers,
and cache poisoning across machine scopes.

These are the "prove it" counterparts to the happy-path journeys:

* N concurrent clients hammering one scope must all receive
  bit-identical results (digest equality against serial one-shot
  references) — multiplexing and batching may change *when* work runs,
  never *what* it computes.
* A pool worker SIGKILLed while a request is in flight must surface a
  structured error on that request (never a hang), and the very next
  request must succeed on a recreated pool.
* Forged remote-cache rows planted under one machine scope must never
  leak into another scope's results, even when the poison is preloaded
  into the shared-memory tier the explorations actually consult.
"""

import os
import signal
import threading

import pytest

from journeys.conftest import FAST

from repro import api
from repro.core.pool import (
    active_pool,
    add_dispatch_hook,
    pool_persist_enabled,
    remove_dispatch_hook,
    shutdown_pools,
)
from repro.serve import schema
from repro.serve.client import ServiceClient, ServiceError
from repro.serve.server import ExploreServer


def _digest(payload):
    return schema.explore_digest(payload)


def _reference_digest(workload, **params):
    return _digest(schema.explore_payload(api.explore(workload, **params)))


# -- concurrent clients ------------------------------------------------------

def test_concurrent_clients_get_bit_identical_results(serve_server,
                                                      make_client):
    """Four clients, one scope, a mix of identical and distinct
    fingerprints, all in flight at once — every answer digests equal to
    its serial one-shot reference, and duplicate fingerprints agree
    with each other exactly."""
    requests = [
        ("crc32", 21),
        ("crc32", 21),        # duplicate fingerprint of client 0
        ("bitcount", 21),     # same compat key, batchable with crc32
        ("crc32", 22),        # distinct fingerprint, same scope
    ]
    results = [None] * len(requests)
    errors = []

    def hammer(index, workload, seed):
        try:
            client = make_client()
            results[index] = client.explore(workload, seed=seed, **FAST)
        except Exception as error:    # noqa: BLE001 - re-raised below
            errors.append((index, error))

    threads = [threading.Thread(target=hammer, args=(i, w, s))
               for i, (w, s) in enumerate(requests)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors
    assert all(result is not None for result in results)

    # Duplicate fingerprints: byte-for-byte the same payload.
    assert results[0] == results[1]
    # Every unique fingerprint: digest-identical to its one-shot run.
    for (workload, seed), payload in zip(requests, results):
        assert _digest(payload) \
            == _reference_digest(workload, seed=seed, **FAST)


def test_concurrent_duplicate_storm_single_exploration(serve_server,
                                                       make_client):
    """Eight same-fingerprint requests in one burst produce one
    exploration's worth of distinct payloads (all equal), not eight
    divergent ones."""
    clients = [make_client() for _ in range(4)]
    rids = [(client, client.send(dict(FAST, op="explore",
                                      workload="crc32", seed=27)))
            for client in clients for _ in range(2)]
    payloads = [client.wait(rid) for client, rid in rids]
    assert all(payload == payloads[0] for payload in payloads)
    assert _digest(payloads[0]) \
        == _reference_digest("crc32", seed=27, **FAST)


# -- dying workers -----------------------------------------------------------

def test_worker_sigkill_mid_request_structured_error(serve_server,
                                                     make_client,
                                                     monkeypatch):
    """SIGKILL a pool worker while a served request's dispatch is
    starting: the request fails with a structured ServiceError (no
    hang), and the next request succeeds on a recreated pool."""
    from repro.core import parallel

    # The CI container may expose a single CPU; widen the clamp so
    # jobs=2 genuinely fans out over a two-worker pool.
    monkeypatch.setattr(parallel, "_available_cpus", lambda: 4)
    if not pool_persist_enabled():
        pytest.skip("persistent pool disabled (REPRO_POOL_PERSIST=0)")

    client = make_client(timeout=120.0)
    # Warm-up creates the persistent pool (jobs=2 → two workers).
    warm = client.explore("crc32", seed=41, jobs=2, **FAST)
    assert _digest(warm) == _reference_digest("crc32", seed=41, jobs=2,
                                              **FAST)
    pool = active_pool()
    assert pool is not None and len(pool.worker_pids()) >= 2

    killed = []

    def assassin(phase, info):
        # Fires on the lane thread as the victim request's dispatch
        # begins — the serve request is in flight, the pool is live.
        if phase == "start" and not killed:
            victim = active_pool()
            if victim is not None and victim.worker_pids():
                killed.append(victim.worker_pids()[0])
                os.kill(killed[0], signal.SIGKILL)

    add_dispatch_hook(assassin)
    try:
        with pytest.raises(ServiceError) as excinfo:
            client.explore("crc32", seed=42, jobs=2, **FAST)
    finally:
        remove_dispatch_hook(assassin)
    assert killed, "dispatch hook never fired"
    # Structured failure, not a hang or a dropped connection.
    assert excinfo.value.code == "error"
    assert str(excinfo.value)

    # The service recovers: a fresh fingerprint on the same connection
    # dispatches onto a recreated pool and stays bit-identical.
    after = client.explore("crc32", seed=43, jobs=2, **FAST)
    assert _digest(after) == _reference_digest("crc32", seed=43, jobs=2,
                                               **FAST)
    replacement = active_pool()
    assert replacement is not None
    assert killed[0] not in replacement.worker_pids()


# -- cache poisoning across scopes -------------------------------------------

def test_forged_scope_rows_never_poison_other_scope(monkeypatch):
    """Plant absurd cycle counts in the remote evalcache under a forged
    machine scope whose key *suffixes* byte-match scope B's real rows.
    Scope B's served exploration must ignore them entirely — its digest
    stays identical to a cache-free one-shot run — even after a fresh
    pool preloads the poisoned remote tier into shared memory."""
    from repro.core import parallel
    from repro.dist.client import (
        REMOTE_ENV,
        RemoteEvalCache,
        reset_remote_cache,
    )
    from repro.dist.server import EvalCacheServer

    # Round 2 fans out (jobs=2) so the poisoned remote tier is really
    # preloaded into the workers' shared table; widen the CPU clamp so
    # that happens even on a single-CPU container.
    monkeypatch.setattr(parallel, "_available_cpus", lambda: 4)

    scope_b = b"2is|4/2|"          # issue=2, ports=4/2 (FAST's machine)
    scope_a = b"9is|9/9|"          # forged: no real machine hashes here

    monkeypatch.delenv(REMOTE_ENV, raising=False)
    reset_remote_cache()
    reference = _reference_digest("crc32", seed=31, **FAST)

    cache_server = EvalCacheServer(port=0)
    cache_server.start_in_thread()
    try:
        monkeypatch.setenv(REMOTE_ENV, cache_server.address)
        monkeypatch.setenv("REPRO_REMOTE_TIMEOUT", "5.0")
        reset_remote_cache()
        shutdown_pools()            # next dispatch builds a fresh pool

        # Round 1: populate the remote tier with scope B's real rows.
        server = ExploreServer(port=0)
        server.start_in_thread()
        try:
            with ServiceClient(server.address) as client:
                first = client.explore("crc32", seed=31, **FAST)
            assert _digest(first) == reference
        finally:
            server.stop()           # flushes pending remote puts

        real_keys = [key for key in list(cache_server.store._entries)
                     if key.startswith(scope_b)]
        assert real_keys, "scope B rows never reached the remote tier"

        # Forge scope-A rows whose unqualified suffix byte-matches
        # scope B's, each claiming an absurdly perfect 1-cycle result.
        forger = RemoteEvalCache(cache_server.address, timeout=5.0)
        try:
            for key in real_keys:
                forger.put_cycles(scope_a + key[len(scope_b):], 1)
            forger.flush()
            poison_probe = scope_a + real_keys[0][len(scope_b):]
            assert forger.get_cycles(poison_probe) == 1   # poison landed
        finally:
            forger.close()

        # Round 2: fresh pool (preloads the poisoned remote tier into
        # shared memory), fresh server (no memo) — scope B re-explores.
        shutdown_pools()
        server = ExploreServer(port=0)
        server.start_in_thread()
        try:
            with ServiceClient(server.address) as client:
                second = client.explore("crc32", seed=31, jobs=2, **FAST)
            pool = active_pool()
            assert pool is not None
            # The poison really was adjacent: preload pulled the
            # remote rows (forged ones included) into the table.
            assert pool.stats["remote_preload_rows"] >= len(real_keys)
            assert _digest(second) == reference
        finally:
            server.stop()
    finally:
        cache_server.stop()
        reset_remote_cache()
        shutdown_pools()
