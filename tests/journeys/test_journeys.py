"""Stateful client journeys against a live in-process server.

Each test scripts one realistic multi-step journey through the
service's session states and asserts 100% coverage of its declared
``(op, state)`` transitions — see ``conftest.Journey``.  Correctness
is pinned throughout by digest parity against one-shot
:func:`repro.api.explore` results: a journey is only as good as the
answers it collects along the way.
"""

import time

import pytest

from journeys.conftest import FAST, Journey

from repro import api
from repro.serve import schema


def _poll_until_done(client, job, deadline_s=60.0):
    deadline = time.time() + deadline_s
    state = client.poll(job)
    while state not in ("done", "error", "cancelled") \
            and time.time() < deadline:
        time.sleep(0.02)
        state = client.poll(job)
    return state


def test_basic_lifecycle_journey(serve_server, make_client):
    """connect → subscribe → submit → poll → fetch → explore → leave."""
    journey = Journey("basic-lifecycle", [
        ("connect", "fresh"),
        ("subscribe", "connected"),
        ("submit", "connected"),
        ("poll", "submitted"),
        ("fetch", "submitted"),
        ("explore", "served"),
        ("status", "served"),
        ("disconnect", "served"),
    ])
    client = journey.do("connect", make_client, to="connected")
    journey.do("subscribe", client.subscribe)
    job = journey.do(
        "submit", lambda: client.submit("crc32", seed=7, **FAST),
        to="submitted")
    state = journey.do("poll", lambda: _poll_until_done(client, job))
    assert state == "done"
    fetched = journey.do("fetch", lambda: client.fetch(job), to="served")
    # The same fingerprint through the synchronous op answers from the
    # lane memo, bit-identically.
    explored = journey.do(
        "explore", lambda: client.explore("crc32", seed=7, **FAST))
    assert explored == fetched
    status = journey.do("status", client.status)
    assert status["jobs"][job] == "done"
    journey.do("disconnect", client.close, to="closed")
    journey.assert_complete()

    reference = schema.explore_payload(api.explore("crc32", seed=7, **FAST))
    assert schema.explore_digest(fetched) \
        == schema.explore_digest(reference)


def test_two_scopes_interleaved_journey(serve_server, make_client):
    """One client interleaves two machine scopes; neither contaminates
    the other — each scope's answers stay digest-identical to one-shot
    runs, and the server reports both scope lanes."""
    narrow = dict(FAST, issue=2, ports="4/2")
    wide = dict(FAST, issue=4, ports="8/4")
    journey = Journey("two-scopes-interleaved", [
        ("connect", "fresh"),
        ("explore-narrow", "connected"),
        ("explore-wide", "one-scope"),
        ("explore-narrow", "two-scopes"),
        ("evaluate-wide", "two-scopes"),
        ("status", "two-scopes"),
        ("disconnect", "two-scopes"),
    ])
    client = journey.do("connect", make_client, to="connected")
    first = journey.do(
        "explore-narrow",
        lambda: client.explore("crc32", seed=3, **narrow),
        to="one-scope")
    wide_result = journey.do(
        "explore-wide", lambda: client.explore("crc32", seed=3, **wide),
        to="two-scopes")
    again = journey.do(
        "explore-narrow",
        lambda: client.explore("crc32", seed=3, **narrow))
    assert again == first
    selection = journey.do(
        "evaluate-wide",
        lambda: client.evaluate("crc32", seed=3, max_area=80_000.0,
                                **wide))
    status = journey.do("status", client.status)
    scopes = status["scopes"]
    assert any(s.startswith("2is|4/2|") for s in scopes)
    assert any(s.startswith("4is|8/4|") for s in scopes)
    journey.do("disconnect", client.close, to="closed")
    journey.assert_complete()

    ref_narrow = schema.explore_payload(
        api.explore("crc32", seed=3, **narrow))
    ref_wide = schema.explore_payload(api.explore("crc32", seed=3, **wide))
    assert schema.explore_digest(first) == schema.explore_digest(ref_narrow)
    assert schema.explore_digest(wide_result) \
        == schema.explore_digest(ref_wide)
    assert schema.explore_digest(first) != schema.explore_digest(wide_result)
    ref_selection = api.evaluate("crc32", seed=3, max_area=80_000.0,
                                 **wide)
    assert selection["final_cycles"] == ref_selection.final_cycles


def test_reconnect_after_drop_journey(serve_server, make_client):
    """A dropped connection neither loses the submitted job nor wedges
    the server: a reconnecting client recovers the result by id."""
    journey = Journey("reconnect-after-drop", [
        ("connect", "fresh"),
        ("submit", "connected"),
        ("drop", "submitted"),
        ("reconnect", "dropped"),
        ("poll", "reconnected"),
        ("fetch", "reconnected"),
        ("explore", "reconnected"),
        ("disconnect", "recovered"),
    ])
    first = journey.do("connect", make_client, to="connected")
    job = journey.do(
        "submit", lambda: first.submit("crc32", seed=13, **FAST),
        to="submitted")
    journey.do("drop", first.close, to="dropped")

    second = journey.do("reconnect", make_client, to="reconnected")
    state = journey.do("poll", lambda: _poll_until_done(second, job))
    assert state == "done"
    fetched = journey.do("fetch", lambda: second.fetch(job))
    # The dropped session left no poison behind: ordinary synchronous
    # requests on the new connection work and agree with the job.
    explored = journey.do(
        "explore", lambda: second.explore("crc32", seed=13, **FAST),
        to="recovered")
    assert explored == fetched
    journey.do("disconnect", second.close, to="closed")
    journey.assert_complete()

    reference = schema.explore_payload(
        api.explore("crc32", seed=13, **FAST))
    assert schema.explore_digest(fetched) \
        == schema.explore_digest(reference)


def test_journey_runner_rejects_undeclared_transitions():
    journey = Journey("strict", [("connect", "fresh")])
    journey.do("connect", lambda: None, to="connected")
    with pytest.raises(AssertionError, match="undeclared transition"):
        journey.do("explore", lambda: None)


def test_journey_runner_fails_on_unexercised_transitions():
    journey = Journey("incomplete", [
        ("connect", "fresh"),
        ("explore", "connected"),
    ])
    journey.do("connect", lambda: None, to="connected")
    with pytest.raises(AssertionError, match="unexercised"):
        journey.assert_complete()
    assert journey.coverage() == (1, 2)
    assert "[x] (connect, fresh)" in journey.report()
    assert "[ ] (explore, connected)" in journey.report()
