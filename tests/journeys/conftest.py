"""Journey-test harness: scripted stateful client journeys.

A *journey* is a multi-step interaction of one client with a live
in-process :class:`ExploreServer` — connect, issue requests, poll,
drop, reconnect — modelled as an explicit state machine.  Each journey
declares its complete set of ``(op, session_state)`` transitions up
front; :meth:`Journey.do` refuses undeclared transitions (the script
drifted from its declaration) and :meth:`Journey.assert_complete`
fails the test unless every declared transition was exercised, so
coverage of the declared protocol surface is 100% by construction,
never by accident.

The fixtures keep everything in-process: ``serve_server`` starts a
fresh daemon-threaded server per test, ``make_client`` hands out
independent connections (one per simulated user), and both tear down
even when a journey dies mid-script.
"""

import pytest

from repro.serve.client import ServiceClient
from repro.serve.server import ExploreServer

#: Minimal-effort explore settings shared by every journey.
FAST = dict(profile="quick", iterations=8, restarts=1)


class Journey:
    """One scripted client journey with transition-coverage tracking.

    ``transitions`` declares the legal ``(op, state_before)`` pairs.
    ``do(op, fn, to=...)`` executes one step: it asserts the step was
    declared for the *current* state, runs ``fn``, records coverage and
    moves to ``to`` (or stays).  Initial state is ``"fresh"``.
    """

    def __init__(self, name, transitions):
        self.name = name
        self.declared = set(transitions)
        self.exercised = set()
        self.state = "fresh"
        self.log = []

    def do(self, op, fn, to=None):
        """Run one step; returns ``fn()``'s result."""
        pair = (op, self.state)
        if pair not in self.declared:
            raise AssertionError(
                "journey {!r}: undeclared transition {} from state "
                "{!r}".format(self.name, op, self.state))
        result = fn()
        self.exercised.add(pair)
        self.log.append((op, self.state, to if to is not None
                         else self.state))
        if to is not None:
            self.state = to
        return result

    def coverage(self):
        """``(exercised, declared)`` transition-pair counts."""
        return len(self.exercised), len(self.declared)

    def report(self):
        """Human-readable coverage summary (handy under ``-v``)."""
        done, total = self.coverage()
        lines = ["journey {!r}: {}/{} transition(s) exercised".format(
            self.name, done, total)]
        for op, state in sorted(self.declared):
            mark = "x" if (op, state) in self.exercised else " "
            lines.append("  [{}] ({}, {})".format(mark, op, state))
        return "\n".join(lines)

    def assert_complete(self):
        """Fail unless every declared transition was exercised."""
        missing = self.declared - self.exercised
        assert not missing, \
            "journey {!r} left transition(s) unexercised: {}\n{}".format(
                self.name, sorted(missing), self.report())
        done, total = self.coverage()
        assert done == total    # 100% of the declared surface, always


@pytest.fixture
def serve_server():
    """A fresh in-process explore server (stopped on teardown)."""
    server = ExploreServer(port=0)
    server.start_in_thread()
    yield server
    server.stop()


@pytest.fixture
def make_client(serve_server):
    """Factory for independent client connections; all closed at exit."""
    clients = []

    def factory(timeout=120.0):
        client = ServiceClient(serve_server.address, timeout=timeout)
        clients.append(client)
        return client

    yield factory
    for client in clients:
        client.close()
