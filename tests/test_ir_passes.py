"""Tests for the optimisation passes and pipelines."""

import pytest

from repro.ir import FunctionBuilder, Program, liveness, run_program
from repro.ir.passes import (
    constant_fold,
    dead_code_elimination,
    inline_calls,
    local_cse,
    optimize,
    strength_reduction,
    unroll_loops,
)


def one_block(emit, params=("a", "b")):
    b = FunctionBuilder("f", params=params)
    b.label("entry")
    result = emit(b)
    b.ret(result)
    return b.finish()


def ops_of(func, label="entry"):
    return [i.op for i in func.block(label).body]


class TestConstantFold:
    def test_fold_binary_constants(self):
        func = one_block(lambda b: b.addu(b.li(4), b.li(5)))
        constant_fold(func)
        folded = func.block("entry").body[-1]
        assert folded.op == "li" and folded.imm == 9

    def test_fold_to_immediate_form(self):
        def emit(b):
            c = b.li(12)
            return b.addu("a", c)
        func = one_block(emit)
        constant_fold(func)
        assert func.block("entry").body[-1].op == "addiu"

    def test_wrapping_fold(self):
        func = one_block(lambda b: b.addu(b.li(0xFFFFFFFF), b.li(2)))
        constant_fold(func)
        assert func.block("entry").body[-1].imm == 1

    def test_add_zero_becomes_move(self):
        func = one_block(lambda b: b.addiu("a", 0))
        constant_fold(func)
        assert func.block("entry").body[-1].op == "move"

    def test_large_immediate_not_encoded(self):
        def emit(b):
            c = b.li(0x123456)
            return b.addu("a", c)
        func = one_block(emit)
        constant_fold(func)
        # 0x123456 does not fit a 16-bit signed immediate.
        assert func.block("entry").body[-1].op == "addu"

    def test_semantics_preserved(self):
        def emit(b):
            c1 = b.li(7)
            c2 = b.li(9)
            s = b.mult(c1, c2)
            return b.addu(s, "a")
        func = one_block(emit)
        program = Program("p")
        program.add_function(func)
        before, __, ___ = run_program(program, args=(100, 0))
        constant_fold(func)
        after, __, ___ = run_program(program, args=(100, 0))
        assert before == after == 163


class TestCSE:
    def test_duplicate_expression_removed(self):
        def emit(b):
            x = b.addu("a", "b")
            y = b.addu("a", "b")
            return b.xor(x, y)
        func = one_block(emit)
        local_cse(func)
        assert ops_of(func).count("addu") == 1

    def test_commutative_match(self):
        def emit(b):
            x = b.addu("a", "b")
            y = b.addu("b", "a")
            return b.xor(x, y)
        func = one_block(emit)
        local_cse(func)
        assert ops_of(func).count("addu") == 1

    def test_non_commutative_not_matched(self):
        def emit(b):
            x = b.subu("a", "b")
            y = b.subu("b", "a")
            return b.xor(x, y)
        func = one_block(emit)
        local_cse(func)
        assert ops_of(func).count("subu") == 2

    def test_redefinition_blocks_reuse(self):
        def emit(b):
            x = b.addu("a", "b", dest="x")
            b.addiu("a", 1, dest="a")
            y = b.addu("a", "b", dest="y")
            return b.xor(x, y)
        func = one_block(emit)
        local_cse(func)
        assert ops_of(func).count("addu") == 2

    def test_load_cse_until_store(self):
        def emit(b):
            v1 = b.lw("a")
            v2 = b.lw("a")
            b.sw(v1, "a", offset=4)
            v3 = b.lw("a")
            x = b.addu(v1, v2)
            return b.addu(x, v3)
        func = one_block(emit)
        local_cse(func)
        assert ops_of(func).count("lw") == 2   # v2 folded, v3 reloaded

    def test_swap_idiom_preserved(self):
        def emit(b):
            b.move("a", dest="tmp")
            b.move("b", dest="a")
            b.move("tmp", dest="b")
            return b.subu("a", "b")
        func = one_block(emit)
        program = Program("p")
        program.add_function(func)
        before, __, ___ = run_program(program, args=(10, 3))
        local_cse(func)
        after, __, ___ = run_program(program, args=(10, 3))
        assert before == after == ((3 - 10) & 0xFFFFFFFF)


class TestDCE:
    def test_dead_instruction_removed(self):
        def emit(b):
            b.addu("a", "b", dest="unused")
            return b.xor("a", "b")
        func = one_block(emit)
        dead_code_elimination(func)
        assert "addu" not in ops_of(func)

    def test_transitively_dead_chain(self):
        def emit(b):
            t1 = b.addu("a", "b")
            b.xor(t1, "a", dest="dead")
            return b.or_("a", "b")
        func = one_block(emit)
        dead_code_elimination(func)
        assert ops_of(func) == ["or"]

    def test_store_never_removed(self):
        def emit(b):
            v = b.addu("a", "b")
            b.sw(v, "a")
            return b.li(0)
        func = one_block(emit)
        dead_code_elimination(func)
        assert "sw" in ops_of(func)
        assert "addu" in ops_of(func)      # feeds the store

    def test_cross_block_liveness(self):
        b = FunctionBuilder("f", params=("a",))
        b.label("entry")
        b.addu("a", "a", dest="t")
        b.jump("exit")
        b.label("exit")
        b.ret("t")
        func = b.finish()
        dead_code_elimination(func)
        assert ops_of(func, "entry") == ["addu"]


class TestStrengthReduction:
    def test_mult_by_power_of_two(self):
        def emit(b):
            c = b.li(8)
            return b.mult("a", c)
        func = one_block(emit)
        strength_reduction(func)
        reduced = func.block("entry").body[-1]
        assert reduced.op == "sll" and reduced.imm == 3

    def test_mult_by_one_and_zero(self):
        def emit(b):
            one = b.li(1)
            zero = b.li(0)
            x = b.mult("a", one)
            y = b.mult("b", zero)
            return b.or_(x, y)
        func = one_block(emit)
        strength_reduction(func)
        ops = ops_of(func)
        assert "mult" not in ops
        assert "move" in ops

    def test_same_operand_identities(self):
        def emit(b):
            x = b.xor("a", "a")
            y = b.and_("b", "b")
            return b.or_(x, y)
        func = one_block(emit)
        strength_reduction(func)
        ops = ops_of(func)
        assert "xor" not in ops and "and" not in ops

    def test_non_power_of_two_kept(self):
        def emit(b):
            c = b.li(6)
            return b.mult("a", c)
        func = one_block(emit)
        strength_reduction(func)
        assert "mult" in ops_of(func)


class TestUnroll:
    def _counted_loop(self, trips, body_ops=1):
        b = FunctionBuilder("f", params=())
        b.label("entry")
        b.li(0, dest="i")
        b.li(0, dest="acc")
        b.li(0, dest="zero")
        b.jump("loop")
        b.label("loop")
        for __ in range(body_ops):
            b.addiu("acc", 3, dest="acc")
        b.addiu("i", 1, dest="i")
        t = b.slti("i", trips)
        b.bne(t, "zero", "loop", "exit")
        b.label("exit")
        b.ret("acc")
        return b.finish()

    def test_unrolls_constant_loop(self):
        func = self._counted_loop(8)
        unroll_loops(func, factor=4)
        assert func.block("loop").annotations["unrolled_by"] == 4
        assert func.block("loop").annotations["trip_count"] == 8

    def test_factor_divides_trip_count(self):
        func = self._counted_loop(9)
        unroll_loops(func, factor=4)
        assert func.block("loop").annotations["unrolled_by"] == 3

    def test_prime_trip_count_not_unrolled(self):
        func = self._counted_loop(7)
        unroll_loops(func, factor=4)
        assert "unrolled_by" not in func.block("loop").annotations

    def test_body_size_cap(self):
        func = self._counted_loop(8, body_ops=50)
        unroll_loops(func, factor=4, max_body=60)
        assert "unrolled_by" not in func.block("loop").annotations

    def test_idempotent(self):
        func = self._counted_loop(8)
        unroll_loops(func, factor=4)
        size = len(func.block("loop").body)
        unroll_loops(func, factor=4)
        assert len(func.block("loop").body) == size

    def test_semantics_preserved(self):
        func = self._counted_loop(12)
        program = Program("p")
        program.add_function(func)
        before, __, ___ = run_program(program)
        unroll_loops(func, factor=4)
        after, profile, ___ = run_program(program)
        assert before == after == 36
        assert profile.count("f", "loop") == 3

    def test_variable_bound_not_unrolled(self):
        b = FunctionBuilder("f", params=("n",))
        b.label("entry")
        b.li(0, dest="i")
        b.li(0, dest="zero")
        b.jump("loop")
        b.label("loop")
        b.addiu("i", 1, dest="i")
        t = b.sltu("i", "n")
        b.bne(t, "zero", "loop", "exit")
        b.label("exit")
        b.ret("i")
        func = b.finish()
        unroll_loops(func, factor=4)
        assert "unrolled_by" not in func.block("loop").annotations


class TestInline:
    def _caller_callee(self):
        callee = FunctionBuilder("helper", params=("x",))
        callee.label("entry")
        t = callee.addu("x", "x")
        callee.ret(t)
        caller = FunctionBuilder("main", params=("v",))
        caller.label("entry")
        r = caller.call("helper", ("v",))
        r2 = caller.addiu(r, 1)
        caller.ret(r2)
        program = Program("p")
        program.add_function(caller.finish())
        program.add_function(callee.finish())
        return program

    def test_inline_removes_call(self):
        program = self._caller_callee()
        inline_calls(program)
        main = program.function("main")
        assert not any(i.is_call for i in main.instructions())

    def test_inline_preserves_semantics(self):
        program = self._caller_callee()
        before, __, ___ = run_program(program, args=(21,))
        inline_calls(program)
        after, __, ___ = run_program(program, args=(21,))
        assert before == after == 43

    def test_recursive_not_inlined(self):
        f = FunctionBuilder("f", params=("x",))
        f.label("entry")
        r = f.call("f", ("x",))
        f.ret(r)
        program = Program("p")
        program.add_function(f.finish())
        inline_calls(program)
        assert any(i.is_call for i in program.function("f").instructions())


class TestPipelines:
    def test_o0_is_identity_modulo_clone(self):
        program = self._simple_program()
        optimized = optimize(program, "O0")
        assert optimized is not program
        assert [i.op for i in optimized.main.instructions()] == \
            [i.op for i in program.main.instructions()]

    def test_o3_preserves_results_on_all_workloads(self):
        from repro.workloads import all_workloads
        for workload in all_workloads():
            program, args = workload.build()
            optimized = optimize(program, "O3")
            result, __, ___ = run_program(optimized, args=args)
            assert result == workload.reference(), workload.name

    def test_o3_shrinks_or_unrolls(self):
        from repro.workloads import get_workload
        program, __ = get_workload("crc32").build()
        optimized = optimize(program, "O3")
        loop = optimized.function("crc32").block("bit_loop")
        assert loop.annotations.get("unrolled_by", 1) > 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            optimize(self._simple_program(), "O2")

    @staticmethod
    def _simple_program():
        b = FunctionBuilder("main", params=("a",))
        b.label("entry")
        t = b.addu("a", "a")
        b.ret(t)
        program = Program("p")
        program.add_function(b.finish())
        return program


class TestLivenessAnalysis:
    def test_param_live_into_loop(self):
        b = FunctionBuilder("f", params=("n",))
        b.label("entry")
        b.li(0, dest="i")
        b.li(0, dest="zero")
        b.jump("loop")
        b.label("loop")
        b.addiu("i", 1, dest="i")
        t = b.sltu("i", "n")
        b.bne(t, "zero", "loop", "exit")
        b.label("exit")
        b.ret("i")
        func = b.finish()
        live_in, live_out = liveness(func)
        assert "n" in live_in["loop"]
        assert "i" in live_out["entry"]
        assert "i" in live_in["exit"]
