"""Tests for the multi-issue ACO exploration driver."""

import pytest

from repro.config import ExplorationParams, ISEConstraints
from repro.core import MultiIssueExplorer
from repro.errors import ConfigError
from repro.graph import check_candidate
from repro.sched import MachineConfig

from conftest import chain_dfg, diamond_dfg, memory_dfg, wide_dfg


def make_explorer(machine=None, seed=1, **param_overrides):
    machine = machine or MachineConfig(2, "4/2")
    defaults = dict(max_iterations=60, restarts=1, max_rounds=4)
    defaults.update(param_overrides)
    params = ExplorationParams(**defaults)
    return MultiIssueExplorer(machine, params=params, seed=seed)


class TestExploration:
    def test_chain_gets_compressed(self):
        dfg = chain_dfg(6)
        result = make_explorer().explore(dfg)
        assert result.final_cycles < result.base_cycles
        assert result.candidates

    def test_candidates_are_legal(self):
        dfg = diamond_dfg()
        explorer = make_explorer()
        result = explorer.explore(dfg)
        for candidate in result.candidates:
            check_candidate(dfg, candidate.members, explorer.constraints)

    def test_memory_ops_never_grouped(self):
        dfg = memory_dfg()
        result = make_explorer().explore(dfg)
        for candidate in result.candidates:
            assert all(not dfg.op(uid).is_memory
                       for uid in candidate.members)

    def test_deterministic_under_seed(self):
        dfg = diamond_dfg()
        r1 = make_explorer(seed=5).explore(dfg)
        r2 = make_explorer(seed=5).explore(dfg)
        assert [c.members for c in r1.candidates] == \
            [c.members for c in r2.candidates]
        assert r1.final_cycles == r2.final_cycles

    def test_no_hardware_options_no_candidates(self):
        dfg = memory_dfg()
        # Keep only the memory ops' subgraph: lw/addu/sw/lw/xor — the
        # ALU ops do have options, so instead test a loads-only DFG.
        from conftest import dfg_from_block

        def body(b):
            v1 = b.lw("a")
            v2 = b.lw("a", 4)
            b.sw(v1, "b")
            return v2
        loads_only = dfg_from_block(body)
        result = make_explorer().explore(loads_only)
        assert result.candidates == []
        assert result.final_cycles == result.base_cycles
        del dfg

    def test_cycle_saving_accounting(self):
        dfg = chain_dfg(6)
        result = make_explorer().explore(dfg)
        total = sum(c.cycle_saving for c in result.candidates)
        assert total == result.cycle_saving

    def test_constraints_clamped_to_machine_ports(self):
        machine = MachineConfig(2, "4/2")
        explorer = MultiIssueExplorer(
            machine, constraints=ISEConstraints(n_in=16, n_out=8))
        assert explorer.constraints.n_in == 4
        assert explorer.constraints.n_out == 2

    def test_restarts_pick_best(self):
        dfg = diamond_dfg()
        single = make_explorer(seed=3, restarts=1).explore(dfg)
        multi = make_explorer(seed=3, restarts=3).explore(dfg)
        assert multi.final_cycles <= single.final_cycles

    def test_wider_issue_smaller_gain(self):
        # With infinite-ish width, only dependence chains matter, so
        # base cycles shrink and the explorer's saving opportunity too.
        dfg = wide_dfg(8)
        narrow = make_explorer(MachineConfig(2, "10/5")).explore(dfg)
        wide = make_explorer(MachineConfig(4, "10/5")).explore(dfg)
        assert wide.base_cycles <= narrow.base_cycles

    def test_priority_variants_run(self):
        dfg = diamond_dfg()
        for priority in ("children", "mobility", "depth"):
            machine = MachineConfig(2, "4/2")
            params = ExplorationParams(max_iterations=40, restarts=1,
                                       max_rounds=2)
            explorer = MultiIssueExplorer(machine, params=params,
                                          priority=priority, seed=2)
            result = explorer.explore(dfg)
            assert result.final_cycles <= result.base_cycles

    def test_bad_priority_rejected(self):
        dfg = diamond_dfg()
        explorer = MultiIssueExplorer(MachineConfig(2, "4/2"),
                                      priority="bogus")
        with pytest.raises(ConfigError):
            explorer.explore(dfg)

    def test_result_repr(self):
        dfg = chain_dfg(4)
        result = make_explorer().explore(dfg)
        text = repr(result)
        assert "ISEs" in text and "cycles" in text
