"""Tests for ISE merging, greedy selection and hardware sharing."""

import pytest

from repro.config import ISEConstraints
from repro.core.candidate import ISECandidate
from repro.core.merging import merge_candidates
from repro.core.selection import select_ises, shared_area
from repro.hwlib import DEFAULT_DATABASE, DEFAULT_TECHNOLOGY

from conftest import chain_dfg, dfg_from_block


def candidate_for(dfg, members, fastest=True, saving=1.0):
    option_of = {}
    for uid in members:
        options = DEFAULT_DATABASE.hardware_options(dfg.op(uid).name)
        key = (lambda o: o.delay_ns) if fastest else (lambda o: -o.delay_ns)
        option_of[uid] = min(options, key=key)
    candidate = ISECandidate(dfg, members, option_of, DEFAULT_TECHNOLOGY)
    candidate.weighted_saving = saving
    return candidate


def repeated_pattern_dfg():
    """Two identical addu->xor chains plus a bigger addu->xor->or."""

    def body(b):
        x1 = b.addu("a", "b")
        y1 = b.xor(x1, "c")
        x2 = b.addu("c", "d")
        y2 = b.xor(x2, "a")
        z = b.or_(y1, y2)
        return z

    return dfg_from_block(body)


class TestMerging:
    def test_identical_patterns_merge(self):
        dfg = repeated_pattern_dfg()
        c1 = candidate_for(dfg, {0, 1})
        c2 = candidate_for(dfg, {2, 3})
        merged = merge_candidates([c1, c2])
        assert len(merged) == 1
        assert len(merged[0].absorbed) == 1

    def test_subgraph_merges_into_host(self):
        dfg = repeated_pattern_dfg()
        big = candidate_for(dfg, {2, 3, 4})        # addu->xor->or
        small = candidate_for(dfg, {0, 1})         # addu->xor
        merged = merge_candidates([big, small])
        assert len(merged) == 1
        assert merged[0].representative is big

    def test_same_pattern_prefers_faster_representative(self):
        # Identical patterns always merge; the larger-area (faster)
        # implementation becomes the representative, so no site slows.
        def body(b):
            x1 = b.addu("a", "b")
            y1 = b.xor(x1, "c")
            x2 = b.addu("c", "d")
            y2 = b.xor(x2, "a")
            return b.or_(y1, y2)
        dfg = dfg_from_block(body)
        slow = candidate_for(dfg, {0, 1}, fastest=False)
        fast = candidate_for(dfg, {2, 3}, fastest=True)
        merged = merge_candidates([slow, fast])
        assert len(merged) == 1
        assert merged[0].representative is fast

    def test_cycle_condition_blocks_merge(self):
        # Host: a 4-op slow chain whose matched addu->xor->or subgraph
        # takes 2 cycles (10.06 ns); candidate: the fast 3-op version
        # (8.14 ns, 1 cycle).  Absorbing the candidate would slow its
        # replacement sites down, so the merge must be blocked.
        def body(b):
            x1 = b.addu("a", "b")
            y1 = b.xor(x1, "c")
            z1 = b.or_(y1, "d")
            w1 = b.and_(z1, "a")
            x2 = b.addu("c", "d")
            y2 = b.xor(x2, "a")
            z2 = b.or_(y2, "b")
            return b.subu(w1, z2)
        dfg = dfg_from_block(body)
        host = candidate_for(dfg, {0, 1, 2, 3}, fastest=False)
        fast = candidate_for(dfg, {4, 5, 6}, fastest=True)
        assert fast.cycles == 1
        merged = merge_candidates([host, fast])
        assert len(merged) == 2

    def test_multi_asfu_disables_merging(self):
        dfg = repeated_pattern_dfg()
        c1 = candidate_for(dfg, {0, 1})
        c2 = candidate_for(dfg, {2, 3})
        merged = merge_candidates([c1, c2], single_asfu=False)
        assert len(merged) == 2

    def test_weighted_saving_accumulates(self):
        dfg = repeated_pattern_dfg()
        c1 = candidate_for(dfg, {0, 1}, saving=5.0)
        c2 = candidate_for(dfg, {2, 3}, saving=3.0)
        merged = merge_candidates([c1, c2])
        assert merged[0].weighted_saving == 8.0


class TestSharedArea:
    def test_sharing_counts_peak_instances(self):
        dfg = repeated_pattern_dfg()
        c1 = candidate_for(dfg, {0, 1})
        c2 = candidate_for(dfg, {2, 3})
        merged = merge_candidates([c1], single_asfu=True) \
            + merge_candidates([c2], single_asfu=True)
        shared = shared_area(merged, enable_sharing=True)
        unshared = shared_area(merged, enable_sharing=False)
        assert shared == pytest.approx(c1.area)
        assert unshared == pytest.approx(c1.area + c2.area)

    def test_different_opcodes_not_shared(self):
        dfg = chain_dfg(2, op="addu")
        dfg2 = chain_dfg(2, op="xor")
        c1 = candidate_for(dfg, {0, 1})
        c2 = candidate_for(dfg2, {0, 1})
        merged = merge_candidates([c1], True) + merge_candidates([c2], True)
        shared = shared_area(merged)
        assert shared == pytest.approx(c1.area + c2.area)


class TestSelection:
    def _three_candidates(self):
        dfg = repeated_pattern_dfg()
        good = candidate_for(dfg, {2, 3, 4}, saving=100.0)
        medium = candidate_for(dfg, {0, 1}, saving=50.0)
        useless = candidate_for(dfg, {0, 1}, saving=0.0)
        return [merge_candidates([c], single_asfu=False)[0]
                for c in (good, medium, useless)]

    def test_rank_by_saving(self):
        merged = self._three_candidates()
        result = select_ises(merged, ISEConstraints())
        assert result.selected[0].weighted_saving == 100.0

    def test_zero_saving_skipped(self):
        merged = self._three_candidates()
        result = select_ises(merged, ISEConstraints())
        assert all(m.weighted_saving > 0 for m in result.selected)

    def test_count_budget(self):
        merged = self._three_candidates()
        result = select_ises(merged, ISEConstraints(max_ises=1))
        assert result.count == 1

    def test_area_budget(self):
        merged = self._three_candidates()
        tiny = min(m.area for m in merged[:2])
        result = select_ises(
            merged, ISEConstraints(max_area=tiny),
            enable_sharing=False)
        assert result.area <= tiny

    def test_zero_area_budget_selects_nothing(self):
        merged = self._three_candidates()
        result = select_ises(merged, ISEConstraints(max_area=0))
        assert result.count == 0
        assert result.area == 0
