"""ISE candidates.

An :class:`ISECandidate` is the unit of output of exploration and the
unit of input to merging/selection: a convex, legal set of operations
of one basic-block DFG, together with the hardware option chosen for
every member, and the derived ASFU timing/area.
"""

from ..graph.analysis import check_candidate, input_values, output_values
from ..graph.subgraph import pattern_graph
from ..hwlib.asfu import subgraph_area, subgraph_delay_ns


class ISECandidate:
    """One explored ISE: members + chosen hardware options + metrics.

    Parameters
    ----------
    dfg:
        The DFG the candidate lives in (*original*, pre-contraction).
    members:
        Frozenset of node uids.
    option_of:
        dict uid → chosen :class:`~repro.hwlib.options.HardwareOption`.
    technology:
        Delay→cycles conversion.
    source:
        Diagnostic tag naming the producing algorithm.
    """

    def __init__(self, dfg, members, option_of, technology, source="MI"):
        self.dfg = dfg
        self.members = frozenset(members)
        self.option_of = {uid: option_of[uid] for uid in self.members}
        self.technology = technology
        self.source = source
        self.delay_ns = subgraph_delay_ns(
            dfg.graph, self.members, self.option_of.__getitem__)
        self.area = subgraph_area(self.members, self.option_of.__getitem__)
        self.cycles = technology.cycles_for_delay(self.delay_ns)
        # Benefit metadata filled in by the explorer / selection stage.
        self.cycle_saving = 0
        self.weighted_saving = 0.0

    # -- derived ---------------------------------------------------------

    @property
    def size(self):
        """Number of member operations."""
        return len(self.members)

    def num_inputs(self):
        """``IN(S)``: distinct values read from outside."""
        return len(input_values(self.dfg, self.members))

    def num_outputs(self):
        """``OUT(S)``: distinct values produced for outside."""
        return len(output_values(self.dfg, self.members))

    def software_chain_cycles(self):
        """Critical path through the members at 1 cycle per op —
        the latency the ISE collapses."""
        longest = {}
        for uid in sorted(self.members):
            arrival = 0
            for pred in self.dfg.predecessors(uid):
                if pred in self.members:
                    arrival = max(arrival, longest.get(pred, 0))
            longest[uid] = arrival + 1
        return max(longest.values()) if longest else 0

    def pattern(self):
        """Opcode-labelled pattern graph (for merging / replacement)."""
        return pattern_graph(self.dfg, self.members)

    def validate(self, constraints):
        """Raise :class:`~repro.errors.ConstraintError` when illegal."""
        from ..errors import ConstraintError

        check_candidate(self.dfg, self.members, constraints)
        limit = constraints.max_ise_cycles
        if limit is not None and self.cycles > limit:
            raise ConstraintError(
                "ISE needs {} cycles, pipestage limit is {}".format(
                    self.cycles, limit))
        return self

    def describe(self):
        """One-line human-readable description."""
        ops = ", ".join(
            "#{}:{}".format(uid, self.dfg.op(uid).name)
            for uid in sorted(self.members))
        return ("ISE[{}] {{{}}} delay={:.2f}ns cycles={} area={:.0f}um2"
                .format(self.source, ops, self.delay_ns, self.cycles,
                        self.area))

    def __repr__(self):
        return "ISECandidate({} ops, {} cyc, {:.0f} um2)".format(
            self.size, self.cycles, self.area)

    def __eq__(self, other):
        return (isinstance(other, ISECandidate)
                and other.dfg is self.dfg
                and other.members == self.members
                and other.option_of == self.option_of)

    def __hash__(self):
        return hash((id(self.dfg), self.members))
