"""ISE merging (Fig. 3.1.1, §3.1).

Candidates found in different blocks (or rounds) often overlap: if ISE
B's pattern is a subgraph of ISE A's, one ASFU can serve both, so B is
*merged into* A.  The thesis allows the merge when (1) B's execution
cycles are not shorter than the identical subgraph inside A (otherwise
replacing B-sites with A's slower sub-hardware would lose performance),
and (2) A and B never execute simultaneously — guaranteed on machines
with a single ASFU issue slot, which is the evaluated configuration.
"""

import networkx as nx
from networkx.algorithms import isomorphism

from ..graph.subgraph import contains_pattern, same_pattern


class MergedISE:
    """A representative candidate plus the candidates it absorbed."""

    def __init__(self, representative):
        self.representative = representative
        self.absorbed = []

    @property
    def weighted_saving(self):
        """Profile-weighted saving of host plus absorbed."""
        return (self.representative.weighted_saving
                + sum(c.weighted_saving for c in self.absorbed))

    @property
    def area(self):
        """Silicon area of the representative's ASFU."""
        return self.representative.area

    @property
    def cycles(self):
        """ASFU latency of the representative."""
        return self.representative.cycles

    def all_candidates(self):
        """Representative followed by the absorbed candidates."""
        return [self.representative] + list(self.absorbed)

    def __repr__(self):
        return "MergedISE({!r} +{} absorbed)".format(
            self.representative, len(self.absorbed))


def merge_candidates(candidates, single_asfu=True):
    """Merge subsumed candidates; returns a list of :class:`MergedISE`.

    Candidates are processed largest-first so representatives are the
    maximal patterns.  When ``single_asfu`` is false, condition (2) of
    the thesis cannot be guaranteed and merging is skipped entirely.
    """
    if not single_asfu:
        return [MergedISE(c) for c in candidates]
    ordered = sorted(candidates, key=lambda c: (-c.size, -c.area))
    merged = []
    for candidate in ordered:
        pattern = candidate.pattern()
        host = _find_host(merged, candidate, pattern)
        if host is None:
            merged.append(MergedISE(candidate))
        else:
            host.absorbed.append(candidate)
    return merged


def _find_host(merged, candidate, pattern):
    for entry in merged:
        rep = entry.representative
        rep_pattern = rep.pattern()
        if same_pattern(rep_pattern, pattern):
            return entry
        if not contains_pattern(rep_pattern, pattern):
            continue
        if _subgraph_cycles_ok(rep, rep_pattern, candidate, pattern):
            return entry
    return None


def _subgraph_cycles_ok(rep, rep_pattern, candidate, pattern):
    """Condition (1): candidate.cycles ≥ cycles of the identical
    subgraph inside the representative (measured with the
    representative's hardware options)."""
    matcher = isomorphism.DiGraphMatcher(
        rep_pattern, pattern,
        node_match=lambda a, b: a["opcode"] == b["opcode"])
    rep_members = sorted(rep.members)
    for mapping in matcher.subgraph_monomorphisms_iter():
        mapped_uids = {rep_members[host_idx] for host_idx in mapping}
        delay = _chain_delay(rep, mapped_uids)
        sub_cycles = rep.technology.cycles_for_delay(delay)
        if candidate.cycles >= sub_cycles:
            return True
    return False


def _chain_delay(rep, members):
    graph = rep.dfg.graph
    longest = {}
    for uid in nx.topological_sort(graph.subgraph(members)):
        arrival = 0.0
        for pred in graph.predecessors(uid):
            if pred in members:
                arrival = max(arrival, longest[pred])
        longest[uid] = arrival + rep.option_of[uid].delay_ns
    return max(longest.values()) if longest else 0.0
