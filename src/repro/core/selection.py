"""ISE selection and hardware sharing (§5.1's greedy method).

Selection ranks merged ISE candidates by their (profile-weighted)
performance improvement and greedily admits as many as fit the
predefined constraints — the ISE-count budget (unused opcodes) and the
total-silicon-area budget.  Hardware sharing is applied while costing:
on a machine with one ASFU issue slot, two ISEs never execute in the
same cycle, so identical (opcode, option) hardware instances can be
shared across ASFUs — the shared cost of a set of ISEs counts each
instance type by its *maximum* per-ISE multiplicity rather than the
sum.
"""

from collections import Counter


def shared_area(merged_ises, enable_sharing=True):
    """Total silicon area of a set of ISEs with hardware sharing."""
    if not enable_sharing:
        return sum(entry.area for entry in merged_ises)
    peak = Counter()
    for entry in merged_ises:
        peak |= _instance_counts(entry.representative)   # element-wise max
    return sum(area * count for (__, area), count in peak.items())


def _instance_counts(candidate):
    """Multiset of (option-key, area) hardware instances of one ISE."""
    counts = Counter()
    for uid in candidate.members:
        option = candidate.option_of[uid]
        opcode = candidate.dfg.op(uid).name
        counts[((opcode, option.label), option.area)] += 1
    return counts


class SelectionResult:
    """Chosen ISEs plus their shared-area cost."""

    def __init__(self, selected, area, considered):
        self.selected = list(selected)
        self.area = area
        self.considered = considered

    @property
    def count(self):
        """Number of selected ISEs."""
        return len(self.selected)

    def all_candidates(self):
        """Every candidate covered by the selection."""
        out = []
        for entry in self.selected:
            out.extend(entry.all_candidates())
        return out

    def __repr__(self):
        return "SelectionResult({} ISEs, {:.0f} um2)".format(
            self.count, self.area)


def select_ises(merged_ises, constraints, enable_sharing=True):
    """Greedy selection under ``constraints`` (max_ises / max_area).

    Candidates are ranked by profile-weighted saving (then smaller area
    first); each is admitted when the *incremental shared* area keeps
    the running total inside the budget.
    """
    ranked = sorted(
        merged_ises,
        key=lambda entry: (-entry.weighted_saving, entry.area,
                           -entry.representative.size))
    selected = []
    for entry in ranked:
        if entry.weighted_saving <= 0:
            continue
        if (constraints.max_ises is not None
                and len(selected) >= constraints.max_ises):
            break
        trial = selected + [entry]
        cost = shared_area(trial, enable_sharing)
        if constraints.max_area is not None and cost > constraints.max_area:
            continue
        selected.append(entry)
    return SelectionResult(selected, shared_area(selected, enable_sharing),
                           len(ranked))
