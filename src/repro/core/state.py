"""Per-round ACO state: trails, merits and the probability formulas.

One :class:`ExplorationState` instance lives for one exploration round.
It stores, for every (operation, implementation option) pair, the trail
(pheromone) and merit values, and computes the thesis's two probability
formulas:

* Eq. 1 — *chosen probability* (cp), normalised over every option of
  every operation currently in the Ready-Matrix, including the
  scheduling-priority (SP) term;
* Eq. 3 — *selected probability* (sp), normalised per operation, used
  by the convergence test against ``P_END``.

Storage layout
--------------
Trails and merits live in two contiguous ``numpy`` float64 vectors; one
flat slot per (operation, option) pair, operations in ``dfg.nodes``
order, options in table order.  A per-uid ``(offset, count)`` span maps
an operation to its slice, so the maintenance sweeps
(:meth:`clip_trails`, :meth:`normalize_merits`, the Fig. 4.3.5 trail
update) are vector operations instead of per-key dict writes.  The
public ``trail`` / ``merit`` attributes remain mapping-like
(:class:`_VectorMap` views keyed by ``(uid, label)``) so callers and
tests keep their dict idiom; every write through a view marks the
operation *dirty*, which drives two caches:

* the **Ready-Matrix weight rows** — Eq. 1 numerators are rebuilt only
  for operations whose trail/merit changed, not on every draw;
* the **convergence flags** — :meth:`converged` re-checks only dirty
  operations against ``P_END``.

All vector arithmetic is elementwise and mirrors the scalar expression
order of the original dict implementation, so results are bit-identical
to the per-key formulation.
"""

import numpy as np

from ..errors import ExplorationError
from ..sched.priorities import get_priority

#: Weight floor keeping the Eq. 1 roulette wheel well defined.
_WEIGHT_FLOOR = 1e-12

_MISSING = object()


class RoundMemo(dict):
    """Round-lifetime geometry memo that counts its own hit rate.

    Pure-geometry facts (group growth, delay, I/O shape) recur every
    iteration once the colony converges; the hit/miss tallies feed the
    ``grouping.memo_*`` observability counters at round end.  Plain
    dicts still work wherever a memo is accepted — only this subclass
    counts.
    """

    __slots__ = ("hits", "misses")

    def __init__(self):
        super().__init__()
        self.hits = 0
        self.misses = 0

    def get(self, key, default=None):
        """``dict.get`` that tallies a hit or a miss."""
        value = dict.get(self, key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        return value


class _VectorMap:
    """Mapping view over one per-(uid, label) slot vector.

    Behaves like the dict it replaces — ``state.trail[(uid, label)]``
    reads and writes the backing array — while funnelling every
    mutation through :meth:`ExplorationState._touch` so the dependent
    caches (weight rows, convergence flags) stay coherent.
    """

    __slots__ = ("_state", "_vec")

    def __init__(self, state, vec):
        self._state = state
        self._vec = vec

    def __getitem__(self, key):
        return float(self._vec[self._state._flat_index[key]])

    def __setitem__(self, key, value):
        self._vec[self._state._flat_index[key]] = value
        self._state._touch(key[0])

    def __contains__(self, key):
        return key in self._state._flat_index

    def __iter__(self):
        return iter(self._state._flat_keys)

    def __len__(self):
        return len(self._state._flat_keys)

    def keys(self):
        return list(self._state._flat_keys)

    def values(self):
        return [float(v) for v in self._vec]

    def items(self):
        return list(zip(self._state._flat_keys,
                        (float(v) for v in self._vec)))

    def get(self, key, default=None):
        index = self._state._flat_index.get(key)
        if index is None:
            return default
        return float(self._vec[index])


class ExplorationState:
    """Trail/merit store for one round of exploration."""

    def __init__(self, dfg, io_tables, params, priority="children"):
        self.dfg = dfg
        self.params = params
        #: Round-lifetime memo for pure geometry facts (see
        #: :func:`~repro.core.merit.update_merits`).
        self.round_memo = RoundMemo()
        #: Cheap always-on tallies read by the observability hooks at
        #: round end (plain int adds; never consulted on the hot path).
        self.stats = {"weight_rebuilds": 0, "conv_refreshes": 0}
        #: uid -> tuple of ImplementationOption
        self.options = {}
        self._uids = list(dfg.nodes)
        self._flat_keys = []          # flat slot -> (uid, label)
        self._flat_index = {}         # (uid, label) -> flat slot
        self._option_map = {}         # (uid, label) -> option
        self._span = {}               # uid -> (offset, stop)
        self._pairs_of = {}           # uid -> [((uid, option)), ...]
        trail_init = []
        merit_init = []
        sw_slots = []
        sw_cycles = []
        for uid in self._uids:
            table = io_tables[uid]
            opts = tuple(table)
            self.options[uid] = opts
            offset = len(self._flat_keys)
            pairs = []
            for option in opts:
                key = (uid, option.label)
                self._flat_index[key] = len(self._flat_keys)
                self._flat_keys.append(key)
                self._option_map[key] = option
                pairs.append((uid, option))
                trail_init.append(params.initial_trail)
                if option.is_hardware:
                    merit_init.append(params.initial_merit_hardware)
                else:
                    merit_init.append(params.initial_merit_software)
                    sw_slots.append(len(self._flat_keys) - 1)
                    sw_cycles.append(float(option.cycles))
            self._span[uid] = (offset, len(self._flat_keys))
            self._pairs_of[uid] = pairs
        # Hardware-option views are requested every iteration by the
        # merit sweep and the grouping pass; the option tables are
        # frozen for the round, so build the per-uid lists once.
        self._hw_options = {uid: [opt for opt in self.options[uid]
                                  if opt.is_hardware]
                            for uid in self._uids}
        #: Uids owning at least one hardware option, in node order.
        self.hw_uids = tuple(uid for uid in self._uids
                             if self._hw_options[uid])
        self._trail_vec = np.array(trail_init, dtype=np.float64)
        self._merit_vec = np.array(merit_init, dtype=np.float64)
        self._sw_slots = np.array(sw_slots, dtype=np.intp)
        self._sw_cycles = np.array(sw_cycles, dtype=np.float64)
        self.trail = _VectorMap(self, self._trail_vec)
        self.merit = _VectorMap(self, self._merit_vec)
        # SP: the scheduling priority term of Eq. 1.  The paper uses the
        # number of child operations; §6 suggests trying mobility/depth,
        # so the function is pluggable.  Values are frozen for the round
        # and normalised to the merit scale so the lambda weight is
        # comparable across DFG sizes.  (get_priority is imported at
        # module level so forked pool workers resolve it during warmup,
        # not inside the first scheduled iteration.)
        raw = get_priority(priority)(dfg.graph)
        lowest = min(raw.values(), default=0)
        shifted = {uid: raw[uid] - lowest for uid in raw}
        peak = max(shifted.values(), default=0)
        scale = params.merit_scale / peak if peak else 0.0
        self.sp_term = {uid: shifted.get(uid, 0) * scale
                        for uid in dfg.nodes}
        self._sp_vec = np.array(
            [self.sp_term.get(uid, 0.0) for uid, __ in self._flat_keys],
            dtype=np.float64)
        # Caches driven by the dirty set: Eq. 1 weight rows per uid and
        # the per-uid best selected probability of the Eq. 3 test.
        self._weight_rows = {}
        self._weight_dirty = set(self._uids)
        self._best_sp = {}
        self._conv_dirty = set(self._uids)

    # -- cache invalidation -------------------------------------------------

    def _touch(self, uid):
        """Mark one operation's derived caches stale."""
        self._weight_dirty.add(uid)
        self._conv_dirty.add(uid)

    def _touch_all(self):
        """Mark every operation's derived caches stale (bulk updates)."""
        self._weight_dirty.update(self._uids)
        self._conv_dirty.update(self._uids)

    # -- access -----------------------------------------------------------

    def option(self, uid, label):
        """Look up one option of ``uid`` by label."""
        option = self._option_map.get((uid, label))
        if option is None:
            raise ExplorationError(
                "operation {} has no option {!r}".format(uid, label))
        return option

    def hardware_options(self, uid):
        """The hardware options of operation ``uid``."""
        return self._hw_options[uid]

    def keys_of(self, uid):
        """The (uid, label) merit/trail keys of operation ``uid``."""
        return [(uid, option.label) for option in self.options[uid]]

    # -- Eq. 1: chosen probability over the Ready-Matrix -------------------

    def cp_weights(self, ready_uids):
        """Unnormalised cp numerators of every ready (op, option) pair.

        Returns a list of ``((uid, option), weight)``.  Weights are
        clipped to a tiny positive floor so the roulette wheel is always
        well defined (Eq. 1 divides by their sum).  Rows come from the
        incremental Ready-Matrix cache: they are rebuilt only for
        operations whose trail or merit changed since the last draw.
        """
        rows = self._cp_rows()
        entries = []
        for uid in ready_uids:
            entries.extend(rows[uid])
        return entries

    def cp_weights_batch(self, slot_ready=None):
        """Eq. 1 weight vector over every flat (op, option) slot.

        One vectorised pass over the flat trail/merit/SP arrays — the
        exact expression :meth:`cp_weights` evaluates per row, so the
        returned doubles are bit-identical to the scalar entries.  The
        state only changes *between* iterations, so one call serves
        every ant of a lockstep batch
        (:class:`~repro.core.batch.BatchedAntRunner`); with a
        ``(B, n_slots)`` boolean ``slot_ready`` mask the per-ant masked
        weight matrix is returned instead (unready slots weigh zero).
        """
        self.stats["weight_rebuilds"] += 1    # one full-vector rebuild
        params = self.params
        weights = (params.alpha * self._trail_vec
                   + (1.0 - params.alpha) * self._merit_vec
                   + params.lam * self._sp_vec)
        np.maximum(weights, _WEIGHT_FLOOR, out=weights)
        if slot_ready is None:
            return weights
        return weights * slot_ready

    def slot_pairs(self):
        """The ``(uid, option)`` pair of every flat slot, in slot order.

        The batched runner's slot → draw-outcome map; slot order is the
        storage order of the trail/merit vectors (operations in
        ``dfg.nodes`` order, options in table order).
        """
        return [(uid, self._option_map[(uid, label)])
                for uid, label in self._flat_keys]

    def _cp_rows(self):
        """Per-uid Eq. 1 weight rows, refreshed for dirty uids only."""
        if self._weight_dirty:
            self.stats["weight_rebuilds"] += len(self._weight_dirty)
            params = self.params
            weights = (params.alpha * self._trail_vec
                       + (1.0 - params.alpha) * self._merit_vec
                       + params.lam * self._sp_vec)
            np.maximum(weights, _WEIGHT_FLOOR, out=weights)
            flat = weights.tolist()
            for uid in self._weight_dirty:
                offset, stop = self._span[uid]
                self._weight_rows[uid] = list(
                    zip(self._pairs_of[uid], flat[offset:stop]))
            self._weight_dirty.clear()
        return self._weight_rows

    # -- Eq. 3: selected probability per operation ---------------------------

    def sp_of(self, uid):
        """Per-option selected probabilities of one operation (Eq. 3)."""
        params = self.params
        offset, stop = self._span[uid]
        values = (params.alpha * self._trail_vec[offset:stop]
                  + (1.0 - params.alpha) * self._merit_vec[offset:stop])
        numerators = {}
        for option, value in zip(self.options[uid], values.tolist()):
            numerators[option.label] = value if value > 0.0 else 0.0
        total = sum(numerators.values())
        if total <= 0.0:
            uniform = 1.0 / len(numerators)
            return {label: uniform for label in numerators}
        return {label: value / total for label, value in numerators.items()}

    def taken_option(self, uid):
        """Option with maximal sp, and that sp value."""
        sp = self.sp_of(uid)
        label = max(sp, key=lambda lbl: (sp[lbl], lbl))
        return self.option(uid, label), sp[label]

    def converged(self):
        """End condition: every operation has an option with sp ≥ P_END.

        Dirty-flag tracked: only operations whose trail/merit changed
        since the previous call are re-checked.
        """
        if self._conv_dirty:
            self._refresh_best_sp()
        p_end = self.params.p_end
        return all(best >= p_end for best in self._best_sp.values())

    def convergence_floor(self):
        """Minimum best selected probability over all operations.

        The per-iteration distance from the ``P_END`` end condition —
        the convergence trajectory recorded by the observability layer.
        Uses the same dirty-flag cache as :meth:`converged`.
        """
        if self._conv_dirty:
            self._refresh_best_sp()
        if not self._best_sp:
            return 1.0
        return min(self._best_sp.values())

    def _refresh_best_sp(self):
        """Recompute the cached best selected probability of dirty uids."""
        self.stats["conv_refreshes"] += len(self._conv_dirty)
        params = self.params
        values = (params.alpha * self._trail_vec
                  + (1.0 - params.alpha) * self._merit_vec)
        flat = values.tolist()
        for uid in self._conv_dirty:
            offset, stop = self._span[uid]
            best = 0.0
            total = 0.0
            for value in flat[offset:stop]:
                if value < 0.0:
                    value = 0.0
                total += value
                if value > best:
                    best = value
            if total <= 0.0:
                self._best_sp[uid] = 1.0 / (stop - offset)
            else:
                self._best_sp[uid] = best / total
        self._conv_dirty.clear()

    # -- bulk updates used by the trail/merit rules -------------------------

    def apply_trail_update(self, chosen_label_of, moved_uids, improved):
        """Vectorised Fig. 4.3.5 trail update.

        ``chosen_label_of`` maps every uid to the label its ant chose
        this iteration; ``moved_uids`` are the operations whose draw
        order moved earlier in a regressing iteration.  Elementwise adds
        match the per-key updates exactly.
        """
        params = self.params
        index = self._flat_index
        chosen = np.zeros(len(self._flat_keys), dtype=bool)
        for uid, label in chosen_label_of.items():
            chosen[index[(uid, label)]] = True
        trail = self._trail_vec
        if improved:
            trail[chosen] += params.rho1
            trail[~chosen] -= params.rho2
        else:
            trail[chosen] -= params.rho3
            trail[~chosen] += params.rho4
            if moved_uids:
                slots = []
                for uid in moved_uids:
                    offset, stop = self._span[uid]
                    slots.extend(range(offset, stop))
                trail[slots] -= params.rho5
        self.clip_trails()

    def multiply_software_merits(self):
        """§4.3 software merit: multiply by the option's execution time
        (Eq. for merit_{x,SW-i}); with the per-op normalisation this
        biases toward options proportionally to their latency
        contribution."""
        if self._sw_slots.size:
            self._merit_vec[self._sw_slots] *= self._sw_cycles
            self._touch_all()

    # -- maintenance ------------------------------------------------------------

    def clip_trails(self):
        """Trails never go negative (keeps Eq. 1/3 well-formed)."""
        np.maximum(self._trail_vec, 0.0, out=self._trail_vec)
        self._touch_all()

    def normalize_merits(self):
        """Rescale each operation's merit vector to the configured scale.

        §4.3: "the merit values of operation must be normalized after
        performing merit computation" so that picking among ready
        operations stays fair.  Each operation's merits are scaled to
        sum to ``merit_scale × #options`` with a floor per option.
        """
        params = self.params
        scale = params.merit_scale
        floor = params.merit_floor
        merit = self._merit_vec
        # One flat pass in plain floats (same IEEE doubles as the numpy
        # ops it replaces) and a single bulk write-back: per-segment
        # numpy slicing dominated this per-iteration sweep.
        flat = merit.tolist()
        for offset, stop in self._span.values():
            total = 0.0
            for value in flat[offset:stop]:
                total += value
            if total <= 0.0:
                for index in range(offset, stop):
                    flat[index] = scale
                continue
            factor = (scale * (stop - offset)) / total
            for index in range(offset, stop):
                value = flat[index] * factor
                flat[index] = value if value > floor else floor
        merit[:] = flat
        self._touch_all()
