"""Per-round ACO state: trails, merits and the probability formulas.

One :class:`ExplorationState` instance lives for one exploration round.
It stores, for every (operation, implementation option) pair, the trail
(pheromone) and merit values, and computes the thesis's two probability
formulas:

* Eq. 1 — *chosen probability* (cp), normalised over every option of
  every operation currently in the Ready-Matrix, including the
  scheduling-priority (SP) term;
* Eq. 3 — *selected probability* (sp), normalised per operation, used
  by the convergence test against ``P_END``.
"""

from ..errors import ExplorationError


class ExplorationState:
    """Trail/merit store for one round of exploration."""

    def __init__(self, dfg, io_tables, params, priority="children"):
        self.dfg = dfg
        self.params = params
        #: uid -> tuple of ImplementationOption
        self.options = {}
        self.trail = {}
        self.merit = {}
        for uid in dfg.nodes:
            table = io_tables[uid]
            opts = tuple(table)
            self.options[uid] = opts
            for option in opts:
                key = (uid, option.label)
                self.trail[key] = params.initial_trail
                if option.is_hardware:
                    self.merit[key] = params.initial_merit_hardware
                else:
                    self.merit[key] = params.initial_merit_software
        # SP: the scheduling priority term of Eq. 1.  The paper uses the
        # number of child operations; §6 suggests trying mobility/depth,
        # so the function is pluggable.  Values are frozen for the round
        # and normalised to the merit scale so the lambda weight is
        # comparable across DFG sizes.
        from ..sched.priorities import get_priority

        raw = get_priority(priority)(dfg.graph)
        lowest = min(raw.values(), default=0)
        shifted = {uid: raw[uid] - lowest for uid in raw}
        peak = max(shifted.values(), default=0)
        scale = params.merit_scale / peak if peak else 0.0
        self.sp_term = {uid: shifted.get(uid, 0) * scale
                        for uid in dfg.nodes}

    # -- access -----------------------------------------------------------

    def option(self, uid, label):
        """Look up one option of ``uid`` by label."""
        for option in self.options[uid]:
            if option.label == label:
                return option
        raise ExplorationError(
            "operation {} has no option {!r}".format(uid, label))

    def hardware_options(self, uid):
        """The hardware options of operation ``uid``."""
        return [opt for opt in self.options[uid] if opt.is_hardware]

    def keys_of(self, uid):
        """The (uid, label) merit/trail keys of operation ``uid``."""
        return [(uid, option.label) for option in self.options[uid]]

    # -- Eq. 1: chosen probability over the Ready-Matrix -------------------

    def cp_weights(self, ready_uids):
        """Unnormalised cp numerators of every ready (op, option) pair.

        Returns a list of ``((uid, option), weight)``.  Weights are
        clipped to a tiny positive floor so the roulette wheel is always
        well defined (Eq. 1 divides by their sum).
        """
        params = self.params
        entries = []
        for uid in ready_uids:
            sp = self.sp_term.get(uid, 0.0)
            for option in self.options[uid]:
                key = (uid, option.label)
                weight = (params.alpha * self.trail[key]
                          + (1.0 - params.alpha) * self.merit[key]
                          + params.lam * sp)
                entries.append(((uid, option), max(weight, 1e-12)))
        return entries

    # -- Eq. 3: selected probability per operation ---------------------------

    def sp_of(self, uid):
        """Per-option selected probabilities of one operation (Eq. 3)."""
        params = self.params
        numerators = {}
        for option in self.options[uid]:
            key = (uid, option.label)
            value = (params.alpha * self.trail[key]
                     + (1.0 - params.alpha) * self.merit[key])
            numerators[option.label] = max(value, 0.0)
        total = sum(numerators.values())
        if total <= 0.0:
            uniform = 1.0 / len(numerators)
            return {label: uniform for label in numerators}
        return {label: value / total for label, value in numerators.items()}

    def taken_option(self, uid):
        """Option with maximal sp, and that sp value."""
        sp = self.sp_of(uid)
        label = max(sp, key=lambda lbl: (sp[lbl], lbl))
        return self.option(uid, label), sp[label]

    def converged(self):
        """End condition: every operation has an option with sp ≥ P_END."""
        p_end = self.params.p_end
        for uid in self.options:
            __, best = self.taken_option(uid)
            if best < p_end:
                return False
        return True

    # -- maintenance ------------------------------------------------------------

    def clip_trails(self):
        """Trails never go negative (keeps Eq. 1/3 well-formed)."""
        for key, value in self.trail.items():
            if value < 0.0:
                self.trail[key] = 0.0

    def normalize_merits(self):
        """Rescale each operation's merit vector to the configured scale.

        §4.3: "the merit values of operation must be normalized after
        performing merit computation" so that picking among ready
        operations stays fair.  Each operation's merits are scaled to
        sum to ``merit_scale × #options`` with a floor per option.
        """
        params = self.params
        for uid, opts in self.options.items():
            keys = [(uid, option.label) for option in opts]
            total = sum(self.merit[key] for key in keys)
            target = params.merit_scale * len(keys)
            if total <= 0.0:
                value = params.merit_scale
                for key in keys:
                    self.merit[key] = value
                continue
            factor = target / total
            for key in keys:
                self.merit[key] = max(self.merit[key] * factor,
                                      params.merit_floor)
