"""Process-parallel fan-out for exploration work.

Restarts and explorable basic blocks are embarrassingly parallel: each
(seed, restart, block) combination derives its own RNG stream, so
results are bit-identical whether the tasks run serially or spread over
a :class:`~concurrent.futures.ProcessPoolExecutor`.  This module holds
the shared plumbing:

* :func:`resolve_jobs` — turn an explicit ``jobs`` argument or the
  ``REPRO_JOBS`` environment variable into a worker count (``0`` /
  ``"auto"`` means one worker per CPU);
* :func:`parallel_map` — ordered map over argument tuples, serial when
  one worker (or one task) suffices, fanned out over the persistent
  :mod:`~repro.core.pool` worker pool otherwise.

Nested pools are suppressed: workers are marked at fork/spawn time and
always resolve to one job, so a parallel design flow never spawns
grandchild processes from its per-block explorations.

Observability survives the fan-out: when an enabled observer is passed
to :func:`parallel_map`, each pooled task runs under a worker-local
:mod:`~repro.obs.capture` buffer and ships its records back with the
result; the parent replays them in task order — which is exactly the
serial fire order even when work stealing finishes tasks out of
submission order — so sinks and metrics see one coherent stream at any
worker count.
"""

import os

from ..errors import ConfigError

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"

_in_worker = False


def _mark_worker():
    """Pool initializer: flag this process as a parallel worker."""
    global _in_worker
    _in_worker = True


def in_worker():
    """True inside a pool worker process.

    The cache stack uses this to route writes: a worker's evaluations
    travel to the parent as insert logs (folded into the shared table
    *and* the remote tier between dispatches), so the worker itself
    must not also write them to the remote server directly.
    """
    return _in_worker


def _available_cpus():
    """CPUs this process may use (mockable seam for the clamp tests)."""
    return os.cpu_count() or 1


def resolve_jobs(jobs=None, obs=None):
    """Normalise a ``jobs`` request into a positive worker count.

    ``None`` falls back to ``REPRO_JOBS`` (default 1 — serial); ``0``
    or ``"auto"`` selects :func:`os.cpu_count`.  Requests beyond the
    host's CPU count are clamped to it — oversubscribed pools only add
    pickling and context-switch overhead to a CPU-bound fan-out.
    Inside a pool worker this always returns 1 so parallel sections
    never nest.  When an enabled ``obs`` observer is passed, the
    effective count is recorded as the ``jobs.effective`` gauge.
    """
    if _in_worker:
        return 1
    if jobs is None:
        jobs = os.environ.get(JOBS_ENV, "1")
    if isinstance(jobs, str):
        if jobs.strip().lower() == "auto":
            jobs = 0
        else:
            try:
                jobs = int(jobs)
            except ValueError:
                raise ConfigError(
                    "jobs must be an integer or 'auto', got {!r}".format(
                        jobs)) from None
    if jobs == 0:
        jobs = _available_cpus()
    if jobs < 0:
        raise ConfigError("jobs must be non-negative, got {}".format(jobs))
    jobs = min(jobs, _available_cpus())
    if obs:
        obs.gauge("jobs.effective", jobs)
    return jobs


def _captured_call(function, *task):
    """Run one task under a worker-local observability capture buffer.

    Returns ``(result, records)``; the records are replayed by the
    parent observer so events survive the process boundary.  The pool
    workers inline this same pattern around each claimed task.
    """
    from ..obs import capture

    capture.begin()
    try:
        result = function(*task)
    finally:
        records = capture.end()
    return result, records


def parallel_map(function, tasks, jobs, obs=None, costs=None):
    """``[function(*task) for task in tasks]``, optionally pooled.

    Results keep task order, so any order-dependent reduction done by
    the caller (e.g. "first strictly better restart wins") is identical
    to the serial path.  ``function`` must be picklable (module level).
    An enabled ``obs`` observer gets worker-side events/metrics merged
    back in task (= serial fire) order.

    ``jobs > 1`` fans out over the persistent worker pool
    (:mod:`repro.core.pool`): the task list is broadcast once through
    shared memory and workers pull items with work stealing.  ``costs``
    — optional per-task cost estimates (e.g. profile-phase cycle
    counts) — front-loads expensive tasks so short ones backfill; it
    changes scheduling only, never results or their order.
    """
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        # Serial path: observer calls deliver inline, nothing to merge.
        return [function(*task) for task in tasks]
    from .pool import dispatch

    return dispatch(function, tasks, jobs, obs=obs, costs=costs)
