"""ISE replacement (final stage of Fig. 3.1.1).

Given the selected ISEs, discover every occurrence of their patterns in
every block DFG, prioritise the matches (longest collapsed dependence
chain first), replace non-overlapping legal matches, and list-schedule
the rewritten blocks to obtain final cycle counts.
"""

import networkx as nx

from ..graph.analysis import is_legal
from ..graph.subgraph import find_matches
from ..sched.list_scheduler import list_schedule
from ..sched.units import contract_dfg


def plan_block_replacements(dfg, selected, constraints, technology=None,
                            obs=None):
    """Choose disjoint pattern matches for one block.

    Parameters
    ----------
    dfg:
        The block DFG.
    selected:
        Iterable of :class:`~repro.core.merging.MergedISE`.
    constraints:
        The §4.2 constraints every match must satisfy in context.
    technology:
        Needed only when ``constraints.max_ise_cycles`` is set (the
        pipestage-timing check on each realized match).
    obs:
        Optional :class:`~repro.obs.observer.Observer`; match
        enumeration reports its pre-filter split through it (see
        :func:`~repro.graph.subgraph.find_matches`).

    Returns a list of ``(members, option_of)`` groups ready for
    :func:`~repro.sched.units.contract_dfg`.
    """
    proposals = []
    for entry in selected:
        rep = entry.representative
        pattern = rep.pattern()
        option_by_opcode = _options_by_opcode(rep)
        for members in find_matches(dfg, pattern, constraints, obs=obs):
            chain = _chain_length(dfg, members)
            proposals.append((chain, len(members), members,
                              option_by_opcode))
    proposals.sort(key=lambda p: (-p[0], -p[1], sorted(p[2])))
    used = set()
    groups = []
    for __, __, members, option_by_opcode in proposals:
        if members & used:
            continue
        if not is_legal(dfg, members, constraints):
            continue
        option_of = {}
        feasible = True
        for uid in members:
            option = option_by_opcode.get(dfg.op(uid).name)
            if option is None:
                feasible = False
                break
            option_of[uid] = option
        if not feasible:
            continue
        if not _meets_pipestage_limit(dfg, members, option_of,
                                      constraints, technology):
            continue
        # Two individually-convex groups can still be mutually entangled
        # (A -> x -> B and B -> y -> A); the joint contraction must stay
        # acyclic for the block to remain schedulable.
        if not _jointly_acyclic(dfg, [g for g, __ in groups] + [members]):
            continue
        groups.append((frozenset(members), option_of))
        used |= members
    return groups


def _meets_pipestage_limit(dfg, members, option_of, constraints,
                           technology):
    """Pipestage timing: the realized match must fit the cycle budget."""
    limit = constraints.max_ise_cycles
    if limit is None or technology is None:
        return True
    from ..hwlib.asfu import subgraph_delay_ns
    delay = subgraph_delay_ns(dfg.graph, members, option_of.__getitem__)
    return technology.cycles_for_delay(delay) <= limit


def _jointly_acyclic(dfg, member_sets):
    """True when contracting all ``member_sets`` leaves a DAG."""
    group_of = {}
    for index, members in enumerate(member_sets):
        for uid in members:
            group_of[uid] = "g{}".format(index)
    quotient = nx.DiGraph()
    for src, dst in dfg.graph.edges:
        u = group_of.get(src, src)
        v = group_of.get(dst, dst)
        if u != v:
            quotient.add_edge(u, v)
    return nx.is_directed_acyclic_graph(quotient)


def _options_by_opcode(candidate):
    """Opcode → hardware option used in the representative candidate.

    When the candidate uses several options for one opcode the fastest
    is kept — the ASFU instantiates the faster unit anyway when sites
    share hardware.
    """
    table = {}
    for uid in candidate.members:
        opcode = candidate.dfg.op(uid).name
        option = candidate.option_of[uid]
        current = table.get(opcode)
        if current is None or option.delay_ns < current.delay_ns:
            table[opcode] = option
    return table


def _chain_length(dfg, members):
    """Dependence-chain cycles the match would collapse."""
    longest = {}
    for uid in nx.topological_sort(dfg.graph.subgraph(members)):
        arrival = 0
        for pred in dfg.predecessors(uid):
            if pred in members:
                arrival = max(arrival, longest[pred])
        longest[uid] = arrival + 1
    return max(longest.values()) if longest else 0


def schedule_with_ises(dfg, groups, machine, technology,
                       priority="children"):
    """Contract ``groups`` into ``dfg`` and list-schedule the result."""
    graph, units = contract_dfg(dfg, groups, technology)
    return list_schedule(graph, units, machine, priority=priority)


def replace_and_schedule(dfg, selected, machine, technology, constraints,
                         priority="children", obs=None):
    """Full replacement of one block; returns ``(schedule, groups)``."""
    groups = plan_block_replacements(dfg, selected, constraints,
                                     technology=technology, obs=obs)
    schedule = schedule_with_ises(dfg, groups, machine, technology,
                                  priority=priority)
    return schedule, groups
