"""Trail (pheromone) update — Fig. 4.3.5.

After each iteration the total execution time (TET) of the constructed
schedule is compared with the previous iteration's:

* improved or equal — chosen options gain ``ρ1``, unchosen lose ``ρ2``
  (and the reference TET is updated);
* regressed — chosen options lose ``ρ3``, unchosen gain ``ρ4``, and
  every option of operations whose draw order moved *earlier* than in
  the previous iteration additionally loses ``ρ5`` (the reordering is
  blamed for the slowdown).
"""


def update_trails(state, schedule, prev_order, tet_old):
    """Apply the Fig. 4.3.5 rule; returns the new reference TET.

    Parameters
    ----------
    state:
        The round's :class:`~repro.core.state.ExplorationState`.
    schedule:
        The just-finished
        :class:`~repro.core.iteration.IterationSchedule`.
    prev_order:
        dict uid → draw index of the previous iteration (empty for the
        first iteration).
    tet_old:
        Reference TET (``None`` on the first iteration — treated as an
        improvement so the first solution is reinforced).
    """
    tet_new = schedule.makespan
    improved = tet_old is None or tet_new <= tet_old
    chosen_label_of = {uid: schedule.chosen[uid].label
                       for uid in state.options}
    moved_uids = ()
    if not improved:
        moved_uids = [uid for uid in state.options
                      if uid in prev_order
                      and schedule.order[uid] < prev_order[uid]]
    state.apply_trail_update(chosen_label_of, moved_uids, improved)
    return tet_new if improved else tet_old
