"""Merit function — Fig. 4.3.7 (hardware) and Eq. 3' (software).

The merit of an implementation option encodes "how much good would
follow from choosing this option next iteration".  The hardware side is
the paper's central contribution: it is *location-aware* — operations
on the critical path are boosted (case 1), and legal virtual groups are
scored by cycle saving, with the area/delay trade-off resolved
differently on and off the critical path (case 4, using the Max_AEC
slack window off-path).
"""

from ..graph.analysis import io_counts, is_convex
from .grouping import best_groups, hardware_grouping


def update_merits(dfg, state, schedule, constraints):
    """Recompute every operation's option merits after an iteration.

    Parameters
    ----------
    dfg / state:
        The block DFG and round state (merits updated in place).
    schedule:
        The iteration's finished
        :class:`~repro.core.iteration.IterationSchedule`.
    constraints:
        :class:`~repro.config.ISEConstraints` for case-3 checks.

    Returns the :class:`~repro.core.analysis.ScheduleAnalysis` used, so
    the caller can reuse the critical-path facts.
    """
    from .analysis import ScheduleAnalysis

    params = state.params
    analysis = ScheduleAnalysis(dfg, schedule)
    # Round-lifetime memo for pure geometry facts (group growth, delay,
    # I/O counts, convexity, chain lengths): identical virtual groups
    # recur every iteration once the colony starts converging.
    memo = getattr(state, "round_memo", None)
    if memo is None:
        from .state import RoundMemo

        memo = state.round_memo = RoundMemo()
    groups = hardware_grouping(dfg, state, schedule, memo=memo)
    best_of = best_groups(groups)

    # Software merits only ever multiply by the option's own latency, so
    # the whole sweep is one vector operation over the software slots.
    state.multiply_software_merits()
    for uid in state.hw_uids:
        hw_options = state.hardware_options(uid)
        # Case 1 — critical-path boost (dividing by beta_cp < 1 raises
        # the merit of every hardware option of a critical operation).
        if (params.use_critical_path_boost and analysis.is_critical(uid)):
            for option in hw_options:
                key = (uid, option.label)
                state.merit[key] /= params.beta_cp
        best = best_of.get(uid)
        for option in hw_options:
            key = (uid, option.label)
            group = groups[(uid, option.label)]
            state.merit[key] = _hardware_merit(
                state.merit[key], dfg, analysis, group, best,
                params, constraints, memo,
                on_critical=analysis.is_critical(uid))
    state.normalize_merits()
    return analysis


def _hardware_merit(merit, dfg, analysis, group, best, params, constraints,
                    memo, on_critical):
    """Cases 2-4 of Fig. 4.3.7 for one hardware option's virtual group."""
    # Case 2 — singleton group cannot shorten any dependence chain.
    if group.size == 1:
        return merit * params.beta_size
    # Case 3 — constraint violations damp but do not annihilate.
    shape = memo.get(("io", group.members))
    if shape is None:
        n_in, n_out = io_counts(dfg, group.members)
        shape = (n_in, n_out, is_convex(dfg, group.members))
        memo[("io", group.members)] = shape
    n_in, n_out, convex = shape
    violated = False
    if n_in > constraints.n_in:
        merit *= params.beta_io
        violated = True
    if n_out > constraints.n_out:
        merit *= params.beta_io
        violated = True
    if not convex:
        merit *= params.beta_convex
        violated = True
    if violated:
        return merit
    # Case 4 — legal multi-op group: performance improvement check ...
    saving = _software_chain(dfg, group.members, memo) - group.cycles
    merit *= saving if saving >= 1 else params.beta_size
    # ... then hardware-usage check.
    if on_critical or not params.use_slack_window:
        if best is not None and group.cycles <= best.cycles:
            if group.area > 0:
                merit *= _area_ratio(best, group)
        elif best is not None:
            merit /= (1 + group.cycles - best.cycles)
    else:
        budget = analysis.max_aec(group.members)
        if group.cycles <= budget:
            if best is not None and group.area > 0:
                merit *= _area_ratio(best, group)
        else:
            merit /= (1 + group.cycles - budget)
    return merit


def _area_ratio(best, group):
    """Area(HW-MAX) / Area(HW-j): equal-speed smaller options win."""
    if group.area <= 0:
        return 1.0
    return max(best.area, group.area) / group.area


def _software_chain(dfg, members, memo):
    """Longest software dependence chain through ``members`` (memoised
    per round — a pure function of the member set)."""
    chain = memo.get(("chain", members))
    if chain is not None:
        return chain
    longest = {}
    order = [uid for uid in dfg.nodes if uid in members]
    for uid in order:
        arrival = 0
        for pred in dfg.predecessors(uid):
            if pred in members:
                arrival = max(arrival, longest.get(pred, 0))
        longest[uid] = arrival + 1
    chain = max(longest.values()) if longest else 0
    memo[("chain", members)] = chain
    return chain
