"""One ACO iteration's incremental schedule (Operation-Scheduling).

Implements Figs. 4.3.3/4.3.4: as the ant draws (operation, option)
pairs, operations are placed into time slots under issue-width,
register-port and function-unit constraints.  Operations that chose a
hardware option try to *pack* into an ISE cluster started by one of
their parents in the same time slot (combinational chaining inside the
ASFU); failing that they open a new cluster at the earliest feasible
slot.  Clusters grow as members join — their reservation (register
ports, critical-path cycles) is revised in place.
"""

from ..errors import ExplorationError, SchedulingError
from ..graph.analysis import SubgraphIOTracker
from ..hwlib.asfu import IncrementalDelay
from ..sched.resources import Needs, ReservationTable

#: Sentinel "no placed external consumer yet" — larger than any cycle.
_NO_CONSUMER = float("inf")


class Cluster:
    """An ISE under construction within one iteration's schedule.

    Geometry (the §4.2 ``IN``/``OUT`` value sets and the combinational
    critical path) is cached in incremental trackers and revised as
    members join, instead of being rebuilt from the member set on every
    join attempt.  ``min_ext_start`` caches the earliest start cycle of
    any already-placed external consumer of a member, so growing the
    critical path checks one number instead of walking every member's
    successors.
    """

    __slots__ = ("cid", "members", "start", "option_of", "delay_ns",
                 "cycles", "needs", "io", "timing", "min_ext_start")

    def __init__(self, cid, start):
        self.cid = cid
        self.members = set()
        self.start = start
        self.option_of = {}
        self.delay_ns = 0.0
        self.cycles = 1
        self.needs = None
        self.io = None
        self.timing = None
        self.min_ext_start = _NO_CONSUMER

    def __repr__(self):
        return "Cluster({} @C{}, {} ops, {} cyc)".format(
            self.cid, self.start, len(self.members), self.cycles)


class IterationSchedule:
    """Incremental schedule for one solution-construction pass."""

    def __init__(self, dfg, machine, technology, constraints):
        self.dfg = dfg
        self.machine = machine
        self.technology = technology
        self.constraints = constraints
        self.table = ReservationTable(machine)
        self.start = {}
        self.chosen = {}
        self.cluster_of = {}
        self.clusters = []
        self.order = {}
        self._next_order = 0
        self._next_cluster = 0
        # Incremental readiness/makespan bookkeeping, maintained at
        # _commit time so placements never rescan their predecessors:
        # software finish cycles are immutable once committed and fold
        # into scalars; cluster finishes can still grow as members
        # join, so a node keeps references to its placed predecessor
        # clusters and reads their current finish on demand.
        self._ready_sw = {}          # uid -> max finish of sw-placed preds
        self._pred_clusters = {}     # uid -> [distinct placed pred clusters]
        self._makespan_sw = 0
        # Cheap always-on packing tallies (Fig. 4.3.4), aggregated into
        # the observability counters at round end.
        self.stat_cluster_opens = 0
        self.stat_cluster_joins = 0
        self.stat_join_rejects = 0

    # -- queries ------------------------------------------------------------

    def is_scheduled(self, uid):
        """True once ``uid`` has been placed."""
        return uid in self.start

    def finish(self, uid):
        """First cycle after ``uid`` completes (cluster-aware)."""
        cluster = self.cluster_of.get(uid)
        if cluster is not None:
            return cluster.start + cluster.cycles
        option = self.chosen[uid]
        return self.start[uid] + option.cycles

    def data_ready(self, uid):
        """Earliest start cycle permitted by already-placed parents."""
        ready = self._ready_sw.get(uid, 0)
        clusters = self._pred_clusters.get(uid)
        if clusters:
            for cluster in clusters:
                finish = cluster.start + cluster.cycles
                if finish > ready:
                    ready = finish
        return ready

    @property
    def makespan(self):
        """Cycles until the last placed operation finishes."""
        span = self._makespan_sw
        for cluster in self.clusters:
            finish = cluster.start + cluster.cycles
            if finish > span:
                span = finish
        return span

    def chose_hardware(self, uid):
        """True when ``uid`` sits in an ISE cluster."""
        return uid in self.cluster_of

    def hardware_chosen_set(self):
        """All uids currently in clusters."""
        return set(self.cluster_of)

    # -- software placement (Fig. 4.3.3) ---------------------------------------

    def schedule_software(self, uid, option):
        """Place ``uid`` with a software option (Fig. 4.3.3)."""
        needs = self.software_needs(uid, option)
        cycle = self.table.first_fit(needs, not_before=self.data_ready(uid))
        self.place_software(uid, option, needs, cycle)

    def software_needs(self, uid, option):
        """Resource demand of placing ``uid`` with a software option.

        Split out of :meth:`schedule_software` so the batched runner
        can stage the first-fit probes of a whole lockstep step and
        resolve them in one vectorised scan
        (:func:`~repro.sched.resources.first_fit_batch`).
        """
        operation = self.dfg.op(uid)
        return Needs(reads=len(operation.sources),
                     writes=len(operation.dests),
                     fu_kind=option.fu_kind)

    def place_software(self, uid, option, needs, cycle):
        """Commit a software placement whose first-fit cycle is known."""
        self.table.place(cycle, needs)
        self._commit(uid, option, cycle)

    # -- hardware placement (Fig. 4.3.4) ----------------------------------------

    def schedule_hardware(self, uid, option):
        """Pack into a parent's cluster if possible, else open a new one."""
        for cluster in self._parent_clusters(uid):
            if self._try_join(cluster, uid, option):
                self.stat_cluster_joins += 1
                self._commit(uid, option, cluster.start)
                return
            self.stat_join_rejects += 1
        self._open_cluster(uid, option)

    def _parent_clusters(self, uid):
        """Clusters containing a parent, latest start first."""
        seen = []
        for pred in self.dfg.predecessors(uid):
            cluster = self.cluster_of.get(pred)
            if cluster is not None and cluster not in seen:
                seen.append(cluster)
        if len(seen) > 1:
            seen.sort(key=lambda c: -c.start)
        return seen

    def _try_join(self, cluster, uid, option):
        """Fuse ``uid`` into ``cluster`` when legal and resource-feasible.

        Fusion requires every parent of ``uid`` to either be a member of
        the cluster or to have finished by the cluster's start slot, and
        the grown cluster must respect the register-port constraints of
        §4.2 as well as the cycle's remaining budget.
        """
        for pred in self.dfg.predecessors(uid):
            if pred in cluster.members:
                continue
            if self.finish(pred) > cluster.start:
                return False
        io_delta = cluster.io.preview_add(uid,
                                          n_in_limit=self.constraints.n_in)
        if io_delta is None:
            return False
        n_in, n_out = io_delta.n_in, io_delta.n_out
        if n_out > self.constraints.n_out:
            return False
        arrival = None
        if io_delta.succ_members:
            # A member already consumes uid — not a sink addition, so
            # the cached arrival times cannot be extended in place.
            option_map = dict(cluster.option_of)
            option_map[uid] = option
            probe = IncrementalDelay(self.dfg)
            probe.rebuild(cluster.members | {uid}, option_map.__getitem__)
            new_delay = probe.delay_ns
        else:
            arrival, new_delay = cluster.timing.preview_add(
                uid, option.delay_ns)
        new_cycles = self.technology.cycles_for_delay(new_delay)
        limit = self.constraints.max_ise_cycles
        if limit is not None and new_cycles > limit:
            return False              # pipestage timing constraint
        # Growing the critical path must not overrun an already-placed
        # consumer of any current member — one compare against the
        # cluster's cached earliest external-consumer start.
        new_finish = cluster.start + new_cycles
        if new_finish > cluster.min_ext_start:
            return False
        new_needs = Needs(reads=n_in, writes=n_out, fu_kind="asfu")
        self.table.release(cluster.start, cluster.needs)
        if not self.table.fits(cluster.start, new_needs):
            self.table.place(cluster.start, cluster.needs)
            return False
        self.table.place(cluster.start, new_needs)
        cluster.io.commit(io_delta)
        cluster.members.add(uid)
        cluster.option_of[uid] = option
        if arrival is not None:
            cluster.timing.commit(uid, arrival, new_delay)
        else:
            cluster.timing.rebuild(cluster.members,
                                   cluster.option_of.__getitem__)
        cluster.needs = new_needs
        cluster.delay_ns = new_delay
        cluster.cycles = new_cycles
        self.cluster_of[uid] = cluster
        return True

    def _open_cluster(self, uid, option):
        io, needs = self.open_needs(uid)
        cycle = self.table.first_fit(needs, not_before=self.data_ready(uid))
        self.place_cluster(uid, option, io, needs, cycle)

    def open_needs(self, uid):
        """I/O tracker and resource demand of opening a cluster at
        ``uid`` — the probe half of :meth:`_open_cluster`, batched
        across ants by the lockstep runner."""
        io = SubgraphIOTracker(self.dfg)
        io.add(uid)
        return io, Needs(reads=io.n_in, writes=io.n_out, fu_kind="asfu")

    def place_cluster(self, uid, option, io, needs, cycle):
        """Open a singleton cluster at a known first-fit cycle."""
        self.stat_cluster_opens += 1
        self.table.place(cycle, needs)
        cluster = Cluster(self._next_cluster, cycle)
        self._next_cluster += 1
        cluster.members = {uid}
        cluster.option_of = {uid: option}
        cluster.io = io
        cluster.timing = IncrementalDelay(self.dfg)
        cluster.timing.commit(uid, option.delay_ns, option.delay_ns)
        cluster.needs = needs
        cluster.delay_ns = option.delay_ns
        cluster.cycles = self.technology.cycles_for_delay(option.delay_ns)
        self.clusters.append(cluster)
        self.cluster_of[uid] = cluster
        self._commit(uid, option, cycle)

    def _commit(self, uid, option, cycle):
        if uid in self.start:
            raise ExplorationError("operation {} scheduled twice".format(uid))
        self.start[uid] = cycle
        self.chosen[uid] = option
        self.order[uid] = self._next_order
        self._next_order = self._next_order + 1
        dfg = self.dfg
        cluster = self.cluster_of.get(uid)
        if cluster is None:
            # Software finish cycles never change again: fold them into
            # the per-successor readiness scalars and the makespan.
            finish = cycle + option.cycles
            if finish > self._makespan_sw:
                self._makespan_sw = finish
            ready_sw = self._ready_sw
            for succ in dfg.successors(uid):
                if finish > ready_sw.get(succ, 0):
                    ready_sw[succ] = finish
        else:
            # Cluster finishes can still grow; successors track the
            # cluster itself and read its finish when asked.
            pred_clusters = self._pred_clusters
            for succ in dfg.successors(uid):
                clusters = pred_clusters.get(succ)
                if clusters is None:
                    pred_clusters[succ] = [cluster]
                elif cluster not in clusters:
                    clusters.append(cluster)
        # This placement is an external consumer of every *other*
        # cluster a parent sits in: tighten their growth ceilings.
        for pred in dfg.predecessors(uid):
            pred_cluster = self.cluster_of.get(pred)
            if (pred_cluster is not None and pred_cluster is not cluster
                    and cycle < pred_cluster.min_ext_start):
                pred_cluster.min_ext_start = cycle

    # -- realized-assignment views --------------------------------------------

    def ise_groups(self):
        """The clusters as ``(members, option_of)`` pairs (for analysis)."""
        return [(frozenset(c.members), dict(c.option_of))
                for c in self.clusters]

    def software_cycles(self):
        """uid → latency of software-scheduled operations."""
        return {uid: option.cycles
                for uid, option in self.chosen.items()
                if uid not in self.cluster_of}

    def verify(self):
        """Sanity-check dependences of the (possibly partial) schedule."""
        start = self.start
        chosen = self.chosen
        cluster_of = self.cluster_of
        for src, dst in self.dfg.edge_pairs():
            dst_start = start.get(dst)
            if dst_start is None or src not in start:
                continue
            src_cluster = cluster_of.get(src)
            if src_cluster is not None:
                if src_cluster is cluster_of.get(dst):
                    continue
                src_finish = src_cluster.start + src_cluster.cycles
            else:
                src_finish = start[src] + chosen[src].cycles
            if dst_start < src_finish:
                raise SchedulingError(
                    "iteration schedule violates edge {}->{}".format(src, dst))
        return self
