"""The paper's contribution: multi-issue ISE exploration + design flow."""

from .candidate import ISECandidate
from .state import ExplorationState
from .iteration import Cluster, IterationSchedule
from .grouping import VirtualGroup, best_group_of, hardware_grouping
from .trail import update_trails
from .merit import update_merits
from .analysis import ScheduleAnalysis
from .make_convex import legalize_components, make_convex
from .contract import contract_candidate
from .exploration import ExplorationResult, MultiIssueExplorer
from .manual import ISEEntry, build_manual, expression_of, render_manual
from .merging import MergedISE, merge_candidates
from .selection import SelectionResult, select_ises, shared_area
from .replacement import (
    plan_block_replacements,
    replace_and_schedule,
    schedule_with_ises,
)
from .flow import (
    BlockInstance,
    ExploredApplication,
    FlowReport,
    ISEDesignFlow,
)

__all__ = [
    "BlockInstance",
    "Cluster",
    "ExplorationResult",
    "ExplorationState",
    "ExploredApplication",
    "FlowReport",
    "ISECandidate",
    "ISEDesignFlow",
    "ISEEntry",
    "IterationSchedule",
    "MergedISE",
    "build_manual",
    "expression_of",
    "render_manual",
    "MultiIssueExplorer",
    "ScheduleAnalysis",
    "SelectionResult",
    "VirtualGroup",
    "best_group_of",
    "contract_candidate",
    "hardware_grouping",
    "legalize_components",
    "make_convex",
    "merge_candidates",
    "plan_block_replacements",
    "replace_and_schedule",
    "schedule_with_ises",
    "select_ises",
    "shared_area",
    "update_merits",
    "update_trails",
]
