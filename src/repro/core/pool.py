"""Persistent shared-memory worker pool with work-stealing fan-out.

:mod:`repro.core.parallel` used to spin up a fresh
``ProcessPoolExecutor`` per ``explore()`` call, pickle the explorer into
every task and dispatch a static ``(block, restart)`` grid — so
wall-clock was gated by pool startup, repeated serialization and the
slowest block.  This module replaces that with one long-lived
:class:`WorkerPool`:

* **Spawn once** — workers fork on first pooled dispatch and survive
  across ``explore()`` calls (and across the grid cells of an
  :class:`~repro.eval.runner.EvalContext`), so the per-call cost drops
  to one broadcast.
* **One broadcast per dispatch** — the task list (explorer, DFGs, IO
  tables) is pickled *once* into a ``multiprocessing.shared_memory``
  segment; pickle's memo stores shared objects a single time, and every
  worker reads the same segment instead of receiving a private copy
  through a pipe.
* **Work stealing** — tasks are dealt round-robin (longest first when
  the caller provides profile-guided cost estimates) into per-worker
  runs of a shared claim array; a worker that drains its own run steals
  from the tail of the most-loaded victim, so short blocks backfill
  behind long ones instead of idling on a static grid.
* **Shared warm evalcache** — a read-mostly open-addressed hash table
  in a second shared-memory segment memoizes deterministic candidate
  evaluations *across* workers and dispatches.  Workers read it
  lock-free during a dispatch; their new entries travel back with the
  task results as write logs and are folded in by the parent between
  dispatches (single-writer, quiescent-reader — no torn rows).

Results are **bit-identical to serial** at any worker count: tasks keep
their submission identity, the reduction order is unchanged, and a
shared-cache hit returns exactly the cycle count the evaluation would
have recomputed.  Observability records are replayed in task
(= serial fire) order even when a stolen task finishes early.

``REPRO_POOL_PERSIST=0`` is the escape hatch: every dispatch then runs
on a throwaway pool (same work-stealing path, no warm state).
Segments are unlinked on :func:`shutdown_pools` — wired into
``EvalContext.close()`` — and by an ``atexit`` fallback, so a crashed
or killed run does not strand ``/dev/shm`` blocks.
"""

import atexit
import hashlib
import os
import pickle
import threading
import multiprocessing
from multiprocessing import connection as mp_connection
from multiprocessing import shared_memory

import numpy as np

from ..dist.client import remote_cache
from ..errors import ReproError
from ..obs import capture

#: Set to ``0`` to tear the pool down after every dispatch.
POOL_PERSIST_ENV = "REPRO_POOL_PERSIST"

#: Slot count of the shared evalcache segment (24 bytes per slot).
POOL_SHARED_SLOTS_ENV = "REPRO_POOL_SHARED_SLOTS"

_DEFAULT_SLOTS = 1 << 15

_FALSY = ("0", "false", "no", "off")


def pool_persist_enabled():
    """True unless ``REPRO_POOL_PERSIST`` disables pool reuse."""
    return os.environ.get(POOL_PERSIST_ENV, "1").strip().lower() \
        not in _FALSY


def _shared_slots():
    try:
        slots = int(os.environ.get(POOL_SHARED_SLOTS_ENV, _DEFAULT_SLOTS))
    except ValueError:
        return _DEFAULT_SLOTS
    return max(64, slots)


def shared_key_bytes(scope, key):
    """Canonical bytes of one evalcache key *within* ``scope``.

    The per-explorer :class:`~repro.core.evalcache.EvalCache` never
    needs a scope — one instance serves one (machine, technology) pair.
    The shared tier outlives explorers and spans the whole evaluation
    grid, so the machine/technology identity must be part of the key or
    a 2-issue cycle count could answer a 4-issue probe.
    """
    return "{}|{!r}".format(scope, key).encode("utf-8", "backslashreplace")


class SharedEvalCache:
    """Open-addressed ``hash128 -> cycles`` table in shared memory.

    Rows are three little-endian int64s ``(hi, lo, value)``; a row is
    empty iff both hash words are zero.  The parent is the only writer
    and only writes while workers are quiescent (between dispatches),
    so readers never see a torn row; the value word is stored before
    the key words as a belt-and-braces ordering anyway.
    """

    ROW_BYTES = 24

    def __init__(self, slots=None, _attach_name=None):
        self.slots = slots if slots is not None else _shared_slots()
        if _attach_name is None:
            self._shm = shared_memory.SharedMemory(
                create=True, size=self.slots * self.ROW_BYTES)
            self._owner = True
        else:
            self._shm = shared_memory.SharedMemory(name=_attach_name)
            self._owner = False
        self._table = np.ndarray((self.slots, 3), dtype=np.int64,
                                 buffer=self._shm.buf)
        if self._owner:
            self._table[:] = 0
        #: Entries inserted (owner-side bookkeeping only).
        self.count = 0
        #: Stop inserting beyond this load so probes stay short.
        self.limit = int(self.slots * 0.85)

    @classmethod
    def attach(cls, name, slots):
        """Reader-side attachment to an existing segment."""
        return cls(slots=slots, _attach_name=name)

    @property
    def name(self):
        """Segment name (``None`` once closed)."""
        return self._shm.name if self._shm is not None else None

    @staticmethod
    def _hash(key_bytes):
        digest = hashlib.sha1(key_bytes).digest()
        hi = int.from_bytes(digest[:8], "little", signed=True)
        lo = int.from_bytes(digest[8:16], "little", signed=True)
        if hi == 0 and lo == 0:       # reserve (0, 0) for "empty"
            lo = 1
        return hi, lo

    def lookup(self, key_bytes):
        """Memoized cycles for ``key_bytes``, or ``None``."""
        hi, lo = self._hash(key_bytes)
        table = self._table
        slots = self.slots
        index = lo % slots
        for __ in range(slots):
            row_hi = table[index, 0]
            row_lo = table[index, 1]
            if row_hi == 0 and row_lo == 0:
                return None
            if row_hi == hi and row_lo == lo:
                return int(table[index, 2])
            index += 1
            if index == slots:
                index = 0
        return None

    def insert(self, key_bytes, value):
        """Record one entry (owner only, workers quiescent)."""
        hi, lo = self._hash(key_bytes)
        return self._insert_hashed(hi, lo, value)

    def _insert_hashed(self, hi, lo, value):
        if self.count >= self.limit:
            return False
        table = self._table
        slots = self.slots
        index = lo % slots
        for __ in range(slots):
            row_hi = table[index, 0]
            row_lo = table[index, 1]
            if row_hi == hi and row_lo == lo:
                return False          # already present
            if row_hi == 0 and row_lo == 0:
                table[index, 2] = value
                table[index, 1] = lo
                table[index, 0] = hi
                self.count += 1
                return True
            index += 1
            if index == slots:
                index = 0
        return False

    def snapshot_rows(self):
        """Copy of the used rows (to seed a replacement pool's cache)."""
        table = self._table
        used = (table[:, 0] != 0) | (table[:, 1] != 0)
        return table[used].copy()

    def preload(self, rows):
        """Re-insert rows captured by :meth:`snapshot_rows`."""
        for hi, lo, value in rows:
            self._insert_hashed(int(hi), int(lo), int(value))

    def close(self):
        """Drop this process's mapping (readers and owner)."""
        if self._shm is None:
            return
        self._table = None
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
        self._shm = None


# -- worker-side shared-cache hooks ---------------------------------------
#
# The per-explorer EvalCache probes/logs through these module globals so
# it needs no reference to the pool object: outside a dispatch both stay
# None and the hooks cost one global read.

_WORKER_SHARED = None
_WORKER_LOG = None


def worker_shared_cache():
    """The attached shared cache while executing a pooled task."""
    return _WORKER_SHARED


def worker_cache_note(scope, key, cycles):
    """Log one locally-computed evaluation for the parent to fold in.

    Only plain ints fit the table's int64 value word; anything else
    simply stays out of the shared tier (never the local one).
    """
    log = _WORKER_LOG
    if log is not None and type(cycles) is int:
        log.append((shared_key_bytes(scope, key), cycles))


# -- the worker process ----------------------------------------------------

def _claim_slot(claim, lock, nworkers, me):
    """Claim one slot of the assignment array (own run, then steal).

    Returns ``(slot, stolen)`` or ``(None, False)`` when no work (or an
    abort) remains.  ``claim`` holds heads in ``[0, n)``, tails in
    ``[n, 2n)`` and the abort flag at ``[2n]``.
    """
    with lock:
        if claim[2 * nworkers]:
            return None, False
        head = claim[me]
        tail = claim[nworkers + me]
        if head < tail:
            claim[me] = head + 1
            return head, False
        victim, best = -1, 0
        for other in range(nworkers):
            remaining = claim[nworkers + other] - claim[other]
            if remaining > best:
                best, victim = remaining, other
        if victim < 0:
            return None, False
        claim[nworkers + victim] -= 1
        return claim[nworkers + victim], True


def _worker_main(worker_id, nworkers, conn, claim, lock, cache_name,
                 cache_slots):
    """Worker loop: wait for a broadcast, drain/steal tasks, repeat."""
    global _WORKER_SHARED, _WORKER_LOG
    from . import parallel

    parallel._mark_worker()
    shared = None
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "stop":
                break
            __, segment_name, nbytes = message
            segment = shared_memory.SharedMemory(name=segment_name)
            try:
                function, tasks, assign, capturing = pickle.loads(
                    segment.buf[:nbytes])
            finally:
                segment.close()
            if shared is None and cache_name is not None:
                shared = SharedEvalCache.attach(cache_name, cache_slots)
            _WORKER_SHARED = shared
            _WORKER_LOG = log = []
            done = 0
            while True:
                slot, stolen = _claim_slot(claim, lock, nworkers, worker_id)
                if slot is None:
                    break
                task_index = assign[slot]
                mark = len(log)
                try:
                    if capturing:
                        capture.begin()
                        try:
                            result = function(*tasks[task_index])
                        finally:
                            records = capture.end()
                    else:
                        records = None
                        result = function(*tasks[task_index])
                except BaseException as exc:  # ships to the parent
                    try:
                        conn.send(("error", worker_id, task_index, exc))
                    except Exception:
                        conn.send(("error", worker_id, task_index,
                                   ReproError(repr(exc))))
                    continue
                done += 1
                conn.send(("done", worker_id, task_index, result,
                           records, log[mark:], stolen))
            _WORKER_LOG = None
            conn.send(("drained", worker_id, done))
    finally:
        _WORKER_LOG = None
        _WORKER_SHARED = None
        if shared is not None:
            shared.close()


# -- the pool --------------------------------------------------------------

class WorkerPool:
    """A fixed set of forked workers fed through shared memory."""

    def __init__(self, workers, cache_rows=None):
        if workers < 1:
            raise ReproError("a worker pool needs at least one worker")
        self.workers = workers
        self.broken = False
        self._down = False
        self._down_lock = threading.Lock()
        self._owner_pid = os.getpid()
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        self.cache = SharedEvalCache()
        if cache_rows is not None:
            self.cache.preload(cache_rows)
        #: Lifetime tallies surfaced by the bench and the obs gauges.
        self.stats = {"dispatches": 0, "tasks": 0, "steals": 0,
                      "broadcast_bytes": 0, "shared_inserts": 0,
                      "remote_preload_rows": 0, "remote_folds": 0}
        # Seed the shared table from the remote tier *before* forking,
        # so every worker's first dispatch already sees sweep-wide
        # warm entries.  Best-effort: an unreachable server preloads
        # nothing and costs one (breaker-gated) round trip.
        remote = remote_cache()
        if remote is not None:
            for key_bytes, cycles in remote.snapshot_cycle_rows():
                if self.cache.insert(key_bytes, cycles):
                    self.stats["remote_preload_rows"] += 1
        self._claim = self._ctx.Array("q", 2 * workers + 1, lock=False)
        self._lock = self._ctx.Lock()
        self._procs = []
        self._conns = []
        for worker_id in range(workers):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(worker_id, workers, child_conn, self._claim,
                      self._lock, self.cache.name, self.cache.slots),
                daemon=True)
            proc.start()
            # Close the parent's copy of the child end *before* forking
            # the next worker: only the worker then holds its write end,
            # so a killed worker is visible as EOF instead of a hang.
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    # -- dispatch ---------------------------------------------------------

    def run(self, function, tasks, jobs=None, obs=None, costs=None):
        """``[function(*task) for task in tasks]`` over the pool.

        ``costs`` (same length as ``tasks``) dispatches expensive tasks
        first; results always keep submission order.  ``jobs`` caps the
        participating workers below the pool size.
        """
        if self.broken:
            raise ReproError("worker pool is broken; create a new one")
        tasks = list(tasks)
        n = len(tasks)
        if n == 0:
            return []
        workers_used = min(self.workers, n if jobs is None
                           else max(1, min(jobs, n)))
        if costs is not None and len(costs) == n:
            order = sorted(range(n), key=lambda i: (-costs[i], i))
        else:
            order = list(range(n))
        # Longest-first round-robin deal: worker w owns order[w::k] as
        # one contiguous run of the flat assignment array.
        runs = [order[w::workers_used] for w in range(workers_used)]
        assign = [i for run in runs for i in run]
        capturing = obs is not None and bool(obs)
        payload = pickle.dumps(
            (function, tasks, assign, capturing),
            protocol=pickle.HIGHEST_PROTOCOL)
        nworkers = self.workers
        with self._lock:
            offset = 0
            for w in range(nworkers):
                if w < workers_used:
                    self._claim[w] = offset
                    offset += len(runs[w])
                    self._claim[nworkers + w] = offset
                else:
                    self._claim[w] = 0
                    self._claim[nworkers + w] = 0
            self._claim[2 * nworkers] = 0
        segment = shared_memory.SharedMemory(create=True,
                                             size=max(len(payload), 1))
        results = [None] * n
        received = [False] * n
        replays = []
        cache_log = []
        steals = 0
        done_per_worker = [0] * workers_used
        error = None
        try:
            segment.buf[:len(payload)] = payload
            for w in range(workers_used):
                try:
                    self._conns[w].send(("run", segment.name, len(payload)))
                except OSError:
                    self._mark_broken()
                    raise ReproError(
                        "pool worker {} is gone (killed?)".format(w))
            pending = {self._conns[w]: w for w in range(workers_used)}
            drained = 0
            while drained < workers_used:
                for conn in mp_connection.wait(list(pending)):
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        self._mark_broken()
                        raise ReproError(
                            "pool worker {} died mid-dispatch".format(
                                pending[conn]))
                    kind = message[0]
                    if kind == "done":
                        (__, wid, index, result, records, log,
                         stolen) = message
                        results[index] = result
                        received[index] = True
                        done_per_worker[wid] += 1
                        if stolen:
                            steals += 1
                        if records:
                            replays.append((index, records))
                        if log:
                            cache_log.extend(log)
                    elif kind == "error":
                        error = message[3]
                        with self._lock:
                            self._claim[2 * nworkers] = 1
                    elif kind == "drained":
                        drained += 1
                        del pending[conn]
        except BaseException:
            # Ctrl-C or a dead worker: do not leave workers chewing on
            # the rest of the queue.
            with self._lock:
                self._claim[2 * nworkers] = 1
            if self.broken:
                self.shutdown()
            raise
        finally:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
        if error is not None:
            raise error
        if not all(received):
            self._mark_broken()
            self.shutdown()
            raise ReproError("pool dispatch lost task results")
        # Quiescent point: every worker is back on conn.recv(), so the
        # parent may fold the write logs into the shared table — and,
        # when a remote tier is configured, into the cache server in
        # the same batched rhythm (workers never write remotely
        # themselves).
        inserts = 0
        for key_bytes, value in cache_log:
            if self.cache.insert(key_bytes, value):
                inserts += 1
        if cache_log:
            remote = remote_cache()
            if remote is not None:
                remote.put_many_cycles(cache_log)
                self.stats["remote_folds"] += 1
        self.stats["dispatches"] += 1
        self.stats["tasks"] += n
        self.stats["steals"] += steals
        self.stats["broadcast_bytes"] += len(payload)
        self.stats["shared_inserts"] += inserts
        if capturing:
            # Replay in task (= serial fire) order: a stolen task may
            # *finish* out of submission order, but its records must
            # not render out of order.
            for __, records in sorted(replays, key=lambda pair: pair[0]):
                obs.replay(records)
            active = sum(1 for count in done_per_worker if count)
            obs.count("pool.dispatches")
            obs.count("pool.tasks", n)
            obs.count("pool.steals", steals)
            obs.count("pool.broadcast_bytes", len(payload))
            obs.gauge("pool.workers", workers_used)
            obs.gauge("pool.worker_occupancy",
                      active / workers_used if workers_used else 0.0)
            obs.gauge("pool.shared_entries", self.cache.count)
        return results

    # -- lifecycle --------------------------------------------------------

    def worker_pids(self):
        """PIDs of the worker processes (for reuse assertions)."""
        return [proc.pid for proc in self._procs]

    def _mark_broken(self):
        self.broken = True

    def shutdown(self):
        """Stop the workers and unlink every shared segment.

        Idempotent and safe to call from several threads (a server's
        lifecycle teardown can race the ``atexit`` fallback): only the
        first call does the work, later ones return immediately.
        """
        if os.getpid() != self._owner_pid:
            return                     # forked child at exit: not ours
        with self._down_lock:
            if self._down:
                return
            self._down = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._procs = []
        self._conns = []
        self.cache.close()
        self.broken = True


# -- the process-wide persistent pool --------------------------------------
#
# The pool predates the exploration service, whose scope lanes dispatch
# from several threads at once and whose stop path races the atexit
# fallback.  Two locks make that safe without changing the serial CLI
# path: _DISPATCH_LOCK serialises whole dispatches (one broadcast owns
# the claim array and the worker pipes at a time, and a teardown can
# never interleave with an in-flight dispatch — it waits), _STATE_LOCK
# guards creation/replacement of the singleton.  _DISPATCH_LOCK is
# always taken first, so there is one lock order and no deadlock.

_POOL = None
_STATE_LOCK = threading.RLock()
_DISPATCH_LOCK = threading.RLock()
_DISPATCH_HOOKS = []


def add_dispatch_hook(hook):
    """Register ``hook(phase, info)`` around every pooled dispatch.

    ``phase`` is ``"start"`` or ``"end"``; ``info`` is a small dict
    (``tasks``, ``jobs``, and on ``"end"`` ``ok``).  The exploration
    service uses this hand-off to stream pool activity to subscribed
    clients and to drain gracefully before teardown.  Hooks must be
    cheap and must not dispatch; exceptions are swallowed — a broken
    observer must never fail the exploration it watches.
    """
    _DISPATCH_HOOKS.append(hook)


def remove_dispatch_hook(hook):
    """Unregister a hook added by :func:`add_dispatch_hook`."""
    try:
        _DISPATCH_HOOKS.remove(hook)
    except ValueError:
        pass


def _fire_dispatch_hooks(phase, info):
    for hook in list(_DISPATCH_HOOKS):
        try:
            hook(phase, info)
        except Exception:
            pass


def active_pool():
    """The live persistent pool, or ``None``."""
    return _POOL


def get_pool(jobs):
    """The persistent pool, (re)created to hold at least ``jobs`` workers.

    Growing the pool replaces it, seeding the new shared evalcache from
    the old one so accumulated evaluations survive the resize.
    """
    global _POOL
    with _STATE_LOCK:
        seed_rows = None
        if _POOL is not None and (_POOL.broken or _POOL.workers < jobs):
            if not _POOL.broken:
                seed_rows = _POOL.cache.snapshot_rows()
            _POOL.shutdown()
            _POOL = None
        if _POOL is None:
            _POOL = WorkerPool(jobs, cache_rows=seed_rows)
        return _POOL


def dispatch(function, tasks, jobs, obs=None, costs=None):
    """Pool-backed ordered map (the ``parallel_map`` fan-out path).

    Thread-safe: concurrent callers (the service's scope lanes) are
    serialised on :data:`_DISPATCH_LOCK`, so each dispatch owns the
    claim array and worker pipes exclusively.  Results are unaffected
    by the serialisation — they were bit-identical to serial already.
    """
    info = {"tasks": len(tasks), "jobs": jobs}
    with _DISPATCH_LOCK:
        _fire_dispatch_hooks("start", info)
        ok = False
        try:
            if pool_persist_enabled():
                results = get_pool(jobs).run(function, tasks, jobs=jobs,
                                             obs=obs, costs=costs)
            else:
                pool = WorkerPool(jobs)
                try:
                    results = pool.run(function, tasks, jobs=jobs, obs=obs,
                                       costs=costs)
                finally:
                    pool.shutdown()
            ok = True
            return results
        finally:
            _fire_dispatch_hooks("end", dict(info, ok=ok))


def shutdown_pools():
    """Tear down the persistent pool and unlink its shared segments.

    Idempotent and ordering-safe: concurrent callers (a server's stop
    path racing the ``atexit`` fallback, or an ``EvalContext.close()``
    racing either) serialise behind the dispatch lock, so teardown
    never interleaves with an in-flight dispatch — it waits for the
    dispatch to finish, then tears down; a dispatch that starts *after*
    the teardown simply recreates the pool.  Wired into
    ``EvalContext.close()`` and registered as an ``atexit`` fallback so
    segments never outlive the process — even when a run is
    interrupted.
    """
    global _POOL
    with _DISPATCH_LOCK:
        with _STATE_LOCK:
            pool = _POOL
            _POOL = None
        if pool is not None:
            pool.shutdown()
        remote = remote_cache()
        if remote is not None:
            remote.flush()


atexit.register(shutdown_pools)
