"""The complete ISE design flow (Fig. 3.1.1).

``profile → basic-block selection → ISE exploration → ISE merging →
ISE selection + hardware sharing → ISE replacement + scheduling``.

The flow separates the expensive part (profiling + exploration, done
once per application/machine) from the cheap part (selection under a
given area / ISE-count budget + replacement), so the evaluation sweeps
of chapter 5 re-use one :class:`ExploredApplication` across budgets.
"""

import warnings

from ..config import DEFAULT_CONSTRAINTS, DEFAULT_PARAMS
from ..errors import ReproError
from ..graph.dfg import build_dfg
from ..hwlib.technology import DEFAULT_TECHNOLOGY
from ..ir.analysis import liveness
from ..ir.interp import Interpreter
from ..ir.passes.pipeline import optimize
from ..obs import ensure_observer
from ..sched.list_scheduler import list_schedule
from ..sched.units import contract_dfg
from .. import engines
from .merging import merge_candidates
from .parallel import parallel_map, resolve_jobs
from .replacement import replace_and_schedule
from .selection import select_ises


def _explore_block_task(explorer, dfg):
    """Module-level worker: explore one block DFG (picklable)."""
    return explorer.explore(dfg)


def _default_engine_factory(flow):
    """Build the flow's engine from the registry (``flow.engine``).

    Module-level (not a lambda) so a flow object with the default
    factory stays picklable; the engine instance it returns rides into
    pool workers exactly like the resolved ``batch`` does.
    """
    return engines.create(
        flow.engine, flow.machine, params=flow.params,
        constraints=flow.constraints, technology=flow.technology,
        seed=flow.seed, priority=flow.priority, batch=flow.batch,
        obs=flow.obs)


class BlockInstance:
    """One profiled basic block, lowered to DFG segments.

    Blocks containing calls are split at call boundaries; each segment
    schedules independently and the block costs the sum plus one cycle
    per call and one for the terminator.  Only single-segment blocks
    are eligible for ISE exploration.
    """

    def __init__(self, function, label, segments, calls, freq):
        self.function = function
        self.label = label
        self.segments = segments
        self.calls = calls
        self.freq = freq
        self.base_cycles = None      # set by the flow

    @property
    def explorable(self):
        """True when the block can be handed to ISE exploration."""
        return (self.freq > 0 and self.calls == 0
                and len(self.segments) == 1 and len(self.segments[0]) > 0)

    @property
    def dfg(self):
        """The single segment DFG of an explorable block."""
        if not self.explorable:
            raise ReproError("block {} is not explorable".format(self.label))
        return self.segments[0]

    @property
    def weight(self):
        """Hot-block ranking weight: frequency x base cycles."""
        return self.freq * (self.base_cycles or 0)

    def __repr__(self):
        return "BlockInstance({}:{}, freq={}, base={})".format(
            self.function, self.label, self.freq, self.base_cycles)


class ExploredApplication:
    """Profiling + exploration output, reusable across budgets."""

    def __init__(self, program, machine, blocks, candidates, explored_labels,
                 technology, constraints):
        self.program = program
        self.machine = machine
        self.blocks = blocks
        self.candidates = candidates
        self.explored_labels = explored_labels
        self.technology = technology
        self.constraints = constraints

    @property
    def baseline_cycles(self):
        """Whole-program cycles without any ISE."""
        return sum(b.freq * (b.base_cycles + 1) for b in self.blocks
                   if b.freq > 0)

    def __repr__(self):
        return "ExploredApplication({}, {} blocks, {} candidates)".format(
            self.program.name, len(self.blocks), len(self.candidates))


class FlowReport:
    """Final metrics of one (application, machine, budget) evaluation."""

    def __init__(self, explored, selection, final_cycles, block_results):
        self.explored = explored
        self.selection = selection
        self.final_cycles = final_cycles
        self.block_results = block_results

    @property
    def baseline_cycles(self):
        """Whole-program cycles without any ISE."""
        return self.explored.baseline_cycles

    @property
    def reduction(self):
        """Execution-time reduction fraction (the figures' Y axis)."""
        base = self.baseline_cycles
        if base <= 0:
            return 0.0
        return 1.0 - self.final_cycles / base

    @property
    def area(self):
        """Shared silicon area of the selected ASFUs."""
        return self.selection.area

    @property
    def num_ises(self):
        """Number of ISEs selected."""
        return self.selection.count

    def __repr__(self):
        return ("FlowReport({} -> {} cycles, -{:.2%}, {} ISEs, "
                "{:.0f} um2)".format(
                    self.baseline_cycles, self.final_cycles, self.reduction,
                    self.num_ises, self.area))


class ISEDesignFlow:
    """Drives the full flow for one machine configuration."""

    def __init__(self, machine, params=None, constraints=None,
                 technology=None, seed=0, priority="children",
                 coverage=0.95, max_blocks=8, max_dfg_nodes=220,
                 explorer_factory=None, jobs=None, batch=None, obs=None,
                 *, engine="aco"):
        if isinstance(constraints, int) and not isinstance(constraints,
                                                           bool):
            # Legacy positional call pattern ISEDesignFlow(machine,
            # params, seed[, jobs]) predating the keyword-only facade
            # (repro.api).  Remap and warn; remove in 2.0.
            warnings.warn(
                "positional ISEDesignFlow(machine, params, seed, jobs) is "
                "deprecated; use keyword arguments or the repro.explore() "
                "facade", DeprecationWarning, stacklevel=2)
            legacy_seed = constraints
            constraints = None
            if isinstance(technology, int) and not isinstance(technology,
                                                              bool):
                jobs = technology
                technology = None
            seed = legacy_seed
        self.machine = machine
        self.params = params or DEFAULT_PARAMS
        self.constraints = constraints or DEFAULT_CONSTRAINTS
        self.technology = technology or DEFAULT_TECHNOLOGY
        self.seed = seed
        self.priority = priority
        self.coverage = coverage
        self.max_blocks = max_blocks
        self.max_dfg_nodes = max_dfg_nodes
        self.jobs = jobs
        #: Ants per lockstep batch inside each exploration round
        #: (``None`` → ``$REPRO_ANT_BATCH`` → 16); resolved by the
        #: explorer, ``1`` forces the scalar reference loop.
        self.batch = batch
        #: Observability context threaded through the whole flow
        #: (explorer, parallel fan-out, evaluation); the falsy
        #: NULL_OBSERVER by default.
        self.obs = ensure_observer(obs)
        #: Registry name of the exploration engine (``repro engines``
        #: lists the choices).  Validated here so a typo fails at
        #: construction, not deep inside ``explore_application``.
        engines.describe(engine)
        self.engine = engine
        if explorer_factory is None:
            explorer_factory = _default_engine_factory
        self._explorer_factory = explorer_factory

    # -- stage 1: profile + lower ------------------------------------------

    def profile_blocks(self, program, args=()):
        """Run the program, lower every block, attach frequencies."""
        interp = Interpreter(program)
        interp.run(args=args)
        profile = interp.profile
        blocks = []
        for func in program.functions:
            __, live_out = liveness(func)
            for block in func.blocks:
                segments, calls = _lower_segments(
                    func, block, live_out[block.label])
                freq = profile.count(func.name, block.label)
                blocks.append(BlockInstance(
                    func.name, block.label, segments, calls, freq))
        for instance in blocks:
            instance.base_cycles = self._block_cycles(instance, groups=None)
        return blocks

    def _block_cycles(self, instance, groups=None, selected=None):
        """Body cycles of a block (sum of its segments).

        ``selected`` (merged ISEs) triggers replacement per segment;
        ``groups`` directly supplies contraction groups for the single
        segment (explorer output).
        """
        total = instance.calls
        for segment in instance.segments:
            if len(segment) == 0:
                continue
            if selected is not None:
                schedule, __ = replace_and_schedule(
                    segment, selected, self.machine, self.technology,
                    self.constraints, priority=self.priority,
                    obs=self.obs)
            else:
                segment_groups = groups if groups is not None else []
                graph, units = contract_dfg(
                    segment, segment_groups, self.technology)
                schedule = list_schedule(graph, units, self.machine,
                                         priority=self.priority)
            total += schedule.makespan
        return total

    # -- stage 2: hot-block selection + exploration --------------------------

    def explore_application(self, program, args=(), opt_level=None,
                            jobs=None):
        """Profile, pick hot blocks, explore each; returns the bundle.

        ``jobs`` > 1 (or ``REPRO_JOBS``) fans block explorations over a
        process pool; per-block RNG streams derive from the block's
        identity, so the bundle is identical to the serial run.
        """
        if opt_level is not None:
            program = optimize(program, opt_level)
        obs = self.obs
        with obs.timer("flow.profile"):
            blocks = self.profile_blocks(program, args=args)
        hot = self._select_hot_blocks(blocks)
        if obs:
            obs.event("flow.profile", program=program.name,
                      opt=opt_level, engine=self.engine,
                      blocks=len(blocks),
                      explorable=sum(1 for b in blocks if b.explorable))
            for instance in hot:
                obs.event("flow.hot_block", function=instance.function,
                          label=instance.label, weight=instance.weight,
                          nodes=len(instance.dfg))
            obs.gauge("flow.hot_blocks", len(hot))
        explorer = self._explorer_factory(self)
        jobs = resolve_jobs(self.jobs if jobs is None else jobs, obs=obs)
        with obs.timer("flow.explore_blocks"):
            results = self._explore_hot_blocks(explorer, hot, jobs)
        candidates = []
        explored_labels = []
        for instance, result in zip(hot, results):
            explored_labels.append((instance.function, instance.label))
            for candidate in result.candidates:
                candidate.weighted_saving = (
                    candidate.cycle_saving * instance.freq)
                candidates.append(candidate)
        if obs:
            obs.event("flow.explored", program=program.name,
                      engine=self.engine, candidates=len(candidates),
                      jobs=jobs)
        return ExploredApplication(program, self.machine, blocks, candidates,
                                   explored_labels, self.technology,
                                   self.constraints)

    @staticmethod
    def _explore_hot_blocks(explorer, hot, jobs):
        """Explore the hot blocks, fanning out when ``jobs`` > 1.

        Explorers that support :meth:`explore_many` get (block, restart)
        granularity; others are mapped block-by-block.  Either way the
        profile phase's schedule lengths (``base_cycles``) ride along
        as cost estimates, so the pool dispatches the longest blocks
        first and short ones backfill behind them.
        """
        costs = [instance.base_cycles or 0 for instance in hot]
        explore_many = getattr(explorer, "explore_many", None)
        if callable(explore_many):
            try:
                return explore_many([b.dfg for b in hot], jobs=jobs,
                                    costs=costs)
            except TypeError:
                # Externally-supplied explorer without the costs hook.
                return explore_many([b.dfg for b in hot], jobs=jobs)
        return parallel_map(_explore_block_task,
                            [(explorer, b.dfg) for b in hot], jobs,
                            obs=getattr(explorer, "obs", None),
                            costs=costs)

    def _select_hot_blocks(self, blocks):
        eligible = [b for b in blocks
                    if b.explorable and len(b.dfg) <= self.max_dfg_nodes
                    and b.dfg.groupable_nodes()]
        eligible.sort(key=lambda b: (-b.weight, b.function, b.label))
        total = sum(b.weight for b in eligible)
        if total <= 0:
            return []
        chosen, covered = [], 0.0
        for block in eligible:
            if len(chosen) >= self.max_blocks:
                break
            chosen.append(block)
            covered += block.weight
            if covered >= self.coverage * total:
                break
        return chosen

    # -- stage 3: merge + select + replace + schedule ---------------------------

    def evaluate(self, explored, constraints=None, enable_sharing=True):
        """Select ISEs under ``constraints`` and produce final metrics."""
        constraints = constraints or self.constraints
        single_asfu = self.machine.fu_counts.get("asfu", 1) <= 1
        obs = self.obs
        with obs.timer("flow.evaluate"):
            merged = merge_candidates(explored.candidates,
                                      single_asfu=single_asfu)
            selection = select_ises(merged, constraints,
                                    enable_sharing=enable_sharing)
            final_cycles = 0
            block_results = {}
            for instance in explored.blocks:
                if instance.freq <= 0:
                    continue
                if instance.explorable and selection.selected:
                    cycles = self._block_cycles(
                        instance, selected=selection.selected)
                else:
                    cycles = instance.base_cycles
                # A compiler would keep the original code if replacement
                # ever lost cycles; model that by clipping at the baseline.
                cycles = min(cycles, instance.base_cycles)
                block_results[(instance.function, instance.label)] = cycles
                final_cycles += instance.freq * (cycles + 1)
        report = FlowReport(explored, selection, final_cycles, block_results)
        if obs:
            obs.event("flow.evaluate",
                      baseline_cycles=report.baseline_cycles,
                      final_cycles=final_cycles,
                      reduction=report.reduction,
                      num_ises=selection.count, area=selection.area)
        return report

    def run(self, program, args=(), opt_level=None, constraints=None,
            enable_sharing=True):
        """Convenience: explore then evaluate with one budget."""
        explored = self.explore_application(program, args=args,
                                            opt_level=opt_level)
        return self.evaluate(explored, constraints=constraints,
                             enable_sharing=enable_sharing)


def _lower_segments(func, block, live_out):
    """Split a block body at calls and lower each segment to a DFG."""
    from ..ir.function import BasicBlock

    segments = []
    calls = 0
    current = BasicBlock(block.label + "#{}".format(len(segments)))
    bodies = []
    for instr in block.body:
        if instr.is_call:
            calls += 1
            bodies.append(current)
            current = BasicBlock(block.label + "#{}".format(len(bodies)))
        else:
            current.append(instr)
    bodies.append(current)
    for index, segment_block in enumerate(bodies):
        is_last = index == len(bodies) - 1
        if is_last:
            segment_block.terminator = block.terminator
            segment_live_out = live_out
        else:
            segment_live_out = func.virtual_registers()
        segments.append(build_dfg(segment_block, segment_live_out,
                                  function=func.name))
    if len(bodies) == 1:
        segments[0].label = block.label
    return segments, calls
