"""Make-Convex and candidate legalisation.

After a round converges, the taken-hardware nodes form connected
components; a component may violate convexity (a dependence path leaves
and re-enters it) or the register-port limits.  ``make_convex`` splits
non-convex sets the way the thesis describes — repeatedly dividing the
candidate into smaller ones until every piece is convex — and
``legalize_components`` additionally trims pieces that overflow the
I/O-port budget, so exploration always returns constraint-satisfying
candidates.
"""

import networkx as nx

from ..graph.analysis import input_values, io_counts, is_convex, output_values
from ..graph.subgraph import hardware_components


def make_convex(dfg, members):
    """Split ``members`` into convex connected pieces.

    Strategy: while some piece is non-convex, find a *witness* node — a
    non-member on a dependence path between two members — and cut the
    piece at the witness's frontier: members that can reach the witness
    are separated from members reachable from it.  Each resulting part
    is re-split into connected components and re-checked.
    """
    pieces = [set(members)]
    result = []
    while pieces:
        piece = pieces.pop()
        if not piece:
            continue
        components = _components(dfg, piece)
        if len(components) > 1:
            pieces.extend(components)
            continue
        if is_convex(dfg, piece):
            result.append(frozenset(piece))
            continue
        witness = _find_witness(dfg, piece)
        ancestors = nx.ancestors(dfg.graph, witness)
        upstream = piece & ancestors
        downstream = piece - upstream
        if not upstream or not downstream:
            # Degenerate (should not happen): drop the largest offender
            # to guarantee progress.
            piece.discard(max(piece))
            pieces.append(piece)
            continue
        pieces.append(upstream)
        pieces.append(downstream)
    return result


def _components(dfg, piece):
    sub = dfg.graph.subgraph(piece)
    return [set(c) for c in nx.weakly_connected_components(sub)]


def _find_witness(dfg, piece):
    """A non-member on a member→member dependence path."""
    descendants = set()
    for uid in piece:
        for succ in dfg.successors(uid):
            if succ not in piece:
                descendants.add(succ)
    frontier = list(descendants)
    while frontier:
        node = frontier.pop()
        for succ in dfg.successors(node):
            if succ not in descendants and succ not in piece:
                descendants.add(succ)
                frontier.append(succ)
    for node in sorted(descendants):
        if any(succ in piece for succ in dfg.successors(node)):
            return node
    raise AssertionError("non-convex set without witness")


def legalize_components(dfg, members, constraints):
    """Convex, port-legal, multi-op candidates covering ``members``.

    Pieces that overflow ``Nin``/``Nout`` shed boundary nodes (the one
    consuming the most external inputs first) until legal; singletons
    are dropped (a one-op ISE saves nothing, merit case 2).
    """
    legal = []
    queue = list(make_convex(dfg, members))
    while queue:
        piece = set(queue.pop())
        if len(piece) < 2:
            continue
        n_in, n_out = io_counts(dfg, piece)
        if n_in <= constraints.n_in and n_out <= constraints.n_out:
            legal.append(frozenset(piece))
            continue
        shed = _worst_boundary_node(dfg, piece)
        piece.discard(shed)
        # Shedding may disconnect or un-convex the rest: restart the
        # piece through make_convex.
        queue.extend(make_convex(dfg, piece))
    return legal


def _worst_boundary_node(dfg, piece):
    """Member contributing the most external input values (ties: most
    external outputs, then highest uid so shedding is deterministic)."""

    def badness(uid):
        ext_in = len(input_values(dfg, {uid}) - input_values(dfg, piece - {uid}))
        outs = len(output_values(dfg, {uid}))
        return (ext_in, outs, uid)

    return max(piece, key=badness)


def extract_components(dfg, chosen_hw):
    """Connected hardware components (pre Make-Convex)."""
    return hardware_components(dfg, chosen_hw)
