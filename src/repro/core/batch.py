"""Lockstep batched ant construction (vectorised Ready-Matrix draws).

The scalar iteration loop draws one (operation, option) pair at a time
through Python: per-draw tuple lists from
:meth:`~repro.core.state.ExplorationState.cp_weights`, a scalar
roulette, and dict-based readiness bookkeeping.  Trails and merits only
change *between* iterations, so within one iteration — and therefore
within any group of iterations run against the same state — the Eq. 1
weight vector is a constant.  :class:`BatchedAntRunner` exploits that:
``B`` ants advance **in lockstep**, one matrix step per draw index,

* readiness as a ``(B, n_nodes)`` remaining-predecessor matrix folded
  with a dense successor matrix (one subtraction per step for the whole
  batch),
* Eq. 1 weights from a single
  :meth:`~repro.core.state.ExplorationState.cp_weights_batch` call on
  the flat trail/merit vectors, masked per ant by the ready slots,
* the roulette as row-wise cumulative sums, one ``rng.random()`` per
  ant per step (ant-index order — at ``B == 1`` this is exactly the
  scalar draw stream) and a vectorised first-``cum >= pick`` search,
* reservation-table first-fit placement probes batched across the ants
  of a step (:func:`~repro.sched.resources.first_fit_batch`) for
  software options and fresh ISE cluster opens.

Only placements whose packing decisions genuinely interact — a
hardware option whose operation has a parent already sitting in one of
that ant's clusters, i.e. a potential cluster *join* with geometry
revision — drop to the existing scalar path
(:meth:`~repro.core.iteration.IterationSchedule.schedule_hardware`).
The ``stat_*`` tallies feed the ``batch.*`` observability counters.

``resolve_batch`` mirrors :func:`~repro.core.parallel.resolve_jobs`:
an explicit ``batch=`` argument wins, then ``REPRO_ANT_BATCH``, then
the default of 16.  ``REPRO_ANT_BATCH=1`` is the parity escape hatch —
the explorer then runs the scalar round loop, bit-identical to the
pre-batching engine.
"""

import os

import numpy as np

from ..errors import ConfigError, ExplorationError
from ..graph.analysis import SubgraphIOTracker
from ..sched.resources import Needs, first_fit_batch
from .iteration import IterationSchedule

#: Environment variable supplying the default ant batch size.
BATCH_ENV = "REPRO_ANT_BATCH"

#: Ants per lockstep batch when neither ``batch=`` nor the environment
#: says otherwise.  16 amortises the per-batch trail/merit fold well
#: while keeping per-round RNG consumption moderate.
DEFAULT_BATCH = 16


def resolve_batch(batch=None, obs=None):
    """Normalise a ``batch`` request into a positive ant count.

    ``None`` falls back to ``REPRO_ANT_BATCH`` (default
    :data:`DEFAULT_BATCH`); ``0`` or ``"auto"`` selects the default
    explicitly.  ``1`` selects the scalar path — the bit-exact parity
    escape hatch.  When an enabled ``obs`` observer is passed, the
    effective size is recorded as the ``batch.effective`` gauge.
    """
    if batch is None:
        batch = os.environ.get(BATCH_ENV, "").strip() or DEFAULT_BATCH
    if isinstance(batch, str):
        if batch.strip().lower() == "auto":
            batch = 0
        else:
            try:
                batch = int(batch)
            except ValueError:
                raise ConfigError(
                    "batch must be an integer or 'auto', got {!r}".format(
                        batch)) from None
    if batch == 0:
        batch = DEFAULT_BATCH
    if batch < 1:
        raise ConfigError(
            "batch must be a positive ant count, got {}".format(batch))
    if obs:
        obs.gauge("batch.effective", batch)
    return batch


def effective_batch(batch, n_nodes):
    """Per-round lockstep width: ``batch`` capped at ``n_nodes // 2``.

    Ants inside one lockstep batch all draw against the same frozen
    trail/merit state — the batch trades per-ant feedback for
    throughput.  On tiny DFGs that trade is all cost and no gain: the
    matrix step is O(B * n) work that scalar Python already does
    quickly, while the colony's convergence leans hard on seeing every
    ant's update.  Capping the width at half the node count keeps small
    rounds at (or near) the scalar loop's learning density and leaves
    the large, expensive rounds — where the vectorisation actually
    pays — at the full requested width.
    """
    return min(batch, max(1, n_nodes // 2))


class BatchedAntRunner:
    """Constructs ``B`` iteration schedules per call, in lockstep.

    One runner lives for one exploration round: the DFG topology, the
    flat slot layout of the round's
    :class:`~repro.core.state.ExplorationState` and the dense successor
    matrix are precomputed once; :meth:`run` then performs ``n_nodes``
    matrix steps per batch.  Construction is exact — at any batch size
    each ant's schedule is the one the scalar loop would have built
    from the same per-ant draw stream.
    """

    def __init__(self, dfg, state, machine, technology, constraints):
        self.dfg = dfg
        self.state = state
        self.machine = machine
        self.technology = technology
        self.constraints = constraints
        uids = list(dfg.nodes)
        self._uids = uids
        index = {uid: i for i, uid in enumerate(uids)}
        n = len(uids)
        # Dense successor matrix: row u holds 1 for every successor of
        # u (adjacency is deduplicated, so counts match the scalar
        # remaining-predecessor bookkeeping).  Basic-block DFGs are
        # small, so n^2 int8 stays in cache.  The diagonal is -1: the
        # step loop subtracts the chosen node's row from the remaining
        # counts, which then *raises* the chosen node's own count to 1 —
        # a node is ready iff its count is exactly 0, so placed nodes
        # drop out without a separate done matrix.  (A ready node has
        # all predecessors placed, so its count never decreases again.)
        succ = np.zeros((n, n), dtype=np.int8)
        preds = np.zeros(n, dtype=np.int32)
        for src, dst in dfg.edge_pairs():
            succ[index[src], index[dst]] = 1
            preds[index[dst]] += 1
        np.fill_diagonal(succ, -1)
        self._succ_matrix = succ
        self._base_preds = preds
        # Flat slot layout shared with the state's trail/merit vectors:
        # slot -> (uid, option), slot -> node index for ready gathering.
        pairs = state.slot_pairs()
        self._slot_pairs = pairs
        self._slot_node = np.fromiter(
            (index[uid] for uid, __ in pairs), dtype=np.intp,
            count=len(pairs))
        self._preds_of = {uid: tuple(dfg.predecessors(uid))
                          for uid in uids}
        # Per-slot placement precomputation: the resource demand of a
        # software option and of a singleton cluster open are functions
        # of the (frozen) DFG alone, so they are computed once here —
        # software Needs per slot, and a template
        # :class:`~repro.graph.analysis.SubgraphIOTracker` per
        # operation that actual opens clone instead of re-walking the
        # operation's edges for every ant.
        probe = IterationSchedule(dfg, machine, technology, constraints)
        self._slot_sw_needs = [
            None if option.is_hardware
            else probe.software_needs(uid, option)
            for uid, option in pairs]
        self._open_template = {}
        for uid in uids:
            io = SubgraphIOTracker(dfg)
            io.add(uid)
            self._open_template[uid] = (
                io, Needs(reads=io.n_in, writes=io.n_out, fu_kind="asfu"))
        #: Always-on tallies feeding the ``batch.*`` obs counters.
        self.stat_ants_batched = 0
        self.stat_scalar_fallbacks = 0
        self.stat_rows_vectorized = 0

    # -- one lockstep batch -------------------------------------------------

    def run(self, rng, n_ants):
        """Construct ``n_ants`` verified schedules with lockstep draws.

        Consumes exactly ``n_ants * n_nodes`` calls of ``rng.random()``
        in (step, ant) order; at ``n_ants == 1`` this is the scalar
        loop's draw stream.
        """
        n_nodes = len(self._uids)
        schedules = [IterationSchedule(self.dfg, self.machine,
                                       self.technology, self.constraints)
                     for __ in range(n_ants)]
        if not n_nodes:
            return schedules
        n_slots = len(self._slot_pairs)
        weights = self.state.cp_weights_batch()
        remaining = np.tile(self._base_preds, (n_ants, 1))
        rows = np.arange(n_ants)
        draws = np.empty(n_ants, dtype=np.float64)
        picks = np.empty(n_ants, dtype=np.float64)
        chosen = np.empty(n_ants, dtype=np.intp)
        # Step-loop work buffers, reused across all n_nodes steps so the
        # hot loop allocates nothing per step.  Placed nodes carry a
        # remaining count of 1 (see the successor-matrix diagonal), so
        # readiness is the single comparison against zero.
        ready = np.empty((n_ants, n_nodes), dtype=bool)
        slot_ready = np.empty((n_ants, n_slots), dtype=bool)
        masked = np.empty((n_ants, n_slots), dtype=np.float64)
        cum = np.empty((n_ants, n_slots), dtype=np.float64)
        below = np.empty((n_ants, n_slots), dtype=bool)
        succ_rows = np.empty((n_ants, n_nodes), dtype=np.int8)
        self.stat_ants_batched += n_ants
        for __ in range(n_nodes):
            np.equal(remaining, 0, out=ready)
            np.take(ready, self._slot_node, axis=1, out=slot_ready)
            for ant in range(n_ants):
                draws[ant] = rng.random()
            slots = _roulette_rows(weights, slot_ready, draws,
                                   masked=masked, cum=cum, below=below,
                                   rows=rows, picks=picks)
            self.stat_rows_vectorized += n_ants
            self._place(schedules, slots)
            np.take(self._slot_node, slots, out=chosen)
            np.take(self._succ_matrix, chosen, axis=0, out=succ_rows)
            remaining -= succ_rows
        return [schedule.verify() for schedule in schedules]

    # -- placements ---------------------------------------------------------

    def _place(self, schedules, slots):
        """Apply one drawn (operation, option) per ant.

        Software options and fresh cluster opens stage their first-fit
        probes and resolve them in one batched scan; hardware options
        with a parent already clustered in the same ant's schedule take
        the scalar packing path (joins revise cluster geometry — the
        genuinely interacting case).
        """
        probes = []               # (schedule, uid, option, io, needs)
        tables = []
        needs_list = []
        ready_list = []
        slot_pairs = self._slot_pairs
        slot_sw_needs = self._slot_sw_needs
        open_template = self._open_template
        for ant, slot in enumerate(slots.tolist()):
            schedule = schedules[ant]
            uid, option = slot_pairs[slot]
            needs = slot_sw_needs[slot]
            if needs is not None:
                io = None
            else:
                cluster_of = schedule.cluster_of
                if cluster_of:
                    joined = False
                    for pred in self._preds_of[uid]:
                        if pred in cluster_of:
                            self.stat_scalar_fallbacks += 1
                            schedule.schedule_hardware(uid, option)
                            joined = True
                            break
                    if joined:
                        continue
                io, needs = open_template[uid]
                io = io.clone()
            probes.append((schedule, uid, option, io, needs))
            tables.append(schedule.table)
            needs_list.append(needs)
            ready_list.append(schedule.data_ready(uid))
        if not probes:
            return
        cycles = first_fit_batch(tables, needs_list, ready_list)
        for (schedule, uid, option, io, needs), cycle in zip(probes, cycles):
            if io is None:
                schedule.place_software(uid, option, needs, cycle)
            else:
                schedule.place_cluster(uid, option, io, needs, cycle)


def _roulette_rows(weights, slot_ready, draws,
                   masked=None, cum=None, below=None, rows=None,
                   picks=None):
    """Batched Eq. 1 roulette: one chosen slot per ant row.

    Exact counterpart of the scalar ``_roulette`` over each row's ready
    slots: zero-weight (unready) slots leave the running cumulative sum
    unchanged, so the first slot whose cumulative weight reaches the
    scaled draw is the same candidate the scalar accumulation loop
    picks, bit for bit.  Degenerate all-zero rows fall back to the
    scalar path's uniform pick over that row's candidates.  The
    optional work arrays let the step loop reuse its buffers.
    """
    masked = np.multiply(weights, slot_ready, out=masked)
    cum = np.cumsum(masked, axis=1, out=cum)
    totals = cum[:, -1]
    picks = np.multiply(draws, totals, out=picks)
    below = np.less(cum, picks[:, None], out=below)
    slots = np.count_nonzero(below, axis=1)
    n_slots = slot_ready.shape[1]
    if rows is None:
        rows = np.arange(len(slots))
    # Fast path: every total positive, every landing index in range and
    # on a ready slot — the overwhelmingly common case.
    if (totals.min() > 0.0 and int(slots.max()) < n_slots
            and slot_ready[rows, slots].all()):
        return slots
    # Rare fix-ups, resolved per affected row:
    # * a zero (or underflowed) total mirrors the scalar uniform pick
    #   (and exposes a deadlocked row: no ready slot at all);
    # * ``pick <= 0`` lands on index 0 even when slot 0 is unready —
    #   the scalar loop returns the first candidate;
    # * floating-point overshoot past the last cumulative value maps to
    #   the last candidate, as the scalar loop's final fallback does.
    for row in range(len(slots)):
        slot = slots[row]
        if (totals[row] > 0.0 and slot < n_slots
                and slot_ready[row, slot]):
            continue
        candidates = np.flatnonzero(slot_ready[row])
        count = len(candidates)
        if not count:
            raise ExplorationError("ready set empty with work remaining")
        if totals[row] <= 0.0:
            slots[row] = candidates[min(int(draws[row] * count), count - 1)]
        elif slot >= n_slots:
            slots[row] = candidates[-1]
        else:
            slots[row] = candidates[0]
    return slots
