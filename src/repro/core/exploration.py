"""Deprecated home of the multi-issue exploration algorithm.

The implementation moved to :mod:`repro.engines.aco` when the pluggable
:class:`~repro.engines.base.ExplorerEngine` protocol was extracted
(select it with ``engine="aco"`` — the default — on
:class:`~repro.core.flow.ISEDesignFlow` or :func:`repro.api.explore`).
This module remains as a compatibility shim: :class:`MultiIssueExplorer`
is an alias of :class:`~repro.engines.aco.AcoEngine` that warns on
construction, and the names downstream code historically imported from
here (:class:`~repro.engines.base.ExplorationResult`, the pool worker
``_restart_task``, the ``_roulette`` draw) are re-exported unchanged.
"""

import warnings

from ..engines.aco import (AcoEngine, _restart_task, _roulette,
                           _RoundResult, _schedule_key)
from ..engines.base import ExplorationResult

__all__ = ["ExplorationResult", "MultiIssueExplorer"]


class MultiIssueExplorer(AcoEngine):
    """Deprecated alias of :class:`~repro.engines.aco.AcoEngine`.

    Behaviour is identical (it *is* the ACO engine); only the import
    location is deprecated.  Pool workers unpickling an instance do not
    re-run ``__init__``, so fanned-out restarts never re-warn.
    """

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "MultiIssueExplorer moved to repro.engines.aco.AcoEngine; "
            "import it from there (or use engine=\"aco\" on the design "
            "flow / repro.api.explore)",
            DeprecationWarning, stacklevel=2)
        super().__init__(*args, **kwargs)
