"""Cross-restart memoization of deterministic candidate evaluation.

Every exploration round scores its candidate proposals by fixing them
into the *original* block DFG and list-scheduling the contracted unit
graph (:meth:`MultiIssueExplorer._evaluate`).  That evaluation is a
pure function of the DFG, the trial candidate list and the software
latencies — and converged restarts propose overwhelmingly overlapping
candidate sets, so the same schedules are rebuilt from scratch over and
over.  :class:`EvalCache` memoises the resulting block cycle counts.

Keys are canonical fingerprints:

* the **DFG identity** — a structural digest (function, label, nodes
  with opcode/sources/dests, edges) computed once per DFG object and
  cached on it, so pickled copies in pool workers carry it along;
* the **trial candidates** — per candidate ``(sorted members, sorted
  (uid, option label, delay, area))``, taken as an *ordered* tuple.
  Order matters: contraction names ISE supernodes ``ise0, ise1, …`` in
  candidate order and the list scheduler tie-breaks on unit name, so
  two orderings of the same set may legally schedule differently —
  collapsing them to a frozenset could return a cycle count the
  pre-memo engine would not have produced for that exact call;
* the **software latencies** the evaluation saw (from the io tables).

Because the memoised value is exactly what the evaluation would have
recomputed, results are bit-identical with the cache on or off; the
``REPRO_EVALCACHE`` environment variable (default on) exists for A/B
timing, not correctness.  One cache is shared across all rounds and
restarts of a block (and across blocks — the DFG digest keys them
apart).  Under ``jobs>1`` the cache pickles as a read-only warm
snapshot: workers start from whatever the parent had accumulated and
count their own hits/misses (replayed into the parent's metrics).

Inside a pool worker there is additionally a **shared tier**
(:class:`repro.core.pool.SharedEvalCache`): a local miss falls back to
the read-mostly shared-memory table — where a cycle count memoised by
*any* worker of *any* earlier dispatch may already sit — and every
locally computed value is appended to a per-worker write log that the
parent folds into the table between dispatches.  Shared-tier hits are
tallied separately (``shared_hits``) and promoted into the local dict.
The shared tier spans explorers with *different* machines and
technologies (the evaluation grid, the single-issue baseline), so its
keys are additionally scoped by the ``scope`` string the owning
explorer passes in — without it a 2-issue cycle count could answer a
4-issue probe and silently break bit-parity.

Behind both sits the optional **remote tier**
(:mod:`repro.dist.client`, enabled by ``REPRO_REMOTE_CACHE``): a miss
in the local dict *and* the shared table finally probes the TCP cache
server under the same scope-qualified key bytes, so cycle counts flow
between the hosts of a sharded sweep.  Remote hits are tallied as
``remote_hits`` and promoted into the nearer tiers — the local dict
immediately, the shared table via the worker insert log.  Writes are
batched: serial (non-worker) processes append to the client's insert
log (flushed as one MPUT), workers rely on the pool parent folding
their logs into both the shared table and the remote server between
dispatches.  Every remote operation is best-effort — an unreachable
server degrades to the lower tiers bit-identically (the memoised value
is exactly what the evaluation would recompute).
"""

import hashlib
import os

from ..dist.client import remote_cache
from .parallel import in_worker
from .pool import shared_key_bytes, worker_cache_note, worker_shared_cache

#: Environment variable disabling the evaluation memo (set to ``0``).
EVALCACHE_ENV = "REPRO_EVALCACHE"

#: Entry cap — a backstop against pathological candidate churn, far
#: above what any real block produces.
MAX_ENTRIES = 1 << 17

_FALSY = ("0", "false", "no", "off")


def evalcache_enabled():
    """True unless ``REPRO_EVALCACHE`` disables the memo."""
    return os.environ.get(EVALCACHE_ENV, "1").strip().lower() not in _FALSY


def eval_scope(machine, technology):
    """The canonical scope string of one (machine, technology) pair.

    Every shared-tier key (shm table, remote server) and every serve
    session lane is qualified by this exact string, so "same scope"
    means the same thing across all of them: a 2-issue cycle count can
    never answer a 4-issue probe, and the exploration service batches
    only requests whose evaluations are interchangeable.
    """
    return "{}is|{}|{}|{!r}".format(
        machine.issue_width, machine.register_file.spec,
        sorted(machine.fu_counts.items()), technology)


def dfg_fingerprint(dfg):
    """Structural digest of a DFG, computed once and cached on it.

    A stable content hash (not the builtin ``hash``, which is salted
    per process): the cached attribute pickles along with the DFG, so
    pool workers look snapshot entries up under the same key the
    parent stored them with.
    """
    cached = getattr(dfg, "_evalcache_fp", None)
    if cached is not None:
        return cached
    nodes = tuple(
        (uid, dfg.op(uid).name, tuple(dfg.op(uid).sources),
         tuple(dfg.op(uid).dests))
        for uid in dfg.nodes)
    edges = tuple(sorted(dfg.edge_pairs()))
    payload = repr((dfg.function, dfg.label, nodes, edges))
    fingerprint = hashlib.sha1(payload.encode()).hexdigest()
    dfg._evalcache_fp = fingerprint
    return fingerprint


def candidate_fingerprint(members, option_of):
    """Canonical key part for one candidate's ``(members, options)``."""
    return (tuple(sorted(members)),
            tuple(sorted((uid, option.label, option.delay_ns, option.area)
                         for uid, option in option_of.items())))


class EvalCache:
    """Memo of ``fingerprint -> block cycles`` with hit/miss tallies.

    ``scope`` qualifies this cache's keys in the cross-worker shared
    tier (machine + technology identity); it is irrelevant to the local
    dict, which never outlives its explorer.
    """

    __slots__ = ("_entries", "hits", "misses", "shared_hits",
                 "remote_hits", "scope")

    def __init__(self, scope=""):
        self._entries = {}
        self.hits = 0
        self.misses = 0
        self.shared_hits = 0
        self.remote_hits = 0
        self.scope = scope

    def __len__(self):
        return len(self._entries)

    def key(self, dfg, candidates, software_cycles):
        """Canonical fingerprint of one ``_evaluate`` call."""
        return (dfg_fingerprint(dfg),
                tuple(candidate_fingerprint(c.members, c.option_of)
                      for c in candidates),
                software_cycles)

    def get(self, key):
        """Memoised cycles for ``key`` (None on miss).

        Tier order is nearest-first: the local dict, then the attached
        shared-memory table (pool workers only), then the remote TCP
        tier (when ``REPRO_REMOTE_CACHE`` is set).  A hit from a
        farther tier is promoted into the nearer ones — the local dict
        directly, the shared table via the worker insert log — so
        repeat probes stay a dict lookup.
        """
        value = self._entries.get(key)
        if value is not None:
            self.hits += 1
            return value
        key_bytes = None
        shared = worker_shared_cache()
        if shared is not None:
            key_bytes = shared_key_bytes(self.scope, key)
            cycles = shared.lookup(key_bytes)
            if cycles is not None:
                self.hits += 1
                self.shared_hits += 1
                if len(self._entries) < MAX_ENTRIES:
                    self._entries[key] = cycles
                return cycles
        remote = remote_cache()
        if remote is not None:
            if key_bytes is None:
                key_bytes = shared_key_bytes(self.scope, key)
            cycles = remote.get_cycles(key_bytes)
            if cycles is not None:
                self.hits += 1
                self.remote_hits += 1
                if len(self._entries) < MAX_ENTRIES:
                    self._entries[key] = cycles
                worker_cache_note(self.scope, key, cycles)
                return cycles
        self.misses += 1
        return None

    def put(self, key, cycles):
        """Record an evaluation outcome in every reachable tier.

        The local dict stores it directly; the shared and remote tiers
        receive it through insert logs — the per-worker log the pool
        parent folds between dispatches, or (serial processes only) the
        remote client's batched MPUT log.
        """
        if len(self._entries) < MAX_ENTRIES:
            self._entries[key] = cycles
        worker_cache_note(self.scope, key, cycles)
        if type(cycles) is int and not in_worker():
            remote = remote_cache()
            if remote is not None:
                remote.put_cycles(shared_key_bytes(self.scope, key),
                                  cycles)

    def stats(self):
        """``(hits, misses, entries)`` snapshot."""
        return (self.hits, self.misses, len(self._entries))

    # -- pickling: warm read-only snapshot for pool workers ----------------

    def __getstate__(self):
        return {"entries": dict(self._entries), "scope": self.scope}

    def __setstate__(self, state):
        self._entries = state["entries"]
        self.scope = state.get("scope", "")
        # Worker-side tallies restart at zero so the deltas each task
        # replays into the parent metrics are intrinsic to that task.
        self.hits = 0
        self.misses = 0
        self.shared_hits = 0
        self.remote_hits = 0

    def __repr__(self):
        return "EvalCache({} entries, {} hits / {} misses)".format(
            len(self._entries), self.hits, self.misses)
