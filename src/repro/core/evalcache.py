"""Cross-restart memoization of deterministic candidate evaluation.

Every exploration round scores its candidate proposals by fixing them
into the *original* block DFG and list-scheduling the contracted unit
graph (:meth:`MultiIssueExplorer._evaluate`).  That evaluation is a
pure function of the DFG, the trial candidate list and the software
latencies — and converged restarts propose overwhelmingly overlapping
candidate sets, so the same schedules are rebuilt from scratch over and
over.  :class:`EvalCache` memoises the resulting block cycle counts.

Keys are canonical fingerprints:

* the **DFG identity** — a structural digest (function, label, nodes
  with opcode/sources/dests, edges) computed once per DFG object and
  cached on it, so pickled copies in pool workers carry it along;
* the **trial candidates** — per candidate ``(sorted members, sorted
  (uid, option label, delay, area))``, taken as an *ordered* tuple.
  Order matters: contraction names ISE supernodes ``ise0, ise1, …`` in
  candidate order and the list scheduler tie-breaks on unit name, so
  two orderings of the same set may legally schedule differently —
  collapsing them to a frozenset could return a cycle count the
  pre-memo engine would not have produced for that exact call;
* the **software latencies** the evaluation saw (from the io tables).

Because the memoised value is exactly what the evaluation would have
recomputed, results are bit-identical with the cache on or off; the
``REPRO_EVALCACHE`` environment variable (default on) exists for A/B
timing, not correctness.  One cache is shared across all rounds and
restarts of a block (and across blocks — the DFG digest keys them
apart).  Under ``jobs>1`` the cache pickles as a read-only warm
snapshot: workers start from whatever the parent had accumulated and
count their own hits/misses (replayed into the parent's metrics).

Inside a pool worker there is additionally a **shared tier**
(:class:`repro.core.pool.SharedEvalCache`): a local miss falls back to
the read-mostly shared-memory table — where a cycle count memoised by
*any* worker of *any* earlier dispatch may already sit — and every
locally computed value is appended to a per-worker write log that the
parent folds into the table between dispatches.  Shared-tier hits are
tallied separately (``shared_hits``) and promoted into the local dict.
The shared tier spans explorers with *different* machines and
technologies (the evaluation grid, the single-issue baseline), so its
keys are additionally scoped by the ``scope`` string the owning
explorer passes in — without it a 2-issue cycle count could answer a
4-issue probe and silently break bit-parity.
"""

import hashlib
import os

from .pool import shared_key_bytes, worker_cache_note, worker_shared_cache

#: Environment variable disabling the evaluation memo (set to ``0``).
EVALCACHE_ENV = "REPRO_EVALCACHE"

#: Entry cap — a backstop against pathological candidate churn, far
#: above what any real block produces.
MAX_ENTRIES = 1 << 17

_FALSY = ("0", "false", "no", "off")


def evalcache_enabled():
    """True unless ``REPRO_EVALCACHE`` disables the memo."""
    return os.environ.get(EVALCACHE_ENV, "1").strip().lower() not in _FALSY


def dfg_fingerprint(dfg):
    """Structural digest of a DFG, computed once and cached on it.

    A stable content hash (not the builtin ``hash``, which is salted
    per process): the cached attribute pickles along with the DFG, so
    pool workers look snapshot entries up under the same key the
    parent stored them with.
    """
    cached = getattr(dfg, "_evalcache_fp", None)
    if cached is not None:
        return cached
    nodes = tuple(
        (uid, dfg.op(uid).name, tuple(dfg.op(uid).sources),
         tuple(dfg.op(uid).dests))
        for uid in dfg.nodes)
    edges = tuple(sorted(dfg.edge_pairs()))
    payload = repr((dfg.function, dfg.label, nodes, edges))
    fingerprint = hashlib.sha1(payload.encode()).hexdigest()
    dfg._evalcache_fp = fingerprint
    return fingerprint


def candidate_fingerprint(members, option_of):
    """Canonical key part for one candidate's ``(members, options)``."""
    return (tuple(sorted(members)),
            tuple(sorted((uid, option.label, option.delay_ns, option.area)
                         for uid, option in option_of.items())))


class EvalCache:
    """Memo of ``fingerprint -> block cycles`` with hit/miss tallies.

    ``scope`` qualifies this cache's keys in the cross-worker shared
    tier (machine + technology identity); it is irrelevant to the local
    dict, which never outlives its explorer.
    """

    __slots__ = ("_entries", "hits", "misses", "shared_hits", "scope")

    def __init__(self, scope=""):
        self._entries = {}
        self.hits = 0
        self.misses = 0
        self.shared_hits = 0
        self.scope = scope

    def __len__(self):
        return len(self._entries)

    def key(self, dfg, candidates, software_cycles):
        """Canonical fingerprint of one ``_evaluate`` call."""
        return (dfg_fingerprint(dfg),
                tuple(candidate_fingerprint(c.members, c.option_of)
                      for c in candidates),
                software_cycles)

    def get(self, key):
        """Memoised cycles for ``key`` (None on miss).

        Misses in the local dict fall back to the shared tier when one
        is attached (pool workers only); shared hits are promoted
        locally so repeat probes stay a dict lookup.
        """
        value = self._entries.get(key)
        if value is not None:
            self.hits += 1
            return value
        shared = worker_shared_cache()
        if shared is not None:
            cycles = shared.lookup(shared_key_bytes(self.scope, key))
            if cycles is not None:
                self.hits += 1
                self.shared_hits += 1
                if len(self._entries) < MAX_ENTRIES:
                    self._entries[key] = cycles
                return cycles
        self.misses += 1
        return None

    def put(self, key, cycles):
        """Record an evaluation outcome (and log it for the shared tier)."""
        if len(self._entries) < MAX_ENTRIES:
            self._entries[key] = cycles
        worker_cache_note(self.scope, key, cycles)

    def stats(self):
        """``(hits, misses, entries)`` snapshot."""
        return (self.hits, self.misses, len(self._entries))

    # -- pickling: warm read-only snapshot for pool workers ----------------

    def __getstate__(self):
        return {"entries": dict(self._entries), "scope": self.scope}

    def __setstate__(self, state):
        self._entries = state["entries"]
        self.scope = state.get("scope", "")
        # Worker-side tallies restart at zero so the deltas each task
        # replays into the parent metrics are intrinsic to that task.
        self.hits = 0
        self.misses = 0
        self.shared_hits = 0

    def __repr__(self):
        return "EvalCache({} entries, {} hits / {} misses)".format(
            len(self._entries), self.hits, self.misses)
