"""Cross-restart memoization of deterministic candidate evaluation.

Every exploration round scores its candidate proposals by fixing them
into the *original* block DFG and list-scheduling the contracted unit
graph (:meth:`MultiIssueExplorer._evaluate`).  That evaluation is a
pure function of the DFG, the trial candidate list and the software
latencies — and converged restarts propose overwhelmingly overlapping
candidate sets, so the same schedules are rebuilt from scratch over and
over.  :class:`EvalCache` memoises the resulting block cycle counts.

Keys are canonical fingerprints:

* the **DFG identity** — a structural digest (function, label, nodes
  with opcode/sources/dests, edges) computed once per DFG object and
  cached on it, so pickled copies in pool workers carry it along;
* the **trial candidates** — per candidate ``(sorted members, sorted
  (uid, option label, delay, area))``, taken as an *ordered* tuple.
  Order matters: contraction names ISE supernodes ``ise0, ise1, …`` in
  candidate order and the list scheduler tie-breaks on unit name, so
  two orderings of the same set may legally schedule differently —
  collapsing them to a frozenset could return a cycle count the
  pre-memo engine would not have produced for that exact call;
* the **software latencies** the evaluation saw (from the io tables).

Because the memoised value is exactly what the evaluation would have
recomputed, results are bit-identical with the cache on or off; the
``REPRO_EVALCACHE`` environment variable (default on) exists for A/B
timing, not correctness.  One cache is shared across all rounds and
restarts of a block (and across blocks — the DFG digest keys them
apart).  Under ``jobs>1`` the cache pickles as a read-only warm
snapshot: workers start from whatever the parent had accumulated,
count their own hits/misses (replayed into the parent's metrics), and
their insertions stay worker-local.
"""

import hashlib
import os

#: Environment variable disabling the evaluation memo (set to ``0``).
EVALCACHE_ENV = "REPRO_EVALCACHE"

#: Entry cap — a backstop against pathological candidate churn, far
#: above what any real block produces.
MAX_ENTRIES = 1 << 17

_FALSY = ("0", "false", "no", "off")


def evalcache_enabled():
    """True unless ``REPRO_EVALCACHE`` disables the memo."""
    return os.environ.get(EVALCACHE_ENV, "1").strip().lower() not in _FALSY


def dfg_fingerprint(dfg):
    """Structural digest of a DFG, computed once and cached on it.

    A stable content hash (not the builtin ``hash``, which is salted
    per process): the cached attribute pickles along with the DFG, so
    pool workers look snapshot entries up under the same key the
    parent stored them with.
    """
    cached = getattr(dfg, "_evalcache_fp", None)
    if cached is not None:
        return cached
    nodes = tuple(
        (uid, dfg.op(uid).name, tuple(dfg.op(uid).sources),
         tuple(dfg.op(uid).dests))
        for uid in dfg.nodes)
    edges = tuple(sorted(dfg.edge_pairs()))
    payload = repr((dfg.function, dfg.label, nodes, edges))
    fingerprint = hashlib.sha1(payload.encode()).hexdigest()
    dfg._evalcache_fp = fingerprint
    return fingerprint


def candidate_fingerprint(members, option_of):
    """Canonical key part for one candidate's ``(members, options)``."""
    return (tuple(sorted(members)),
            tuple(sorted((uid, option.label, option.delay_ns, option.area)
                         for uid, option in option_of.items())))


class EvalCache:
    """Memo of ``fingerprint -> block cycles`` with hit/miss tallies."""

    __slots__ = ("_entries", "hits", "misses")

    def __init__(self):
        self._entries = {}
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._entries)

    def key(self, dfg, candidates, software_cycles):
        """Canonical fingerprint of one ``_evaluate`` call."""
        return (dfg_fingerprint(dfg),
                tuple(candidate_fingerprint(c.members, c.option_of)
                      for c in candidates),
                software_cycles)

    def get(self, key):
        """Memoised cycles for ``key`` (None on miss)."""
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key, cycles):
        """Record an evaluation outcome."""
        if len(self._entries) < MAX_ENTRIES:
            self._entries[key] = cycles

    def stats(self):
        """``(hits, misses, entries)`` snapshot."""
        return (self.hits, self.misses, len(self._entries))

    # -- pickling: warm read-only snapshot for pool workers ----------------

    def __getstate__(self):
        return {"entries": dict(self._entries)}

    def __setstate__(self, state):
        self._entries = state["entries"]
        # Worker-side tallies restart at zero so the deltas each task
        # replays into the parent metrics are intrinsic to that task.
        self.hits = 0
        self.misses = 0

    def __repr__(self):
        return "EvalCache({} entries, {} hits / {} misses)".format(
            len(self._entries), self.hits, self.misses)
