"""Custom-instruction manual generation.

After selection, a real tape-out needs documentation: each ISE gets an
opcode from the unused pool, an operand signature, its semantics as an
expression over the inputs, and the ASFU timing/area.  This module
reconstructs that datasheet from the candidates — the artefact a
compiler engineer and an RTL engineer would both sign off on.
"""

from ..graph.analysis import input_values, output_values

#: Infix/functional rendering per opcode.  ``{0}``/``{1}`` are the
#: operand expressions; ``{imm}`` the immediate.
_RENDER = {
    "add": "({0} + {1})", "addu": "({0} + {1})",
    "addi": "({0} + {imm})", "addiu": "({0} + {imm})",
    "sub": "({0} - {1})", "subu": "({0} - {1})",
    "mult": "({0} * {1})", "multu": "({0} *u {1})",
    "and": "({0} & {1})", "andi": "({0} & {imm})",
    "or": "({0} | {1})", "ori": "({0} | {imm})",
    "xor": "({0} ^ {1})", "xori": "({0} ^ {imm})",
    "nor": "~({0} | {1})",
    "slt": "({0} <s {1})", "slti": "({0} <s {imm})",
    "sltu": "({0} <u {1})", "sltiu": "({0} <u {imm})",
    "sll": "({0} << {imm})", "sllv": "({0} << {1})",
    "srl": "({0} >> {imm})", "srlv": "({0} >> {1})",
    "sra": "({0} >>a {imm})", "srav": "({0} >>a {1})",
}


def expression_of(candidate, uid, _depth=0):
    """Expression string computing member ``uid`` of ``candidate``.

    Operands produced inside the candidate recurse; operands from
    outside appear as their value names.
    """
    dfg = candidate.dfg
    operation = dfg.op(uid)
    template = _RENDER.get(operation.name)
    if template is None or _depth > 64:
        return "{}({})".format(operation.name,
                               ", ".join(operation.sources))
    producer_of = {}
    for pred in dfg.data_predecessors(uid):
        if pred in candidate.members:
            edge = dfg.graph.edges[pred, uid]
            for value in edge["values"]:
                producer_of[value] = pred
    operands = []
    for value in operation.sources:
        if value in producer_of:
            operands.append(expression_of(candidate, producer_of[value],
                                          _depth + 1))
        else:
            operands.append(value)
    return template.format(*operands, imm=operation.immediate)


class ISEEntry:
    """One manual entry: mnemonic + signature + semantics + costs."""

    def __init__(self, mnemonic, candidate):
        self.mnemonic = mnemonic
        self.candidate = candidate
        dfg = candidate.dfg
        self.inputs = sorted(input_values(dfg, candidate.members))
        self.outputs = sorted(output_values(dfg, candidate.members))
        producers = {}
        for uid in candidate.members:
            for value in dfg.op(uid).dests:
                producers[value] = uid
        self.semantics = {
            value: expression_of(candidate, producers[value])
            for value in self.outputs if value in producers
        }

    def render(self):
        """Datasheet text of this instruction."""
        candidate = self.candidate
        lines = [
            "{} {}, {}".format(
                self.mnemonic,
                ", ".join(self.outputs) or "-",
                ", ".join(self.inputs) or "-"),
            "  latency : {} cycle(s)  ({:.2f} ns combinational)".format(
                candidate.cycles, candidate.delay_ns),
            "  area    : {:.0f} um2 ({} operations)".format(
                candidate.area, candidate.size),
            "  ports   : {} read / {} write".format(
                len(self.inputs), len(self.outputs)),
        ]
        for value, expression in self.semantics.items():
            lines.append("  {:8s}= {}".format(value, expression))
        members = ", ".join(
            "#{} {} [{}]".format(uid, candidate.dfg.op(uid).name,
                                 candidate.option_of[uid].label)
            for uid in sorted(candidate.members))
        lines.append("  datapath: {}".format(members))
        return "\n".join(lines)


def build_manual(selection, prefix="ise"):
    """Manual entries for a
    :class:`~repro.core.selection.SelectionResult` (or any iterable of
    merged ISEs), numbering mnemonics from the unused-opcode pool."""
    entries = []
    merged = getattr(selection, "selected", selection)
    for index, entry in enumerate(merged):
        mnemonic = "{}{}".format(prefix, index)
        entries.append(ISEEntry(mnemonic, entry.representative))
    return entries


def render_manual(selection, title="Custom instruction set"):
    """Full datasheet text for a selection."""
    entries = build_manual(selection)
    lines = [title, "=" * len(title), ""]
    if not entries:
        lines.append("(no instructions selected)")
    for entry in entries:
        lines.append(entry.render())
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
