"""Post-iteration schedule analysis.

After an iteration's schedule is complete, the merit function needs to
know (a) which operations lie on the critical path — clusters count as
single multi-cycle units — and (b) per-node ASAP/ALAP windows for the
Max_AEC slack computation.  Both are computed on the *contracted* unit
graph (clusters folded to supernodes) with pure dependence timing, the
thesis's notion of the critical path.
"""

import networkx as nx


class ScheduleAnalysis:
    """Dependence-timing facts about one iteration's realized choices."""

    def __init__(self, dfg, schedule):
        self.dfg = dfg
        self.schedule = schedule
        graph, unit_of, latency = _contracted_graph(dfg, schedule)
        self._graph = graph
        self._unit_of = unit_of
        self._latency = latency
        self._asap = {}
        for unit in nx.topological_sort(graph):
            earliest = 0
            for pred in graph.predecessors(unit):
                earliest = max(earliest, self._asap[pred] + latency[pred])
            self._asap[unit] = earliest
        self.dependence_makespan = max(
            (self._asap[u] + latency[u] for u in graph.nodes), default=0)
        self._alap = {}
        for unit in reversed(list(nx.topological_sort(graph))):
            latest = self.dependence_makespan - latency[unit]
            for succ in graph.successors(unit):
                latest = min(latest, self._alap[succ] - latency[unit])
            self._alap[unit] = latest
        self.critical = {
            node for node in dfg.nodes
            if self._alap[unit_of[node]] <= self._asap[unit_of[node]]
        }

    # -- per-node windows -------------------------------------------------

    def asap_start(self, node):
        """Earliest dependence-feasible start cycle of ``node``."""
        return self._asap[self._unit_of[node]]

    def alap_start(self, node):
        """Latest start cycle that preserves the makespan."""
        return self._alap[self._unit_of[node]]

    def unit_latency(self, node):
        """Latency of the unit containing ``node``."""
        return self._latency[self._unit_of[node]]

    def is_critical(self, node):
        """True when ``node`` has zero slack."""
        return node in self.critical

    def max_aec(self, members):
        """Maximal allowable execution cycles of a (virtual) group.

        Fig. 4.3.8: the slack window a group can occupy without hurting
        the schedule — from the earliest its external inputs can be
        ready to the latest its external consumers can still start.
        """
        members = set(members)
        ready = 0
        deadline = self.dependence_makespan
        for node in members:
            for pred in self.dfg.predecessors(node):
                if pred in members:
                    continue
                unit = self._unit_of[pred]
                ready = max(ready, self._asap[unit] + self._latency[unit])
            for succ in self.dfg.successors(node):
                if succ in members:
                    continue
                deadline = min(deadline, self._alap[self._unit_of[succ]])
        return max(0, deadline - ready)


def _contracted_graph(dfg, schedule):
    """Unit DAG of the realized assignment (clusters → supernodes)."""
    unit_of = {}
    latency = {}
    for index, cluster in enumerate(schedule.clusters):
        uid = "c{}".format(index)
        for member in cluster.members:
            unit_of[member] = uid
        latency[uid] = cluster.cycles
    for node in dfg.nodes:
        if node not in unit_of:
            unit_of[node] = node
            latency[node] = schedule.chosen[node].cycles
    graph = nx.DiGraph()
    graph.add_nodes_from(set(unit_of.values()))
    for src, dst in dfg.graph.edges:
        u, v = unit_of[src], unit_of[dst]
        if u != v:
            graph.add_edge(u, v)
    return graph, unit_of, latency
