"""Post-iteration schedule analysis.

After an iteration's schedule is complete, the merit function needs to
know (a) which operations lie on the critical path — clusters count as
single multi-cycle units — and (b) per-node ASAP/ALAP windows for the
Max_AEC slack computation.  Both are computed on the *contracted* unit
graph (clusters folded to supernodes) with pure dependence timing, the
thesis's notion of the critical path.

This runs once per ACO iteration, so the contraction and both timing
sweeps are implemented as plain dict/list passes (Kahn topological
order over the unit DAG) rather than through networkx graph objects —
the ASAP/ALAP fixpoints, the critical set and Max_AEC are identical,
the per-iteration cost is not.
"""


class ScheduleAnalysis:
    """Dependence-timing facts about one iteration's realized choices."""

    def __init__(self, dfg, schedule):
        self.dfg = dfg
        self.schedule = schedule
        unit_of, latency, succs, preds, order = _contracted_units(
            dfg, schedule)
        self._unit_of = unit_of
        self._latency = latency
        asap = {}
        for unit in order:
            earliest = 0
            for pred in preds[unit]:
                ready = asap[pred] + latency[pred]
                if ready > earliest:
                    earliest = ready
            asap[unit] = earliest
        self._asap = asap
        self.dependence_makespan = max(
            (asap[unit] + latency[unit] for unit in order), default=0)
        alap = {}
        for unit in reversed(order):
            latest = self.dependence_makespan - latency[unit]
            for succ in succs[unit]:
                bound = alap[succ] - latency[unit]
                if bound < latest:
                    latest = bound
            alap[unit] = latest
        self._alap = alap
        self.critical = {
            node for node in dfg.nodes
            if alap[unit_of[node]] <= asap[unit_of[node]]
        }
        self._aec_memo = {}

    # -- per-node windows -------------------------------------------------

    def asap_start(self, node):
        """Earliest dependence-feasible start cycle of ``node``."""
        return self._asap[self._unit_of[node]]

    def alap_start(self, node):
        """Latest start cycle that preserves the makespan."""
        return self._alap[self._unit_of[node]]

    def unit_latency(self, node):
        """Latency of the unit containing ``node``."""
        return self._latency[self._unit_of[node]]

    def is_critical(self, node):
        """True when ``node`` has zero slack."""
        return node in self.critical

    def max_aec(self, members):
        """Maximal allowable execution cycles of a (virtual) group.

        Fig. 4.3.8: the slack window a group can occupy without hurting
        the schedule — from the earliest its external inputs can be
        ready to the latest its external consumers can still start.
        Memoised per analysis: every hardware option of a seed shares
        the same member set.
        """
        key = members if isinstance(members, frozenset) else None
        if key is not None:
            cached = self._aec_memo.get(key)
            if cached is not None:
                return cached
        members = set(members)
        ready = 0
        deadline = self.dependence_makespan
        for node in members:
            for pred in self.dfg.predecessors(node):
                if pred in members:
                    continue
                unit = self._unit_of[pred]
                ready = max(ready, self._asap[unit] + self._latency[unit])
            for succ in self.dfg.successors(node):
                if succ in members:
                    continue
                deadline = min(deadline, self._alap[self._unit_of[succ]])
        window = max(0, deadline - ready)
        if key is not None:
            self._aec_memo[key] = window
        return window


def _contracted_units(dfg, schedule):
    """Unit DAG of the realized assignment (clusters → supernodes).

    Returns ``(unit_of, latency, succs, preds, topo_order)`` as plain
    dicts/lists — adjacency is deduplicated exactly like the DiGraph it
    replaces, and the order is a Kahn topological sort of the units.
    """
    unit_of = {}
    latency = {}
    for index, cluster in enumerate(schedule.clusters):
        uid = "c{}".format(index)
        for member in cluster.members:
            unit_of[member] = uid
        latency[uid] = cluster.cycles
    chosen = schedule.chosen
    for node in dfg.nodes:
        if node not in unit_of:
            unit_of[node] = node
            latency[node] = chosen[node].cycles
    succs = {unit: set() for unit in latency}
    for src, dst in dfg.edge_pairs():
        u, v = unit_of[src], unit_of[dst]
        if u != v:
            succs[u].add(v)
    preds = {unit: [] for unit in latency}
    indegree = {unit: 0 for unit in latency}
    for unit, out in succs.items():
        for succ in out:
            preds[succ].append(unit)
            indegree[succ] += 1
    order = [unit for unit, degree in indegree.items() if degree == 0]
    for unit in order:               # grows while iterating (Kahn)
        for succ in succs[unit]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                order.append(succ)
    return unit_of, latency, succs, preds, order
