"""Hardware-Grouping (Fig. 4.3.6).

For every operation ``x`` with hardware options, grow the *virtual ISE
candidate* ``vS(x)``: ``x`` plus every node reachable from it through
operations that chose a hardware implementation option in the previous
iteration.  Each hardware option ``j`` of ``x`` yields one evaluation
``vS(x, HW-j)`` — the member set is the same, but ``x`` contributes
option ``j``'s delay/area, so the measured execution time and silicon
area differ per option (the thesis's vS5,1 / vS5,2 example).
"""

from ..graph.subgraph import grown_group
from ..hwlib.asfu import subgraph_area, subgraph_delay_ns


class VirtualGroup:
    """One evaluated vS(x, HW-j)."""

    __slots__ = ("seed", "option", "members", "delay_ns", "cycles", "area")

    def __init__(self, seed, option, members, delay_ns, cycles, area):
        self.seed = seed
        self.option = option
        self.members = frozenset(members)
        self.delay_ns = delay_ns
        self.cycles = cycles
        self.area = area

    @property
    def size(self):
        """Number of member operations of the virtual group."""
        return len(self.members)

    def __repr__(self):
        return "VirtualGroup(#{} {} -> {} ops, {:.2f} ns, {:.0f} um2)".format(
            self.seed, self.option.label, self.size, self.delay_ns, self.area)


def hardware_grouping(dfg, state, prev_schedule, memo=None):
    """Evaluate vS(x, HW-j) for every hardware option of every operation.

    Parameters
    ----------
    dfg:
        The block DFG.
    state:
        The round's :class:`~repro.core.state.ExplorationState` (for
        option tables).
    prev_schedule:
        Previous iteration's
        :class:`~repro.core.iteration.IterationSchedule`; its
        hardware-chosen set and per-member chosen options seed the
        growth.
    memo:
        Optional round-lifetime dict.  Group growth and the delay/area
        evaluation are pure functions of (seed, chosen-hardware set,
        member options), so as the colony converges and the same
        virtual groups recur every iteration, their geometry is reused
        instead of recomputed — the values are identical by
        construction.

    Returns dict ``(uid, option_label) → VirtualGroup``.
    """
    chosen_hw = prev_schedule.hardware_chosen_set()
    chosen_sig = frozenset(chosen_hw)
    chosen = prev_schedule.chosen
    full_key = None
    if memo is not None:
        # Whole-sweep memo: the complete result is a pure function of
        # (chosen-hardware set, its chosen labels) given the state's
        # option tables, and converged colonies repeat exactly that
        # signature iteration after iteration.  VirtualGroups are
        # immutable and consumers only read, so the dict is shared.
        full_key = ("groups", chosen_sig,
                    tuple(chosen[m].label for m in sorted(chosen_hw)))
        cached = memo.get(full_key)
        if cached is not None:
            return cached
    groups = {}
    for uid in getattr(state, "hw_uids", None) or dfg.nodes:
        hw_options = state.hardware_options(uid)
        if not hw_options:
            continue
        members = None
        if memo is not None:
            grow_key = ("grow", uid, chosen_sig)
            members = memo.get(grow_key)
            if members is None:
                members = frozenset(grown_group(dfg, uid, chosen_hw))
                memo[grow_key] = members
        else:
            members = frozenset(grown_group(dfg, uid, chosen_hw))
        label_sig = None
        for option in hw_options:
            if memo is not None:
                if label_sig is None:
                    label_sig = tuple(sorted(
                        (m, chosen[m].label) for m in members if m != uid))
                group_key = ("vg", uid, option.label, members, label_sig)
                cached = memo.get(group_key)
                if cached is not None:
                    delay, cycles, area = cached
                    groups[(uid, option.label)] = VirtualGroup(
                        uid, option, members, delay, cycles, area)
                    continue

            def option_of(node, _seed=uid, _opt=option):
                if node == _seed:
                    return _opt
                return chosen[node]

            delay = subgraph_delay_ns(dfg, members, option_of)
            area = subgraph_area(members, option_of)
            cycles = prev_schedule.technology.cycles_for_delay(delay)
            if memo is not None:
                memo[group_key] = (delay, cycles, area)
            groups[(uid, option.label)] = VirtualGroup(
                uid, option, members, delay, cycles, area)
    if memo is not None:
        memo[full_key] = groups
    return groups


def best_groups(groups):
    """HW-MAX per seed in one pass: ``{seed: fastest VirtualGroup}``.

    Equivalent to calling :func:`best_group_of` for every seed, but
    linear in the number of groups instead of quadratic.
    """
    best = {}
    for (seed, __), group in groups.items():
        current = best.get(seed)
        if current is None or (
                (group.cycles, group.delay_ns, group.area)
                < (current.cycles, current.delay_ns, current.area)):
            best[seed] = group
    return best


def best_group_of(groups, uid):
    """HW-MAX of the thesis: the seed's option whose group executes
    fastest (maximal execution-time reduction); ties break on area."""
    candidates = [g for (seed, __), g in groups.items() if seed == uid]
    if not candidates:
        return None
    return min(candidates, key=lambda g: (g.cycles, g.delay_ns, g.area))
