"""DFG contraction between exploration rounds.

Once a round produces an ISE candidate, the next round explores the
*rest* of the block with that ISE fixed: the candidate's members fold
into a single non-groupable ``ise`` supernode whose software option is
the ASFU latency.  Untouched nodes keep their uids, so candidates found
in later rounds still reference original operation ids.
"""

from ..errors import ExplorationError
from ..graph.analysis import input_values, output_values
from ..graph.dfg import DFG
from ..hwlib.options import IOTable, SoftwareOption
from ..isa.instruction import Operation


def contract_candidate(dfg, candidate, io_tables):
    """Fold ``candidate`` into ``dfg``; returns ``(new_dfg, new_tables)``.

    ``io_tables`` maps uid → :class:`~repro.hwlib.options.IOTable`; the
    supernode receives a single software option with the candidate's
    ASFU latency on the ``asfu`` function unit.
    """
    members = candidate.members
    missing = [uid for uid in members if uid not in dfg]
    if missing:
        raise ExplorationError(
            "candidate references unknown nodes {}".format(missing))
    super_uid = max(dfg.nodes) + 1
    in_values = sorted(input_values(dfg, members))
    out_values = sorted(output_values(dfg, members))
    super_op = Operation(super_uid, "ise",
                         sources=in_values, dests=out_values)

    new_dfg = DFG(label=dfg.label, function=dfg.function)
    new_tables = {}
    # External inputs of the supernode: the subset of its input values
    # that come from outside the block entirely.
    member_ext = set()
    for uid in members:
        member_ext.update(dfg.external_inputs(uid))
    internal_inputs = set(in_values) - member_ext

    for uid in dfg.nodes:
        if uid in members:
            continue
        new_dfg.add_operation(dfg.op(uid), ext_inputs=dfg.external_inputs(uid))
        new_tables[uid] = io_tables[uid]
    new_dfg.add_operation(
        super_op, ext_inputs=sorted(set(in_values) - internal_inputs))
    new_tables[super_uid] = IOTable(software=[
        SoftwareOption("ISE", cycles=candidate.cycles, fu_kind="asfu")])

    def mapped(uid):
        return super_uid if uid in members else uid

    for src, dst, attrs in dfg.graph.edges(data=True):
        u, v = mapped(src), mapped(dst)
        if u == v:
            continue
        if attrs["kind"] == "data":
            for value in attrs["values"]:
                new_dfg.add_data_edge(u, v, value)
        else:
            new_dfg.add_order_edge(u, v)

    # Output nodes and final producers.
    for uid in dfg.output_nodes:
        new_dfg.output_nodes.add(mapped(uid))
    for value, producer in dfg.producer_of.items():
        new_dfg.producer_of[value] = mapped(producer)
    return new_dfg, new_tables
