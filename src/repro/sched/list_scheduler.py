"""Multi-issue list scheduler.

The final stage of the ISE design flow ("ISE replacement and
instruction scheduling", Fig. 3.1.1) statically schedules each basic
block — with its selected ISEs contracted to supernodes — onto the
multi-issue machine.  This is classic cycle-driven list scheduling:
at every cycle the highest-priority data-ready units are placed while
issue slots, register ports and function units remain.
"""

import networkx as nx

from ..errors import SchedulingError
from .priorities import get_priority
from .resources import ReservationTable


class Schedule:
    """Result of list scheduling: start cycles and derived metrics."""

    def __init__(self, graph, units, start):
        self.graph = graph
        self.units = units
        self.start = dict(start)

    def finish(self, uid):
        """First cycle after unit ``uid`` completes."""
        return self.start[uid] + self.units[uid].latency

    @property
    def makespan(self):
        """Total execution cycles of the block body."""
        if not self.start:
            return 0
        return max(self.finish(uid) for uid in self.start)

    def at_cycle(self, cycle):
        """Units issued in a given cycle (sorted for stable output)."""
        return sorted((uid for uid, c in self.start.items() if c == cycle),
                      key=str)

    def verify(self, machine):
        """Re-check dependences and resources; raise on violation."""
        for src, dst in self.graph.edges:
            if self.start[dst] < self.finish(src):
                raise SchedulingError(
                    "dependence {} -> {} violated".format(src, dst))
        table = ReservationTable(machine)
        for uid, cycle in self.start.items():
            table.place(cycle, self.units[uid].needs)
        return self

    def pretty(self):
        """Cycle-by-cycle text dump of the schedule."""
        lines = []
        for cycle in range(self.makespan):
            issued = self.at_cycle(cycle)
            if issued:
                lines.append("C{:<3} {}".format(cycle + 1, issued))
        return "\n".join(lines)

    def __repr__(self):
        return "Schedule({} units, {} cycles)".format(
            len(self.start), self.makespan)


def list_schedule(graph, units, machine, priority="children"):
    """Schedule a unit graph onto ``machine``.

    Parameters
    ----------
    graph:
        DiGraph over unit uids (from
        :func:`~repro.sched.units.contract_dfg`).
    units:
        dict uid → :class:`~repro.sched.units.SchedUnit`.
    machine:
        The :class:`~repro.sched.machine.MachineConfig`.
    priority:
        Name of the SP function (``"children"`` is the paper default)
        or a precomputed dict uid → priority.

    Returns a verified :class:`Schedule`.
    """
    if not nx.is_directed_acyclic_graph(graph):
        raise SchedulingError("unit graph contains a cycle")
    if isinstance(priority, str):
        latency_of = lambda uid: units[uid].latency
        priorities = get_priority(priority)(graph, latency_of)
    else:
        priorities = dict(priority)
    remaining_preds = {uid: graph.in_degree(uid) for uid in graph.nodes}
    ready_at = {uid: 0 for uid in graph.nodes}
    start = {}
    table = ReservationTable(machine)
    cycle = 0
    unscheduled = set(graph.nodes)
    total_latency = sum(unit.latency for unit in units.values())
    horizon = total_latency + len(units) + 64
    while unscheduled:
        if cycle > horizon:
            raise SchedulingError(
                "list scheduler exceeded horizon — a unit's resource "
                "demand cannot ever be satisfied")
        candidates = sorted(
            (uid for uid in unscheduled
             if remaining_preds[uid] == 0 and ready_at[uid] <= cycle),
            key=lambda uid: (-priorities.get(uid, 0), str(uid)))
        for uid in candidates:
            if table.fits(cycle, units[uid].needs):
                table.place(cycle, units[uid].needs)
                start[uid] = cycle
                unscheduled.discard(uid)
                finish = cycle + units[uid].latency
                for succ in graph.successors(uid):
                    remaining_preds[succ] -= 1
                    ready_at[succ] = max(ready_at[succ], finish)
        cycle += 1
    return Schedule(graph, units, start).verify(machine)
