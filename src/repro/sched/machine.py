"""Multi-issue machine configuration.

The evaluation grid of §5.1 varies issue width (2-4) and register-file
ports (4/2 … 10/5).  :class:`MachineConfig` bundles those with a
function-unit mix and the technology (clock) assumptions.  The default
FU mix follows the usual embedded-VLIW convention: every slot can do
ALU work, one multiplier, one memory port, one branch unit, and one
ASFU slot for ISEs.
"""

from ..errors import ConfigError
from ..hwlib.technology import DEFAULT_TECHNOLOGY
from ..isa.registers import RegisterFile


class MachineConfig:
    """A multiple-issue in-order machine.

    Parameters
    ----------
    issue_width:
        Instructions issued per cycle.
    register_file:
        A :class:`~repro.isa.registers.RegisterFile` or a ``"R/W"``
        spec string.
    fu_counts:
        Mapping FU kind → units available per cycle.  Defaults to
        ``alu=issue_width, mul=1, mem=1, branch=1, asfu=1``.
    technology:
        Clock/process assumptions; defaults to 100 MHz @ 0.13 µm.
    """

    def __init__(self, issue_width, register_file, fu_counts=None,
                 technology=None):
        if issue_width < 1:
            raise ConfigError("issue width must be >= 1")
        self.issue_width = int(issue_width)
        if isinstance(register_file, str):
            register_file = RegisterFile.from_spec(register_file)
        self.register_file = register_file
        defaults = {
            "alu": self.issue_width,
            "mul": 1,
            "mem": 1,
            "branch": 1,
            "asfu": 1,
        }
        if fu_counts:
            defaults.update(fu_counts)
        for kind, count in defaults.items():
            if count < 0:
                raise ConfigError("negative count for FU kind {!r}".format(kind))
        self.fu_counts = defaults
        self.technology = technology or DEFAULT_TECHNOLOGY

    @classmethod
    def from_paper_case(cls, spec):
        """Build one of the six §5.1 cases, e.g. ``"2-issue 4/2"``.

        Accepts ``"<w>-issue <R>/<W>"`` or the figure-label form
        ``"(4/2, 2IS)"``.
        """
        text = spec.strip().strip("()").replace(",", " ")
        parts = [p for p in text.split() if p]
        issue, ports = None, None
        for part in parts:
            lowered = part.lower()
            if lowered.endswith("-issue"):
                issue = int(lowered.split("-")[0])
            elif lowered.endswith("is"):
                issue = int(lowered[:-2])
            elif "/" in part:
                ports = part
        if issue is None or ports is None:
            raise ConfigError("cannot parse machine spec {!r}".format(spec))
        return cls(issue, ports)

    @property
    def label(self):
        """Figure-style label, e.g. ``"(4/2, 2IS)"``."""
        return "({}, {}IS)".format(self.register_file.spec, self.issue_width)

    def __repr__(self):
        return "MachineConfig({}-issue, RF {})".format(
            self.issue_width, self.register_file.spec)

    def __eq__(self, other):
        return (isinstance(other, MachineConfig)
                and other.issue_width == self.issue_width
                and other.register_file == self.register_file
                and other.fu_counts == self.fu_counts
                and other.technology == self.technology)

    def __hash__(self):
        return hash((self.issue_width, self.register_file,
                     tuple(sorted(self.fu_counts.items())), self.technology))


#: The six (ports, issue-width) cases evaluated in §5.1.
PAPER_CASES = (
    ("4/2", 2), ("6/3", 2),
    ("6/3", 3), ("8/4", 3),
    ("8/4", 4), ("10/5", 4),
)


def paper_machines():
    """The six machines of the §5.1 grid, in figure order."""
    return [MachineConfig(width, ports) for ports, width in PAPER_CASES]
