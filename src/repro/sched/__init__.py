"""Multi-issue machine model, resources and list scheduling."""

from .machine import PAPER_CASES, MachineConfig, paper_machines
from .resources import Needs, ReservationTable
from .priorities import get_priority, priority_names
from .units import SchedUnit, contract_dfg, software_needs
from .list_scheduler import Schedule, list_schedule
from .emit import emit_block_listing, emit_bundles

__all__ = [
    "MachineConfig",
    "Needs",
    "PAPER_CASES",
    "ReservationTable",
    "SchedUnit",
    "Schedule",
    "contract_dfg",
    "emit_block_listing",
    "emit_bundles",
    "get_priority",
    "list_schedule",
    "paper_machines",
    "priority_names",
    "software_needs",
]
