"""Schedulable units and DFG contraction.

A *unit* is what the list scheduler places: either a single software
operation or a whole ISE (a contracted group of operations executing on
an ASFU).  :func:`contract_dfg` folds chosen ISE groups of a DFG into
supernodes and returns the unit graph both the final scheduler and the
exploration-side analyses operate on.
"""

import networkx as nx

from ..errors import SchedulingError
from ..graph.analysis import input_values, output_values
from ..hwlib.asfu import subgraph_area, subgraph_delay_ns
from ..isa.opcodes import OpCategory
from .resources import Needs


class SchedUnit:
    """One schedulable unit: a software op or an ISE supernode."""

    __slots__ = ("uid", "latency", "needs", "members", "is_ise", "area")

    def __init__(self, uid, latency, needs, members, is_ise=False, area=0.0):
        self.uid = uid
        self.latency = int(latency)
        self.needs = needs
        self.members = frozenset(members)
        self.is_ise = is_ise
        self.area = float(area)

    def __repr__(self):
        kind = "ISE" if self.is_ise else "op"
        return "SchedUnit({} {}, lat={}, members={})".format(
            kind, self.uid, self.latency, sorted(self.members))


def software_needs(operation):
    """Per-cycle resource demand of one software operation."""
    category = operation.opcode.category
    if category == OpCategory.MULTIPLY:
        fu_kind = "mul"
    elif category in (OpCategory.LOAD, OpCategory.STORE):
        fu_kind = "mem"
    elif operation.opcode.is_control:
        fu_kind = "branch"
    else:
        fu_kind = "alu"
    return Needs(reads=len(operation.sources),
                 writes=len(operation.dests),
                 fu_kind=fu_kind)


def contract_dfg(dfg, ise_groups, technology, software_cycles=None):
    """Contract ISE groups of ``dfg`` into supernodes.

    Parameters
    ----------
    dfg:
        The source :class:`~repro.graph.dfg.DFG`.
    ise_groups:
        Iterable of ``(members, option_of)`` pairs: a set of node uids
        and a mapping uid → chosen
        :class:`~repro.hwlib.options.HardwareOption`.  Groups must be
        disjoint.
    technology:
        Converts ASFU combinational delay to cycles.
    software_cycles:
        Optional mapping uid → latency for non-grouped operations
        (default 1 cycle each, the paper's assumption).

    Returns
    -------
    (graph, units):
        ``graph`` — a DiGraph over unit uids; ``units`` — dict uid →
        :class:`SchedUnit`.  ISE unit uids are strings ``"ise<N>"``;
        software units keep their integer uids.
    """
    unit_of = {}
    units = {}
    for index, (members, option_of) in enumerate(ise_groups):
        members = frozenset(members)
        uid = "ise{}".format(index)
        taken = members.intersection(unit_of)
        if taken:
            raise SchedulingError(
                "ISE groups overlap on nodes {}".format(sorted(taken)))
        delay = subgraph_delay_ns(dfg.graph, members,
                                  lambda n: option_of[n])
        area = subgraph_area(members, lambda n: option_of[n])
        needs = Needs(reads=len(input_values(dfg, members)),
                      writes=len(output_values(dfg, members)),
                      fu_kind="asfu")
        units[uid] = SchedUnit(uid, technology.cycles_for_delay(delay),
                               needs, members, is_ise=True, area=area)
        for member in members:
            unit_of[member] = uid
    for node in dfg.nodes:
        if node in unit_of:
            continue
        operation = dfg.op(node)
        latency = 1
        if software_cycles is not None:
            latency = software_cycles.get(node, 1)
        units[node] = SchedUnit(node, latency, software_needs(operation),
                                (node,))
        unit_of[node] = node
    graph = nx.DiGraph()
    graph.add_nodes_from(units)
    for src, dst in dfg.graph.edges:
        u, v = unit_of[src], unit_of[dst]
        if u != v:
            graph.add_edge(u, v)
    if not nx.is_directed_acyclic_graph(graph):
        raise SchedulingError("contraction produced a cycle "
                              "(non-convex ISE group)")
    return graph, units
