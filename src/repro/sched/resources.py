"""Per-cycle resource reservation table (dense kernel).

Tracks, per cycle: issue slots, register-file read/write ports, and
function units by kind.  Both the exploration-internal incremental
scheduler (Operation-Scheduling) and the final list scheduler consult
and update the same table type; the exploration side additionally needs
to *revise* a placed reservation when a hardware operation joins an
existing ISE cluster, which :meth:`release` + re-:meth:`place` support.

Layout
------
Usage counters live in one dense ``numpy.int32`` matrix with one row
per resource — row 0 issue slots, row 1 RF reads, row 2 RF writes, one
further row per function-unit kind of the machine — and one column per
cycle.  The matrix grows geometrically as later cycles are touched, and
``_hi`` marks the end of the ever-touched prefix: every column at or
beyond ``_hi`` is known-empty, so feasibility there is a pure budget
check.  Scalar probes (:meth:`fits`, :meth:`place`, :meth:`release`)
go through per-row :class:`memoryview`\\ s over the same buffer — as
cheap as list indexing — while :meth:`first_fit` falls back to a
single vectorized boolean-AND scan over the occupied region when the
scalar fast path misses.  Infeasible demands (a :class:`Needs` that
exceeds a machine budget outright) are rejected upfront instead of
scanning the cycle horizon.
"""

import numpy as np

from ..errors import SchedulingError

#: Initial column capacity of the dense matrix; grows by doubling.
_INITIAL_CYCLES = 64

#: Rows 0-2 of the matrix; FU kinds follow.
_ISSUE, _READS, _WRITES = 0, 1, 2


class Needs:
    """Resource demand of one issued instruction in one cycle."""

    __slots__ = ("issue", "reads", "writes", "fu_kind", "fu_count")

    def __init__(self, reads=0, writes=0, fu_kind="alu", fu_count=1, issue=1):
        self.issue = int(issue)
        self.reads = int(reads)
        self.writes = int(writes)
        self.fu_kind = fu_kind
        self.fu_count = int(fu_count)

    def __repr__(self):
        return "Needs(issue={}, r={}, w={}, fu={}x{})".format(
            self.issue, self.reads, self.writes, self.fu_kind, self.fu_count)


class ReservationTable:
    """Dense per-cycle usage counters against a machine's budgets."""

    __slots__ = ("machine", "_use", "_views", "_size", "_hi",
                 "_issue_width", "_read_ports", "_write_ports",
                 "_fu_row", "_fu_avail", "stat_first_fit_scans",
                 "stat_scan_cycles")

    def __init__(self, machine):
        self.machine = machine
        self._issue_width = machine.issue_width
        rf = machine.register_file
        self._read_ports = rf.read_ports
        self._write_ports = rf.write_ports
        kinds = sorted(machine.fu_counts)
        self._fu_row = {kind: 3 + index for index, kind in enumerate(kinds)}
        self._fu_avail = dict(machine.fu_counts)
        self._size = _INITIAL_CYCLES
        self._use = np.zeros((3 + len(kinds), self._size), dtype=np.int32)
        self._views = [memoryview(row) for row in self._use]
        self._hi = 0                  # cycles >= _hi are known-empty
        #: Always-on kernel tallies, aggregated into the ``sched.*``
        #: observability counters at round end.
        self.stat_first_fit_scans = 0
        self.stat_scan_cycles = 0

    # -- storage ------------------------------------------------------------

    def _grow(self, cycles):
        """Ensure at least ``cycles`` columns exist (geometric growth)."""
        size = self._size
        while size < cycles:
            size *= 2
        grown = np.zeros((self._use.shape[0], size), dtype=np.int32)
        grown[:, :self._size] = self._use
        self._use = grown
        self._views = [memoryview(row) for row in grown]
        self._size = size

    # -- queries ------------------------------------------------------------

    def usage(self, cycle):
        """Current ``(issue, reads, writes, {fu: used})`` at a cycle.

        Only function-unit kinds with a non-zero count appear in the
        dict — released capacity never leaves stale zero entries.
        """
        if cycle < 0 or cycle >= self._hi:
            return (0, 0, 0, {})
        views = self._views
        fus = {}
        for kind, row in self._fu_row.items():
            used = views[row][cycle]
            if used:
                fus[kind] = used
        return (views[_ISSUE][cycle], views[_READS][cycle],
                views[_WRITES][cycle], fus)

    def fits(self, cycle, needs):
        """True when ``needs`` fits in the remaining budget of ``cycle``."""
        if cycle >= self._hi:
            # Untouched region: feasibility is the pure budget check.
            return (needs.issue <= self._issue_width
                    and needs.reads <= self._read_ports
                    and needs.writes <= self._write_ports
                    and needs.fu_count <= self._fu_avail.get(needs.fu_kind, 0))
        views = self._views
        if views[_ISSUE][cycle] + needs.issue > self._issue_width:
            return False
        if views[_READS][cycle] + needs.reads > self._read_ports:
            return False
        if views[_WRITES][cycle] + needs.writes > self._write_ports:
            return False
        row = self._fu_row.get(needs.fu_kind)
        if row is None:
            return needs.fu_count <= 0
        if views[row][cycle] + needs.fu_count > self._fu_avail[needs.fu_kind]:
            return False
        return True

    def place(self, cycle, needs):
        """Commit ``needs`` at ``cycle``; raises when it does not fit."""
        if cycle < 0:
            raise SchedulingError("cannot place at negative cycle")
        if not self.fits(cycle, needs):
            raise SchedulingError(
                "resources exhausted at cycle {}: {}".format(cycle, needs))
        if cycle >= self._size:
            self._grow(cycle + 1)
        if cycle >= self._hi:
            self._hi = cycle + 1
        views = self._views
        views[_ISSUE][cycle] += needs.issue
        views[_READS][cycle] += needs.reads
        views[_WRITES][cycle] += needs.writes
        row = self._fu_row.get(needs.fu_kind)
        if row is not None:
            views[row][cycle] += needs.fu_count

    def release(self, cycle, needs):
        """Undo a previous :meth:`place` (cluster-revision support)."""
        if cycle < 0 or cycle >= self._hi:
            raise SchedulingError("release without matching place")
        views = self._views
        views[_ISSUE][cycle] -= needs.issue
        views[_READS][cycle] -= needs.reads
        views[_WRITES][cycle] -= needs.writes
        row = self._fu_row.get(needs.fu_kind)
        if row is not None:
            views[row][cycle] -= needs.fu_count
        if (views[_ISSUE][cycle] < 0 or views[_READS][cycle] < 0
                or views[_WRITES][cycle] < 0
                or (row is not None and views[row][cycle] < 0)):
            raise SchedulingError("release without matching place")

    def first_fit(self, needs, not_before=0, horizon=1 << 20):
        """Earliest cycle ≥ ``not_before`` where ``needs`` fits.

        Demands that can *never* fit (exceeding a machine budget
        outright) raise immediately instead of scanning the horizon.
        The common case — the first candidate cycle fits — is a scalar
        probe; otherwise the occupied region is scanned with one
        vectorized boolean-AND feasibility mask.
        """
        self.stat_first_fit_scans += 1
        if (needs.issue > self._issue_width
                or needs.reads > self._read_ports
                or needs.writes > self._write_ports
                or needs.fu_count > self._fu_avail.get(needs.fu_kind, 0)):
            raise SchedulingError(
                "no feasible cycle below horizon: {} exceeds the machine "
                "budget".format(needs))
        cycle = max(0, int(not_before))
        if cycle >= horizon:
            raise SchedulingError("no feasible cycle below horizon")
        hi = self._hi
        if cycle >= hi:
            return cycle              # known-empty region
        if self.fits(cycle, needs):
            return cycle
        stop = hi if hi < horizon else horizon
        found = self._scan(cycle + 1, stop, needs)
        if found >= 0:
            return found
        if hi < horizon:
            return hi
        raise SchedulingError("no feasible cycle below horizon")

    def _scan(self, start, stop, needs):
        """Vectorized earliest-fit over ``[start, stop)``; -1 when full."""
        if start >= stop:
            return -1
        self.stat_scan_cycles += stop - start
        use = self._use
        ok = None
        for row, demand, budget in (
                (_ISSUE, needs.issue, self._issue_width),
                (_READS, needs.reads, self._read_ports),
                (_WRITES, needs.writes, self._write_ports),
                (self._fu_row.get(needs.fu_kind), needs.fu_count,
                 self._fu_avail.get(needs.fu_kind, 0))):
            if not demand or row is None:
                continue
            mask = use[row, start:stop] <= budget - demand
            ok = mask if ok is None else (ok & mask)
        if ok is None:
            return start              # demands nothing: first cycle fits
        index = int(ok.argmax())
        if ok[index]:
            return start + index
        return -1

    def _budget_of(self, needs):
        """(row, demand, budget) triples of a demand, or ``None`` when
        the demand can never fit this machine."""
        if (needs.issue > self._issue_width
                or needs.reads > self._read_ports
                or needs.writes > self._write_ports
                or needs.fu_count > self._fu_avail.get(needs.fu_kind, 0)):
            return None
        triples = [(_ISSUE, needs.issue, self._issue_width),
                   (_READS, needs.reads, self._read_ports),
                   (_WRITES, needs.writes, self._write_ports)]
        row = self._fu_row.get(needs.fu_kind)
        if row is not None:
            triples.append((row, needs.fu_count,
                            self._fu_avail[needs.fu_kind]))
        return triples

    # -- pickling (memoryviews do not pickle) -------------------------------

    def __getstate__(self):
        return {
            "machine": self.machine,
            "use": self._use[:, :self._hi].copy(),
            "scans": self.stat_first_fit_scans,
            "scan_cycles": self.stat_scan_cycles,
        }

    def __setstate__(self, state):
        self.__init__(state["machine"])
        used = state["use"]
        if used.shape[1]:
            self._grow(used.shape[1])
            self._use[:, :used.shape[1]] = used
            self._views = [memoryview(row) for row in self._use]
            self._hi = used.shape[1]
        self.stat_first_fit_scans = state["scans"]
        self.stat_scan_cycles = state["scan_cycles"]

    # -- invariants ---------------------------------------------------------

    def verify_nonnegative(self):
        """Debug check: no usage counter anywhere went negative.

        Guards the place/release/re-place revision cycles of cluster
        growth against capacity leaks; raises
        :class:`~repro.errors.SchedulingError` on violation.
        """
        if self._hi and bool((self._use[:, :self._hi] < 0).any()):
            rows, cycles = np.nonzero(self._use[:, :self._hi] < 0)
            raise SchedulingError(
                "negative reservation at cycle(s) {} — release without "
                "matching place".format(sorted(set(int(c) for c in cycles))))
        return True


#: Probe count below which the scalar fits-at-start loop beats the
#: stacked-tensor scan (dominated by its per-probe set-up copies).
#: Benchmarked on the BENCH_sched workloads: the scalar loop wins for
#: every lockstep width up to the default batch of 16.
_TENSOR_CUTOVER = 24


def first_fit_batch(tables, needs_list, not_befores):
    """Earliest-fit cycle for one ``(table, needs, not_before)`` probe
    per entry, resolved in a single vectorised pass.

    The batched ant runner stages the independent first-fit probes of a
    lockstep step (each ant owns its own table) and scans them all at
    once: the occupied prefixes are stacked into one ``(K, rows, H)``
    tensor — columns beyond a table's high-water mark are zero, exactly
    what an untouched cycle looks like — and feasibility is one
    boolean reduction.  Per-probe results are identical to calling
    :meth:`ReservationTable.first_fit` table by table, including the
    known-empty fast path and the ``hi`` fallback; infeasible demands
    raise the same :class:`~repro.errors.SchedulingError`.  Small
    batches skip the stacking and loop the scalar method instead: its
    fits-at-start fast path beats the tensor set-up cost until well
    past the default lockstep width (measured cutover above).
    """
    count = len(tables)
    if count != len(needs_list) or count != len(not_befores):
        raise SchedulingError("mismatched first_fit_batch arguments")
    if count <= _TENSOR_CUTOVER:
        return [table.first_fit(needs, not_before=not_before)
                for table, needs, not_before
                in zip(tables, needs_list, not_befores)]
    budgets = []
    for table, needs in zip(tables, needs_list):
        triples = table._budget_of(needs)
        if triples is None:
            raise SchedulingError(
                "no feasible cycle below horizon: {} exceeds the machine "
                "budget".format(needs))
        budgets.append(triples)
    cycles = [0] * count
    scan = []                     # probes that must look at occupancy
    for probe, (table, not_before) in enumerate(zip(tables, not_befores)):
        table.stat_first_fit_scans += 1
        start = max(0, int(not_before))
        if start >= table._hi:
            cycles[probe] = start     # known-empty region
        else:
            scan.append(probe)
    if not scan:
        return cycles
    width = max(tables[probe]._hi for probe in scan)
    rows = tables[scan[0]]._use.shape[0]
    stack = np.zeros((len(scan), rows, width), dtype=np.int32)
    demand = np.zeros((len(scan), rows), dtype=np.int32)
    budget = np.zeros((len(scan), rows), dtype=np.int32)
    budget[:, :] = np.iinfo(np.int32).max
    starts = np.empty(len(scan), dtype=np.intp)
    for index, probe in enumerate(scan):
        table = tables[probe]
        hi = table._hi
        stack[index, :, :hi] = table._use[:, :hi]
        for row, need, cap in budgets[probe]:
            demand[index, row] = need
            budget[index, row] = cap
        starts[index] = max(0, int(not_befores[probe]))
        table.stat_scan_cycles += hi - starts[index]
    feasible = ((stack + demand[:, :, None] <= budget[:, :, None])
                .all(axis=1))
    feasible &= np.arange(width)[None, :] >= starts[:, None]
    first = feasible.argmax(axis=1)
    found = feasible[np.arange(len(scan)), first]
    for index, probe in enumerate(scan):
        # No fit inside the stacked window only happens when this
        # table's occupancy spans the whole window; the scalar path
        # then falls through to its known-empty high-water mark.
        cycles[probe] = int(first[index]) if found[index] \
            else tables[probe]._hi
    return cycles
