"""Per-cycle resource reservation table.

Tracks, per cycle: issue slots, register-file read/write ports, and
function units by kind.  Both the exploration-internal incremental
scheduler (Operation-Scheduling) and the final list scheduler consult
and update the same table type; the exploration side additionally needs
to *revise* a placed reservation when a hardware operation joins an
existing ISE cluster, which :meth:`release` + re-:meth:`place` support.
"""

from ..errors import SchedulingError


class Needs:
    """Resource demand of one issued instruction in one cycle."""

    __slots__ = ("issue", "reads", "writes", "fu_kind", "fu_count")

    def __init__(self, reads=0, writes=0, fu_kind="alu", fu_count=1, issue=1):
        self.issue = int(issue)
        self.reads = int(reads)
        self.writes = int(writes)
        self.fu_kind = fu_kind
        self.fu_count = int(fu_count)

    def __repr__(self):
        return "Needs(issue={}, r={}, w={}, fu={}x{})".format(
            self.issue, self.reads, self.writes, self.fu_kind, self.fu_count)


class ReservationTable:
    """Sparse per-cycle usage counters against a machine's budgets."""

    def __init__(self, machine):
        self.machine = machine
        self._issue = {}
        self._reads = {}
        self._writes = {}
        self._fus = {}

    def usage(self, cycle):
        """Current ``(issue, reads, writes, {fu: used})`` at a cycle."""
        return (self._issue.get(cycle, 0),
                self._reads.get(cycle, 0),
                self._writes.get(cycle, 0),
                dict(self._fus.get(cycle, {})))

    def fits(self, cycle, needs):
        """True when ``needs`` fits in the remaining budget of ``cycle``."""
        machine = self.machine
        if self._issue.get(cycle, 0) + needs.issue > machine.issue_width:
            return False
        rf = machine.register_file
        if self._reads.get(cycle, 0) + needs.reads > rf.read_ports:
            return False
        if self._writes.get(cycle, 0) + needs.writes > rf.write_ports:
            return False
        available = machine.fu_counts.get(needs.fu_kind, 0)
        used = self._fus.get(cycle, {}).get(needs.fu_kind, 0)
        if used + needs.fu_count > available:
            return False
        return True

    def place(self, cycle, needs):
        """Commit ``needs`` at ``cycle``; raises when it does not fit."""
        if cycle < 0:
            raise SchedulingError("cannot place at negative cycle")
        if not self.fits(cycle, needs):
            raise SchedulingError(
                "resources exhausted at cycle {}: {}".format(cycle, needs))
        self._issue[cycle] = self._issue.get(cycle, 0) + needs.issue
        self._reads[cycle] = self._reads.get(cycle, 0) + needs.reads
        self._writes[cycle] = self._writes.get(cycle, 0) + needs.writes
        per_fu = self._fus.setdefault(cycle, {})
        per_fu[needs.fu_kind] = per_fu.get(needs.fu_kind, 0) + needs.fu_count

    def release(self, cycle, needs):
        """Undo a previous :meth:`place` (cluster-revision support)."""
        self._issue[cycle] = self._issue.get(cycle, 0) - needs.issue
        self._reads[cycle] = self._reads.get(cycle, 0) - needs.reads
        self._writes[cycle] = self._writes.get(cycle, 0) - needs.writes
        per_fu = self._fus.setdefault(cycle, {})
        per_fu[needs.fu_kind] = per_fu.get(needs.fu_kind, 0) - needs.fu_count
        if (self._issue[cycle] < 0 or self._reads[cycle] < 0
                or self._writes[cycle] < 0 or per_fu[needs.fu_kind] < 0):
            raise SchedulingError("release without matching place")

    def first_fit(self, needs, not_before=0, horizon=1 << 20):
        """Earliest cycle ≥ ``not_before`` where ``needs`` fits."""
        cycle = max(0, int(not_before))
        while cycle < horizon:
            if self.fits(cycle, needs):
                return cycle
            cycle += 1
        raise SchedulingError("no feasible cycle below horizon")
