"""VLIW bundle emission.

Turns a finished :class:`~repro.sched.list_scheduler.Schedule` back
into assembly-like text: one bundle per cycle, the operations of each
bundle separated by ``||`` the way VLIW assemblers write parallel
issue, with ISE supernodes rendered as custom-instruction mnemonics
(``ise0 dst..., src...``) and multi-cycle units annotated with their
latency.  This is how a downstream user inspects what the flow actually
did to a block.
"""


def emit_bundles(schedule, dfg=None, names=None):
    """Render a schedule as VLIW bundles (one line per cycle).

    Parameters
    ----------
    schedule:
        The :class:`~repro.sched.list_scheduler.Schedule` to render.
    dfg:
        Optional source DFG; when given, software units print their
        full assembly form instead of just the uid, and ISE units list
        their input/output value names.
    names:
        Optional map unit-uid → mnemonic override (e.g. the selected
        ISE's final name).

    Returns the text; bundles of empty cycles print as ``nop``.
    """
    names = names or {}
    lines = []
    for cycle in range(schedule.makespan):
        slots = []
        for uid in schedule.at_cycle(cycle):
            slots.append(_render_unit(schedule.units[uid], uid, dfg, names))
        if slots:
            lines.append("{{ {} }}".format("  ||  ".join(slots)))
        else:
            lines.append("{ nop }")
    return "\n".join(lines)


def _render_unit(unit, uid, dfg, names):
    if unit.is_ise:
        mnemonic = names.get(uid, str(uid))
        detail = ""
        if dfg is not None:
            from ..graph.analysis import input_values, output_values
            ins = ",".join(sorted(input_values(dfg, unit.members)))
            outs = ",".join(sorted(output_values(dfg, unit.members)))
            detail = " {} <- {}".format(outs or "-", ins or "-")
        latency = " [{}cyc]".format(unit.latency) if unit.latency > 1 else ""
        return "{}{}{}".format(mnemonic, detail, latency)
    if dfg is not None and uid in dfg.graph:
        text = dfg.op(uid).pretty()
    else:
        text = str(uid)
    if unit.latency > 1:
        text += " [{}cyc]".format(unit.latency)
    return text


def emit_block_listing(dfg, schedule, title=None):
    """Bundle listing with a header (ops, cycles, utilisation)."""
    header = title or "block {}:{}".format(dfg.function, dfg.label)
    cycles = schedule.makespan or 1
    used = len(schedule.start)
    lines = [
        "; {} — {} units in {} cycles ({:.2f} units/cycle)".format(
            header, used, schedule.makespan, used / cycles),
        emit_bundles(schedule, dfg=dfg),
    ]
    return "\n".join(lines)
