"""Scheduling-priority (SP) functions.

The thesis computes SP as "the number of child operations", and notes
in its future-work section that other priority functions (mobility,
depth) change which path is identified as critical.  All three are
provided; :func:`get_priority` resolves a name to a callable with
signature ``fn(graph, latency_of) -> {node: priority}`` where larger
values mean *schedule earlier*.
"""

import networkx as nx

from ..errors import ConfigError


def children_count(graph, latency_of=None):
    """Paper default: SP = number of immediate successors."""
    del latency_of
    return {node: graph.out_degree(node) for node in graph.nodes}


def depth(graph, latency_of=None):
    """SP = longest latency-weighted path from the node to any sink."""
    if latency_of is None:
        latency_of = lambda node: 1
    tail = {}
    for node in reversed(list(nx.topological_sort(graph))):
        best = 0
        for succ in graph.successors(node):
            best = max(best, tail[succ])
        tail[node] = best + latency_of(node)
    return tail


def mobility(graph, latency_of=None):
    """SP = −slack: zero-slack (critical) operations come first."""
    if latency_of is None:
        latency_of = lambda node: 1
    asap = {}
    for node in nx.topological_sort(graph):
        earliest = 0
        for pred in graph.predecessors(node):
            earliest = max(earliest, asap[pred] + latency_of(pred))
        asap[node] = earliest
    horizon = max((asap[n] + latency_of(n) for n in graph.nodes), default=0)
    alap = {}
    for node in reversed(list(nx.topological_sort(graph))):
        latest = horizon - latency_of(node)
        for succ in graph.successors(node):
            latest = min(latest, alap[succ] - latency_of(node))
        alap[node] = latest
    return {node: -(alap[node] - asap[node]) for node in graph.nodes}


_PRIORITIES = {
    "children": children_count,
    "depth": depth,
    "mobility": mobility,
}


def get_priority(name):
    """Resolve a priority function by name."""
    try:
        return _PRIORITIES[name]
    except KeyError:
        raise ConfigError(
            "unknown priority {!r}; choose from {}".format(
                name, sorted(_PRIORITIES))) from None


def priority_names():
    """Names of the registered SP functions."""
    return sorted(_PRIORITIES)
