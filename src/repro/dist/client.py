"""The remote evalcache *client* tier.

One process-wide :class:`RemoteEvalCache` (built lazily from the
``REPRO_REMOTE_CACHE=host:port`` environment variable) sits behind the
existing cache stack: the per-engine :class:`~repro.core.evalcache
.EvalCache` dict, the pool's shared-memory table and the on-disk
:class:`~repro.eval.persistence.ExplorationCache` all fall through to
it on a miss and *promote* its hits into themselves, so a cycle count
computed by any host of a sweep is computed exactly once per fleet.

Design constraints, in order:

1. **The hot path must never stall on the network.**  Every operation
   is best-effort: a refused connection, a timeout, a truncated or
   corrupt response all count an error, close the socket and return a
   miss.  A :class:`CircuitBreaker` with exponential backoff keeps a
   *dead* server from even being dialled — while it is open, every
   probe is an instant local miss, so results degrade to the lower
   tiers bit-identically.
2. **Writes are batched.**  ``put_cycles`` appends to an insert log
   that is flushed as one MPUT frame when it reaches
   ``REPRO_REMOTE_FLUSH`` entries (and at context/pool teardown) —
   the same fold rhythm the shared-memory tier uses.  The pool parent
   additionally folds each dispatch's worker insert logs with
   :meth:`~RemoteEvalCache.put_many_cycles`.
3. **Fork safety.**  Pool workers inherit the singleton across
   ``fork()``; the client detects the PID change and re-dials rather
   than sharing a socket (two processes interleaving frames on one
   connection would corrupt both).

The client is scope-agnostic: callers pass fully scope-qualified key
bytes (:func:`repro.core.pool.shared_key_bytes`), so isolation between
machine scopes is exactly the shared-memory tier's.
"""

import atexit
import os
import socket
import time

from . import protocol

#: ``host:port`` of the remote cache server; unset/empty disables the tier.
REMOTE_ENV = "REPRO_REMOTE_CACHE"

#: Per-operation socket timeout in seconds.
TIMEOUT_ENV = "REPRO_REMOTE_TIMEOUT"
DEFAULT_TIMEOUT = 0.25

#: Insert-log length that triggers a batched MPUT flush.
FLUSH_ENV = "REPRO_REMOTE_FLUSH"
DEFAULT_FLUSH = 128

#: Largest value accepted for blob (exploration bundle) write-through.
MAX_BLOB_ENV = "REPRO_REMOTE_MAX_BLOB"
DEFAULT_MAX_BLOB = 8 * 1024 * 1024

#: Circuit-breaker backoff: first open, doubling up to the cap.
BACKOFF_FIRST = 0.5
BACKOFF_CAP = 30.0

#: Rows requested when seeding a new worker pool's shared table.
SNAPSHOT_ROWS = 4096


def remote_enabled():
    """True when ``REPRO_REMOTE_CACHE`` names a server."""
    return bool(os.environ.get(REMOTE_ENV, "").strip())


def _parse_address(text):
    host, sep, port = text.strip().rpartition(":")
    if not sep or not host:
        raise ValueError(
            "REPRO_REMOTE_CACHE must be host:port, got {!r}".format(text))
    return host, int(port)


def _env_float(name, default):
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


def _env_int(name, default):
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


class CircuitBreaker:
    """Failure gate with exponential backoff.

    ``allow()`` answers "may we touch the network right now?".  After a
    failure the breaker opens for ``backoff`` seconds (0.5 s doubling
    to 30 s); a success while closed resets the backoff to its floor.
    Opens are counted so the observability layer can report a flapping
    server.
    """

    __slots__ = ("backoff", "open_until", "opens")

    def __init__(self):
        self.backoff = BACKOFF_FIRST
        self.open_until = 0.0
        self.opens = 0

    def allow(self, now=None):
        """Whether a request may go out (breaker closed or expired)."""
        return (now if now is not None else time.monotonic()) \
            >= self.open_until

    def record_failure(self, now=None):
        """Open the breaker, doubling the backoff up to the cap."""
        now = now if now is not None else time.monotonic()
        self.open_until = now + self.backoff
        self.backoff = min(self.backoff * 2.0, BACKOFF_CAP)
        self.opens += 1

    def record_success(self):
        """Close the breaker and reset the backoff to its floor."""
        self.backoff = BACKOFF_FIRST
        self.open_until = 0.0


class RemoteEvalCache:
    """Synchronous, failure-tolerant client for one cache server."""

    def __init__(self, address, timeout=None, flush_threshold=None,
                 max_blob=None):
        self.address = address
        self.host, self.port = _parse_address(address)
        self.timeout = timeout if timeout is not None \
            else _env_float(TIMEOUT_ENV, DEFAULT_TIMEOUT)
        self.flush_threshold = flush_threshold if flush_threshold is not None \
            else max(1, _env_int(FLUSH_ENV, DEFAULT_FLUSH))
        self.max_blob = max_blob if max_blob is not None \
            else _env_int(MAX_BLOB_ENV, DEFAULT_MAX_BLOB)
        self.breaker = CircuitBreaker()
        self._sock = None
        self._pid = os.getpid()
        self._log = []
        #: Client-side tallies (the ``remote.*`` counters' source).
        self.tallies = {
            "gets": 0, "hits": 0, "misses": 0,
            "puts": 0, "put_drops": 0, "flushes": 0,
            "blob_gets": 0, "blob_hits": 0, "blob_puts": 0,
            "errors": 0, "breaker_opens": 0, "skipped": 0,
        }

    # -- connection plumbing ----------------------------------------------

    def _fork_guard(self):
        pid = os.getpid()
        if pid != self._pid:
            # Inherited across fork: the socket (if any) belongs to the
            # parent.  Drop our copy without shutdown and re-dial; the
            # insert log is the parent's to flush, not ours.
            self._sock = None
            self._log = []
            self._pid = pid
            self.breaker = CircuitBreaker()

    def _connect(self):
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _drop(self):
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _fail(self):
        self._drop()
        self.tallies["errors"] += 1
        self.breaker.record_failure()
        self.tallies["breaker_opens"] = self.breaker.opens

    def _request(self, payload):
        """One framed round trip, or ``None`` on any failure.

        Never raises: connection refusals, timeouts, oversized or
        truncated frames all open the breaker and report a miss to the
        caller.
        """
        self._fork_guard()
        if not self.breaker.allow():
            self.tallies["skipped"] += 1
            return None
        try:
            if self._sock is None:
                self._sock = self._connect()
            sock = self._sock
            sock.sendall(protocol.pack_frame(payload))
            response = self._recv_frame(sock)
        except (OSError, protocol.ProtocolError, ValueError):
            self._fail()
            return None
        self.breaker.record_success()
        return response

    def _recv_frame(self, sock):
        prefix = self._recv_exact(sock, 4)
        return self._recv_exact(sock, protocol.frame_length(prefix))

    @staticmethod
    def _recv_exact(sock, n):
        parts = []
        remaining = n
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                raise protocol.ProtocolError("connection closed mid-frame")
            parts.append(chunk)
            remaining -= len(chunk)
        return b"".join(parts)

    @property
    def available(self):
        """True when the breaker would let a request through now."""
        self._fork_guard()
        return self.breaker.allow()

    # -- cycle-count tier (the evalcache) ----------------------------------

    def get_cycles(self, key_bytes):
        """Remote cycle count for one scope-qualified key, or None."""
        self._fork_guard()
        if not self.breaker.allow():
            self.tallies["skipped"] += 1
            return None
        self.tallies["gets"] += 1
        response = self._request(protocol.encode_get(key_bytes))
        if response is None:
            self.tallies["misses"] += 1
            return None
        try:
            value = protocol.decode_get_response(response)
        except protocol.ProtocolError:
            self._fail()
            self.tallies["misses"] += 1
            return None
        cycles = None if value is None else protocol.unpack_cycles(value)
        if cycles is None:
            self.tallies["misses"] += 1
            return None
        self.tallies["hits"] += 1
        return cycles

    def mget_cycles(self, keys):
        """Batched lookup; one ``int | None`` per key, in key order."""
        keys = list(keys)
        if not keys:
            return []
        response = self._request(protocol.encode_mget(keys))
        if response is None:
            self.tallies["gets"] += len(keys)
            self.tallies["misses"] += len(keys)
            return [None] * len(keys)
        try:
            values = protocol.decode_mget_response(response, len(keys))
        except protocol.ProtocolError:
            self._fail()
            self.tallies["gets"] += len(keys)
            self.tallies["misses"] += len(keys)
            return [None] * len(keys)
        cycles = [None if value is None else protocol.unpack_cycles(value)
                  for value in values]
        self.tallies["gets"] += len(keys)
        hits = sum(1 for c in cycles if c is not None)
        self.tallies["hits"] += hits
        self.tallies["misses"] += len(keys) - hits
        return cycles

    def put_cycles(self, key_bytes, cycles):
        """Log one cycle count for the next batched flush."""
        self._fork_guard()
        self._log.append((key_bytes, protocol.pack_cycles(cycles)))
        if len(self._log) >= self.flush_threshold:
            self.flush()

    def put_many_cycles(self, pairs):
        """Fold a dispatch's worker insert logs (``(key, int)`` pairs)."""
        self._fork_guard()
        self._log.extend((key, protocol.pack_cycles(value))
                         for key, value in pairs)
        if len(self._log) >= self.flush_threshold:
            self.flush()

    def flush(self):
        """Send the insert log as one MPUT (best-effort, never raises)."""
        self._fork_guard()
        log, self._log = self._log, []
        if not log:
            return 0
        response = self._request(protocol.encode_mput(log))
        if response is None:
            self.tallies["put_drops"] += len(log)
            return 0
        try:
            protocol.decode_count_response(response)
        except protocol.ProtocolError:
            self._fail()
            self.tallies["put_drops"] += len(log)
            return 0
        self.tallies["puts"] += len(log)
        self.tallies["flushes"] += 1
        return len(log)

    @property
    def pending(self):
        """Insert-log entries awaiting a flush."""
        return len(self._log)

    # -- blob tier (the disk cache's write-through) ------------------------

    def get_blob(self, key_bytes):
        """An opaque stored value (pickled bundle), or None."""
        self.tallies["blob_gets"] += 1
        response = self._request(protocol.encode_get(key_bytes))
        if response is None:
            return None
        try:
            value = protocol.decode_get_response(response)
        except protocol.ProtocolError:
            self._fail()
            return None
        if value is not None:
            self.tallies["blob_hits"] += 1
        return value

    def put_blob(self, key_bytes, data):
        """Write one blob through immediately (size-capped)."""
        if len(data) > self.max_blob:
            return False
        response = self._request(protocol.encode_put(key_bytes, data))
        if response is None:
            return False
        try:
            protocol.decode_count_response(response)
        except protocol.ProtocolError:
            self._fail()
            return False
        self.tallies["blob_puts"] += 1
        return True

    # -- management --------------------------------------------------------

    def server_stats(self):
        """The server's stats dict, or None when unreachable."""
        response = self._request(protocol.encode_stats())
        if response is None:
            return None
        try:
            return protocol.decode_stats_response(response)
        except protocol.ProtocolError:
            self._fail()
            return None

    def snapshot_cycle_rows(self, limit=SNAPSHOT_ROWS):
        """Recent ``(key_bytes, cycles)`` rows for pool-table preload."""
        response = self._request(protocol.encode_snap(limit, 8))
        if response is None:
            return []
        try:
            pairs = protocol.decode_snap_response(response)
        except protocol.ProtocolError:
            self._fail()
            return []
        rows = []
        for key, value in pairs:
            cycles = protocol.unpack_cycles(value)
            if cycles is not None:
                rows.append((key, cycles))
        return rows

    def close(self):
        """Flush the insert log and drop the connection."""
        try:
            self.flush()
        finally:
            self._drop()

    def __repr__(self):
        return "RemoteEvalCache({}, {} hit(s) / {} miss(es), {})".format(
            self.address, self.tallies["hits"], self.tallies["misses"],
            "open breaker" if not self.breaker.allow() else "closed breaker")


# -- the process-wide singleton ---------------------------------------------

_CLIENT = None
_CLIENT_ADDRESS = None


def remote_cache():
    """The process's remote tier, or ``None`` when disabled.

    Rebuilt when ``REPRO_REMOTE_CACHE`` changes (tests flip it per
    case); the per-call cost with the tier disabled is one environment
    read and a ``None`` return.
    """
    global _CLIENT, _CLIENT_ADDRESS
    address = os.environ.get(REMOTE_ENV, "").strip()
    if not address:
        if _CLIENT is not None:
            _CLIENT.close()
            _CLIENT = None
            _CLIENT_ADDRESS = None
        return None
    if _CLIENT is None or _CLIENT_ADDRESS != address:
        if _CLIENT is not None:
            _CLIENT.close()
        try:
            _CLIENT = RemoteEvalCache(address)
        except ValueError:
            # A malformed address disables the tier rather than
            # crashing every evaluation that probes the cache.
            _CLIENT = None
            address = None
        _CLIENT_ADDRESS = address
    return _CLIENT


def reset_remote_cache():
    """Close and forget the singleton (test isolation hook)."""
    global _CLIENT, _CLIENT_ADDRESS
    if _CLIENT is not None:
        _CLIENT.close()
    _CLIENT = None
    _CLIENT_ADDRESS = None


def remote_counters():
    """A stable ``remote.*``-ready tallies dict (zeros when disabled)."""
    client = _CLIENT
    if client is None:
        return {
            "gets": 0, "hits": 0, "misses": 0,
            "puts": 0, "put_drops": 0, "flushes": 0,
            "blob_gets": 0, "blob_hits": 0, "blob_puts": 0,
            "errors": 0, "breaker_opens": 0, "skipped": 0,
        }
    return dict(client.tallies)


def _atexit_flush():
    if _CLIENT is not None:
        _CLIENT.close()


atexit.register(_atexit_flush)
