"""The remote evalcache server: ``repro cache-server``.

One asyncio process holds a bounded LRU key/value store that every
host of a design-space sweep shares.  Keys are the same scope-qualified
bytes the shared-memory tier hashes
(:func:`repro.core.pool.shared_key_bytes`), so scope isolation is
inherited rather than re-implemented: a 2-issue cycle count and a
4-issue probe differ in their key bytes and can never answer each
other.  Values are opaque — 8-byte cycle counts from the evalcache
tier, or pickled exploration bundles from the disk tier's write-through
(the server never unpickles anything).

The store is first-write-wins: a PUT of an existing key is a no-op.
Every value in the table is a deterministic function of its key, so a
second writer by definition carries the same payload — dropping it
keeps LRU recency honest under sweep storms where every shard finishes
the same hot block at once.

Eviction is plain LRU over *entries* (``--max-entries``) plus a byte
bound (``--max-bytes``); both only ever drop data that every client
can recompute locally, so correctness is untouched by any sizing.
"""

import argparse
import asyncio
import threading

from . import protocol

#: Default TCP port (overridden by ``--port`` / the client address).
DEFAULT_PORT = 7207

#: Default LRU entry bound.
DEFAULT_MAX_ENTRIES = 1 << 20

#: Default byte bound over stored values (256 MiB).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


class CacheStore:
    """Bounded first-write-wins LRU mapping of bytes → bytes."""

    def __init__(self, max_entries=DEFAULT_MAX_ENTRIES,
                 max_bytes=DEFAULT_MAX_BYTES):
        self.max_entries = max(1, int(max_entries))
        self.max_bytes = max(1, int(max_bytes))
        self._entries = {}      # insertion/access ordered (LRU via re-add)
        self.value_bytes = 0
        self.gets = 0
        self.hits = 0
        self.puts = 0
        self.inserted = 0
        self.evictions = 0

    def __len__(self):
        return len(self._entries)

    def get(self, key):
        """Value bytes for ``key`` (refreshing its LRU age) or ``None``."""
        self.gets += 1
        entries = self._entries
        value = entries.get(key)
        if value is None:
            return None
        self.hits += 1
        # Refresh recency: dicts preserve insertion order, so re-adding
        # moves the entry to the young end.
        del entries[key]
        entries[key] = value
        return value

    def put(self, key, value):
        """Insert one entry; returns True when it was new."""
        self.puts += 1
        entries = self._entries
        if key in entries:
            return False
        entries[key] = value
        self.value_bytes += len(value)
        self.inserted += 1
        self._evict()
        return True

    def _evict(self):
        entries = self._entries
        while len(entries) > self.max_entries \
                or self.value_bytes > self.max_bytes:
            if len(entries) <= 1:
                break
            oldest = next(iter(entries))
            self.value_bytes -= len(entries.pop(oldest))
            self.evictions += 1

    def snapshot(self, limit, max_value_len):
        """Up to ``limit`` youngest ``(key, value)`` pairs.

        ``max_value_len`` filters by value size so an evalcache client
        asking for cycle rows (8-byte values) never drags exploration
        blobs over the wire.
        """
        pairs = []
        for key, value in reversed(self._entries.items()):
            if len(pairs) >= limit:
                break
            if max_value_len and len(value) > max_value_len:
                continue
            pairs.append((key, value))
        return pairs

    def stats(self):
        """Occupancy and hit/miss/eviction tallies as a plain dict."""
        return {
            "entries": len(self._entries),
            "value_bytes": self.value_bytes,
            "gets": self.gets,
            "hits": self.hits,
            "puts": self.puts,
            "inserted": self.inserted,
            "evictions": self.evictions,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
        }


class EvalCacheServer:
    """Asyncio TCP front end over one :class:`CacheStore`.

    Single-threaded by design: every request mutates the store from the
    one event loop, so there is no locking and LRU order is total.  Use
    :meth:`start_in_thread` from tests and benchmarks (returns the
    bound port); the CLI runs :meth:`serve_forever` on the main thread.
    """

    def __init__(self, host="127.0.0.1", port=0,
                 max_entries=DEFAULT_MAX_ENTRIES,
                 max_bytes=DEFAULT_MAX_BYTES):
        self.host = host
        self.port = port
        self.store = CacheStore(max_entries=max_entries,
                                max_bytes=max_bytes)
        self.connections = 0
        self.protocol_errors = 0
        self._server = None
        self._loop = None
        self._thread = None
        self._started = threading.Event()

    # -- request handling --------------------------------------------------

    def _handle_request(self, payload):
        op, args = protocol.decode_request(payload)
        store = self.store
        if op == protocol.OP_GET:
            return protocol.encode_ok(
                protocol.encode_found(store.get(args[0])))
        if op == protocol.OP_MGET:
            return protocol.encode_mget_response(
                [store.get(key) for key in args[0]])
        if op == protocol.OP_PUT:
            key, value = args
            return protocol.encode_count_response(
                1 if store.put(key, value) else 0)
        if op == protocol.OP_MPUT:
            inserted = sum(1 for key, value in args[0]
                           if store.put(key, value))
            return protocol.encode_count_response(inserted)
        if op == protocol.OP_STATS:
            stats = dict(store.stats())
            stats["connections"] = self.connections
            stats["protocol_errors"] = self.protocol_errors
            return protocol.encode_stats_response(stats)
        # OP_SNAP — decode_request rejects anything else.
        limit, max_value_len = args
        return protocol.encode_snap_response(
            store.snapshot(limit, max_value_len))

    async def _serve_connection(self, reader, writer):
        self.connections += 1
        try:
            while True:
                prefix = await reader.read(4)
                if not prefix:
                    break
                try:
                    length = protocol.frame_length(prefix)
                    payload = await reader.readexactly(length)
                    response = self._handle_request(payload)
                except (protocol.ProtocolError,
                        asyncio.IncompleteReadError) as error:
                    # A malformed client gets one diagnostic frame and
                    # is disconnected; the store stays consistent.
                    self.protocol_errors += 1
                    try:
                        writer.write(protocol.pack_frame(
                            protocol.encode_err(str(error))))
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
                    break
                writer.write(protocol.pack_frame(response))
                await writer.drain()
        except asyncio.CancelledError:
            pass                       # server shutdown mid-connection
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- lifecycle ---------------------------------------------------------

    async def start(self):
        """Bind the listening socket (records the effective port)."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started.set()
        return self.port

    async def serve_forever(self, announce=False):
        """Start listening and block until the server is stopped."""
        await self.start()
        if announce:
            print("repro cache-server listening on {}".format(self.address),
                  flush=True)
        async with self._server:
            await self._server.serve_forever()

    def run_blocking(self, announce=True):
        """Bind, announce and serve on the calling thread (CLI path)."""
        try:
            asyncio.run(self.serve_forever(announce=announce))
        except KeyboardInterrupt:
            pass

    @property
    def address(self):
        """``host:port`` once bound (the client's REPRO_REMOTE_CACHE)."""
        return "{}:{}".format(self.host, self.port)

    def start_in_thread(self):
        """Run the server on a daemon thread; returns the bound port."""
        if self._thread is not None:
            return self.port

        def run():
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self.serve_forever())
            except asyncio.CancelledError:
                pass
            finally:
                try:
                    self._loop.run_until_complete(
                        self._loop.shutdown_asyncgens())
                finally:
                    self._loop.close()

        self._thread = threading.Thread(target=run, name="repro-cache-server",
                                        daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("cache server failed to start")
        return self.port

    def stop(self):
        """Stop a threaded server and join its loop (idempotent)."""
        thread, loop = self._thread, self._loop
        if thread is None or loop is None:
            return

        def cancel():
            for task in asyncio.all_tasks(loop):
                task.cancel()

        try:
            loop.call_soon_threadsafe(cancel)
        except RuntimeError:
            pass                       # loop already closed
        thread.join(timeout=10.0)
        self._thread = None
        self._loop = None


def main(argv=None):
    """``repro cache-server`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro cache-server",
        description="Run the loopback/remote evalcache server.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help="TCP port (0 picks a free one; default {})"
                        .format(DEFAULT_PORT))
    parser.add_argument("--max-entries", type=int,
                        default=DEFAULT_MAX_ENTRIES,
                        help="LRU entry bound (default {})".format(
                            DEFAULT_MAX_ENTRIES))
    parser.add_argument("--max-bytes", type=int, default=DEFAULT_MAX_BYTES,
                        help="LRU byte bound over values (default {})"
                        .format(DEFAULT_MAX_BYTES))
    args = parser.parse_args(argv)
    server = EvalCacheServer(host=args.host, port=args.port,
                             max_entries=args.max_entries,
                             max_bytes=args.max_bytes)
    server.run_blocking()
    return 0
