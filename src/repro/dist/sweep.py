"""Deterministic sharded design-space sweeps.

A sweep is the ByoRISC-scale batch workload: every (workload × machine)
cell explored once, then evaluated at every area budget.  Exploration
of a cell is a pure function of ``(workload, machine, opt, effort,
seed, engine)``, so the grid can be partitioned across hosts by
*content fingerprint* — each cell hashes to exactly one shard, every
shard computes only its own cells, and the merged result is
bit-identical to a serial sweep by construction (cells are independent
and the merge re-imposes canonical grid order).

The dispatcher deliberately shards at cell granularity rather than
(block, restart): cells are the unit whose results serialise cleanly
(frozen rows), and *within* a shard each exploration still fans its
(block, restart) grid over the host's persistent warm worker pool.
Cross-shard reuse happens through the remote evalcache tier
(:mod:`repro.dist.client`): shard A's cycle counts answer shard B's
probes whenever their machine scopes coincide.

:func:`run_sweep` executes one shard (or the whole grid), returning a
:class:`SweepResult` whose JSON payload round-trips exactly —
``repro sweep --shard i/n --out part.json`` on n hosts followed by
``repro sweep --merge`` reproduces the serial result digest.
"""

import hashlib
from dataclasses import dataclass

from ..errors import ReproError
from ..obs import ensure_observer
from ..sched.machine import PAPER_CASES
from .client import remote_cache, remote_counters

#: Default area budgets of the example sweep (µm²).
DEFAULT_BUDGETS = (20_000, 80_000, 320_000)

#: Schema tag of the JSON payload (bump on layout changes).
PAYLOAD_SCHEMA = 1


@dataclass(frozen=True)
class SweepRow:
    """One (workload, machine, budget) outcome of a sweep."""

    workload: str
    ports: str
    issue: int
    budget: float
    baseline_cycles: int
    final_cycles: int
    reduction: float
    num_ises: int
    area: float

    @property
    def cell(self):
        """The exploration cell this row belongs to."""
        return (self.workload, self.ports, self.issue)

    def to_payload(self):
        """JSON-able dict of every field, floats preserved exactly."""
        return {
            "workload": self.workload, "ports": self.ports,
            "issue": self.issue, "budget": self.budget,
            "baseline_cycles": self.baseline_cycles,
            "final_cycles": self.final_cycles,
            "reduction": self.reduction, "num_ises": self.num_ises,
            "area": self.area,
        }

    @classmethod
    def from_payload(cls, record):
        """Rebuild a row from its :meth:`to_payload` dict."""
        return cls(**{name: record[name] for name in (
            "workload", "ports", "issue", "budget", "baseline_cycles",
            "final_cycles", "reduction", "num_ises", "area")})


@dataclass(frozen=True)
class SweepResult:
    """Frozen outcome of one sweep shard (or a full/merged sweep)."""

    workloads: tuple
    machines: tuple            # ((ports, issue), ...) in grid order
    budgets: tuple
    opt: str
    profile: str
    seed: int
    engine: str
    shard_index: int           # None for a full or merged sweep
    shard_count: int
    rows: tuple                # SweepRow, in canonical grid order

    @property
    def digest(self):
        """Content digest of the rows; sharded == serial iff equal."""
        return sweep_digest(self.rows)

    @property
    def cells(self):
        """Exploration cells covered by this result's rows."""
        return tuple(dict.fromkeys(row.cell for row in self.rows))

    def to_payload(self):
        """JSON-able form whose floats round-trip bit-exactly."""
        return {
            "_schema": PAYLOAD_SCHEMA,
            "workloads": list(self.workloads),
            "machines": [[ports, issue] for ports, issue in self.machines],
            "budgets": list(self.budgets),
            "opt": self.opt, "profile": self.profile, "seed": self.seed,
            "engine": self.engine,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "digest": self.digest,
            "rows": [row.to_payload() for row in self.rows],
        }

    @classmethod
    def from_payload(cls, payload):
        """Rebuild a result, validating schema and digest."""
        if payload.get("_schema") != PAYLOAD_SCHEMA:
            raise ReproError(
                "unsupported sweep payload schema {!r}".format(
                    payload.get("_schema")))
        result = cls(
            workloads=tuple(payload["workloads"]),
            machines=tuple((ports, issue)
                           for ports, issue in payload["machines"]),
            budgets=tuple(payload["budgets"]),
            opt=payload["opt"], profile=payload["profile"],
            seed=payload["seed"], engine=payload["engine"],
            shard_index=payload["shard_index"],
            shard_count=payload["shard_count"],
            rows=tuple(SweepRow.from_payload(r) for r in payload["rows"]))
        if payload.get("digest") and payload["digest"] != result.digest:
            raise ReproError(
                "sweep payload digest mismatch (corrupt or edited file)")
        return result

    def _spec(self):
        return (self.workloads, self.machines, self.budgets, self.opt,
                self.profile, self.seed, self.engine)


def sweep_digest(rows):
    """SHA-256 over the exact row contents, in order."""
    text = repr([(row.workload, row.ports, row.issue, row.budget,
                  row.baseline_cycles, row.final_cycles, row.reduction,
                  row.num_ises, row.area) for row in rows])
    return hashlib.sha256(text.encode()).hexdigest()


def cell_grid(workloads, machines):
    """Canonical cell order: machines outer, workloads inner."""
    return tuple((workload, ports, issue)
                 for ports, issue in machines
                 for workload in workloads)


def cell_fingerprint(cell, opt, profile, seed, engine):
    """Stable content fingerprint of one exploration cell."""
    workload, ports, issue = cell
    text = "{}|{}|{}|{}|{}|{}|{}".format(
        workload, ports, issue, opt, profile, seed, engine)
    return hashlib.sha256(text.encode()).hexdigest()


def shard_of(fingerprint, shard_count):
    """The shard a fingerprint lands on (uniform, deterministic)."""
    return int(fingerprint[:16], 16) % shard_count


def parse_shard(text):
    """``"i/n"`` → ``(i, n)`` with bounds checking."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except (ValueError, AttributeError):
        raise ReproError(
            "shard must look like i/n (e.g. 0/4), got {!r}".format(
                text)) from None
    if count < 1 or not 0 <= index < count:
        raise ReproError(
            "shard index {} out of range for {} shard(s)".format(
                index, count))
    return index, count


def run_sweep(*, workloads, machines=PAPER_CASES, budgets=DEFAULT_BUDGETS,
              opt="O3", profile="quick", seed=0, engine="aco", jobs=None,
              batch=None, iterations=None, restarts=None, shard=None,
              obs=None):
    """Execute one shard of the sweep grid (the whole grid by default).

    ``shard`` is ``(index, count)`` or ``None``.  Cells outside the
    shard are *skipped deterministically* — any host given the same
    grid and shard spec runs exactly the same cells — and each owned
    cell runs through :func:`repro.api.explore` /
    :func:`repro.api.evaluate` on this host's warm worker pool.
    """
    from ..api import evaluate as api_evaluate
    from ..api import explore as api_explore

    workloads = tuple(workloads)
    machines = tuple((ports, int(issue)) for ports, issue in machines)
    budgets = tuple(budgets)
    if not workloads or not machines or not budgets:
        raise ReproError(
            "a sweep needs at least one workload, machine and budget")
    shard_index = shard_count = None
    if shard is not None:
        shard_index, shard_count = shard
        if shard_count < 1 or not 0 <= shard_index < shard_count:
            raise ReproError(
                "shard index {} out of range for {} shard(s)".format(
                    shard_index, shard_count))
    obs = ensure_observer(obs)
    cells = cell_grid(workloads, machines)
    owned = [
        cell for cell in cells
        if shard is None or shard_of(
            cell_fingerprint(cell, opt, profile, seed, engine),
            shard_count) == shard_index
    ]
    if obs:
        obs.count("sweep.cells", len(cells))
        obs.count("sweep.cells_run", len(owned))
        obs.count("sweep.cells_skipped", len(cells) - len(owned))
        obs.event("sweep.start", cells=len(cells), owned=len(owned),
                  shard_index=shard_index, shard_count=shard_count)
    remote_before = remote_counters()
    rows = []
    for cell in owned:
        workload, ports, issue = cell
        with obs.timer("sweep.cell"):
            explored = api_explore(
                workload, issue=issue, ports=ports, profile=profile,
                seed=seed, opt=opt, jobs=jobs, batch=batch,
                iterations=iterations, restarts=restarts,
                engine=engine, observer=obs)
            for budget in budgets:
                selection = api_evaluate(explored, max_area=budget,
                                         observer=obs)
                rows.append(SweepRow(
                    workload=workload, ports=ports, issue=issue,
                    budget=budget,
                    baseline_cycles=selection.baseline_cycles,
                    final_cycles=selection.final_cycles,
                    reduction=selection.reduction,
                    num_ises=selection.num_ises,
                    area=selection.area))
        if obs:
            obs.count("sweep.rows", len(budgets))
        # Publish this cell's insert log before the next one starts, so
        # concurrent shards see each other's work as early as possible.
        remote = remote_cache()
        if remote is not None:
            remote.flush()
    if obs:
        remote_after = remote_counters()
        for name, before in remote_before.items():
            delta = remote_after[name] - before
            if delta:
                obs.count("remote." + name, delta)
        obs.event("sweep.done", rows=len(rows),
                  shard_index=shard_index, shard_count=shard_count)
    result = SweepResult(
        workloads=workloads, machines=machines, budgets=budgets,
        opt=opt, profile=profile, seed=seed, engine=engine,
        shard_index=shard_index, shard_count=shard_count,
        rows=_canonical_rows(rows, workloads, machines, budgets))
    return result


def _canonical_rows(rows, workloads, machines, budgets):
    """Rows re-imposed into canonical grid order (serial fire order)."""
    index = {}
    position = 0
    for ports, issue in machines:
        for workload in workloads:
            for budget in budgets:
                index[(workload, ports, issue, budget)] = position
                position += 1
    return tuple(sorted(
        rows, key=lambda row: index[(row.workload, row.ports, row.issue,
                                     row.budget)]))


def merge_sweeps(parts):
    """Merge shard results into the full sweep, bit-identically.

    Every part must describe the same grid; together they must cover
    every cell exactly once.  The merged rows are re-imposed into
    canonical grid order, so the digest equals a serial run's.
    """
    parts = list(parts)
    if not parts:
        raise ReproError("merge_sweeps needs at least one part")
    spec = parts[0]._spec()
    for part in parts[1:]:
        if part._spec() != spec:
            raise ReproError(
                "sweep shards disagree on the grid spec; refusing to "
                "merge results of different sweeps")
    workloads, machines, budgets = spec[0], spec[1], spec[2]
    seen = {}
    for part in parts:
        for row in part.rows:
            key = (row.workload, row.ports, row.issue, row.budget)
            if key in seen:
                raise ReproError(
                    "duplicate sweep cell {!r} across shards".format(key))
            seen[key] = row
    expected = {(workload, ports, issue, budget)
                for ports, issue in machines
                for workload in workloads
                for budget in budgets}
    missing = expected - set(seen)
    if missing:
        raise ReproError(
            "merged sweep is missing {} cell(s), e.g. {!r} — were all "
            "shards provided?".format(
                len(missing), sorted(missing)[0]))
    first = parts[0]
    return SweepResult(
        workloads=first.workloads, machines=first.machines,
        budgets=first.budgets, opt=first.opt, profile=first.profile,
        seed=first.seed, engine=first.engine,
        shard_index=None, shard_count=None,
        rows=_canonical_rows(list(seen.values()), workloads, machines,
                             budgets))


def render_sweep(result):
    """The example's reduction matrix, rendered from a SweepResult."""
    lines = []
    header = "{:16s}".format("machine")
    header += "".join("{:>14}".format("{}um2".format(int(budget)))
                      for budget in result.budgets)
    lines.append(
        "Execution-time reduction, mean over {} ({}, engine={})".format(
            "+".join(result.workloads), result.opt, result.engine))
    lines.append(header)
    lines.append("-" * len(header))
    by_cell = {}
    for row in result.rows:
        by_cell.setdefault((row.ports, row.issue, row.budget),
                           []).append(row.reduction)
    best = (None, -1.0)
    for ports, issue in result.machines:
        label = "({}, {}IS)".format(ports, issue)
        cells = []
        for budget in result.budgets:
            values = by_cell.get((ports, issue, budget))
            if not values:
                cells.append(None)
                continue
            value = 100.0 * sum(values) / len(values)
            cells.append(value)
            if value > best[1]:
                best = ("{} @ {} um2".format(label, int(budget)), value)
        lines.append("{:16s}".format(label) + "".join(
            "{:>14}".format("-") if value is None
            else "{:>13.2f}%".format(value) for value in cells))
    if best[0] is not None:
        lines.append("")
        lines.append("Best cell: {} ({:.2f}% reduction)".format(*best))
    return "\n".join(lines)
