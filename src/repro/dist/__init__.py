"""Distributed evaluation: remote evalcache tier + sharded sweeps.

PR 3/4 established that block cycle counts are pure functions of
(DFG, candidates, latencies) with stable content fingerprints — which
makes them shareable across *machines*, not just across the pool
workers of one host.  This package holds everything that crosses a
host boundary:

* :mod:`repro.dist.protocol` — the length-prefixed TCP wire format
  (GET/PUT/MGET/MPUT batched lookups, STATS, SNAP);
* :mod:`repro.dist.server` — the asyncio cache server
  (``repro cache-server``): a scope-keyed LRU store, one process
  serving every sweep host;
* :mod:`repro.dist.client` — the synchronous client tier wired behind
  the existing memory → shared-shm → disk stack.  Misses fall through,
  hits promote into nearer tiers, puts are batched, and a circuit
  breaker guarantees a dead server degrades to the local tiers instead
  of stalling the hot path;
* :mod:`repro.dist.sweep` — the shard dispatcher behind
  :func:`repro.api.sweep` (``repro sweep``): a deterministic
  fingerprint partition of the (workload × machine × budget) grid
  across hosts whose merged result is bit-identical to a serial run.

Nothing here is imported by the hot path unless ``REPRO_REMOTE_CACHE``
is set; with the variable unset every hook costs one ``None`` check.

:mod:`~repro.dist.server` and :mod:`~repro.dist.sweep` load lazily
(PEP 562): the sweep module imports :mod:`repro.api`, which the cache
hooks in :mod:`repro.core.evalcache` must not drag in at import time.
"""

import importlib

from .client import (
    REMOTE_ENV,
    RemoteEvalCache,
    remote_cache,
    remote_counters,
    remote_enabled,
    reset_remote_cache,
)

__all__ = [
    "EvalCacheServer",
    "REMOTE_ENV",
    "RemoteEvalCache",
    "SweepResult",
    "SweepRow",
    "merge_sweeps",
    "remote_cache",
    "remote_counters",
    "remote_enabled",
    "reset_remote_cache",
    "run_sweep",
]

_LAZY = {
    "EvalCacheServer": ("repro.dist.server", "EvalCacheServer"),
    "SweepResult": ("repro.dist.sweep", "SweepResult"),
    "SweepRow": ("repro.dist.sweep", "SweepRow"),
    "merge_sweeps": ("repro.dist.sweep", "merge_sweeps"),
    "run_sweep": ("repro.dist.sweep", "run_sweep"),
}


def __getattr__(name):
    try:
        module, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            "module {!r} has no attribute {!r}".format(__name__, name)
        ) from None
    return getattr(importlib.import_module(module), attr)
