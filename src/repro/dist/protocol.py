"""The remote evalcache wire format: length-prefixed TCP frames.

Deliberately minimal — no pickle on the wire (a cache server must not
execute arbitrary bytecode from its clients), no negotiation, no
versioned handshake beyond a one-byte protocol tag per frame.  Both
sides speak *frames*::

    !I payload_length | payload

and every payload is ``op_byte + op-specific body``.  Integers are
big-endian; keys and values are opaque byte strings (keys carry the
same scope-qualified bytes as the shared-memory tier, values are either
an 8-byte cycle count or a pickled exploration blob the *client* chose
to store — the server never interprets them).

Requests
--------
``GET``    ``!I keylen | key``
``MGET``   ``!I count | count * (!I keylen | key)``
``PUT``    ``!I keylen | key | !I vallen | value``
``MPUT``   ``!I count | count * (!I keylen | key | !I vallen | value)``
``STATS``  (empty body)
``SNAP``   ``!I limit | !I max_value_len``

Responses (first body byte is a status tag)
-------------------------------------------
``OK + GET``    ``found_byte [| !I vallen | value]``
``OK + MGET``   ``!I count | count * (found_byte [| !I vallen | value])``
``OK + PUT``    ``!I inserted``
``OK + MPUT``   ``!I inserted``
``OK + STATS``  ``!I len | json``
``OK + SNAP``   ``!I count | count * (!I keylen | key | !I vallen | value)``
``ERR``         ``!I len | utf-8 message``

Anything malformed — a frame longer than :data:`MAX_FRAME`, a
truncated body, an unknown op — raises :class:`ProtocolError`; the
server answers ``ERR`` and drops the connection, the client counts an
error and trips its circuit breaker.  Neither side ever crashes the
exploration that is using the cache.

The serve extension
-------------------
The exploration service (:mod:`repro.serve`) rides the same framing
discipline with one additional request op and one additional response
tag, so both servers share the length-prefix/oversize/truncation
validation above:

``SERVE``  request  ``!Q request_id | !I len | utf-8 JSON object``
``OK``     response ``!Q request_id | !I len | utf-8 JSON object``
``ERR``    response ``!Q request_id | !I len | utf-8 JSON object``
``EVENT``  response ``!Q request_id | !I len | utf-8 JSON object``

``request_id`` is chosen by the client and echoed on every response,
so one connection can multiplex any number of in-flight requests; the
``EVENT`` tag streams observability records (framed JSONL) for a
request that is still running.  The JSON body must decode to an
object; anything else is a :class:`ProtocolError` exactly like a
malformed cache frame.
"""

import json
import struct

from ..errors import ReproError

#: Per-frame ceiling; a frame above this is treated as corruption, not
#: data (the largest legitimate payloads are exploration blobs, capped
#: well below this by the client).
MAX_FRAME = 64 * 1024 * 1024

# Request opcodes (one byte each).
OP_GET = b"G"
OP_MGET = b"M"
OP_PUT = b"P"
OP_MPUT = b"B"
OP_STATS = b"S"
OP_SNAP = b"N"
OP_SERVE = b"Q"

# Response status tags.
STATUS_OK = b"K"
STATUS_ERR = b"E"
STATUS_EVENT = b"V"

_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")
_I64 = struct.Struct("!q")


class ProtocolError(ReproError):
    """A malformed, truncated or oversized remote-cache frame."""


def pack_frame(payload):
    """Frame ``payload`` with its 4-byte length prefix."""
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            "frame of {} bytes exceeds the {} byte limit".format(
                len(payload), MAX_FRAME))
    return _U32.pack(len(payload)) + payload


def frame_length(prefix):
    """Decode a length prefix, validating it against :data:`MAX_FRAME`."""
    if len(prefix) != 4:
        raise ProtocolError("truncated frame length prefix")
    (length,) = _U32.unpack(prefix)
    if length > MAX_FRAME:
        raise ProtocolError(
            "declared frame of {} bytes exceeds the {} byte limit".format(
                length, MAX_FRAME))
    return length


def pack_cycles(cycles):
    """An int cycle count as its 8-byte wire value."""
    return _I64.pack(cycles)


def unpack_cycles(value):
    """Inverse of :func:`pack_cycles` (None for non-cycle values)."""
    if len(value) != 8:
        return None
    return _I64.unpack(value)[0]


class _Reader:
    """Cursor over one payload with truncation-checked reads."""

    __slots__ = ("data", "pos")

    def __init__(self, data):
        self.data = data
        self.pos = 0

    def take(self, n):
        end = self.pos + n
        if end > len(self.data):
            raise ProtocolError("truncated frame body")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u32(self):
        return _U32.unpack(self.take(4))[0]

    def chunk(self):
        return bytes(self.take(self.u32()))

    def done(self):
        if self.pos != len(self.data):
            raise ProtocolError(
                "{} trailing byte(s) after frame body".format(
                    len(self.data) - self.pos))


def _chunk(data):
    return _U32.pack(len(data)) + data


# -- request encoding / decoding -------------------------------------------

def encode_get(key):
    """Request payload asking for one cycle-count/blob by key."""
    return OP_GET + _chunk(key)


def encode_mget(keys):
    """Request payload probing many keys in one round trip."""
    parts = [OP_MGET, _U32.pack(len(keys))]
    parts.extend(_chunk(key) for key in keys)
    return b"".join(parts)


def encode_put(key, value):
    """Request payload storing one ``key -> value`` pair."""
    return OP_PUT + _chunk(key) + _chunk(value)


def encode_mput(pairs):
    """Request payload storing many pairs in one round trip."""
    parts = [OP_MPUT, _U32.pack(len(pairs))]
    for key, value in pairs:
        parts.append(_chunk(key))
        parts.append(_chunk(value))
    return b"".join(parts)


def encode_stats():
    """Request payload asking for the server's stats snapshot."""
    return OP_STATS


def encode_snap(limit, max_value_len):
    """Request payload asking for up to ``limit`` small entries."""
    return OP_SNAP + _U32.pack(limit) + _U32.pack(max_value_len)


def decode_request(payload):
    """``(op, args)`` of one request payload (server side).

    ``args`` is the op-specific tuple: ``(key,)`` for GET, ``(keys,)``
    for MGET, ``(key, value)`` for PUT, ``(pairs,)`` for MPUT, ``()``
    for STATS and ``(limit, max_value_len)`` for SNAP.
    """
    if not payload:
        raise ProtocolError("empty request frame")
    op = payload[:1]
    reader = _Reader(payload[1:])
    if op == OP_GET:
        args = (reader.chunk(),)
    elif op == OP_MGET:
        args = ([reader.chunk() for __ in range(reader.u32())],)
    elif op == OP_PUT:
        args = (reader.chunk(), reader.chunk())
    elif op == OP_MPUT:
        args = ([(reader.chunk(), reader.chunk())
                 for __ in range(reader.u32())],)
    elif op == OP_STATS:
        args = ()
    elif op == OP_SNAP:
        args = (reader.u32(), reader.u32())
    else:
        raise ProtocolError("unknown request op {!r}".format(op))
    reader.done()
    return op, args


# -- response encoding / decoding ------------------------------------------

def encode_found(value):
    """One GET-style result cell: found flag plus the value if any."""
    if value is None:
        return b"\x00"
    return b"\x01" + _chunk(value)


def encode_ok(body=b""):
    """Success response: OK status byte plus an op-specific body."""
    return STATUS_OK + body


def encode_err(message):
    """Error response carrying a human-readable reason string."""
    return STATUS_ERR + _chunk(message.encode("utf-8", "replace"))


def encode_mget_response(values):
    """MGET response: one found-cell per probed key, in order."""
    parts = [_U32.pack(len(values))]
    parts.extend(encode_found(value) for value in values)
    return encode_ok(b"".join(parts))


def encode_count_response(count):
    """PUT/MPUT response acknowledging how many pairs were taken."""
    return encode_ok(_U32.pack(count))


def encode_snap_response(pairs):
    """SNAP response: the sampled ``(key, value)`` pairs."""
    parts = [_U32.pack(len(pairs))]
    for key, value in pairs:
        parts.append(_chunk(key))
        parts.append(_chunk(value))
    return encode_ok(b"".join(parts))


def _decode_found(reader):
    flag = reader.take(1)
    if flag == b"\x00":
        return None
    if flag != b"\x01":
        raise ProtocolError("malformed found flag {!r}".format(flag))
    return reader.chunk()


def _open_response(payload):
    if not payload:
        raise ProtocolError("empty response frame")
    status = payload[:1]
    reader = _Reader(payload[1:])
    if status == STATUS_ERR:
        raise ProtocolError(
            "server error: {}".format(
                reader.chunk().decode("utf-8", "replace")))
    if status != STATUS_OK:
        raise ProtocolError("unknown response status {!r}".format(status))
    return reader


def decode_get_response(payload):
    """Value bytes of a GET response, or ``None`` on a miss."""
    reader = _open_response(payload)
    value = _decode_found(reader)
    reader.done()
    return value


def decode_mget_response(payload, expected):
    """Values list of an MGET response; must answer every key."""
    reader = _open_response(payload)
    count = reader.u32()
    if count != expected:
        raise ProtocolError(
            "MGET answered {} values for {} keys".format(count, expected))
    values = [_decode_found(reader) for __ in range(count)]
    reader.done()
    return values


def decode_count_response(payload):
    """Acknowledged-pair count of a PUT/MPUT response."""
    reader = _open_response(payload)
    count = reader.u32()
    reader.done()
    return count


def decode_stats_response(payload):
    """Stats dict of a STATS response (JSON body)."""
    import json

    reader = _open_response(payload)
    body = reader.chunk()
    reader.done()
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise ProtocolError("malformed STATS body") from None


def encode_stats_response(stats):
    """STATS response: the stats dict as a canonical JSON body."""
    import json

    return encode_ok(_chunk(json.dumps(stats, sort_keys=True).encode()))


def decode_snap_response(payload):
    """``(key, value)`` pair list of a SNAP response."""
    reader = _open_response(payload)
    pairs = [(reader.chunk(), reader.chunk())
             for __ in range(reader.u32())]
    reader.done()
    return pairs


# -- the serve extension -----------------------------------------------------

def _json_chunk(body):
    try:
        text = json.dumps(body, sort_keys=True)
    except (TypeError, ValueError) as error:
        raise ProtocolError(
            "serve body is not JSON-able: {}".format(error)) from None
    return _chunk(text.encode("utf-8"))


def _read_json(reader):
    raw = reader.chunk()
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise ProtocolError("malformed serve JSON body") from None
    if not isinstance(body, dict):
        raise ProtocolError(
            "serve body must be a JSON object, got {}".format(
                type(body).__name__))
    return body


def encode_serve_request(request_id, body):
    """Serve request payload: op byte, client request id, JSON body."""
    return OP_SERVE + _U64.pack(request_id) + _json_chunk(body)


def decode_serve_request(payload):
    """``(request_id, body)`` of one serve request (server side)."""
    if not payload:
        raise ProtocolError("empty request frame")
    if payload[:1] != OP_SERVE:
        raise ProtocolError(
            "unknown request op {!r}".format(payload[:1]))
    reader = _Reader(payload[1:])
    request_id = _U64.unpack(reader.take(8))[0]
    body = _read_json(reader)
    reader.done()
    return request_id, body


def encode_serve_ok(request_id, body):
    """Success response for one serve request."""
    return STATUS_OK + _U64.pack(request_id) + _json_chunk(body)


def encode_serve_err(request_id, message, code="error"):
    """Structured error response (``code`` is machine-matchable)."""
    return STATUS_ERR + _U64.pack(request_id) + _json_chunk(
        {"error": str(message), "code": code})


def encode_serve_event(request_id, record):
    """One streamed observability record for a running request."""
    return STATUS_EVENT + _U64.pack(request_id) + _json_chunk(record)


def decode_serve_response(payload):
    """``(kind, request_id, body)`` of one serve response (client side).

    ``kind`` is ``"ok"``, ``"err"`` or ``"event"``; unlike the cache
    decoders an ``ERR`` does *not* raise here — the error body carries
    a structured ``code`` the client maps onto its own exceptions.
    """
    if not payload:
        raise ProtocolError("empty response frame")
    status = payload[:1]
    kinds = {STATUS_OK: "ok", STATUS_ERR: "err", STATUS_EVENT: "event"}
    if status not in kinds:
        raise ProtocolError(
            "unknown response status {!r}".format(status))
    reader = _Reader(payload[1:])
    request_id = _U64.unpack(reader.take(8))[0]
    body = _read_json(reader)
    reader.done()
    return kinds[status], request_id, body
