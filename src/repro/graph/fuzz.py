"""Seeded random-DFG generation for property-based testing.

First slice of the workload-fleet fuzz harness (ROADMAP item 3c): a
deterministic generator of structurally valid basic-block DFGs that
mirrors :func:`~repro.graph.dfg.build_dfg`'s lowering rules —

* uids are program order, every dependence edge points forward,
* a source name reads the *latest* earlier definition (data edge) or
  counts as an external block input when nothing defined it yet,
* destination names are drawn from a small pool, so names get redefined
  and become **multi-producer** (the DFG is not SSA) — exactly the case
  the IN/OUT contribution counting must survive,
* loads/stores receive the same store→load/store→store/load→store
  ordering edges the real lowering emits,
* a random subset of final producers is marked live-out.

Everything derives from one ``random.Random(seed)`` stream, so any
failing block reproduces from its seed alone.
"""

import random

from ..isa.instruction import Operation
from .dfg import DFG

#: Groupable two-source ALU/shift opcodes the generator draws from.
_ALU_OPS = ("addu", "subu", "and", "or", "xor", "nor", "sltu", "sllv")
#: Non-groupable, non-memory opcode (exercises the groupability rule).
_MOVE_OP = "move"


def random_dfg(seed, n_nodes=32, n_values=None, p_memory=0.08,
               p_move=0.05, p_external=0.35, p_output=0.3):
    """One structurally valid random DFG, fully determined by ``seed``.

    Parameters
    ----------
    seed:
        Seeds the private ``random.Random`` stream.
    n_nodes:
        Operations in the block.
    n_values:
        Size of the destination-name pool; smaller pools mean more
        redefinitions (multi-producer names).  Defaults to
        ``max(4, n_nodes // 3)``.
    p_memory / p_move:
        Per-node probability of drawing a load/store or a
        non-groupable ``move`` instead of a groupable ALU op.
    p_external:
        Per-source probability of reading a fresh external name even
        when in-block definitions exist.
    p_output:
        Per-final-producer probability of being marked live-out.
    """
    rng = random.Random(seed)
    if n_values is None:
        n_values = max(4, n_nodes // 3)
    pool = ["v{}".format(i) for i in range(n_values)]
    dfg = DFG(label="fuzz", function="fuzz_{}".format(seed))
    last_def = {}
    last_store = None
    loads_since_store = []

    def draw_source():
        defined = sorted(last_def)
        if not defined or rng.random() < p_external:
            return rng.choice(pool + ["x{}".format(i) for i in range(4)])
        return rng.choice(defined)

    for uid in range(n_nodes):
        roll = rng.random()
        if roll < p_memory:
            name = rng.choice(("lw", "sw"))
        elif roll < p_memory + p_move:
            name = _MOVE_OP
        else:
            name = rng.choice(_ALU_OPS)
        if name == "sw":
            sources = (draw_source(), draw_source())
            dests = ()
        elif name in ("lw", _MOVE_OP):
            sources = (draw_source(),)
            dests = (rng.choice(pool),)
        else:
            sources = (draw_source(), draw_source())
            dests = (rng.choice(pool),)
        operation = Operation(uid, name, sources=sources, dests=dests)
        ext = [value for value in sources if value not in last_def]
        dfg.add_operation(operation, ext_inputs=ext)
        for value in sources:
            if value in last_def:
                dfg.add_data_edge(last_def[value], uid, value)
        if name == "lw":
            if last_store is not None:
                dfg.add_order_edge(last_store, uid)
            loads_since_store.append(uid)
        elif name == "sw":
            if last_store is not None:
                dfg.add_order_edge(last_store, uid)
            for load in loads_since_store:
                dfg.add_order_edge(load, uid)
            last_store = uid
            loads_since_store = []
        for value in dests:
            last_def[value] = uid
    for value in sorted(last_def):
        if rng.random() < p_output:
            dfg.output_nodes.add(last_def[value])
    dfg.producer_of = dict(last_def)
    return dfg


def random_members(rng, dfg, max_size=10, p_connected=0.6):
    """One random candidate node set over ``dfg``.

    Mixes connected cones (grown through DFG neighbours — the shape
    search engines probe) with uniform scatters (the shape that
    exercises multi-component and wildly illegal candidates).
    """
    nodes = dfg.nodes
    if not nodes:
        return frozenset()
    size = rng.randint(1, min(max_size, len(nodes)))
    if rng.random() < p_connected:
        members = {rng.choice(nodes)}
        while len(members) < size:
            frontier = sorted(
                {other for uid in members for other in dfg.neighbours(uid)}
                - members)
            if not frontier:
                break
            members.add(rng.choice(frontier))
        return frozenset(members)
    return frozenset(rng.sample(nodes, size))
