"""Export helpers: Graphviz DOT for DFGs/candidates, ASCII Gantt for
schedules.

These make exploration results inspectable without any plotting
dependency: ``dfg_to_dot`` renders a basic block's data-flow graph with
ISE members highlighted, and ``schedule_to_gantt`` prints the issue
slots of a list schedule cycle by cycle.
"""


def _quote(text):
    return '"{}"'.format(str(text).replace('"', r'\"'))


def dfg_to_dot(dfg, highlight=(), title=None):
    """Render a DFG as Graphviz DOT.

    ``highlight`` is an iterable of node-uid sets; each set is drawn as
    a filled cluster colour (ISE candidates, typically).
    """
    colours = ("lightblue", "palegreen", "lightsalmon", "plum",
               "khaki", "lightcyan")
    colour_of = {}
    for index, members in enumerate(highlight):
        for uid in members:
            colour_of[uid] = colours[index % len(colours)]
    lines = ["digraph dfg {"]
    if title is None:
        title = "{}:{}".format(dfg.function, dfg.label)
    lines.append("  label={};".format(_quote(title)))
    lines.append("  node [shape=box, fontname=monospace];")
    for uid in dfg.nodes:
        operation = dfg.op(uid)
        label = "#{} {}".format(uid, operation.name)
        attrs = ["label={}".format(_quote(label))]
        if uid in colour_of:
            attrs.append('style=filled, fillcolor="{}"'.format(
                colour_of[uid]))
        elif dfg.is_output(uid):
            attrs.append("peripheries=2")
        lines.append("  n{} [{}];".format(uid, ", ".join(attrs)))
    for src, dst, data in dfg.graph.edges(data=True):
        style = "" if data["kind"] == "data" else " [style=dashed]"
        lines.append("  n{} -> n{}{};".format(src, dst, style))
    lines.append("}")
    return "\n".join(lines)


def schedule_to_gantt(schedule, width=72):
    """ASCII issue table of a :class:`~repro.sched.list_scheduler.Schedule`.

    One row per cycle; each cell names the unit issued (ISE supernodes
    keep their ``iseN`` ids) followed by ``*`` for every extra cycle a
    multi-cycle unit occupies.
    """
    if not schedule.start:
        return "(empty schedule)"
    rows = []
    occupancy = {}
    for uid, start in schedule.start.items():
        unit = schedule.units[uid]
        for offset in range(unit.latency):
            occupancy.setdefault(start + offset, []).append(
                (str(uid) if offset == 0 else "{}*".format(uid), offset))
    for cycle in range(schedule.makespan):
        cells = [name for name, __ in
                 sorted(occupancy.get(cycle, []), key=lambda t: t[0])]
        row = "C{:<4}| {}".format(cycle + 1, "  ".join(cells))
        rows.append(row[:width])
    return "\n".join(rows)


def candidate_to_dot(candidate):
    """DOT of a candidate's host DFG with the candidate highlighted."""
    return dfg_to_dot(candidate.dfg, highlight=[candidate.members],
                      title=candidate.describe())
