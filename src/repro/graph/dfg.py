"""Data-flow graphs of basic blocks.

A :class:`DFG` wraps a :class:`networkx.DiGraph` whose nodes are the
integer uids of :class:`~repro.isa.instruction.Operation` objects and
whose edges carry dependences:

* ``kind="data"`` — true dependences, annotated with the value name,
* ``kind="order"`` — memory-ordering edges (store→load, store→store,
  load→store) keeping loads/stores in program order.

Construction lowers one IR basic block: every computational instruction
becomes an operation node; values read before any in-block definition
become *external inputs*; values that are live out of the block (or
used by the terminator) mark their producers as *output* nodes.  The
terminator itself is not part of the DFG — it executes in the branch
slot after the block body, as in the thesis's examples.
"""

import networkx as nx

from ..errors import IRError
from ..isa.instruction import Operation


class DFG:
    """The data-flow graph of one basic block."""

    def __init__(self, label="", function=""):
        self.graph = nx.DiGraph()
        self.label = label
        self.function = function
        #: value name -> uid of its (final) producer in this block
        self.producer_of = {}
        #: uids whose value must reach the register file (live-out or
        #: used by the terminator)
        self.output_nodes = set()
        #: per-node list of external input value names
        self._ext_inputs = {}
        # Flat adjacency cache: the exploration engine walks neighbours
        # millions of times per block but never mutates the graph, so
        # the networkx adjacency views are snapshotted into plain tuples
        # (same iteration order) on first use and dropped on mutation.
        self._adj = None
        # Packed-bitset legality view (repro.graph.bitset), built
        # lazily on first legality query, dropped on mutation and
        # excluded from pickles (pool workers rebuild their own).
        self._bitset = None

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_bitset"] = None
        return state

    def __setstate__(self, state):
        # Pickles predating the adjacency/bitset caches lack the slots.
        self.__dict__.update(state)
        self.__dict__.setdefault("_adj", None)
        self.__dict__.setdefault("_bitset", None)

    def _adjacency(self):
        adj = self._adj
        if adj is None:
            graph = self.graph
            edges = graph.edges
            preds, succs, dpreds, dsuccs, ops, both = {}, {}, {}, {}, {}, {}
            for uid in graph.nodes:
                ops[uid] = graph.nodes[uid]["op"]
                pred = tuple(graph.predecessors(uid))
                succ = tuple(graph.successors(uid))
                preds[uid] = pred
                succs[uid] = succ
                both[uid] = pred + succ
                dpreds[uid] = tuple(
                    p for p in pred if edges[p, uid]["kind"] == "data")
                dsuccs[uid] = tuple(
                    s for s in succ if edges[uid, s]["kind"] == "data")
            adj = self._adj = (preds, succs, dpreds, dsuccs,
                               tuple(sorted(graph.nodes)), ops,
                               tuple(graph.edges), both)
        return adj

    # -- structure ----------------------------------------------------------

    def add_operation(self, operation, ext_inputs=()):
        """Add an operation node; ``ext_inputs`` are the value names it
        reads from outside the block."""
        if operation.uid in self.graph:
            raise IRError("duplicate DFG node uid {}".format(operation.uid))
        self.graph.add_node(operation.uid, op=operation)
        self._ext_inputs[operation.uid] = list(ext_inputs)
        self._adj = None
        self._bitset = None
        return operation.uid

    def add_data_edge(self, src, dst, value):
        """Add (or widen) a data edge carrying ``value`` from src to dst."""
        if self.graph.has_edge(src, dst):
            edge = self.graph.edges[src, dst]
            edge["kind"] = "data"
            values = edge.setdefault("values", set())
            values.add(value)
        else:
            self.graph.add_edge(src, dst, kind="data", values={value})
        self._adj = None
        self._bitset = None

    def add_order_edge(self, src, dst):
        """Add a memory-ordering edge (no value carried)."""
        if not self.graph.has_edge(src, dst):
            self.graph.add_edge(src, dst, kind="order", values=set())
            self._adj = None
            self._bitset = None

    def op(self, uid):
        """The :class:`Operation` at node ``uid``."""
        adj = self._adj
        if adj is None:
            adj = self._adjacency()
        return adj[5][uid]

    @property
    def nodes(self):
        """All node uids, sorted (== program order by construction)."""
        adj = self._adj
        if adj is None:
            adj = self._adjacency()
        return list(adj[4])

    def __len__(self):
        return self.graph.number_of_nodes()

    def __contains__(self, uid):
        return uid in self.graph

    def predecessors(self, uid):
        """All predecessors (data and order edges)."""
        adj = self._adj
        if adj is None:
            adj = self._adjacency()
        return adj[0][uid]

    def successors(self, uid):
        """All successors (data and order edges)."""
        adj = self._adj
        if adj is None:
            adj = self._adjacency()
        return adj[1][uid]

    def data_predecessors(self, uid):
        """Predecessors connected by data edges."""
        adj = self._adj
        if adj is None:
            adj = self._adjacency()
        return adj[2][uid]

    def data_successors(self, uid):
        """Successors connected by data edges."""
        adj = self._adj
        if adj is None:
            adj = self._adjacency()
        return adj[3][uid]

    def edge_pairs(self):
        """All ``(src, dst)`` edges, in graph iteration order."""
        adj = self._adj
        if adj is None:
            adj = self._adjacency()
        return adj[6]

    def neighbours(self, uid):
        """Predecessors then successors, as one cached tuple."""
        adj = self._adj
        if adj is None:
            adj = self._adjacency()
        return adj[7][uid]

    def external_inputs(self, uid):
        """Value names node ``uid`` reads from outside the block.

        The returned sequence is shared — treat it as read-only.
        """
        return self._ext_inputs.get(uid, ())

    def is_output(self, uid):
        """True when the node's value must reach the register file."""
        return uid in self.output_nodes

    def groupable_nodes(self):
        """Uids of operations that §4.2 allows inside an ISE."""
        return [uid for uid in self.nodes if self.op(uid).groupable]

    def pretty(self):
        """Multi-line human-readable dump of the DFG."""
        lines = ["DFG {}:{} ({} nodes)".format(
            self.function, self.label, len(self))]
        for uid in self.nodes:
            preds = sorted(self.graph.predecessors(uid))
            lines.append("  #{:<3} {:<24} <- {}".format(
                uid, self.op(uid).pretty(), preds))
        return "\n".join(lines)

    def __repr__(self):
        return "DFG({}:{}, {} nodes)".format(
            self.function, self.label, len(self))


def build_dfg(block, live_out=frozenset(), function=""):
    """Lower one IR basic block to a :class:`DFG`.

    Parameters
    ----------
    block:
        The :class:`~repro.ir.function.BasicBlock` to lower.
    live_out:
        Value names live on exit of the block (from
        :func:`repro.ir.analysis.liveness`); their final producers
        become output nodes.
    """
    dfg = DFG(label=block.label, function=function)
    last_def = {}            # value name -> uid of current producer
    last_store = None
    loads_since_store = []
    uid = 0
    for instr in block.body:
        if not instr.is_computational:
            # Calls split scheduling regions; the flow never hands blocks
            # with calls to exploration (they are inlined or the block is
            # skipped), so treat one here as a construction error.
            raise IRError(
                "cannot lower block {!r}: contains a call".format(block.label))
        operation = Operation(
            uid, instr.op,
            sources=instr.sources,
            dests=instr.defs(),
            immediate=instr.imm,
        )
        ext = []
        for value in instr.sources:
            if value in last_def:
                pass
            else:
                ext.append(value)
        dfg.add_operation(operation, ext_inputs=ext)
        for value in instr.sources:
            if value in last_def:
                dfg.add_data_edge(last_def[value], uid, value)
        # Memory ordering.
        if instr.is_load:
            if last_store is not None:
                dfg.add_order_edge(last_store, uid)
            loads_since_store.append(uid)
        elif instr.is_store:
            if last_store is not None:
                dfg.add_order_edge(last_store, uid)
            for load in loads_since_store:
                dfg.add_order_edge(load, uid)
            last_store = uid
            loads_since_store = []
        for value in instr.defs():
            last_def[value] = uid
        uid += 1
    # Output nodes: final producers of live-out / terminator-used values.
    needed = set(live_out)
    if block.terminator is not None:
        needed.update(block.terminator.uses())
    for value, producer in last_def.items():
        if value in needed:
            dfg.output_nodes.add(producer)
    dfg.producer_of = dict(last_def)
    return dfg
