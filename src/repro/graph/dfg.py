"""Data-flow graphs of basic blocks.

A :class:`DFG` wraps a :class:`networkx.DiGraph` whose nodes are the
integer uids of :class:`~repro.isa.instruction.Operation` objects and
whose edges carry dependences:

* ``kind="data"`` — true dependences, annotated with the value name,
* ``kind="order"`` — memory-ordering edges (store→load, store→store,
  load→store) keeping loads/stores in program order.

Construction lowers one IR basic block: every computational instruction
becomes an operation node; values read before any in-block definition
become *external inputs*; values that are live out of the block (or
used by the terminator) mark their producers as *output* nodes.  The
terminator itself is not part of the DFG — it executes in the branch
slot after the block body, as in the thesis's examples.
"""

import networkx as nx

from ..errors import IRError
from ..isa.instruction import Operation


class DFG:
    """The data-flow graph of one basic block."""

    def __init__(self, label="", function=""):
        self.graph = nx.DiGraph()
        self.label = label
        self.function = function
        #: value name -> uid of its (final) producer in this block
        self.producer_of = {}
        #: uids whose value must reach the register file (live-out or
        #: used by the terminator)
        self.output_nodes = set()
        #: per-node list of external input value names
        self._ext_inputs = {}

    # -- structure ----------------------------------------------------------

    def add_operation(self, operation, ext_inputs=()):
        """Add an operation node; ``ext_inputs`` are the value names it
        reads from outside the block."""
        if operation.uid in self.graph:
            raise IRError("duplicate DFG node uid {}".format(operation.uid))
        self.graph.add_node(operation.uid, op=operation)
        self._ext_inputs[operation.uid] = list(ext_inputs)
        return operation.uid

    def add_data_edge(self, src, dst, value):
        """Add (or widen) a data edge carrying ``value`` from src to dst."""
        if self.graph.has_edge(src, dst):
            edge = self.graph.edges[src, dst]
            edge["kind"] = "data"
            values = edge.setdefault("values", set())
            values.add(value)
        else:
            self.graph.add_edge(src, dst, kind="data", values={value})

    def add_order_edge(self, src, dst):
        """Add a memory-ordering edge (no value carried)."""
        if not self.graph.has_edge(src, dst):
            self.graph.add_edge(src, dst, kind="order", values=set())

    def op(self, uid):
        """The :class:`Operation` at node ``uid``."""
        return self.graph.nodes[uid]["op"]

    @property
    def nodes(self):
        """All node uids, sorted (== program order by construction)."""
        return sorted(self.graph.nodes)

    def __len__(self):
        return self.graph.number_of_nodes()

    def __contains__(self, uid):
        return uid in self.graph

    def predecessors(self, uid):
        """All predecessors (data and order edges)."""
        return self.graph.predecessors(uid)

    def successors(self, uid):
        """All successors (data and order edges)."""
        return self.graph.successors(uid)

    def data_predecessors(self, uid):
        """Predecessors connected by data edges."""
        for pred in self.graph.predecessors(uid):
            if self.graph.edges[pred, uid]["kind"] == "data":
                yield pred

    def data_successors(self, uid):
        """Successors connected by data edges."""
        for succ in self.graph.successors(uid):
            if self.graph.edges[uid, succ]["kind"] == "data":
                yield succ

    def external_inputs(self, uid):
        """Value names node ``uid`` reads from outside the block."""
        return list(self._ext_inputs.get(uid, ()))

    def is_output(self, uid):
        """True when the node's value must reach the register file."""
        return uid in self.output_nodes

    def groupable_nodes(self):
        """Uids of operations that §4.2 allows inside an ISE."""
        return [uid for uid in self.nodes if self.op(uid).groupable]

    def pretty(self):
        """Multi-line human-readable dump of the DFG."""
        lines = ["DFG {}:{} ({} nodes)".format(
            self.function, self.label, len(self))]
        for uid in self.nodes:
            preds = sorted(self.graph.predecessors(uid))
            lines.append("  #{:<3} {:<24} <- {}".format(
                uid, self.op(uid).pretty(), preds))
        return "\n".join(lines)

    def __repr__(self):
        return "DFG({}:{}, {} nodes)".format(
            self.function, self.label, len(self))


def build_dfg(block, live_out=frozenset(), function=""):
    """Lower one IR basic block to a :class:`DFG`.

    Parameters
    ----------
    block:
        The :class:`~repro.ir.function.BasicBlock` to lower.
    live_out:
        Value names live on exit of the block (from
        :func:`repro.ir.analysis.liveness`); their final producers
        become output nodes.
    """
    dfg = DFG(label=block.label, function=function)
    last_def = {}            # value name -> uid of current producer
    last_store = None
    loads_since_store = []
    uid = 0
    for instr in block.body:
        if not instr.is_computational:
            # Calls split scheduling regions; the flow never hands blocks
            # with calls to exploration (they are inlined or the block is
            # skipped), so treat one here as a construction error.
            raise IRError(
                "cannot lower block {!r}: contains a call".format(block.label))
        operation = Operation(
            uid, instr.op,
            sources=instr.sources,
            dests=instr.defs(),
            immediate=instr.imm,
        )
        ext = []
        for value in instr.sources:
            if value in last_def:
                pass
            else:
                ext.append(value)
        dfg.add_operation(operation, ext_inputs=ext)
        for value in instr.sources:
            if value in last_def:
                dfg.add_data_edge(last_def[value], uid, value)
        # Memory ordering.
        if instr.is_load:
            if last_store is not None:
                dfg.add_order_edge(last_store, uid)
            loads_since_store.append(uid)
        elif instr.is_store:
            if last_store is not None:
                dfg.add_order_edge(last_store, uid)
            for load in loads_since_store:
                dfg.add_order_edge(load, uid)
            last_store = uid
            loads_since_store = []
        for value in instr.defs():
            last_def[value] = uid
        uid += 1
    # Output nodes: final producers of live-out / terminator-used values.
    needed = set(live_out)
    if block.terminator is not None:
        needed.update(block.terminator.uses())
    for value, producer in last_def.items():
        if value in needed:
            dfg.output_nodes.add(producer)
    dfg.producer_of = dict(last_def)
    return dfg
