"""DFG construction and graph analyses."""

from .dfg import DFG, build_dfg
from .analysis import (
    alap_schedule,
    asap_schedule,
    check_candidate,
    critical_nodes,
    input_values,
    io_counts,
    is_convex,
    is_legal,
    longest_path_cycles,
    output_values,
    schedule_length,
    slack,
    violates_memory_rule,
)
from .bitset import BitsetDFG, bitset_enabled, bitset_view
from .fuzz import random_dfg
from .subgraph import (
    contains_pattern,
    find_matches,
    grown_group,
    hardware_components,
    pattern_graph,
    same_pattern,
)
from .export import candidate_to_dot, dfg_to_dot, schedule_to_gantt

__all__ = [
    "DFG",
    "BitsetDFG",
    "alap_schedule",
    "asap_schedule",
    "bitset_enabled",
    "bitset_view",
    "build_dfg",
    "candidate_to_dot",
    "check_candidate",
    "contains_pattern",
    "dfg_to_dot",
    "schedule_to_gantt",
    "critical_nodes",
    "find_matches",
    "grown_group",
    "hardware_components",
    "input_values",
    "io_counts",
    "is_convex",
    "is_legal",
    "longest_path_cycles",
    "output_values",
    "pattern_graph",
    "random_dfg",
    "same_pattern",
    "schedule_length",
    "slack",
    "violates_memory_rule",
]
