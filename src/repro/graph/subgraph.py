"""Subgraph utilities: grouping, components, containment, matching.

Used by Hardware-Grouping (grow a virtual ISE around one operation),
by candidate extraction (connected components of taken-hardware nodes),
by ISE merging (pattern containment) and by ISE replacement (finding
further occurrences of a selected pattern in a DFG).
"""

import networkx as nx
from networkx.algorithms import isomorphism


def grown_group(dfg, seed, chosen_hw):
    """Hardware-Grouping's virtual subgraph around ``seed``.

    Returns ``{seed}`` plus every node reachable from ``seed`` through
    undirected DFG edges traversing only nodes in ``chosen_hw`` (the
    operations that picked a hardware option in the previous iteration).
    Matches the Fig. 4.3.6 examples: parents and children chains of
    hardware-chosen neighbours are swallowed, software nodes block the
    growth.
    """
    if not isinstance(chosen_hw, (set, frozenset)):
        chosen_hw = set(chosen_hw)
    group = {seed}
    frontier = [seed]
    neighbours = dfg.neighbours
    while frontier:
        node = frontier.pop()
        for neighbour in neighbours(node):
            if neighbour in group or neighbour not in chosen_hw:
                continue
            group.add(neighbour)
            frontier.append(neighbour)
    return group


def hardware_components(dfg, chosen_hw):
    """Connected components of hardware-chosen nodes.

    The thesis defines an ISE as "a set of connected/reachable
    operations that all use hardware implementation option"; each
    weakly-connected component of the induced subgraph is one candidate.
    """
    chosen_hw = set(chosen_hw)
    sub = dfg.graph.subgraph(chosen_hw)
    return [set(component)
            for component in nx.weakly_connected_components(sub)]


def pattern_graph(dfg, members):
    """Opcode-labelled pattern of a node set (for matching/merging).

    Only data edges inside the member set appear; nodes are relabelled
    0..n-1 in sorted-uid order so patterns from different DFGs compare.
    """
    members = sorted(set(members))
    index = {uid: i for i, uid in enumerate(members)}
    pattern = nx.DiGraph()
    for uid in members:
        pattern.add_node(index[uid], opcode=dfg.op(uid).name)
    for uid in members:
        for succ in dfg.data_successors(uid):
            if succ in index:
                pattern.add_edge(index[uid], index[succ])
    return pattern


def contains_pattern(host, pattern):
    """True when ``pattern`` occurs inside ``host`` (both opcode-labelled
    DiGraphs from :func:`pattern_graph`).  Containment is subgraph
    monomorphism with opcode-equality node matching — the rule ISE
    merging uses to fold candidate B into candidate A."""
    if pattern.number_of_nodes() > host.number_of_nodes():
        return False
    matcher = isomorphism.DiGraphMatcher(
        host, pattern,
        node_match=lambda a, b: a["opcode"] == b["opcode"])
    return matcher.subgraph_is_monomorphic()


def same_pattern(a, b):
    """Exact (iso) equality of two opcode-labelled patterns."""
    if a.number_of_nodes() != b.number_of_nodes():
        return False
    if a.number_of_edges() != b.number_of_edges():
        return False
    matcher = isomorphism.DiGraphMatcher(
        a, b, node_match=lambda x, y: x["opcode"] == y["opcode"])
    return matcher.is_isomorphic()


def find_matches(dfg, pattern, constraints=None, exclude=frozenset(),
                 max_mappings=5000, max_matches=256, obs=None):
    """Occurrences of ``pattern`` in ``dfg`` as sets of node uids.

    Matches never use nodes in ``exclude`` (already replaced), always
    map onto groupable operations, and — when ``constraints`` is given —
    must be legal candidates (convex, I/O ports, no memory ops).
    Overlapping matches are all returned; the caller prioritises.

    Unrolled blocks contain combinatorially many monomorphisms of the
    same node sets, so enumeration is capped by ``max_mappings`` raw
    mappings / ``max_matches`` distinct member sets.

    With the packed bitset kernel enabled, each mapping first meets the
    cheap masked pre-filter (port counts against the precomputed value
    tables); only survivors reach the convexity stage.  ``obs`` counts
    the split: ``match.prefilter_rejected`` mappings died in the
    pre-filter, ``match.legality_checked`` went the distance.
    """
    from .analysis import is_legal
    from .bitset import bitset_view

    eligible = sorted(uid for uid in dfg.nodes
                      if dfg.op(uid).groupable and uid not in exclude)
    host = pattern_graph(dfg, eligible)
    back = {i: uid for i, uid in enumerate(eligible)}
    matcher = isomorphism.DiGraphMatcher(
        host, pattern,
        node_match=lambda a, b: a["opcode"] == b["opcode"])
    view = bitset_view(dfg) if constraints is not None else None
    seen = set()
    matches = []
    for count, mapping in enumerate(matcher.subgraph_monomorphisms_iter()):
        if count >= max_mappings or len(matches) >= max_matches:
            break
        members = frozenset(back[i] for i in mapping)
        if members in seen:
            continue
        seen.add(members)
        if constraints is not None:
            if view is not None:
                verdict = view.classify_match(members, constraints)
                if obs:
                    if verdict == "cheap":
                        obs.count("match.prefilter_rejected")
                    else:
                        obs.count("match.legality_checked")
                if verdict != "legal":
                    continue
            else:
                if obs:
                    obs.count("match.legality_checked")
                if not is_legal(dfg, members, constraints):
                    continue
        matches.append(set(members))
    return matches
