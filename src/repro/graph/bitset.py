"""Packed-bitset DFG legality kernel (§4.2 constraints as word ops).

Every engine except ACO spends its inner loop in the §4.2 legality
checks of :mod:`repro.graph.analysis` — convexity, IN/OUT port
counting, the memory and groupability rules.  The set-based reference
implementations rebuild Python-set closures per probe; this module
packs the same questions into bit-parallel word arithmetic so one
candidate check is a handful of AND/OR/popcount operations and a
*batch* of candidates is a single matrix operation.

A :class:`BitsetDFG` is a derived, read-only view of one (frozen)
:class:`~repro.graph.dfg.DFG`:

* nodes are bit positions ``0..n-1`` in sorted-uid order; a node set is
  one packed bit row — an arbitrary-precision int on the scalar path
  (zero numpy dispatch overhead per probe), a ``(B, n_words)``
  little-endian ``uint64`` matrix on the batched path,
* per-node **transitive-closure rows** (strict ancestors/descendants)
  make convexity the identity ``descendants(S) & ancestors(S) & ~S ==
  0``,
* per-node data-successor rows plus **value-ownership tables** (which
  reader set pulls a value in, which producer bit pushes one out) turn
  ``IN``/``OUT`` counting into masked any-tests grouped by value id —
  bit-identical to :func:`~repro.graph.analysis.input_values` /
  :func:`~repro.graph.analysis.output_values` even for non-SSA names
  with several producers,
* memory / ungroupable / output masks answer the remaining §4.2 rules
  with one AND each.

The closure rows are ``O(n²/64)`` words per block, built lazily on the
first legality query and cached on the DFG (dropped on any mutation
and never pickled — pool workers rebuild their own).  The set-based
implementations remain in :mod:`repro.graph.analysis` as the oracle;
``REPRO_BITSET=0`` forces every dispatching call back onto them.
"""

import os

import numpy as np

from ..errors import ConstraintError

#: Environment switch: set to ``0`` to force the set-based reference
#: implementations everywhere (A/B parity runs; results are identical).
BITSET_ENV = "REPRO_BITSET"

_WORD = 64


def bitset_enabled():
    """True unless ``REPRO_BITSET`` disables the packed kernel."""
    return os.environ.get(BITSET_ENV, "").strip().lower() not in (
        "0", "false", "no", "off")


def bitset_view(dfg):
    """The cached :class:`BitsetDFG` of ``dfg``, or ``None`` when the
    kernel is disabled.

    Built lazily on first use and stashed on the DFG; graph mutations
    drop the cache (see :class:`~repro.graph.dfg.DFG`), and direct
    ``output_nodes`` edits are caught by a freshness check here.
    """
    if not bitset_enabled():
        return None
    view = getattr(dfg, "_bitset", None)
    if view is None or not view.fresh():
        view = BitsetDFG(dfg)
        dfg._bitset = view
    return view


class BitsetDFG:
    """Packed-bitset legality view of one frozen DFG."""

    def __init__(self, dfg):
        self.dfg = dfg
        uids = list(dfg.nodes)
        self.uids = uids
        self.index = {uid: i for i, uid in enumerate(uids)}
        n = len(uids)
        self.n = n
        self.n_words = max(1, (n + _WORD - 1) // _WORD)
        self._n_padded = self.n_words * _WORD
        self._output_snapshot = frozenset(dfg.output_nodes)
        self._build_scalar_tables(dfg, uids)
        self._batch = None        # numpy batch tables, built on demand

    # -- construction -------------------------------------------------------

    def _build_scalar_tables(self, dfg, uids):
        """Per-node int bit rows: closures, adjacency, value ownership."""
        n = self.n
        index = self.index
        # Topological order (Kahn) over the full edge set.
        indegree = {uid: 0 for uid in uids}
        for __, dst in dfg.edge_pairs():
            indegree[dst] += 1
        topo = []
        ready = [uid for uid in uids if not indegree[uid]]
        while ready:
            uid = ready.pop()
            topo.append(uid)
            for succ in dfg.successors(uid):
                indegree[succ] -= 1
                if not indegree[succ]:
                    ready.append(succ)
        if len(topo) != n:
            raise ConstraintError("DFG contains a dependence cycle")
        # Strict ancestor/descendant closure rows: one linear sweep each
        # (row of u = OR over direct successors s of row(s) | bit(s)).
        desc = [0] * n
        anc = [0] * n
        for uid in reversed(topo):
            i = index[uid]
            row = 0
            for succ in dfg.successors(uid):
                j = index[succ]
                row |= desc[j] | (1 << j)
            desc[i] = row
        for uid in topo:
            i = index[uid]
            row = 0
            for pred in dfg.predecessors(uid):
                j = index[pred]
                row |= anc[j] | (1 << j)
            anc[i] = row
        self.desc_bits = desc
        self.anc_bits = anc
        # Adjacency rows + §4.2 masks.
        dsucc = [0] * n
        adj = [0] * n
        memory = ungroup = output = 0
        for uid in uids:
            i = index[uid]
            for succ in dfg.data_successors(uid):
                dsucc[i] |= 1 << index[succ]
            for other in dfg.neighbours(uid):
                adj[i] |= 1 << index[other]
            op = dfg.op(uid)
            if op.is_memory:
                memory |= 1 << i
            if not op.groupable:
                ungroup |= 1 << i
            if dfg.is_output(uid):
                output |= 1 << i
        self.dsucc_bits = dsucc
        self.adj_bits = adj
        self.memory_bits = memory
        self.ungroupable_bits = ungroup
        self.forbidden_bits = memory | ungroup
        self.output_bits = output
        # Value-ownership tables.  Value names get dense ids; per node:
        # the externally-read value ids, the (producer bit, value id)
        # pairs of incoming data edges, and the produced (dest) value
        # ids.  IN(S) = distinct ids over members' external reads plus
        # crossing-edge reads; OUT(S) = distinct ids over escaping
        # members' dests — matching input_values/output_values exactly,
        # including non-SSA names with several producers.
        edges = dfg.graph.edges
        in_names = set()
        out_names = set()
        for uid in uids:
            in_names.update(dfg.external_inputs(uid))
            for pred in dfg.data_predecessors(uid):
                in_names.update(edges[pred, uid]["values"])
            out_names.update(dfg.op(uid).dests)
        in_vid = {name: k for k, name in enumerate(sorted(in_names))}
        out_vid = {name: k for k, name in enumerate(sorted(out_names))}
        self.n_in_values = len(in_vid)
        self.n_out_values = len(out_vid)
        self.ext_vids = [
            tuple(in_vid[name] for name in dfg.external_inputs(uid))
            for uid in uids]
        self.pred_pairs = [
            tuple((index[pred], in_vid[name])
                  for pred in dfg.data_predecessors(uid)
                  for name in edges[pred, uid]["values"])
            for uid in uids]
        self.dest_vids = [
            tuple(out_vid[name] for name in dfg.op(uid).dests)
            for uid in uids]
        # Value-id bit masks for the scalar counters: distinct-value
        # counting becomes OR + popcount.
        self.ext_vid_mask = [
            sum(1 << vid for vid in set(vids)) for vids in self.ext_vids]
        self.pred_vid_bits = [
            tuple((1 << p, 1 << vid) for p, vid in pairs)
            for pairs in self.pred_pairs]
        self.dest_vid_mask = [
            sum(1 << vid for vid in set(vids)) for vids in self.dest_vids]
        self.output_flags = [bool((output >> i) & 1) for i in range(n)]
        # One fused per-node tuple for the hot scalar path: a single
        # dict lookup per member replaces the index + per-table list
        # indexing.  Layout: (bit, desc, anc, ext vid mask, producer
        # bit mask, all-producer vid mask, (pbit, vbit) pairs,
        # is-output flag, data-successor row, dest vid mask).
        self._scalar_nodes = {
            uid: (1 << i, desc[i], anc[i], self.ext_vid_mask[i],
                  sum(set(pbit for pbit, __ in self.pred_vid_bits[i])),
                  sum(set(vbit for __, vbit in self.pred_vid_bits[i])),
                  self.pred_vid_bits[i], self.output_flags[i],
                  dsucc[i], self.dest_vid_mask[i])
            for uid, i in index.items()}

    def _batch_tables(self):
        """Lazy numpy operands for the batched row APIs."""
        tables = self._batch
        if tables is None:
            n, n_padded = self.n, self._n_padded
            f32 = np.float32

            def unpack_ints(ints):
                rows = np.zeros((len(ints), n), dtype=f32)
                for i, value in enumerate(ints):
                    while value:
                        low = value & -value
                        rows[i, low.bit_length() - 1] = 1.0
                        value ^= low
                return rows

            def pack_int(value):
                bools = np.zeros(n_padded, dtype=bool)
                for i in range(n):
                    if (value >> i) & 1:
                        bools[i] = True
                return np.packbits(bools, bitorder="little").view(np.uint64)

            # IN terms: (reader bit row, producer index or -1, value id).
            ext_readers = {}
            pv_readers = {}
            for i in range(n):
                for vid in self.ext_vids[i]:
                    ext_readers[vid] = ext_readers.get(vid, 0) | (1 << i)
                for p, vid in self.pred_pairs[i]:
                    key = (p, vid)
                    pv_readers[key] = pv_readers.get(key, 0) | (1 << i)
            terms = [(vid, -1, row) for vid, row in
                     sorted(ext_readers.items())]
            terms += [(vid, p, row) for (p, vid), row in
                      sorted(pv_readers.items(), key=lambda kv: kv[0])]
            in_onehot = np.zeros((len(terms), self.n_in_values), dtype=f32)
            for t, (vid, __, ___) in enumerate(terms):
                in_onehot[t, vid] = 1.0
            out_src = []
            out_vids = []
            for i in range(n):
                for vid in self.dest_vids[i]:
                    out_src.append(i)
                    out_vids.append(vid)
            out_onehot = np.zeros((len(out_vids), self.n_out_values),
                                  dtype=f32)
            for t, vid in enumerate(out_vids):
                out_onehot[t, vid] = 1.0
            tables = self._batch = {
                "desc_f": unpack_ints(self.desc_bits),
                "anc_f": unpack_ints(self.anc_bits),
                "dsucc_f": unpack_ints(self.dsucc_bits),
                "output_bool": np.array(
                    [(self.output_bits >> i) & 1 for i in range(n)],
                    dtype=bool),
                "in_rows_f": unpack_ints([row for __, __, row in terms]),
                "in_src": np.array([src for __, src, __ in terms],
                                   dtype=np.intp),
                "in_onehot": in_onehot,
                "out_src": np.array(out_src, dtype=np.intp),
                "out_onehot": out_onehot,
                "dsucc_total": np.array(
                    [row.bit_count() for row in self.dsucc_bits],
                    dtype=f32),
                "memory_row": pack_int(self.memory_bits),
                "ungroupable_row": pack_int(self.ungroupable_bits),
            }
        return tables

    # -- plumbing ------------------------------------------------------------

    def fresh(self):
        """False when the DFG drifted under the view (output edits)."""
        return self.dfg.output_nodes == self._output_snapshot

    def row_of(self, members):
        """One membership set as a packed int bit row."""
        index = self.index
        row = 0
        for uid in members:
            row |= 1 << index[uid]
        return row

    def pack_rows(self, member_sets):
        """A batch of membership sets as a ``(B, n_words)`` uint64
        matrix (bit ``i`` of a row = node ``i`` in sorted-uid order,
        little-endian words)."""
        index = self.index
        B = len(member_sets)
        sizes = np.fromiter((len(m) for m in member_sets),
                            dtype=np.intp, count=B)
        cols = np.fromiter(
            (index[uid] for members in member_sets for uid in members),
            dtype=np.intp, count=int(sizes.sum()))
        bools = np.zeros((B, self._n_padded), dtype=bool)
        bools[np.repeat(np.arange(B), sizes), cols] = True
        packed = np.packbits(bools, axis=-1, bitorder="little")
        return np.ascontiguousarray(packed).view(np.uint64)

    def unpack_rows(self, rows):
        """Packed rows back to a ``(B, n)`` bool matrix."""
        rows = np.ascontiguousarray(rows)
        bits = np.unpackbits(rows.view(np.uint8), axis=-1,
                             bitorder="little")
        return bits[..., :self.n].astype(bool)

    def members_of(self, row):
        """Uids of one int bit row, sorted."""
        uids = self.uids
        members = []
        while row:
            low = row & -row
            members.append(uids[low.bit_length() - 1])
            row ^= low
        return members

    # -- scalar fast path ----------------------------------------------------

    def _row_and_idxs(self, members):
        index = self.index
        row = 0
        idxs = []
        append = idxs.append
        for uid in members:
            i = index[uid]
            append(i)
            row |= 1 << i
        return row, idxs

    def is_convex(self, members):
        """§4.2 convexity via closure rows: ``desc & anc & ~S == 0``."""
        row, idxs = self._row_and_idxs(members)
        return self._convex_row(row, idxs)

    def _convex_row(self, row, idxs):
        desc = self.desc_bits
        anc = self.anc_bits
        d = a = 0
        for i in idxs:
            d |= desc[i]
            a |= anc[i]
        return not (d & a & ~row)

    def io_counts(self, members):
        """``(|IN(S)|, |OUT(S)|)`` of one membership set."""
        row, idxs = self._row_and_idxs(members)
        return (self._in_count(row, idxs), self._out_count(row, idxs))

    def _iter_bits(self, row):
        while row:
            low = row & -row
            yield low.bit_length() - 1
            row ^= low

    def _in_count(self, row, idxs):
        ext = self.ext_vid_mask
        pairs = self.pred_vid_bits
        vids = 0
        for i in idxs:
            vids |= ext[i]
            for pbit, vbit in pairs[i]:
                if not row & pbit:
                    vids |= vbit
        return vids.bit_count()

    def _out_count(self, row, idxs):
        out = self.output_flags
        dsucc = self.dsucc_bits
        dest = self.dest_vid_mask
        nrow = ~row
        vids = 0
        for i in idxs:
            if out[i] or dsucc[i] & nrow:
                vids |= dest[i]
        return vids.bit_count()

    def is_connected(self, members):
        """True when ``members`` induce one weakly-connected component."""
        row = self.row_of(members)
        if not row:
            return False
        adj = self.adj_bits
        reached = row & -row          # lowest member bit
        while True:
            grown = reached
            for i in self._iter_bits(reached):
                grown |= adj[i]
            grown &= row
            if grown == reached:
                return grown == row
            reached = grown

    def check_candidate(self, members, constraints):
        """Packed :func:`~repro.graph.analysis.check_candidate` —
        identical check order and error messages."""
        if not members:
            raise ConstraintError("empty candidate")
        row, idxs = self._row_and_idxs(members)
        if row & self.memory_bits:
            raise ConstraintError("candidate contains memory operations")
        if row & self.ungroupable_bits:
            raise ConstraintError(
                "candidate contains ungroupable operations")
        n_in = self._in_count(row, idxs)
        if n_in > constraints.n_in:
            raise ConstraintError(
                "IN(S)={} exceeds Nin={}".format(n_in, constraints.n_in))
        n_out = self._out_count(row, idxs)
        if n_out > constraints.n_out:
            raise ConstraintError(
                "OUT(S)={} exceeds Nout={}".format(n_out,
                                                   constraints.n_out))
        if not self._convex_row(row, idxs):
            raise ConstraintError("candidate is not convex")

    def is_legal(self, members, constraints):
        """Boolean form of :meth:`check_candidate`: same verdict, no
        exception.  Checks run cheapest-first (masks, convexity, then
        port counts) — a pure reordering of independent predicates, so
        the verdict is unchanged."""
        if not members:
            return False
        nodes = self._scalar_nodes
        row = d = a = 0
        data = []
        append = data.append
        for uid in members:
            t = nodes[uid]
            row |= t[0]
            d |= t[1]
            a |= t[2]
            append(t)
        if row & self.forbidden_bits:
            return False
        nrow = ~row
        if d & a & nrow:
            return False
        vids = 0
        for t in data:
            vids |= t[3]
            outside = t[4] & nrow
            if outside:
                if outside == t[4]:
                    vids |= t[5]       # every producer is external
                else:
                    for pbit, vbit in t[6]:
                        if pbit & outside:
                            vids |= vbit
        if vids.bit_count() > constraints.n_in:
            return False
        vids = 0
        for t in data:
            if t[7] or t[8] & nrow:
                vids |= t[9]
        return vids.bit_count() <= constraints.n_out

    def classify_match(self, members, constraints):
        """Two-stage legality verdict for pattern matching.

        Returns ``"cheap"`` when the candidate dies on the masked
        bit-row pre-filter (memory/ungroupable masks, port counts),
        ``"illegal"`` when only the convexity stage kills it, and
        ``"legal"`` otherwise — letting
        :func:`~repro.graph.subgraph.find_matches` report how many
        mappings the cheap filter retired before full legality ran.
        """
        if not members:
            return "cheap"
        row, idxs = self._row_and_idxs(members)
        if row & self.memory_bits or row & self.ungroupable_bits:
            return "cheap"
        if self._in_count(row, idxs) > constraints.n_in:
            return "cheap"
        if self._out_count(row, idxs) > constraints.n_out:
            return "cheap"
        return "legal" if self._convex_row(row, idxs) else "illegal"

    # -- batched rows --------------------------------------------------------

    def convex_rows(self, rows):
        """Convexity of every packed row, as one ``(B,)`` bool array."""
        tables = self._batch_tables()
        bools = self.unpack_rows(rows)
        f = bools.astype(np.float32)
        desc_cover = f @ tables["desc_f"]
        anc_cover = f @ tables["anc_f"]
        viol = (desc_cover > 0) & (anc_cover > 0) & ~bools
        return ~viol.any(axis=1)

    def io_counts_rows(self, rows):
        """``(in_counts, out_counts)`` int arrays for a packed batch."""
        tables = self._batch_tables()
        bools = self.unpack_rows(rows)
        return (self._in_count_rows(bools, tables),
                self._out_count_rows(bools, tables))

    def _in_count_rows(self, bools, tables):
        B = len(bools)
        src = tables["in_src"]
        if not len(src):
            return np.zeros(B, dtype=np.intp)
        f = bools.astype(np.float32)
        active = (f @ tables["in_rows_f"].T) > 0
        prod = src >= 0
        if prod.any():
            active[:, prod] &= ~bools[:, src[prod]]
        seen = (active.astype(np.float32) @ tables["in_onehot"]) > 0
        return seen.sum(axis=1).astype(np.intp)

    def _out_count_rows(self, bools, tables):
        B = len(bools)
        out_src = tables["out_src"]
        if not len(out_src):
            return np.zeros(B, dtype=np.intp)
        f = bools.astype(np.float32)
        # Node i has a data successor outside S iff S covers fewer of
        # its successors than it has in total.
        esc_data = (f @ tables["dsucc_f"].T) < tables["dsucc_total"]
        esc = bools & (tables["output_bool"] | esc_data)
        active = esc[:, out_src]
        seen = (active.astype(np.float32) @ tables["out_onehot"]) > 0
        return seen.sum(axis=1).astype(np.intp)

    def legal_rows(self, rows, constraints):
        """§4.2 legality of every packed row, as one ``(B,)`` bool
        array — bit-identical to mapping
        :func:`~repro.graph.analysis.is_legal` over the member sets.

        Staged like the scalar short-circuit: the masked-popcount
        kills (empty, memory, ungroupable) run on the packed words for
        the whole batch; the port-count and convexity matrix ops then
        run only over the surviving subset.
        """
        tables = self._batch_tables()
        rows = np.ascontiguousarray(rows)
        ok = rows.any(axis=1)
        ok &= ~np.bitwise_and(rows, tables["memory_row"]).any(axis=1)
        ok &= ~np.bitwise_and(rows, tables["ungroupable_row"]).any(axis=1)
        alive = np.flatnonzero(ok)
        if not len(alive):
            return ok
        sub = rows[alive]
        bools = self.unpack_rows(sub)
        n_in = self._in_count_rows(bools, tables)
        n_out = self._out_count_rows(bools, tables)
        ports = (n_in <= constraints.n_in) & (n_out <= constraints.n_out)
        ok[alive[~ports]] = False
        alive = alive[ports]
        if len(alive):
            ok[alive] = self.convex_rows(rows[alive])
        return ok
