"""Analyses over DFGs: I/O counting, convexity, ASAP/ALAP, critical path.

These implement the formal side of §4.2 (the constraints every ISE must
observe) and the timing quantities the merit function consumes
(critical-path membership, slack windows).
"""

import networkx as nx

from ..errors import ConstraintError


# -- §4.2: IN(S) / OUT(S) ----------------------------------------------------

def input_values(dfg, members):
    """The set of distinct values subgraph ``members`` reads from outside.

    Counts external block inputs of member nodes plus values flowing in
    over data edges from non-member producers.  ``IN(S)`` of §4.2 is the
    size of this set.
    """
    members = set(members)
    values = set()
    for uid in members:
        values.update(dfg.external_inputs(uid))
        for pred in dfg.data_predecessors(uid):
            if pred not in members:
                values.update(dfg.graph.edges[pred, uid]["values"])
    return values


def output_values(dfg, members):
    """The set of distinct values ``members`` produces for the outside.

    A member's value escapes when a non-member consumes it over a data
    edge or when the member is an output node of the block.  ``OUT(S)``
    of §4.2 is the size of this set.
    """
    members = set(members)
    values = set()
    for uid in members:
        operation = dfg.op(uid)
        escapes = dfg.is_output(uid)
        if not escapes:
            for succ in dfg.data_successors(uid):
                if succ not in members:
                    escapes = True
                    break
        if escapes and operation.dests:
            values.update(operation.dests)
    return values


def is_convex(dfg, members):
    """§4.2 convexity: no path between two members leaves the subgraph.

    Equivalent check: no non-member node is simultaneously reachable
    *from* a member and an ancestor *of* a member.
    """
    members = set(members)
    if len(members) <= 1:
        return True
    reachable_from_s = set()
    for uid in members:
        for succ in dfg.successors(uid):
            if succ not in members:
                reachable_from_s.add(succ)
    # Forward closure of the escape frontier.
    frontier = list(reachable_from_s)
    while frontier:
        node = frontier.pop()
        for succ in dfg.successors(node):
            if succ not in reachable_from_s:
                reachable_from_s.add(succ)
                frontier.append(succ)
    # Convex iff the closure never re-enters S.
    return not any(node in members for node in reachable_from_s)


def violates_memory_rule(dfg, members):
    """True when the subgraph contains a load/store (§4.2 rule 4)."""
    return any(dfg.op(uid).is_memory for uid in members)


def check_candidate(dfg, members, constraints):
    """Raise :class:`~repro.errors.ConstraintError` when S is illegal."""
    if not members:
        raise ConstraintError("empty candidate")
    if violates_memory_rule(dfg, members):
        raise ConstraintError("candidate contains memory operations")
    if any(not dfg.op(uid).groupable for uid in members):
        raise ConstraintError("candidate contains ungroupable operations")
    n_in = len(input_values(dfg, members))
    if n_in > constraints.n_in:
        raise ConstraintError(
            "IN(S)={} exceeds Nin={}".format(n_in, constraints.n_in))
    n_out = len(output_values(dfg, members))
    if n_out > constraints.n_out:
        raise ConstraintError(
            "OUT(S)={} exceeds Nout={}".format(n_out, constraints.n_out))
    if not is_convex(dfg, members):
        raise ConstraintError("candidate is not convex")


def is_legal(dfg, members, constraints):
    """Boolean form of :func:`check_candidate`."""
    try:
        check_candidate(dfg, members, constraints)
    except ConstraintError:
        return False
    return True


# -- timing: ASAP / ALAP / critical path ------------------------------------

def asap_schedule(dfg, latency_of):
    """Unconstrained as-soon-as-possible start cycles.

    ``latency_of(uid)`` gives whole-cycle latencies.  Returns a dict
    uid → start cycle (0-based).
    """
    start = {}
    for uid in nx.topological_sort(dfg.graph):
        earliest = 0
        for pred in dfg.predecessors(uid):
            earliest = max(earliest, start[pred] + latency_of(pred))
        start[uid] = earliest
    return start


def alap_schedule(dfg, latency_of, horizon=None):
    """Unconstrained as-late-as-possible start cycles.

    ``horizon`` is the schedule length in cycles; defaults to the ASAP
    makespan so that critical operations get zero slack.
    """
    asap = asap_schedule(dfg, latency_of)
    if horizon is None:
        horizon = schedule_length(dfg, asap, latency_of)
    start = {}
    for uid in reversed(list(nx.topological_sort(dfg.graph))):
        latest = horizon - latency_of(uid)
        for succ in dfg.successors(uid):
            latest = min(latest, start[succ] - latency_of(uid))
        start[uid] = latest
    return start


def schedule_length(dfg, start, latency_of):
    """Makespan in cycles of a start-cycle assignment."""
    if not start:
        return 0
    return max(cycle + latency_of(uid) for uid, cycle in start.items())


def slack(dfg, latency_of, horizon=None):
    """Per-node slack = ALAP − ASAP start cycle."""
    asap = asap_schedule(dfg, latency_of)
    alap = alap_schedule(dfg, latency_of, horizon=horizon)
    return {uid: alap[uid] - asap[uid] for uid in asap}


def critical_nodes(dfg, latency_of, horizon=None):
    """Nodes with zero slack — the critical path(s) of the DFG."""
    return {uid for uid, s in slack(dfg, latency_of, horizon=horizon).items()
            if s <= 0}


def longest_path_cycles(dfg, latency_of):
    """Length in cycles of the longest dependence chain."""
    asap = asap_schedule(dfg, latency_of)
    return schedule_length(dfg, asap, latency_of)
