"""Analyses over DFGs: I/O counting, convexity, ASAP/ALAP, critical path.

These implement the formal side of §4.2 (the constraints every ISE must
observe) and the timing quantities the merit function consumes
(critical-path membership, slack windows).
"""

import networkx as nx

from ..errors import ConstraintError
from .bitset import bitset_view


# -- §4.2: IN(S) / OUT(S) ----------------------------------------------------

def input_values(dfg, members):
    """The set of distinct values subgraph ``members`` reads from outside.

    Counts external block inputs of member nodes plus values flowing in
    over data edges from non-member producers.  ``IN(S)`` of §4.2 is the
    size of this set.
    """
    members = set(members)
    values = set()
    for uid in members:
        values.update(dfg.external_inputs(uid))
        for pred in dfg.data_predecessors(uid):
            if pred not in members:
                values.update(dfg.graph.edges[pred, uid]["values"])
    return values


def output_values(dfg, members):
    """The set of distinct values ``members`` produces for the outside.

    A member's value escapes when a non-member consumes it over a data
    edge or when the member is an output node of the block.  ``OUT(S)``
    of §4.2 is the size of this set.
    """
    members = set(members)
    values = set()
    for uid in members:
        operation = dfg.op(uid)
        escapes = dfg.is_output(uid)
        if not escapes:
            for succ in dfg.data_successors(uid):
                if succ not in members:
                    escapes = True
                    break
        if escapes and operation.dests:
            values.update(operation.dests)
    return values


class _IODelta:
    """One previewed membership addition of a :class:`SubgraphIOTracker`.

    Carries the would-be ``IN``/``OUT`` sizes plus everything needed to
    commit the addition without recomputing it.
    """

    __slots__ = ("uid", "n_in", "n_out", "delta_in", "delta_out",
                 "escapes", "stops_escaping", "succ_members")

    def __init__(self, uid, n_in, n_out, delta_in, delta_out,
                 escapes, stops_escaping, succ_members):
        self.uid = uid
        self.n_in = n_in
        self.n_out = n_out
        self.delta_in = delta_in
        self.delta_out = delta_out
        self.escapes = escapes
        self.stops_escaping = stops_escaping
        self.succ_members = succ_members


class SubgraphIOTracker:
    """Incremental ``IN(S)``/``OUT(S)`` sizes of a growing member set.

    Mirrors :func:`input_values`/:func:`output_values` exactly, but
    updates in O(degree) per added member instead of rebuilding from the
    whole set: per value name it counts *contributions* — (member,
    crossing edge) pairs and external block inputs for ``IN``, escaping
    producers for ``OUT`` — so names defined by several producers (the
    DFG is not SSA) stay counted while any external source remains.

    :meth:`preview_add` computes the grown sizes without mutating, so a
    caller (cluster fusion in the iteration scheduler) can reject the
    growth and keep the tracker valid; :meth:`commit` applies a
    previously previewed delta.
    """

    __slots__ = ("dfg", "members", "_in_count", "_out_count", "_escaping",
                 "n_in", "n_out")

    def __init__(self, dfg):
        self.dfg = dfg
        self.members = set()
        self._in_count = {}       # value -> #external contributions
        self._out_count = {}      # value -> #escaping producers
        self._escaping = set()
        self.n_in = 0
        self.n_out = 0

    def _escapes(self, uid, members):
        """True when ``uid``'s value must leave ``members`` (§4.2 OUT)."""
        dfg = self.dfg
        if dfg.is_output(uid):
            return True
        return any(succ not in members for succ in dfg.data_successors(uid))

    def _escapes_grown(self, uid, added):
        """:meth:`_escapes` against ``members | {added}`` without building
        the grown set (previews run per fusion probe, mostly rejected)."""
        dfg = self.dfg
        if dfg.is_output(uid):
            return True
        members = self.members
        return any(succ != added and succ not in members
                   for succ in dfg.data_successors(uid))

    def preview_add(self, uid, n_in_limit=None):
        """Sizes of IN/OUT after adding ``uid``, without committing.

        ``n_in_limit`` enables the caller's own reject test to run
        early: when the grown ``IN`` size already exceeds it, the
        (costlier) ``OUT`` half is skipped and ``None`` is returned —
        join probes are mostly rejected, and mostly on ``IN``.
        """
        dfg = self.dfg
        members = self.members
        edges = dfg.graph.edges
        # IN: edges uid -> member stop crossing; uid's own external
        # inputs and crossing in-edges start counting.
        delta_in = {}
        succ_members = []
        for succ in dfg.data_successors(uid):
            if succ in members:
                succ_members.append(succ)
                for value in edges[uid, succ]["values"]:
                    delta_in[value] = delta_in.get(value, 0) - 1
        for value in dfg.external_inputs(uid):
            delta_in[value] = delta_in.get(value, 0) + 1
        for pred in dfg.data_predecessors(uid):
            if pred not in members:
                for value in edges[pred, uid]["values"]:
                    delta_in[value] = delta_in.get(value, 0) + 1
        n_in = self.n_in
        for value, delta in delta_in.items():
            old = self._in_count.get(value, 0)
            new = old + delta
            if old > 0 and new <= 0:
                n_in -= 1
            elif old <= 0 and new > 0:
                n_in += 1
        if n_in_limit is not None and n_in > n_in_limit:
            return None
        # OUT: uid may escape; member data-predecessors of uid may stop
        # escaping (uid was their last outside consumer).
        delta_out = {}
        escapes = self._escapes_grown(uid, uid)
        if escapes:
            for value in dfg.op(uid).dests:
                delta_out[value] = delta_out.get(value, 0) + 1
        stops_escaping = []
        for pred in dfg.data_predecessors(uid):
            if pred in self._escaping and not self._escapes_grown(pred, uid):
                stops_escaping.append(pred)
                for value in dfg.op(pred).dests:
                    delta_out[value] = delta_out.get(value, 0) - 1
        n_out = self.n_out
        for value, delta in delta_out.items():
            old = self._out_count.get(value, 0)
            new = old + delta
            if old > 0 and new <= 0:
                n_out -= 1
            elif old <= 0 and new > 0:
                n_out += 1
        return _IODelta(uid, n_in, n_out, delta_in, delta_out,
                        escapes, stops_escaping, succ_members)

    def commit(self, delta):
        """Apply a delta produced by :meth:`preview_add`."""
        for value, change in delta.delta_in.items():
            new = self._in_count.get(value, 0) + change
            if new:
                self._in_count[value] = new
            else:
                self._in_count.pop(value, None)
        for value, change in delta.delta_out.items():
            new = self._out_count.get(value, 0) + change
            if new:
                self._out_count[value] = new
            else:
                self._out_count.pop(value, None)
        if delta.escapes:
            self._escaping.add(delta.uid)
        for uid in delta.stops_escaping:
            self._escaping.discard(uid)
        self.members.add(delta.uid)
        self.n_in = delta.n_in
        self.n_out = delta.n_out

    def add(self, uid):
        """Preview-and-commit in one step; returns the applied delta."""
        delta = self.preview_add(uid)
        self.commit(delta)
        return delta

    def clone(self):
        """Independent copy sharing only the (immutable) DFG.

        The batched ant runner opens every singleton cluster from a
        per-operation template tracker: one :meth:`add` walk at set-up,
        then a cheap state copy per actual open instead of re-walking
        the operation's edges for every ant.
        """
        other = SubgraphIOTracker.__new__(SubgraphIOTracker)
        other.dfg = self.dfg
        other.members = set(self.members)
        other._in_count = dict(self._in_count)
        other._out_count = dict(self._out_count)
        other._escaping = set(self._escaping)
        other.n_in = self.n_in
        other.n_out = self.n_out
        return other


def io_counts(dfg, members):
    """``(|IN(S)|, |OUT(S)|)`` port counts of a membership set.

    The size-only form of :func:`input_values`/:func:`output_values`:
    callers that never look at the value *names* (constraint checks,
    merit shaping, legalisation) go through the packed bitset kernel
    when it is enabled and fall back to the set-based reference
    otherwise — the counts are identical either way.
    """
    view = bitset_view(dfg)
    if view is not None:
        return view.io_counts(members)
    return (len(input_values(dfg, members)),
            len(output_values(dfg, members)))


def is_convex(dfg, members):
    """§4.2 convexity: no path between two members leaves the subgraph.

    Equivalent check: no non-member node is simultaneously reachable
    *from* a member and an ancestor *of* a member.  Dispatches to the
    packed closure-row kernel (:mod:`repro.graph.bitset`) when enabled;
    :func:`is_convex_reference` is the set-based oracle.
    """
    view = bitset_view(dfg)
    if view is not None:
        return view.is_convex(members)
    return is_convex_reference(dfg, members)


def is_convex_reference(dfg, members):
    """Set-based reference convexity check (the bitset kernel's oracle)."""
    members = set(members)
    if len(members) <= 1:
        return True
    reachable_from_s = set()
    for uid in members:
        for succ in dfg.successors(uid):
            if succ not in members:
                reachable_from_s.add(succ)
    # Forward closure of the escape frontier.
    frontier = list(reachable_from_s)
    while frontier:
        node = frontier.pop()
        for succ in dfg.successors(node):
            if succ not in reachable_from_s:
                reachable_from_s.add(succ)
                frontier.append(succ)
    # Convex iff the closure never re-enters S.
    return not any(node in members for node in reachable_from_s)


def violates_memory_rule(dfg, members):
    """True when the subgraph contains a load/store (§4.2 rule 4)."""
    return any(dfg.op(uid).is_memory for uid in members)


def check_candidate(dfg, members, constraints):
    """Raise :class:`~repro.errors.ConstraintError` when S is illegal.

    Dispatches to the packed kernel when enabled — same check order,
    same error messages; :func:`check_candidate_reference` stays as the
    set-based oracle.
    """
    view = bitset_view(dfg)
    if view is not None:
        view.check_candidate(members, constraints)
        return
    check_candidate_reference(dfg, members, constraints)


def check_candidate_reference(dfg, members, constraints):
    """Set-based reference legality check (the bitset kernel's oracle)."""
    if not members:
        raise ConstraintError("empty candidate")
    if violates_memory_rule(dfg, members):
        raise ConstraintError("candidate contains memory operations")
    if any(not dfg.op(uid).groupable for uid in members):
        raise ConstraintError("candidate contains ungroupable operations")
    n_in = len(input_values(dfg, members))
    if n_in > constraints.n_in:
        raise ConstraintError(
            "IN(S)={} exceeds Nin={}".format(n_in, constraints.n_in))
    n_out = len(output_values(dfg, members))
    if n_out > constraints.n_out:
        raise ConstraintError(
            "OUT(S)={} exceeds Nout={}".format(n_out, constraints.n_out))
    if not is_convex_reference(dfg, members):
        raise ConstraintError("candidate is not convex")


def is_legal(dfg, members, constraints):
    """Boolean form of :func:`check_candidate`."""
    view = bitset_view(dfg)
    if view is not None:
        return view.is_legal(members, constraints)
    return is_legal_reference(dfg, members, constraints)


def is_legal_reference(dfg, members, constraints):
    """Boolean form of :func:`check_candidate_reference` (the oracle)."""
    try:
        check_candidate_reference(dfg, members, constraints)
    except ConstraintError:
        return False
    return True


# -- timing: ASAP / ALAP / critical path ------------------------------------

def asap_schedule(dfg, latency_of):
    """Unconstrained as-soon-as-possible start cycles.

    ``latency_of(uid)`` gives whole-cycle latencies.  Returns a dict
    uid → start cycle (0-based).
    """
    start = {}
    for uid in nx.topological_sort(dfg.graph):
        earliest = 0
        for pred in dfg.predecessors(uid):
            earliest = max(earliest, start[pred] + latency_of(pred))
        start[uid] = earliest
    return start


def alap_schedule(dfg, latency_of, horizon=None, asap=None):
    """Unconstrained as-late-as-possible start cycles.

    ``horizon`` is the schedule length in cycles; defaults to the ASAP
    makespan so that critical operations get zero slack.  The ASAP
    schedule is only needed to derive that default — an explicit
    ``horizon`` skips it entirely, and a caller that already holds the
    ASAP dict can thread it through via ``asap`` instead of having it
    recomputed.
    """
    if horizon is None:
        if asap is None:
            asap = asap_schedule(dfg, latency_of)
        horizon = schedule_length(dfg, asap, latency_of)
    start = {}
    for uid in reversed(list(nx.topological_sort(dfg.graph))):
        latest = horizon - latency_of(uid)
        for succ in dfg.successors(uid):
            latest = min(latest, start[succ] - latency_of(uid))
        start[uid] = latest
    return start


def schedule_length(dfg, start, latency_of):
    """Makespan in cycles of a start-cycle assignment."""
    if not start:
        return 0
    return max(cycle + latency_of(uid) for uid, cycle in start.items())


def slack(dfg, latency_of, horizon=None):
    """Per-node slack = ALAP − ASAP start cycle.

    ASAP is computed once and threaded into :func:`alap_schedule`
    (which previously recomputed it to derive the default horizon).
    """
    asap = asap_schedule(dfg, latency_of)
    alap = alap_schedule(dfg, latency_of, horizon=horizon, asap=asap)
    return {uid: alap[uid] - asap[uid] for uid in asap}


def critical_nodes(dfg, latency_of, horizon=None):
    """Nodes with zero slack — the critical path(s) of the DFG."""
    return {uid for uid, s in slack(dfg, latency_of, horizon=horizon).items()
            if s <= 0}


def longest_path_cycles(dfg, latency_of):
    """Length in cycles of the longest dependence chain."""
    asap = asap_schedule(dfg, latency_of)
    return schedule_length(dfg, asap, latency_of)
