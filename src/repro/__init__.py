"""Instruction Set Extension Exploration in Multiple-Issue Architectures.

A full reproduction of the DATE 2008 paper (and the NCTU thesis it is
based on): an ant-colony-optimisation ISE exploration algorithm that is
aware of the multi-issue schedule's critical path, plus every substrate
the evaluation needs — a PISA-like ISA model, a small compiler (IR,
-O0/-O3 pipelines, interpreter/profiler), the Table 5.1.1 hardware
database, a multi-issue list scheduler, the complete ISE design flow
(explore -> merge -> select/share -> replace -> schedule), the
SI/greedy/exact comparators, the seven benchmark kernels, and the
chapter-5 experiment harness.

Quickstart::

    from repro import MachineConfig, ISEDesignFlow, get_workload

    program, args = get_workload("crc32").build()
    flow = ISEDesignFlow(MachineConfig(2, "4/2"))
    report = flow.run(program, args=args, opt_level="O3")
    print(report)          # cycles, reduction, selected ISEs, area
"""

from .config import (
    DEFAULT_CONSTRAINTS,
    DEFAULT_PARAMS,
    ExplorationParams,
    ISEConstraints,
)
from .errors import ReproError
from .hwlib import DEFAULT_DATABASE, DEFAULT_TECHNOLOGY, Technology
from .sched import MachineConfig, paper_machines
from .core import (
    ISECandidate,
    ISEDesignFlow,
    MultiIssueExplorer,
)
from .baselines import ExactExplorer, GreedyExplorer, SingleIssueExplorer
from .workloads import all_workloads, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONSTRAINTS",
    "DEFAULT_DATABASE",
    "DEFAULT_PARAMS",
    "DEFAULT_TECHNOLOGY",
    "ExactExplorer",
    "ExplorationParams",
    "GreedyExplorer",
    "ISECandidate",
    "ISEConstraints",
    "ISEDesignFlow",
    "MachineConfig",
    "MultiIssueExplorer",
    "ReproError",
    "SingleIssueExplorer",
    "Technology",
    "all_workloads",
    "get_workload",
    "paper_machines",
    "workload_names",
]
