"""Instruction Set Extension Exploration in Multiple-Issue Architectures.

A full reproduction of the DATE 2008 paper (and the NCTU thesis it is
based on): an ant-colony-optimisation ISE exploration algorithm that is
aware of the multi-issue schedule's critical path, plus every substrate
the evaluation needs — a PISA-like ISA model, a small compiler (IR,
-O0/-O3 pipelines, interpreter/profiler), the Table 5.1.1 hardware
database, a multi-issue list scheduler, the complete ISE design flow
(explore -> merge -> select/share -> replace -> schedule), the
SI/greedy/exact comparators, the seven benchmark kernels, and the
chapter-5 experiment harness.

Quickstart — the stable public API (:mod:`repro.api`)::

    from repro import explore, evaluate

    result = explore("crc32", issue=2, ports="4/2", seed=42)
    best = evaluate(result, max_area=80_000)
    print(best.reduction, best.ises)

The engine classes (:class:`ISEDesignFlow` & co.) remain importable for
advanced use, and every run can stream a JSON-lines observability trace
(``explore(..., trace="run.jsonl")``; see :mod:`repro.obs`).
"""

from .config import (
    DEFAULT_CONSTRAINTS,
    DEFAULT_PARAMS,
    ExplorationParams,
    ISEConstraints,
)
from .errors import ReproError
from .hwlib import DEFAULT_DATABASE, DEFAULT_TECHNOLOGY, Technology
from .sched import MachineConfig, paper_machines
from .core import (
    ISECandidate,
    ISEDesignFlow,
    MultiIssueExplorer,
)
from .baselines import ExactExplorer, GreedyExplorer, SingleIssueExplorer
from .workloads import all_workloads, get_workload, workload_names
from .obs import (
    NULL_OBSERVER,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    Observer,
    ProgressSink,
)
from . import engines
from .api import (
    ExploreResult,
    SelectionResult,
    ServiceClient,
    ServiceError,
    evaluate,
    explore,
    list_engines,
    serve,
    shutdown_pools,
    sweep,
)
from .dist.sweep import SweepResult, SweepRow, merge_sweeps

__version__ = "1.1.0"

__all__ = [
    "DEFAULT_CONSTRAINTS",
    "DEFAULT_DATABASE",
    "DEFAULT_PARAMS",
    "DEFAULT_TECHNOLOGY",
    "ExactExplorer",
    "ExplorationParams",
    "ExploreResult",
    "GreedyExplorer",
    "ISECandidate",
    "ISEConstraints",
    "ISEDesignFlow",
    "JsonlSink",
    "MachineConfig",
    "MemorySink",
    "MetricsRegistry",
    "MultiIssueExplorer",
    "NULL_OBSERVER",
    "Observer",
    "ProgressSink",
    "ReproError",
    "SelectionResult",
    "ServiceClient",
    "ServiceError",
    "SingleIssueExplorer",
    "SweepResult",
    "SweepRow",
    "Technology",
    "all_workloads",
    "engines",
    "evaluate",
    "explore",
    "get_workload",
    "list_engines",
    "merge_sweeps",
    "paper_machines",
    "serve",
    "shutdown_pools",
    "sweep",
    "workload_names",
]
