"""Counters, gauges and timers for the observability layer.

A :class:`MetricsRegistry` is a plain in-process aggregate — no
background threads, no sampling.  Counters add, gauges overwrite,
timers accumulate ``(count, total seconds)``.  Registries merge, which
is how worker-side measurements folded through the capture buffer end
up in the parent's registry.
"""


class MetricsRegistry:
    """Aggregated counters / gauges / timers."""

    __slots__ = ("counters", "gauges", "timers")

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.timers = {}          # name -> [count, total_seconds]

    def count(self, name, n=1):
        """Add ``n`` to counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name, value):
        """Set gauge ``name`` to its latest ``value``."""
        self.gauges[name] = value

    def time(self, name, seconds):
        """Fold one measured duration into timer ``name``."""
        entry = self.timers.get(name)
        if entry is None:
            entry = self.timers[name] = [0, 0.0]
        entry[0] += 1
        entry[1] += seconds

    def snapshot(self):
        """JSON-able copy of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {name: {"count": entry[0],
                              "total_s": round(entry[1], 6)}
                       for name, entry in self.timers.items()},
        }

    def merge(self, snapshot):
        """Fold another registry's :meth:`snapshot` into this one."""
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, entry in snapshot.get("timers", {}).items():
            timer = self.timers.get(name)
            if timer is None:
                timer = self.timers[name] = [0, 0.0]
            timer[0] += entry["count"]
            timer[1] += entry["total_s"]

    def render(self):
        """Human-readable multi-line summary (``--metrics`` output)."""
        lines = []
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append("  {:40s} {}".format(name, self.counters[name]))
        if self.gauges:
            lines.append("gauges:")
            for name in sorted(self.gauges):
                lines.append("  {:40s} {}".format(name, self.gauges[name]))
        if self.timers:
            lines.append("timers:")
            for name in sorted(self.timers):
                count, total = self.timers[name]
                mean = total / count if count else 0.0
                lines.append(
                    "  {:40s} {:6d} calls  {:9.3f}s total  {:9.4f}s mean"
                    .format(name, count, total, mean))
        if not lines:
            lines.append("(no metrics recorded)")
        return "\n".join(lines)

    def __repr__(self):
        return "MetricsRegistry({} counters, {} gauges, {} timers)".format(
            len(self.counters), len(self.gauges), len(self.timers))
