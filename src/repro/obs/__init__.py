"""Observability for the ACO engine: events, metrics, trace sinks.

The engine reports everything through one :class:`Observer` — trace
events (rounds, iterations, P_END trajectory, cache I/O), counters
(Ready-Matrix rebuilds, grouping-memo and exploration-cache hits) and
wall-clock timers — delivered to pluggable sinks.  The default is
:data:`NULL_OBSERVER`, a falsy no-op, so uninstrumented runs pay one
boolean check per hook site and produce bit-identical results.

Typical use through the public facade::

    from repro import explore

    result = explore("crc32", profile="quick", trace="crc32.jsonl")

or directly::

    from repro.obs import Observer, MemorySink

    sink = MemorySink()
    obs = Observer(sinks=[sink])
    flow = ISEDesignFlow(machine, obs=obs)

See docs/OBSERVABILITY.md for the event schema and overhead numbers.
"""

from .events import Event
from .metrics import MetricsRegistry
from .observer import NULL_OBSERVER, NullObserver, Observer, ensure_observer
from .sinks import CallbackSink, JsonlSink, MemorySink, ProgressSink
from .trace import load_trace, render_summary, summarize_trace

__all__ = [
    "CallbackSink",
    "Event",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "ProgressSink",
    "ensure_observer",
    "load_trace",
    "render_summary",
    "summarize_trace",
]
