"""Reading trace files back: the ``repro metrics`` subcommand's core.

A trace file is JSON lines written by :class:`~repro.obs.sinks.JsonlSink`
— one record per event, ``seq`` ascending.  :func:`summarize_trace`
folds a record stream into a compact dict and :func:`render_summary`
pretty-prints it.
"""

import json

from ..errors import ReproError


def load_trace(path):
    """Parse one JSON-lines trace file into a list of records."""
    records = []
    try:
        with open(path) as handle:
            for number, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    raise ReproError(
                        "malformed trace line {} in {}".format(
                            number, path)) from None
    except OSError as error:
        raise ReproError("cannot read trace {}: {}".format(
            path, error)) from None
    return records


def summarize_trace(records):
    """Aggregate a record stream into a summary dict.

    Keys: ``events`` (total), ``engine`` (registry name recorded by the
    flow header events, or ``None`` for pre-engine traces), ``kinds``
    (kind → count), ``blocks``
    (per-block base/final cycles), ``rounds`` / ``iterations`` totals,
    ``p_end`` (first/last convergence floor seen), ``cache`` (hit /
    miss / store counts), ``evaluate`` (last flow.evaluate payload),
    ``metrics`` (last registry snapshot, when the trace has one),
    ``pool`` (the ``pool.*`` counters/gauges of that snapshot — worker
    pool dispatches, steals, broadcast bytes, occupancy — or ``None``
    for serial runs), ``remote`` (``remote.*`` counters of the remote
    evalcache tier, or ``None`` when no server was configured) and
    ``sweep`` (``sweep.*`` counters plus the last ``sweep.done``
    payload, or ``None`` outside sweep runs).
    """
    kinds = {}
    blocks = []
    rounds = 0
    iterations = 0
    first_floor = last_floor = None
    cache = {"hit": 0, "miss": 0, "store": 0}
    evaluate = None
    metrics = None
    engine = None
    sweep_done = None
    for record in records:
        kind = record.get("kind")
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind in ("flow.profile", "flow.explored") \
                and record.get("engine"):
            engine = record["engine"]
        if kind == "round":
            rounds += 1
        elif kind == "iteration":
            iterations += 1
            floor = record.get("min_sp")
            if floor is not None:
                if first_floor is None:
                    first_floor = floor
                last_floor = floor
        elif kind == "block":
            blocks.append({
                "block": "{}:{}".format(record.get("function"),
                                        record.get("label")),
                "base_cycles": record.get("base_cycles"),
                "final_cycles": record.get("final_cycles"),
                "candidates": record.get("candidates"),
            })
        elif kind == "cache":
            status = record.get("status")
            if record.get("op") == "store":
                cache["store"] += 1
            elif status in cache:
                cache[status] += 1
        elif kind == "flow.evaluate":
            evaluate = record
        elif kind == "metrics":
            metrics = record
        elif kind == "sweep.done":
            sweep_done = record
    pool = remote = sweep = None
    if metrics is not None:
        def section(prefix):
            return {name: value
                    for source in ("counters", "gauges")
                    for name, value in metrics.get(source, {}).items()
                    if name.startswith(prefix)} or None

        pool = section("pool.")
        remote = section("remote.")
        sweep = section("sweep.")
    if sweep_done is not None:
        sweep = dict(sweep or {})
        sweep["done"] = sweep_done
    return {
        "events": len(records),
        "engine": engine,
        "kinds": kinds,
        "blocks": blocks,
        "rounds": rounds,
        "iterations": iterations,
        "p_end": {"first": first_floor, "last": last_floor},
        "cache": cache,
        "evaluate": evaluate,
        "metrics": metrics,
        "pool": pool,
        "remote": remote,
        "sweep": sweep,
    }


def render_summary(summary):
    """Human-readable rendering of :func:`summarize_trace` output."""
    lines = ["trace: {} events".format(summary["events"])]
    if summary.get("engine"):
        lines.append("engine: {}".format(summary["engine"]))
    lines.append("events by kind:")
    for kind in sorted(summary["kinds"]):
        lines.append("  {:24s} {}".format(kind, summary["kinds"][kind]))
    if summary["blocks"]:
        lines.append("explored blocks:")
        for entry in summary["blocks"]:
            lines.append(
                "  {:24s} {} -> {} cycles ({} candidate(s))".format(
                    entry["block"], entry["base_cycles"],
                    entry["final_cycles"], entry["candidates"]))
    lines.append("rounds: {}   iterations: {}".format(
        summary["rounds"], summary["iterations"]))
    p_end = summary["p_end"]
    if p_end["first"] is not None:
        lines.append(
            "P_END trajectory (min selected probability): "
            "{:.4f} first -> {:.4f} last".format(
                p_end["first"], p_end["last"]))
    cache = summary["cache"]
    if any(cache.values()):
        lines.append("exploration cache: {} hit(s), {} miss(es), "
                     "{} store(s)".format(cache["hit"], cache["miss"],
                                          cache["store"]))
    pool = summary.get("pool")
    if pool:
        lines.append(
            "worker pool: {} dispatch(es), {} task(s), {} steal(s), "
            "{} broadcast byte(s)".format(
                pool.get("pool.dispatches", 0), pool.get("pool.tasks", 0),
                pool.get("pool.steals", 0),
                pool.get("pool.broadcast_bytes", 0)))
    remote = summary.get("remote")
    if remote:
        lines.append(
            "remote cache: {} hit(s), {} miss(es), {} put(s), "
            "{} error(s)".format(
                remote.get("remote.hits", 0),
                remote.get("remote.misses", 0),
                remote.get("remote.puts", 0),
                remote.get("remote.errors", 0)))
    sweep = summary.get("sweep")
    if sweep:
        done = sweep.get("done") or {}
        shard = ""
        if done.get("shard_index") is not None:
            shard = ", shard {}/{}".format(done["shard_index"],
                                           done["shard_count"])
        lines.append(
            "sweep: {} cell(s) run / {} skipped, {} row(s){}".format(
                sweep.get("sweep.cells_run", 0),
                sweep.get("sweep.cells_skipped", 0),
                sweep.get("sweep.rows", done.get("rows", 0)),
                shard))
    evaluate = summary["evaluate"]
    if evaluate is not None:
        lines.append(
            "final evaluation: {} -> {} cycles ({:.2%} reduction, "
            "{} ISE(s), {:.0f} um2)".format(
                evaluate.get("baseline_cycles"),
                evaluate.get("final_cycles"),
                evaluate.get("reduction", 0.0),
                evaluate.get("num_ises"), evaluate.get("area", 0.0)))
    metrics = summary["metrics"]
    if metrics is not None:
        counters = metrics.get("counters", {})
        if counters:
            lines.append("counters:")
            for name in sorted(counters):
                lines.append("  {:40s} {}".format(name, counters[name]))
        timers = metrics.get("timers", {})
        if timers:
            lines.append("timers:")
            for name in sorted(timers):
                entry = timers[name]
                lines.append("  {:40s} {:6d} calls  {:9.3f}s".format(
                    name, entry["count"], entry["total_s"]))
    return "\n".join(lines)
