"""Process-local capture buffer for worker-side observability.

Exploration fans out over a :class:`~concurrent.futures.ProcessPoolExecutor`
(:mod:`repro.core.parallel`); sinks (file handles, terminals) cannot
follow an observer across that boundary.  Instead, the pooled wrapper
installs a *capture buffer* in the worker before running the task:
every observer call in the worker appends a compact record to the
buffer, the records travel back with the task result, and the parent
observer replays them — in task order, which is exactly the serial fire
order — into its own sinks and metrics registry.

Records are plain tuples so they pickle cheaply:

* ``("event", kind, data_dict)``
* ``("count", name, n)``
* ``("gauge", name, value)``
* ``("timer", name, seconds)``
"""

#: The active capture buffer of this process (``None`` outside capture).
_BUFFER = None


def begin():
    """Install a fresh capture buffer; returns it."""
    global _BUFFER
    _BUFFER = []
    return _BUFFER


def end():
    """Remove the capture buffer; returns the captured records."""
    global _BUFFER
    records, _BUFFER = _BUFFER, None
    return records if records is not None else []


def active():
    """The current buffer, or ``None`` when not capturing."""
    return _BUFFER
