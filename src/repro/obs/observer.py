"""The observer: one object the whole engine reports through.

An :class:`Observer` owns a :class:`~repro.obs.metrics.MetricsRegistry`
and a list of sinks, and offers four verbs — :meth:`event`,
:meth:`count`, :meth:`gauge` and :meth:`timer`.  Everything in the
engine takes an observer (defaulting to :data:`NULL_OBSERVER`) and
guards its instrumentation with a truth test::

    if obs:
        obs.event("round", ...)

so the disabled path costs one boolean check per hook site — the
``<= 2%`` overhead contract of ``benchmarks/test_bench_obs_overhead.py``.

Process safety
--------------
Observers pickle *by configuration*: crossing into a pool worker they
drop their sinks and registry and keep only the enabled flag.  Inside a
worker the pooled wrapper (:func:`repro.core.parallel._captured_call`)
installs a :mod:`~repro.obs.capture` buffer; every verb then appends a
record to it instead of delivering locally.  The parent replays the
returned records in task order, which equals the serial fire order, so
sinks see the same stream no matter how many workers ran.
"""

import time

from . import capture
from .events import Event
from .metrics import MetricsRegistry


class _Timer:
    """Context manager measuring one wall-clock span into the registry."""

    __slots__ = ("_observer", "_name", "_start")

    def __init__(self, observer, name):
        self._observer = observer
        self._name = name
        self._start = None

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._observer._record_time(
            self._name, time.perf_counter() - self._start)
        return False


class _NullTimer:
    """Timer that measures nothing (disabled observer)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_TIMER = _NullTimer()


class Observer:
    """Delivers events to sinks and measurements to a registry."""

    def __init__(self, sinks=(), metrics=None, enabled=True):
        self.sinks = list(sinks)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.enabled = enabled
        self._seq = 0
        self._t0 = time.perf_counter()
        self._closed = False

    def __bool__(self):
        return self.enabled

    # -- the four verbs ----------------------------------------------------

    def event(self, kind, **data):
        """Emit one trace event (buffered when inside a pool worker)."""
        if not self.enabled:
            return
        buffer = capture.active()
        if buffer is not None:
            buffer.append(("event", kind, data))
            return
        self._deliver(kind, data)

    def count(self, name, n=1):
        """Add ``n`` to counter ``name``."""
        if not self.enabled or n == 0:
            return
        buffer = capture.active()
        if buffer is not None:
            buffer.append(("count", name, n))
            return
        self.metrics.count(name, n)

    def gauge(self, name, value):
        """Record the latest ``value`` of gauge ``name``."""
        if not self.enabled:
            return
        buffer = capture.active()
        if buffer is not None:
            buffer.append(("gauge", name, value))
            return
        self.metrics.gauge(name, value)

    def timer(self, name):
        """Context manager timing one span into timer ``name``."""
        if not self.enabled:
            return _NULL_TIMER
        return _Timer(self, name)

    # -- delivery / merge --------------------------------------------------

    def _deliver(self, kind, data):
        event = Event(kind, data, seq=self._seq,
                      t=time.perf_counter() - self._t0)
        self._seq += 1
        for sink in self.sinks:
            sink.handle(event)

    def _record_time(self, name, seconds):
        buffer = capture.active()
        if buffer is not None:
            buffer.append(("timer", name, seconds))
            return
        self.metrics.time(name, seconds)

    def replay(self, records):
        """Merge captured worker records, preserving their order."""
        if not self.enabled:
            return
        for record in records:
            verb, name, payload = record
            if verb == "event":
                self._deliver(name, payload)
            elif verb == "count":
                self.metrics.count(name, payload)
            elif verb == "gauge":
                self.metrics.gauge(name, payload)
            elif verb == "timer":
                self.metrics.time(name, payload)

    def close(self):
        """Emit the final ``metrics`` snapshot event and close sinks."""
        if self._closed:
            return
        self._closed = True
        if self.enabled:
            self._deliver("metrics", self.metrics.snapshot())
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if callable(close):
                close()

    # -- pickling (worker fan-out) ----------------------------------------

    def __getstate__(self):
        # Sinks hold file handles / terminals; workers only need to know
        # whether to record into the capture buffer at all.
        return {"enabled": self.enabled}

    def __setstate__(self, state):
        self.__init__(enabled=state.get("enabled", True))

    def __repr__(self):
        return "Observer({} sinks, {})".format(
            len(self.sinks), "enabled" if self.enabled else "disabled")


class NullObserver:
    """The default no-op observer: falsy, stateless, picklable.

    Every verb returns immediately; hook sites guarded with ``if obs:``
    never construct event payloads.  A single shared instance
    (:data:`NULL_OBSERVER`) is used everywhere so identity checks and
    pickling round-trips stay trivial.
    """

    __slots__ = ()

    #: Shared empty registry, for duck-typing only — never written to.
    metrics = MetricsRegistry()
    sinks = ()

    def __bool__(self):
        return False

    def event(self, kind, **data):
        """No-op."""

    def count(self, name, n=1):
        """No-op."""

    def gauge(self, name, value):
        """No-op."""

    def timer(self, name):
        """A timer that measures nothing."""
        return _NULL_TIMER

    def replay(self, records):
        """No-op."""

    def close(self):
        """No-op."""

    def __reduce__(self):
        return (_null_observer, ())

    def __repr__(self):
        return "NullObserver()"


#: The process-wide disabled observer.
NULL_OBSERVER = NullObserver()


def _null_observer():
    return NULL_OBSERVER


def ensure_observer(obs):
    """Normalise ``None`` to :data:`NULL_OBSERVER`."""
    return obs if obs is not None else NULL_OBSERVER
