"""Trace events: the atoms of the observability layer.

An :class:`Event` is a ``(kind, payload)`` pair plus bookkeeping the
observer assigns at delivery time — a monotonically increasing sequence
number (``seq``, the *fire order*) and a wall-clock offset (``t``,
seconds since the observer was created).  Payload values are plain
scalars/strings so every event serialises to one JSON line.

The schema is deliberately small and flat (see docs/OBSERVABILITY.md
for the full per-kind field tables):

=================  =====================================================
kind               emitted by
=================  =====================================================
``flow.profile``   :meth:`repro.core.flow.ISEDesignFlow.explore_application`
``flow.hot_block`` one per block chosen for exploration
``flow.explored``  exploration finished, candidates gathered
``flow.evaluate``  selection + replacement finished (final metrics)
``block``          best-of-restarts reduction of one basic block
``round``          one ACO round finished (Fig. 4.3.1)
``iteration``      one ant iteration (TET + P_END trajectory)
``cache``          :class:`repro.eval.persistence.ExplorationCache` I/O
``eval.cache_summary``  :meth:`repro.eval.runner.EvalContext.close`
``selftest``       one workload/opt-level check of ``repro selftest``
``metrics``        final registry snapshot (observer close)
=================  =====================================================
"""


class Event:
    """One observed occurrence, ordered by ``seq`` (fire order)."""

    __slots__ = ("seq", "kind", "data", "t")

    def __init__(self, kind, data, seq=-1, t=0.0):
        self.kind = kind
        self.data = dict(data)
        self.seq = seq
        self.t = t

    def identity(self):
        """Hashable ``(kind, payload)`` view, independent of timing.

        Parity tests compare event *multisets* across worker counts;
        ``seq``/``t`` are delivery facts, not identity.
        """
        return (self.kind, tuple(sorted(self.data.items())))

    def to_record(self):
        """Flat JSON-able dict (one trace-file line)."""
        record = {"seq": self.seq, "t": round(self.t, 6), "kind": self.kind}
        record.update(self.data)
        return record

    def __repr__(self):
        return "Event(#{} {} {})".format(self.seq, self.kind, self.data)
