"""Pluggable event sinks.

A sink is any object with ``handle(event)`` (and optionally
``close()``).  Three are provided:

* :class:`MemorySink` — in-process recorder, the test workhorse;
* :class:`JsonlSink` — one JSON object per line, the trace-file format
  read back by ``repro metrics`` (:mod:`repro.obs.trace`);
* :class:`ProgressSink` — human-readable one-liners for ``--progress``
  style monitoring of long explorations;
* :class:`CallbackSink` — forwards each event's JSON record to a
  callable, the bridge the exploration service uses to stream progress
  frames to subscribed clients.
"""

import json
import sys


class MemorySink:
    """Records every event in order; assertion-friendly views."""

    def __init__(self):
        self.events = []

    def handle(self, event):
        """Append one event."""
        self.events.append(event)

    def kinds(self):
        """Event kinds in fire order."""
        return [event.kind for event in self.events]

    def records(self):
        """JSON-able records in fire order."""
        return [event.to_record() for event in self.events]

    def identities(self):
        """Timing-independent (kind, payload) views in fire order."""
        return [event.identity() for event in self.events]

    def of_kind(self, kind):
        """The events of one kind, in fire order."""
        return [event for event in self.events if event.kind == kind]

    def clear(self):
        """Forget every recorded event."""
        self.events = []

    def close(self):
        """No-op (nothing to release)."""

    def __len__(self):
        return len(self.events)


class JsonlSink:
    """Appends one JSON line per event to ``path``.

    The file opens lazily on the first event and closes with the
    observer; non-JSON-able payload values degrade to ``repr`` rather
    than failing the run that produced them.
    """

    def __init__(self, path):
        self.path = path
        self._handle = None

    def handle(self, event):
        """Write one event as one JSON line."""
        if self._handle is None:
            self._handle = open(self.path, "w")
        json.dump(event.to_record(), self._handle, sort_keys=True,
                  default=repr)
        self._handle.write("\n")

    def close(self):
        """Flush and close the trace file (if it was ever opened)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class ProgressSink:
    """Renders the coarse-grained events as human one-liners.

    Iteration events are deliberately skipped — a full run emits
    thousands; rounds, blocks and flow milestones are the useful
    cadence for a terminal.
    """

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stderr

    def handle(self, event):
        """Write the event's one-liner, if its kind has one."""
        line = self._format(event)
        if line is not None:
            self.stream.write(line + "\n")

    @staticmethod
    def _format(event):
        kind, data = event.kind, event.data
        if kind == "flow.profile":
            return "[obs] profiled {}: {} blocks ({} explorable)".format(
                data.get("program"), data.get("blocks"),
                data.get("explorable"))
        if kind == "flow.hot_block":
            return "[obs] hot block {}:{} ({} ops, weight {})".format(
                data.get("function"), data.get("label"),
                data.get("nodes"), data.get("weight"))
        if kind == "round":
            return ("[obs] {}:{} r{} round {}: {} iterations, "
                    "best TET {}{}".format(
                        data.get("function"), data.get("label"),
                        data.get("restart"), data.get("round"),
                        data.get("iterations"), data.get("tet_best"),
                        ", converged" if data.get("converged") else ""))
        if kind == "block":
            return ("[obs] block {}:{} done: {} -> {} cycles, "
                    "{} candidate(s)".format(
                        data.get("function"), data.get("label"),
                        data.get("base_cycles"), data.get("final_cycles"),
                        data.get("candidates")))
        if kind == "flow.evaluate":
            return ("[obs] evaluate: {} -> {} cycles ({:.2%}), "
                    "{} ISE(s), {:.0f} um2".format(
                        data.get("baseline_cycles"),
                        data.get("final_cycles"),
                        data.get("reduction", 0.0),
                        data.get("num_ises"), data.get("area", 0.0)))
        if kind == "cache":
            return "[obs] cache {}: {}".format(
                data.get("op"), data.get("status", data.get("key")))
        return None

    def close(self):
        """No-op (the stream is caller-owned)."""


class CallbackSink:
    """Forwards each event's JSON-able record to ``callback(record)``.

    ``iteration`` events are skipped by default (a full exploration
    emits thousands; rounds/blocks/flow milestones are the cadence a
    remote subscriber wants) — pass ``skip_kinds=()`` to forward
    everything.  Callback exceptions are swallowed: a slow or broken
    subscriber must never fail the exploration it watches.
    """

    def __init__(self, callback, skip_kinds=("iteration",)):
        self.callback = callback
        self.skip_kinds = frozenset(skip_kinds)
        self.forwarded = 0
        self.errors = 0

    def handle(self, event):
        """Forward one event's record (best-effort)."""
        if event.kind in self.skip_kinds:
            return
        try:
            self.callback(event.to_record())
            self.forwarded += 1
        except Exception:
            self.errors += 1

    def close(self):
        """No-op (the callback target is caller-owned)."""
