"""IR interpreter with basic-block execution profiling.

The interpreter plays the role SimpleScalar/PISA plays in the thesis:
it executes workload programs with exact 32-bit wrap-around semantics
and records how often every basic block runs.  The resulting
:class:`Profile` feeds hot-block selection at the head of the ISE
design flow and weights per-block cycle counts into whole-program
execution time.
"""

from ..errors import InterpreterError, StepLimitExceeded, TrapError

_WORD_MASK = 0xFFFFFFFF


def _to_signed(value):
    value &= _WORD_MASK
    return value - 0x100000000 if value & 0x80000000 else value


def _to_unsigned(value):
    return value & _WORD_MASK


class Profile:
    """Dynamic execution counts per ``(function, block)``."""

    def __init__(self):
        self._counts = {}
        self.instructions_executed = 0

    def record(self, func_name, block_label, instr_count):
        """Count one execution of ``(func_name, block_label)``."""
        key = (func_name, block_label)
        self._counts[key] = self._counts.get(key, 0) + 1
        self.instructions_executed += instr_count

    def count(self, func_name, block_label):
        """Executions of one block."""
        return self._counts.get((func_name, block_label), 0)

    def items(self):
        """``((func, label), count)`` pairs, hottest first."""
        return sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))

    def merge(self, other):
        """Accumulate another profile into this one (multi-input runs)."""
        for key, count in other._counts.items():
            self._counts[key] = self._counts.get(key, 0) + count
        self.instructions_executed += other.instructions_executed
        return self

    def total(self):
        """Total basic-block executions recorded."""
        return sum(self._counts.values())

    def __repr__(self):
        return "Profile({} blocks, {} executions)".format(
            len(self._counts), self.total())


class Memory:
    """Sparse byte-addressable memory with little-endian words."""

    def __init__(self, image=None):
        self._bytes = dict(image) if image else {}

    def load_byte(self, addr):
        """Read one byte (unsigned) at ``addr``."""
        return self._bytes.get(addr & _WORD_MASK, 0)

    def store_byte(self, addr, value):
        """Write the low byte of ``value`` at ``addr``."""
        self._bytes[addr & _WORD_MASK] = value & 0xFF

    def load_word(self, addr):
        """Read a little-endian 32-bit word (4-aligned)."""
        if addr % 4:
            raise TrapError("unaligned word load at {:#x}".format(addr))
        return sum(self.load_byte(addr + i) << (8 * i) for i in range(4))

    def store_word(self, addr, value):
        """Write a little-endian 32-bit word (4-aligned)."""
        if addr % 4:
            raise TrapError("unaligned word store at {:#x}".format(addr))
        for i in range(4):
            self.store_byte(addr + i, (value >> (8 * i)) & 0xFF)

    def load_half(self, addr):
        """Read a little-endian 16-bit half (2-aligned)."""
        if addr % 2:
            raise TrapError("unaligned half load at {:#x}".format(addr))
        return self.load_byte(addr) | (self.load_byte(addr + 1) << 8)

    def store_half(self, addr, value):
        """Write a little-endian 16-bit half (2-aligned)."""
        if addr % 2:
            raise TrapError("unaligned half store at {:#x}".format(addr))
        self.store_byte(addr, value & 0xFF)
        self.store_byte(addr + 1, (value >> 8) & 0xFF)

    def words(self, addr, count):
        """Read ``count`` consecutive words (test/debug helper)."""
        return [self.load_word(addr + 4 * i) for i in range(count)]


class Interpreter:
    """Executes a :class:`~repro.ir.program.Program`.

    Parameters
    ----------
    program:
        The program to run.  Its data segment is loaded into a fresh
        memory at construction.
    step_limit:
        Maximum dynamic instruction count before
        :class:`~repro.errors.StepLimitExceeded` fires.
    """

    def __init__(self, program, step_limit=5_000_000):
        program.verify()
        self.program = program
        self.memory = Memory(program.data.image)
        self.profile = Profile()
        self.step_limit = int(step_limit)
        self._steps = 0

    def run(self, func_name=None, args=()):
        """Execute a function and return its (unsigned 32-bit) result."""
        func = (self.program.main if func_name is None
                else self.program.function(func_name))
        return self._call(func, [(_to_unsigned(a)) for a in args], depth=0)

    # -- execution engine ----------------------------------------------------

    def _call(self, func, args, depth):
        if depth > 64:
            raise InterpreterError("call depth exceeded in {}".format(func.name))
        if len(args) != len(func.params):
            raise InterpreterError(
                "{} expects {} args, got {}".format(
                    func.name, len(func.params), len(args)))
        regs = dict(zip(func.params, args))
        label = func.entry
        while True:
            block = func.block(label)
            self.profile.record(func.name, label, len(block.instructions))
            for instr in block.body:
                self._steps += 1
                if self._steps > self.step_limit:
                    raise StepLimitExceeded(
                        "exceeded {} steps".format(self.step_limit))
                if instr.is_call:
                    callee = self.program.function(instr.callee)
                    value = self._call(
                        callee, [self._read(regs, a, instr) for a in instr.args],
                        depth + 1)
                    regs[instr.dest] = value
                else:
                    self._execute(instr, regs)
            term = block.terminator
            self._steps += 1
            if self._steps > self.step_limit:
                raise StepLimitExceeded(
                    "exceeded {} steps".format(self.step_limit))
            if term.is_return:
                if term.sources:
                    return self._read(regs, term.sources[0], term)
                return 0
            label = self._branch_target(term, regs)

    def _branch_target(self, term, regs):
        if term.op == "j":
            return term.targets[0]
        taken, fallthrough = term.targets
        srcs = [self._read(regs, s, term) for s in term.sources]
        if term.op == "beq":
            cond = srcs[0] == srcs[1]
        elif term.op == "bne":
            cond = srcs[0] != srcs[1]
        elif term.op == "blez":
            cond = _to_signed(srcs[0]) <= 0
        elif term.op == "bgtz":
            cond = _to_signed(srcs[0]) > 0
        elif term.op == "bltz":
            cond = _to_signed(srcs[0]) < 0
        elif term.op == "bgez":
            cond = _to_signed(srcs[0]) >= 0
        else:
            raise InterpreterError("unknown branch {}".format(term.op))
        return taken if cond else fallthrough

    def _read(self, regs, name, instr):
        try:
            return regs[name]
        except KeyError:
            raise InterpreterError(
                "read of undefined register {!r} in {}".format(
                    name, instr.pretty())) from None

    def _execute(self, instr, regs):
        op = instr.op
        read = lambda name: self._read(regs, name, instr)
        if op in ("li", "lui"):
            value = instr.imm << 16 if op == "lui" else instr.imm
            regs[instr.dest] = _to_unsigned(value)
            return
        if op == "move":
            regs[instr.dest] = read(instr.sources[0])
            return
        if instr.is_load:
            addr = _to_unsigned(read(instr.sources[0]) + (instr.imm or 0))
            regs[instr.dest] = self._load(op, addr)
            return
        if instr.is_store:
            value = read(instr.sources[0])
            addr = _to_unsigned(read(instr.sources[1]) + (instr.imm or 0))
            self._store(op, addr, value)
            return
        regs[instr.dest] = self._alu(op, instr, read)

    def _load(self, op, addr):
        if op == "lw":
            return self.memory.load_word(addr)
        if op == "lhu":
            return self.memory.load_half(addr)
        if op == "lh":
            value = self.memory.load_half(addr)
            return _to_unsigned(value - 0x10000 if value & 0x8000 else value)
        if op == "lbu":
            return self.memory.load_byte(addr)
        if op == "lb":
            value = self.memory.load_byte(addr)
            return _to_unsigned(value - 0x100 if value & 0x80 else value)
        raise InterpreterError("unknown load {}".format(op))

    def _store(self, op, addr, value):
        if op == "sw":
            self.memory.store_word(addr, value)
        elif op == "sh":
            self.memory.store_half(addr, value)
        elif op == "sb":
            self.memory.store_byte(addr, value)
        else:
            raise InterpreterError("unknown store {}".format(op))

    def _alu(self, op, instr, read):
        a = read(instr.sources[0]) if instr.sources else 0
        if len(instr.sources) > 1:
            b = read(instr.sources[1])
        else:
            b = instr.imm if instr.imm is not None else 0
        if op in ("add", "addu", "addi", "addiu"):
            return _to_unsigned(a + b)
        if op in ("sub", "subu"):
            return _to_unsigned(a - b)
        if op == "mult":
            return _to_unsigned(_to_signed(a) * _to_signed(b))
        if op == "multu":
            return _to_unsigned(a * b)
        if op in ("and", "andi"):
            return a & b & _WORD_MASK
        if op in ("or", "ori"):
            return _to_unsigned(a | b)
        if op in ("xor", "xori"):
            return _to_unsigned(a ^ b)
        if op == "nor":
            return _to_unsigned(~(a | b))
        if op in ("slt", "slti"):
            return 1 if _to_signed(a) < _to_signed(b) else 0
        if op in ("sltu", "sltiu"):
            return 1 if _to_unsigned(a) < _to_unsigned(b) else 0
        if op in ("sll", "sllv"):
            return _to_unsigned(a << (b & 31))
        if op in ("srl", "srlv"):
            return _to_unsigned(a) >> (b & 31)
        if op in ("sra", "srav"):
            return _to_unsigned(_to_signed(a) >> (b & 31))
        raise InterpreterError("unknown ALU op {}".format(op))


def run_program(program, args=(), func_name=None, step_limit=5_000_000):
    """One-shot helper: run and return ``(result, profile, interpreter)``."""
    interp = Interpreter(program, step_limit=step_limit)
    result = interp.run(func_name=func_name, args=args)
    return result, interp.profile, interp
