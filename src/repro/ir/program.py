"""Programs: a set of IR functions plus a static data image.

Workloads bundle their kernels and constant tables (CRC tables, FFT
twiddle factors, S-boxes...) into a :class:`Program`.  The interpreter
loads the data image into memory before execution; the pass pipelines
transform every function of the program.
"""

from ..errors import IRError

_WORD_MASK = 0xFFFFFFFF


class DataSegment:
    """Static data image: byte values at absolute addresses.

    A tiny linker: ``place_words``/``place_bytes`` allocate consecutive
    storage and remember symbolic labels so workloads can pass base
    addresses into their kernels.
    """

    def __init__(self, base=0x1000):
        self._bytes = {}
        self._symbols = {}
        self._cursor = int(base)

    def place_words(self, label, words):
        """Allocate little-endian 32-bit words; return the base address."""
        address = self._align(4)
        self._symbols[label] = address
        for word in words:
            value = int(word) & _WORD_MASK
            for i in range(4):
                self._bytes[self._cursor] = (value >> (8 * i)) & 0xFF
                self._cursor += 1
        return address

    def place_bytes(self, label, data):
        """Allocate raw bytes; return the base address."""
        address = self._cursor
        self._symbols[label] = address
        for byte in data:
            self._bytes[self._cursor] = int(byte) & 0xFF
            self._cursor += 1
        return address

    def reserve_words(self, label, count):
        """Allocate zero-initialised words; return the base address."""
        return self.place_words(label, [0] * count)

    def _align(self, n):
        while self._cursor % n:
            self._cursor += 1
        return self._cursor

    def address_of(self, label):
        """Address of a previously placed symbol."""
        try:
            return self._symbols[label]
        except KeyError:
            raise IRError("unknown data symbol {!r}".format(label)) from None

    @property
    def image(self):
        """Mapping byte-address → byte value."""
        return dict(self._bytes)

    @property
    def symbols(self):
        """Copy of the symbol table (label -> address)."""
        return dict(self._symbols)

    @property
    def end(self):
        """First unallocated address (useful as a scratch-heap base)."""
        return self._cursor


class Program:
    """A named set of IR functions plus a data segment."""

    def __init__(self, name, data=None):
        self.name = str(name)
        self._functions = {}
        self._order = []
        self.data = data if data is not None else DataSegment()

    def add_function(self, func):
        """Register a function; the first one becomes ``main``."""
        if func.name in self._functions:
            raise IRError("duplicate function {!r}".format(func.name))
        self._functions[func.name] = func
        self._order.append(func.name)
        return func

    def function(self, name):
        """Look up a function by name."""
        try:
            return self._functions[name]
        except KeyError:
            raise IRError("no function named {!r}".format(name)) from None

    def has_function(self, name):
        """True when a function of that name exists."""
        return name in self._functions

    @property
    def functions(self):
        """Functions in registration order."""
        return [self._functions[name] for name in self._order]

    @property
    def main(self):
        """The first registered function — the workload entry point."""
        if not self._order:
            raise IRError("program {} has no functions".format(self.name))
        return self._functions[self._order[0]]

    def verify(self):
        """Verify every function and call target; returns self."""
        for func in self.functions:
            func.verify()
            for instr in func.instructions():
                if instr.is_call and instr.callee not in self._functions:
                    raise IRError("{} calls unknown function {!r}".format(
                        func.name, instr.callee))
        return self

    def clone(self):
        """Deep-ish copy of the program (functions cloned)."""
        copy = Program(self.name, data=self.data)
        for func in self.functions:
            copy.add_function(func.clone())
        return copy

    def __repr__(self):
        return "Program({!r}, funcs={})".format(self.name, self._order)
