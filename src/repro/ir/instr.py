"""IR instructions.

The intermediate representation sits one small step above PISA assembly:
unbounded virtual registers (plain strings), explicit basic blocks, and
symbolic branch targets.  Arithmetic mnemonics are exactly the PISA ones
(:mod:`repro.isa.opcodes`), so lowering a basic block to a data-flow
graph of :class:`~repro.isa.instruction.Operation` objects is a direct
transcription.

Instruction kinds
-----------------
* computational — ``add``, ``subu``, ``xor`` ... (dest, sources, imm)
* constants — ``li dest, imm``
* memory — ``lw dest, [addr+imm]`` / ``sw value, [addr+imm]``
* control — ``beq/bne/blez/bgtz/bltz/bgez`` with block-label targets,
  ``j label``, ``ret [value]``
* ``call dest, callee, args`` — direct call, inlinable at -O3
"""

from ..errors import IRError
from ..isa.opcodes import is_known, opcode as _lookup

#: Mnemonics that exist only at the IR level.
_IR_ONLY = {"ret", "call"}

#: Conditional branch mnemonics and their source-operand counts.
CONDITIONAL_BRANCHES = {
    "beq": 2, "bne": 2, "blez": 1, "bgtz": 1, "bltz": 1, "bgez": 1,
}


class IRInstr:
    """One IR instruction.

    Attributes
    ----------
    op:
        Mnemonic string.
    dest:
        Destination virtual register, or ``None``.
    sources:
        Tuple of source virtual registers.
    imm:
        Optional immediate.
    targets:
        Tuple of block labels — ``(taken, )`` for ``j``, ``(taken,
        fallthrough)`` for conditional branches, empty otherwise.
    callee / args:
        For ``call``: function name and argument registers.
    """

    __slots__ = ("op", "dest", "sources", "imm", "targets", "callee", "args")

    def __init__(self, op, dest=None, sources=(), imm=None, targets=(),
                 callee=None, args=()):
        if not (is_known(op) or op in _IR_ONLY):
            raise IRError("unknown IR mnemonic {!r}".format(op))
        self.op = op
        self.dest = dest
        self.sources = tuple(sources)
        self.imm = imm
        self.targets = tuple(targets)
        self.callee = callee
        self.args = tuple(args)

    # -- classification -------------------------------------------------

    @property
    def is_branch(self):
        """True for conditional branches and ``j``."""
        return self.op in CONDITIONAL_BRANCHES or self.op == "j"

    @property
    def is_conditional(self):
        """True for the beq/bne/blez/bgtz/bltz/bgez family."""
        return self.op in CONDITIONAL_BRANCHES

    @property
    def is_return(self):
        """True for ``ret``."""
        return self.op == "ret"

    @property
    def is_call(self):
        """True for ``call``."""
        return self.op == "call"

    @property
    def is_terminator(self):
        """True when this instruction must end a block."""
        return self.is_branch or self.is_return

    @property
    def is_load(self):
        """True for the load family (lw/lh/lhu/lb/lbu)."""
        return is_known(self.op) and _lookup(self.op).category.value == "load"

    @property
    def is_store(self):
        """True for the store family (sw/sh/sb)."""
        return is_known(self.op) and _lookup(self.op).category.value == "store"

    @property
    def is_memory(self):
        """True for loads and stores."""
        return self.is_load or self.is_store

    @property
    def is_constant(self):
        """True for ``li``/``lui``."""
        return self.op in ("li", "lui")

    @property
    def is_computational(self):
        """True for instructions that become DFG nodes."""
        return not (self.is_terminator or self.is_call)

    # -- def/use ---------------------------------------------------------

    def defs(self):
        """Virtual registers written by this instruction."""
        return (self.dest,) if self.dest is not None else ()

    def uses(self):
        """Virtual registers read by this instruction."""
        if self.is_call:
            return self.args
        return self.sources

    # -- misc --------------------------------------------------------------

    def copy(self, **overrides):
        """Shallow copy with selected fields replaced."""
        fields = {
            "op": self.op, "dest": self.dest, "sources": self.sources,
            "imm": self.imm, "targets": self.targets,
            "callee": self.callee, "args": self.args,
        }
        fields.update(overrides)
        return IRInstr(**fields)

    def rename(self, mapping):
        """Copy with registers renamed through ``mapping`` (dict)."""
        return self.copy(
            dest=mapping.get(self.dest, self.dest) if self.dest else None,
            sources=tuple(mapping.get(s, s) for s in self.sources),
            args=tuple(mapping.get(a, a) for a in self.args),
        )

    def __repr__(self):
        return "IRInstr({})".format(self.pretty())

    def pretty(self):
        """Assembly-like rendering used by dumps and error messages."""
        if self.op == "ret":
            return "ret {}".format(self.sources[0]) if self.sources else "ret"
        if self.op == "call":
            return "{} = call {}({})".format(
                self.dest, self.callee, ", ".join(self.args))
        if self.op == "j":
            return "j {}".format(self.targets[0])
        if self.is_conditional:
            ops = ", ".join(self.sources)
            return "{} {}, {} (else {})".format(
                self.op, ops, self.targets[0], self.targets[1])
        parts = []
        if self.dest is not None:
            parts.append("{} =".format(self.dest))
        parts.append(self.op)
        operands = list(self.sources)
        if self.imm is not None:
            operands.append(str(self.imm))
        if self.is_memory:
            base = self.sources[-1]
            off = self.imm or 0
            if self.is_load:
                return "{} = {} [{}+{}]".format(self.dest, self.op, base, off)
            return "{} {}, [{}+{}]".format(self.op, self.sources[0], base, off)
        parts.append(", ".join(str(x) for x in operands))
        return " ".join(p for p in parts if p)
