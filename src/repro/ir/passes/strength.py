"""Strength reduction.

Rewrites expensive operations into cheaper equivalents the way a
production compiler would before instruction selection:

* multiply by a power-of-two constant → left shift,
* multiply by 0 → ``li 0``; multiply by 1 → ``move``,
* ``x - x`` / ``x ^ x`` → ``li 0``,
* ``x & x`` / ``x | x`` → ``move``.

Only multiplications with a *known constant* operand are rewritten, so
the pass runs after constant folding (which materialises the constant
registers this pass needs to see).
"""

from ..instr import IRInstr

_WORD_MASK = 0xFFFFFFFF


def strength_reduction(func):
    """Apply strength reductions to every block (in place)."""
    for block in func.blocks:
        _reduce_block(block)
    return func


def _reduce_block(block):
    known = {}
    new_body = []
    for instr in block.body:
        reduced = _reduce_instr(instr, known)
        for reg in reduced.defs():
            known.pop(reg, None)
        if reduced.op == "li":
            known[reduced.dest] = reduced.imm & _WORD_MASK
        new_body.append(reduced)
    block.body[:] = new_body


def _reduce_instr(instr, known):
    op = instr.op
    if op in ("mult", "multu") and len(instr.sources) == 2:
        a, b = instr.sources
        for x, y in ((a, b), (b, a)):
            value = known.get(y)
            if value is None:
                continue
            if value == 0:
                return IRInstr("li", dest=instr.dest, imm=0)
            if value == 1:
                return IRInstr("move", dest=instr.dest, sources=(x,))
            shift = _log2_exact(value)
            if shift is not None:
                return IRInstr("sll", dest=instr.dest, sources=(x,), imm=shift)
    if len(instr.sources) == 2 and instr.sources[0] == instr.sources[1]:
        x = instr.sources[0]
        if op in ("sub", "subu", "xor"):
            return IRInstr("li", dest=instr.dest, imm=0)
        if op in ("and", "or"):
            return IRInstr("move", dest=instr.dest, sources=(x,))
    return instr


def _log2_exact(value):
    """log2 of a positive power of two, else None."""
    if value <= 0 or value & (value - 1):
        return None
    return value.bit_length() - 1
