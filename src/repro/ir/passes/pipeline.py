"""Optimisation pipelines mimicking gcc's -O0 and -O3.

The thesis compiles every benchmark twice, with ``-O0`` and ``-O3``;
the optimisation level matters to ISE exploration mainly through basic
block size (unrolling/inlining at -O3) and through the cleanliness of
the dataflow (folding/CSE remove artificial dependences).  ``optimize``
clones the input program, so callers keep the unoptimised original.
"""

from .constfold import constant_fold
from .cse import local_cse
from .dce import dead_code_elimination
from .globalprop import global_constant_propagation
from .inline import inline_calls
from .licm import loop_invariant_code_motion
from .strength import strength_reduction
from .unroll import unroll_loops

#: Default unroll factor at -O3 (gcc 2.7-era unrolling was modest).
DEFAULT_UNROLL_FACTOR = 4

OPT_LEVELS = ("O0", "O3")


def optimize(program, level="O3", unroll_factor=DEFAULT_UNROLL_FACTOR):
    """Return an optimised clone of ``program`` at the given level."""
    if level not in OPT_LEVELS:
        raise ValueError("unknown optimisation level {!r}".format(level))
    result = program.clone()
    if level == "O0":
        return result.verify()
    inline_calls(result)
    for func in result.functions:
        _scalar_cleanup(func)
        loop_invariant_code_motion(func)
        _scalar_cleanup(func)
        unroll_loops(func, factor=unroll_factor)
        _scalar_cleanup(func)
    return result.verify()


def _scalar_cleanup(func):
    """Propagate / fold / CSE / reduce / DCE to a practical fixed point."""
    for _ in range(2):
        global_constant_propagation(func)
        constant_fold(func)
        local_cse(func)
        strength_reduction(func)
        dead_code_elimination(func)
