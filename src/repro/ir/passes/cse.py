"""Local common-subexpression elimination via value numbering.

Within one basic block, pure computations with identical opcodes and
operand value numbers are computed once; later occurrences become
``move`` instructions (cleaned up by copy propagation in the same
pass).  Memory and call instructions act as barriers for loads.
"""

from ..instr import IRInstr

#: Opcodes whose operand order does not matter.
_COMMUTATIVE = {
    "add", "addu", "mult", "multu", "and", "or", "xor", "nor",
}


def local_cse(func):
    """Run local CSE + copy propagation on every block (in place)."""
    for block in func.blocks:
        _cse_block(block)
    return func


def _cse_block(block):
    value_number = {}       # register -> value number
    expr_table = {}         # expression key -> (value number, register)
    next_vn = [0]
    copies = {}             # register -> canonical register

    def vn_of(reg):
        if reg not in value_number:
            value_number[reg] = next_vn[0]
            next_vn[0] += 1
        return value_number[reg]

    def fresh_vn():
        next_vn[0] += 1
        return next_vn[0] - 1

    new_body = []
    for instr in block.body:
        instr = _propagate_copies(instr, copies)
        if instr.is_call or instr.is_store:
            # Conservative barrier: invalidate all remembered loads.
            expr_table = {k: v for k, v in expr_table.items()
                          if not k[0].startswith("load:")}
        key = _expr_key(instr, vn_of)
        if key is not None and key in expr_table:
            prior_vn, prior_reg = expr_table[key]
            value_number[instr.dest] = prior_vn
            copies = {k: v for k, v in copies.items()
                      if k != instr.dest and v != instr.dest}
            canonical = copies.get(prior_reg, prior_reg)
            if canonical != instr.dest:
                copies[instr.dest] = canonical
            new_body.append(
                IRInstr("move", dest=instr.dest, sources=(prior_reg,)))
        else:
            if instr.dest is not None:
                value_number[instr.dest] = fresh_vn()
                # Redefinition invalidates copies *of* the register as
                # well as copies *to* it (the swap idiom tmp=a; a=b;
                # b=tmp must not propagate tmp -> a).
                copies = {k: v for k, v in copies.items()
                          if k != instr.dest and v != instr.dest}
                if key is not None:
                    expr_table[key] = (value_number[instr.dest], instr.dest)
                if instr.op == "move":
                    src = instr.sources[0]
                    canonical = copies.get(src, src)
                    if canonical != instr.dest:
                        copies[instr.dest] = canonical
                    value_number[instr.dest] = vn_of(src)
            # A redefinition invalidates expressions naming the old value:
            # value numbers handle that implicitly (the register got a new
            # number), but canonical result registers may now be stale.
            if instr.dest is not None:
                expr_table = {k: v for k, v in expr_table.items()
                              if v[1] != instr.dest or k == key}
            new_body.append(instr)
    if block.terminator is not None:
        block.terminator = _propagate_copies(block.terminator, copies)
    block.body[:] = new_body


def _propagate_copies(instr, copies):
    """Rename *uses* through the copy map (defs must stay untouched)."""
    if not copies:
        return instr
    mapping = {reg: copies[reg] for reg in instr.uses() if reg in copies}
    if not mapping:
        return instr
    return instr.copy(
        sources=tuple(mapping.get(s, s) for s in instr.sources),
        args=tuple(mapping.get(a, a) for a in instr.args),
    )


def _expr_key(instr, vn_of):
    """Hashable expression identity of a pure computation, else None."""
    if instr.dest is None or instr.is_call or instr.is_store:
        return None
    if instr.op == "move":
        return None
    if instr.is_load:
        operands = tuple(vn_of(s) for s in instr.sources)
        return ("load:" + instr.op, operands, instr.imm)
    if instr.is_constant:
        return (instr.op, (), instr.imm)
    operands = [vn_of(s) for s in instr.sources]
    if instr.op in _COMMUTATIVE:
        operands.sort()
    return (instr.op, tuple(operands), instr.imm)
