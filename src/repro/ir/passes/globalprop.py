"""Global constant propagation.

Local constant folding only sees constants defined in the same block;
loop bounds, masks and table bases are typically materialised once in
the entry block and used everywhere.  This pass finds registers with a
*unique* ``li`` definition in the whole function (they hold the same
value at every use) and rewrites their uses across block boundaries:

* register-register ops with an encodable constant second operand turn
  into their immediate form (``addu`` → ``addiu`` …), commuting the
  operands first when the opcode allows,
* ``move dest, constreg`` becomes ``li dest, value``,
* fully-constant operations fold to ``li`` outright.

The defining ``li`` itself is left in place; dead-code elimination
removes it once the last use is rewritten.
"""

from ..analysis import unique_constant_defs
from ..instr import IRInstr
from .constfold import _EVAL, _IMMEDIATE_FORM, _encodable

_WORD_MASK = 0xFFFFFFFF

_COMMUTATIVE = {"add", "addu", "mult", "multu", "and", "or", "xor", "nor"}


def global_constant_propagation(func):
    """Propagate unique-``li`` constants across blocks (in place)."""
    constants = unique_constant_defs(func)
    if not constants:
        return func
    for block in func.blocks:
        block.body[:] = [_rewrite(instr, constants)
                         for instr in block.body]
    return func


def _rewrite(instr, constants):
    if instr.is_call or instr.is_store or instr.is_load:
        return instr
    if instr.dest is not None and instr.dest in constants:
        return instr                        # never touch the unique def
    if instr.op == "move" and instr.sources[0] in constants:
        return IRInstr("li", dest=instr.dest,
                       imm=constants[instr.sources[0]] & _WORD_MASK)
    if instr.op not in _EVAL or len(instr.sources) != 2:
        return instr
    a, b = instr.sources
    va = constants.get(a)
    vb = constants.get(b)
    if va is not None and vb is not None:
        value = _EVAL[instr.op](va & _WORD_MASK, vb & _WORD_MASK)
        return IRInstr("li", dest=instr.dest, imm=value & _WORD_MASK)
    if vb is None and va is not None and instr.op in _COMMUTATIVE:
        a, b = b, a
        vb = va
    if vb is None:
        return instr
    form = _IMMEDIATE_FORM.get(instr.op)
    if form is None or not _encodable(instr.op, vb & _WORD_MASK):
        return instr
    return IRInstr(form, dest=instr.dest, sources=(a,),
                   imm=vb & _WORD_MASK)
