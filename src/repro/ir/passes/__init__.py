"""IR optimisation passes and the -O0/-O3 pipelines."""

from .constfold import constant_fold
from .cse import local_cse
from .dce import dead_code_elimination
from .globalprop import global_constant_propagation
from .inline import inline_calls
from .licm import loop_invariant_code_motion
from .pipeline import DEFAULT_UNROLL_FACTOR, OPT_LEVELS, optimize
from .strength import strength_reduction
from .unroll import unroll_loops

__all__ = [
    "DEFAULT_UNROLL_FACTOR",
    "OPT_LEVELS",
    "constant_fold",
    "dead_code_elimination",
    "global_constant_propagation",
    "inline_calls",
    "local_cse",
    "loop_invariant_code_motion",
    "optimize",
    "strength_reduction",
    "unroll_loops",
]
