"""Loop unrolling for single-block counted loops.

The paper's -O3 results hinge on gcc's unrolling enlarging basic blocks
(§5.2: "the bigger basic block usually has a larger search space").
This pass reproduces that effect: it finds self-loop blocks whose
control slice is driven entirely by compile-time constants, computes
the exact trip count by simulating that slice, and replicates the loop
body ``factor`` times with the intermediate exit tests removed.

To stay exact, the replication factor is clipped to the largest divisor
of the trip count not exceeding the requested factor, so the remaining
loop test exits at precisely the right iteration and no prologue or
epilogue code is needed.  Workload trip counts are powers of two, so in
practice the requested factor is used as-is.
"""

from ..analysis import unique_constant_defs
from .constfold import _EVAL

_WORD_MASK = 0xFFFFFFFF
_MAX_SIMULATED_ITERATIONS = 1 << 20


def unroll_loops(func, factor=4, max_body=128):
    """Unroll every eligible self-loop of ``func`` in place; return func.

    ``max_body`` caps the unrolled body size in instructions, like
    gcc's ``max-unrolled-insns`` parameter — without it an already-large
    loop body would explode into blocks no scheduler (or ISE explorer)
    handles gracefully.
    """
    if factor < 2:
        return func
    constants = unique_constant_defs(func)
    for block in func.blocks:
        if "unrolled_by" in block.annotations:
            continue
        trip = _trip_count(func, block, constants)
        if trip is None or trip < 2:
            continue
        size_cap = max(1, max_body // max(1, len(block.body)))
        chosen = _largest_divisor_at_most(trip, min(factor, size_cap))
        if chosen < 2:
            continue
        block.body[:] = block.body * chosen
        block.annotations["unrolled_by"] = chosen
        block.annotations["trip_count"] = trip
    return func


def _largest_divisor_at_most(n, bound):
    for candidate in range(min(n, bound), 1, -1):
        if n % candidate == 0:
            return candidate
    return 1


def _is_self_loop(block):
    term = block.terminator
    return (term is not None and term.is_conditional
            and block.label in term.targets)


def _trip_count(func, block, constants):
    """Exact trip count of a self-loop block, or None when unknown."""
    if not _is_self_loop(block):
        return None
    if "trip_count" in block.annotations and "unrolled_by" not in block.annotations:
        return int(block.annotations["trip_count"])
    slice_instrs, entry_regs = _control_slice(block)
    if slice_instrs is None:
        return None
    env = _entry_environment(func, block, entry_regs, constants)
    if env is None:
        return None
    return _simulate(block, slice_instrs, env)


def _control_slice(block):
    """Body instructions feeding the branch condition, in program order.

    Returns ``(instrs, entry_regs)`` where ``entry_regs`` are the slice
    registers whose value at loop entry must be discovered, or
    ``(None, None)`` when the slice contains an unevaluable instruction
    (load, call, ...).
    """
    needed = set(block.terminator.uses())
    slice_positions = []
    for index in range(len(block.body) - 1, -1, -1):
        instr = block.body[index]
        if not needed.intersection(instr.defs()):
            continue
        if instr.op == "li":
            pass
        elif instr.op == "move" or instr.op in _EVAL:
            pass
        else:
            return None, None
        slice_positions.append(index)
        for reg in instr.defs():
            needed.discard(reg)
        needed.update(instr.uses())
    slice_positions.reverse()
    return [block.body[i] for i in slice_positions], needed


def _entry_environment(func, block, entry_regs, constants):
    """Values of the slice's entry registers on first entering the loop."""
    env = {}
    preds = [b for b in func.blocks
             if block.label in b.successors() and b.label != block.label]
    for reg in entry_regs:
        if reg in constants:
            env[reg] = constants[reg] & _WORD_MASK
            continue
        value = _agreed_predecessor_constant(func, preds, reg)
        if value is None:
            return None
        env[reg] = value & _WORD_MASK
    return env


def _agreed_predecessor_constant(func, preds, reg):
    """Constant value of ``reg`` on exit of every predecessor, or None.

    Each predecessor body is abstractly evaluated over the constant
    lattice (``li``/``move``/ALU ops on known values propagate, anything
    else maps its destination to unknown), so the detection survives CSE
    rewriting ``li`` chains into ``move``s.  A predecessor that does not
    define ``reg`` delegates to *its* unique predecessor (walking
    through preheaders LICM may have inserted).
    """
    if not preds:
        return None
    values = set()
    for pred in preds:
        value = _constant_at_exit(func, pred, reg, depth=8)
        if value is None:
            return None
        values.add(value)
    return values.pop() if len(values) == 1 else None


def _constant_at_exit(func, block, reg, depth):
    """Constant value of ``reg`` when control leaves ``block``."""
    known = {}
    defined = set()
    for instr in block.body:
        result = _abstract_eval(instr, known)
        for dest in instr.defs():
            defined.add(dest)
            if result is None:
                known.pop(dest, None)
            else:
                known[dest] = result
    if reg in known:
        return known[reg]
    if reg in defined or depth <= 0:
        return None
    uppers = [b for b in func.blocks
              if b is not block and block.label in b.successors()]
    if len(uppers) != 1:
        return None
    return _constant_at_exit(func, uppers[0], reg, depth - 1)


def _abstract_eval(instr, known):
    """Constant value produced by ``instr`` under ``known``, or None."""
    if instr.op == "li":
        return instr.imm & _WORD_MASK
    if instr.op == "move":
        return known.get(instr.sources[0])
    if instr.op in _EVAL and instr.dest is not None:
        a = known.get(instr.sources[0])
        if a is None:
            return None
        if len(instr.sources) > 1:
            b = known.get(instr.sources[1])
        else:
            b = instr.imm if instr.imm is not None else 0
        if b is None:
            return None
        return _EVAL[instr.op](a, b) & _WORD_MASK
    return None


def _simulate(block, slice_instrs, env):
    """Run the control slice until the loop exits; return the trip count."""
    env = dict(env)
    term = block.terminator
    continue_on_taken = term.targets[0] == block.label
    trips = 0
    while trips < _MAX_SIMULATED_ITERATIONS:
        for instr in slice_instrs:
            if instr.op == "li":
                env[instr.dest] = instr.imm & _WORD_MASK
            elif instr.op == "move":
                env[instr.dest] = env[instr.sources[0]]
            else:
                a = env[instr.sources[0]]
                b = (env[instr.sources[1]] if len(instr.sources) > 1
                     else instr.imm or 0)
                env[instr.dest] = _EVAL[instr.op](a, b) & _WORD_MASK
        trips += 1
        if _branch_taken(term, env) != continue_on_taken:
            return trips
    return None


def _branch_taken(term, env):
    srcs = [env[s] for s in term.sources]
    signed = [s - 0x100000000 if s & 0x80000000 else s for s in srcs]
    if term.op == "beq":
        return srcs[0] == srcs[1]
    if term.op == "bne":
        return srcs[0] != srcs[1]
    if term.op == "blez":
        return signed[0] <= 0
    if term.op == "bgtz":
        return signed[0] > 0
    if term.op == "bltz":
        return signed[0] < 0
    return signed[0] >= 0    # bgez
