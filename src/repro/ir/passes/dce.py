"""Dead-code elimination driven by global liveness.

An instruction is dead when it is pure (no store, no call) and its
destination is not live immediately after it.  The pass iterates to a
fixed point because removing one dead instruction can kill another.
"""

from ..analysis import liveness


def dead_code_elimination(func):
    """Remove dead pure instructions from every block (in place)."""
    changed = True
    while changed:
        changed = False
        __, live_out = liveness(func)
        for block in func.blocks:
            if _sweep_block(block, live_out[block.label]):
                changed = True
    return func


def _sweep_block(block, live_out):
    live = set(live_out)
    if block.terminator is not None:
        live.update(block.terminator.uses())
    kept_reversed = []
    changed = False
    for instr in reversed(block.body):
        if _is_removable(instr, live):
            changed = True
            continue
        kept_reversed.append(instr)
        for reg in instr.defs():
            live.discard(reg)
        live.update(instr.uses())
    if changed:
        block.body[:] = list(reversed(kept_reversed))
    return changed


def _is_removable(instr, live):
    if instr.is_store or instr.is_call:
        return False
    if instr.dest is None:
        return False
    return instr.dest not in live
