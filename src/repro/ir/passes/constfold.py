"""Local constant propagation and folding.

Within each basic block, registers holding known constants are tracked;
arithmetic on two constants folds to a single ``li``, and arithmetic
with one constant operand is rewritten into the immediate form of the
opcode where one exists (``addu`` → ``addiu`` etc.) — exactly what a
``-O3`` compiler does before its later passes, and what enables the
loop unroller's constant-bound detection.
"""

from ..instr import IRInstr

_WORD_MASK = 0xFFFFFFFF


def _signed(v):
    v &= _WORD_MASK
    return v - 0x100000000 if v & 0x80000000 else v

#: op → python evaluator on unsigned 32-bit operands.
_EVAL = {
    "add": lambda a, b: a + b,
    "addu": lambda a, b: a + b,
    "addi": lambda a, b: a + b,
    "addiu": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "subu": lambda a, b: a - b,
    "mult": lambda a, b: _signed(a) * _signed(b),
    "multu": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "andi": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "ori": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "xori": lambda a, b: a ^ b,
    "nor": lambda a, b: ~(a | b),
    "slt": lambda a, b: 1 if _signed(a) < _signed(b) else 0,
    "slti": lambda a, b: 1 if _signed(a) < _signed(b) else 0,
    "sltu": lambda a, b: 1 if (a & _WORD_MASK) < (b & _WORD_MASK) else 0,
    "sltiu": lambda a, b: 1 if (a & _WORD_MASK) < (b & _WORD_MASK) else 0,
    "sll": lambda a, b: a << (b & 31),
    "sllv": lambda a, b: a << (b & 31),
    "srl": lambda a, b: (a & _WORD_MASK) >> (b & 31),
    "srlv": lambda a, b: (a & _WORD_MASK) >> (b & 31),
    "sra": lambda a, b: _signed(a) >> (b & 31),
    "srav": lambda a, b: _signed(a) >> (b & 31),
}

#: register-register op → immediate-form op.
_IMMEDIATE_FORM = {
    "addu": "addiu", "add": "addi",
    "and": "andi", "or": "ori", "xor": "xori",
    "slt": "slti", "sltu": "sltiu",
    "sllv": "sll", "srlv": "srl", "srav": "sra",
}


def constant_fold(func):
    """Fold constants in every block of ``func`` (in place); return func."""
    for block in func.blocks:
        _fold_block(block)
    return func


def _fold_block(block):
    known = {}
    new_body = []
    for instr in block.body:
        folded = _fold_instr(instr, known)
        for reg in folded.defs():
            known.pop(reg, None)
        if folded.op == "li":
            known[folded.dest] = folded.imm & _WORD_MASK
        elif folded.op == "move" and folded.sources[0] in known:
            known[folded.dest] = known[folded.sources[0]]
        new_body.append(folded)
    block.body[:] = new_body


def _fold_instr(instr, known):
    if instr.op not in _EVAL or instr.dest is None:
        return instr
    srcs = instr.sources
    vals = [known.get(s) for s in srcs]
    # Fully constant → li.
    if len(srcs) == 2 and vals[0] is not None and vals[1] is not None:
        result = _EVAL[instr.op](vals[0], vals[1]) & _WORD_MASK
        return IRInstr("li", dest=instr.dest, imm=result)
    if len(srcs) == 1 and instr.imm is not None and vals[0] is not None:
        result = _EVAL[instr.op](vals[0], instr.imm) & _WORD_MASK
        return IRInstr("li", dest=instr.dest, imm=result)
    # Second operand constant → immediate form (when encodable).
    if (len(srcs) == 2 and vals[1] is not None
            and instr.op in _IMMEDIATE_FORM and _encodable(instr.op, vals[1])):
        return IRInstr(_IMMEDIATE_FORM[instr.op], dest=instr.dest,
                       sources=(srcs[0],), imm=vals[1])
    # Algebraic identities with an immediate of zero / neutral element.
    if instr.imm is not None and len(srcs) == 1:
        if instr.op in ("addiu", "addi", "ori", "xori", "sll", "srl", "sra") \
                and instr.imm == 0:
            return IRInstr("move", dest=instr.dest, sources=(srcs[0],))
        if instr.op == "andi" and instr.imm == 0:
            return IRInstr("li", dest=instr.dest, imm=0)
    return instr


def _encodable(op, value):
    """Whether ``value`` fits the 16-bit immediate field of ``op``'s form."""
    if op in ("sllv", "srlv", "srav"):
        return 0 <= value < 32
    if op in ("and", "or", "xor", "sltu"):
        return 0 <= value <= 0xFFFF          # zero-extended immediates
    return -0x8000 <= _signed(value) <= 0x7FFF
