"""Function inlining.

Replaces ``call`` instructions with the callee's blocks, the way gcc's
``-O3`` does for small functions.  Inlining before the other passes
lets constant folding and CSE see across the old call boundary and —
important for this paper — merges callee code into the caller's hot
blocks, further enlarging the DFGs handed to ISE exploration.
"""

import itertools

from ..instr import IRInstr

#: Callees with more blocks than this are not inlined.
_MAX_CALLEE_BLOCKS = 12
#: Hard cap on inlining substitutions per program (recursion guard).
_MAX_SUBSTITUTIONS = 256


def inline_calls(program, max_callee_blocks=_MAX_CALLEE_BLOCKS):
    """Inline small direct calls in every function of ``program``."""
    budget = _MAX_SUBSTITUTIONS
    for func in program.functions:
        changed = True
        while changed and budget > 0:
            changed = _inline_one(program, func, max_callee_blocks)
            if changed:
                budget -= 1
    program.verify()
    return program


def _inline_one(program, func, max_callee_blocks):
    """Inline the first eligible call in ``func``; True when one fired."""
    for block in func.blocks:
        for index, instr in enumerate(block.body):
            if not instr.is_call:
                continue
            callee = program.function(instr.callee)
            if callee.name == func.name:
                continue                      # never inline recursion
            if len(callee.blocks) > max_callee_blocks:
                continue
            _substitute(func, block, index, instr, callee)
            return True
    return False


def _substitute(func, block, index, call, callee):
    """Splice ``callee`` into ``func`` replacing the call at ``index``."""
    suffix = "_inl{}".format(_unique_id(func))
    rename_regs = {reg: reg + suffix for reg in callee.virtual_registers()}
    rename_labels = {lbl: lbl + suffix for lbl in callee.labels}

    # Continuation block: the tail of the split caller block.
    cont_label = block.label + "_cont" + suffix
    cont = func.add_block(cont_label)
    cont.body = block.body[index + 1:]
    cont.terminator = block.terminator
    cont.annotations = dict(block.annotations)

    # Head: argument moves, then jump into the renamed callee entry.
    block.body = block.body[:index]
    block.terminator = None
    block.annotations = {}
    for param, arg in zip(callee.params, call.args):
        block.append(IRInstr("move", dest=rename_regs[param], sources=(arg,)))
    block.terminate(IRInstr("j", targets=(rename_labels[callee.entry],)))

    # Splice renamed callee blocks; rets become result move + jump.
    for src in callee.blocks:
        new = func.add_block(rename_labels[src.label])
        new.annotations = dict(src.annotations)
        for instr in src.body:
            new.append(_rename(instr, rename_regs, rename_labels))
        term = src.terminator
        if term.is_return:
            if term.sources:
                new.append(IRInstr(
                    "move", dest=call.dest,
                    sources=(rename_regs.get(term.sources[0], term.sources[0]),)))
            else:
                new.append(IRInstr("li", dest=call.dest, imm=0))
            new.terminate(IRInstr("j", targets=(cont_label,)))
        else:
            new.terminate(_rename(term, rename_regs, rename_labels))


def _rename(instr, rename_regs, rename_labels):
    renamed = instr.rename(rename_regs)
    if renamed.targets:
        renamed = renamed.copy(
            targets=tuple(rename_labels.get(t, t) for t in renamed.targets))
    return renamed


_counter = itertools.count(1)


def _unique_id(func):
    """Process-unique suffix id; uniqueness per function is sufficient."""
    del func
    return next(_counter)


__all__ = ["inline_calls"]
