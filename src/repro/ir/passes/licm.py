"""Loop-invariant code motion for single-block self-loops.

gcc's ``-O3`` hoists computations whose operands do not change inside a
loop; this pass does the same for the loop shape the rest of the
pipeline optimises (self-loop blocks): a *preheader* block is inserted
in front of the loop, every edge into the loop from outside is
retargeted to it, and invariant pure instructions move there.

An instruction is invariant when it is pure (no load — memory may be
written inside the loop —, no store, no call) and every register it
reads is either never defined inside the loop or defined only by
instructions already proven invariant.  Instructions whose destination
is defined more than once in the loop, or whose destination is read
before its definition (carried around the back edge), must not move.
"""

from ..instr import IRInstr

_PURE_PREFIXES = ("li", "lui", "move")


def loop_invariant_code_motion(func):
    """Hoist invariant code out of every self-loop (in place)."""
    for label in list(func.labels):
        block = func.block(label)
        if _is_self_loop(block):
            _hoist(func, block)
    return func


def _is_self_loop(block):
    term = block.terminator
    return (term is not None and term.is_conditional
            and block.label in term.targets)


def _is_pure(instr):
    if instr.is_call or instr.is_store or instr.is_load:
        return False
    return instr.dest is not None


def _hoist(func, block):
    body = block.body
    defs_count = {}
    for instr in body:
        for reg in instr.defs():
            defs_count[reg] = defs_count.get(reg, 0) + 1
    # Registers read before their (first) definition are loop-carried.
    carried = set()
    defined = set()
    for instr in body:
        for reg in instr.uses():
            if reg not in defined and defs_count.get(reg):
                carried.add(reg)
        defined.update(instr.defs())
    carried.update(reg for reg in block.terminator.uses()
                   if reg not in defined and defs_count.get(reg))

    invariant_regs = set()
    hoisted = []
    changed = True
    marked = [False] * len(body)
    while changed:
        changed = False
        for index, instr in enumerate(body):
            if marked[index] or not _is_pure(instr):
                continue
            dest = instr.dest
            if defs_count.get(dest, 0) != 1 or dest in carried:
                continue
            if all(defs_count.get(reg, 0) == 0 or reg in invariant_regs
                   for reg in instr.uses()):
                marked[index] = True
                invariant_regs.add(dest)
                changed = True
    if not any(marked):
        return
    hoisted = [instr for index, instr in enumerate(body) if marked[index]]
    block.body[:] = [instr for index, instr in enumerate(body)
                     if not marked[index]]
    _insert_preheader(func, block, hoisted)


def _insert_preheader(func, block, hoisted):
    pre_label = block.label + ".preheader"
    suffix = 0
    while func.has_block(pre_label):
        suffix += 1
        pre_label = "{}.preheader{}".format(block.label, suffix)
    preheader = func.add_block(pre_label)
    for instr in hoisted:
        preheader.append(instr)
    preheader.terminate(IRInstr("j", targets=(block.label,)))
    # Retarget every outside edge into the loop.
    for other in func.blocks:
        if other is block or other is preheader:
            continue
        term = other.terminator
        if term is not None and block.label in term.targets:
            new_targets = tuple(pre_label if t == block.label else t
                                for t in term.targets)
            other.terminator = term.copy(targets=new_targets)
    if func.entry == block.label:
        func.entry = pre_label
