"""Intermediate representation: instructions, functions, builder,
programs, interpreter/profiler and optimisation passes."""

from .instr import CONDITIONAL_BRANCHES, IRInstr
from .function import BasicBlock, IRFunction
from .builder import FunctionBuilder
from .program import DataSegment, Program
from .interp import Interpreter, Memory, Profile, run_program
from .analysis import block_def_use, liveness, unique_constant_defs
from .parser import ParseError, parse_functions, parse_program

__all__ = [
    "BasicBlock",
    "CONDITIONAL_BRANCHES",
    "DataSegment",
    "FunctionBuilder",
    "IRFunction",
    "IRInstr",
    "Interpreter",
    "Memory",
    "ParseError",
    "Profile",
    "Program",
    "block_def_use",
    "liveness",
    "parse_functions",
    "parse_program",
    "run_program",
    "unique_constant_defs",
]
