"""Dataflow analyses over IR functions.

Currently: classic backward iterative liveness (per-block live-in /
live-out sets) and a reaching-constants helper used by the loop
unroller to discover compile-time loop bounds.
"""


def block_def_use(block):
    """Return ``(defs, upward_uses)`` of one block.

    ``upward_uses`` are registers read before any write inside the
    block — the standard *use* set of liveness analysis.
    """
    defs, uses = set(), set()
    for instr in block.instructions:
        for reg in instr.uses():
            if reg not in defs:
                uses.add(reg)
        defs.update(instr.defs())
    return defs, uses


def liveness(func):
    """Compute live-in/live-out sets for every block.

    Returns ``(live_in, live_out)``: two dicts label → frozenset.  The
    return value of the function is treated as used at ``ret``.
    """
    defs, uses = {}, {}
    for block in func.blocks:
        defs[block.label], uses[block.label] = block_def_use(block)
    succs = {block.label: list(block.successors()) for block in func.blocks}
    live_in = {label: set() for label in func.labels}
    live_out = {label: set() for label in func.labels}
    changed = True
    while changed:
        changed = False
        for block in reversed(func.blocks):
            label = block.label
            out = set()
            for succ in succs[label]:
                out |= live_in[succ]
            new_in = uses[label] | (out - defs[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return ({k: frozenset(v) for k, v in live_in.items()},
            {k: frozenset(v) for k, v in live_out.items()})


def unique_constant_defs(func):
    """Registers defined exactly once in the whole function by ``li``.

    Returns a dict register → constant value.  The unroller uses this as
    a cheap reaching-constants analysis: such registers hold the same
    value at every program point after their definition.
    """
    counts = {}
    values = {}
    for instr in func.instructions():
        for reg in instr.defs():
            counts[reg] = counts.get(reg, 0) + 1
            if instr.is_constant and instr.op == "li":
                values[reg] = instr.imm
    for param in func.params:
        counts[param] = counts.get(param, 0) + 1
    return {reg: val for reg, val in values.items() if counts.get(reg) == 1}
