"""Convenience builder for IR functions.

Workload kernels construct their IR through :class:`FunctionBuilder`,
which manages fresh temporary names, current-block bookkeeping and
emits one method per PISA mnemonic::

    b = FunctionBuilder("axpy", params=("a", "x", "y"))
    b.label("entry")
    t = b.mult("a", "x")
    s = b.addu(t, "y")
    b.ret(s)
    func = b.finish()

Every arithmetic helper returns the destination register name, so
expressions compose naturally.
"""

from ..errors import IRError
from .function import IRFunction
from .instr import CONDITIONAL_BRANCHES, IRInstr


class FunctionBuilder:
    """Imperative builder producing a verified :class:`IRFunction`."""

    def __init__(self, name, params=()):
        self._func = IRFunction(name, params)
        self._current = None
        self._temp_counter = 0

    # -- structure ---------------------------------------------------------

    def label(self, name):
        """Open (create) a new basic block and make it current."""
        self._current = self._func.add_block(name)
        return name

    def annotate(self, key, value):
        """Attach pass metadata to the current block."""
        self._block().annotations[key] = value

    def fresh(self, stem="t"):
        """Return a fresh temporary register name."""
        name = "{}{}".format(stem, self._temp_counter)
        self._temp_counter += 1
        return name

    def _block(self):
        if self._current is None:
            raise IRError("no current block — call label() first")
        return self._current

    def emit(self, op, dest=None, sources=(), imm=None):
        """Emit a raw body instruction; returns ``dest``."""
        self._block().append(IRInstr(op, dest=dest, sources=sources, imm=imm))
        return dest

    # -- constants and moves -------------------------------------------------

    def li(self, value, dest=None):
        """Load a 32-bit constant."""
        dest = dest or self.fresh()
        return self.emit("li", dest=dest, imm=int(value))

    def move(self, src, dest=None):
        """Register copy: ``dest = src``."""
        dest = dest or self.fresh()
        return self.emit("move", dest=dest, sources=(src,))

    # -- three-address arithmetic ---------------------------------------------

    def _binary(self, op, a, b, dest):
        dest = dest or self.fresh()
        return self.emit(op, dest=dest, sources=(a, b))

    def _binary_imm(self, op, a, imm, dest):
        dest = dest or self.fresh()
        return self.emit(op, dest=dest, sources=(a,), imm=int(imm))

    def addu(self, a, b, dest=None):
        """``dest = a + b`` (wrapping 32-bit add)."""
        return self._binary("addu", a, b, dest)

    def addiu(self, a, imm, dest=None):
        """``dest = a + imm`` (wrapping add-immediate)."""
        return self._binary_imm("addiu", a, imm, dest)

    def subu(self, a, b, dest=None):
        """``dest = a - b`` (wrapping subtract)."""
        return self._binary("subu", a, b, dest)

    def mult(self, a, b, dest=None):
        """``dest =`` low 32 bits of the signed product ``a * b``."""
        return self._binary("mult", a, b, dest)

    def multu(self, a, b, dest=None):
        """``dest =`` low 32 bits of the unsigned product ``a * b``."""
        return self._binary("multu", a, b, dest)

    def and_(self, a, b, dest=None):
        """``dest = a & b``."""
        return self._binary("and", a, b, dest)

    def andi(self, a, imm, dest=None):
        """``dest = a & imm``."""
        return self._binary_imm("andi", a, imm, dest)

    def or_(self, a, b, dest=None):
        """``dest = a | b``."""
        return self._binary("or", a, b, dest)

    def ori(self, a, imm, dest=None):
        """``dest = a | imm``."""
        return self._binary_imm("ori", a, imm, dest)

    def xor(self, a, b, dest=None):
        """``dest = a ^ b``."""
        return self._binary("xor", a, b, dest)

    def xori(self, a, imm, dest=None):
        """``dest = a ^ imm``."""
        return self._binary_imm("xori", a, imm, dest)

    def nor(self, a, b, dest=None):
        """``dest = ~(a | b)``."""
        return self._binary("nor", a, b, dest)

    def not_(self, a, dest=None):
        """Bitwise NOT via ``nor a, a`` (the MIPS idiom)."""
        return self.nor(a, a, dest)

    def slt(self, a, b, dest=None):
        """``dest = 1 if a < b else 0`` (signed compare)."""
        return self._binary("slt", a, b, dest)

    def slti(self, a, imm, dest=None):
        """``dest = 1 if a < imm else 0`` (signed compare)."""
        return self._binary_imm("slti", a, imm, dest)

    def sltu(self, a, b, dest=None):
        """``dest = 1 if a < b else 0`` (unsigned compare)."""
        return self._binary("sltu", a, b, dest)

    def sltiu(self, a, imm, dest=None):
        """``dest = 1 if a < imm else 0`` (unsigned compare)."""
        return self._binary_imm("sltiu", a, imm, dest)

    def sll(self, a, shamt, dest=None):
        """``dest = a << shamt`` (immediate shift amount)."""
        return self._binary_imm("sll", a, shamt, dest)

    def sllv(self, a, b, dest=None):
        """``dest = a << (b & 31)`` (register shift amount)."""
        return self._binary("sllv", a, b, dest)

    def srl(self, a, shamt, dest=None):
        """``dest = a >> shamt`` (logical, immediate amount)."""
        return self._binary_imm("srl", a, shamt, dest)

    def srlv(self, a, b, dest=None):
        """``dest = a >> (b & 31)`` (logical, register amount)."""
        return self._binary("srlv", a, b, dest)

    def sra(self, a, shamt, dest=None):
        """``dest = a >> shamt`` (arithmetic, immediate amount)."""
        return self._binary_imm("sra", a, shamt, dest)

    def srav(self, a, b, dest=None):
        """``dest = a >> (b & 31)`` (arithmetic, register amount)."""
        return self._binary("srav", a, b, dest)

    # -- memory ---------------------------------------------------------------

    def lw(self, addr, offset=0, dest=None):
        """Load word: ``dest = mem[addr + offset]``."""
        dest = dest or self.fresh()
        return self.emit("lw", dest=dest, sources=(addr,), imm=int(offset))

    def lbu(self, addr, offset=0, dest=None):
        """Load byte unsigned: ``dest = mem8[addr + offset]``."""
        dest = dest or self.fresh()
        return self.emit("lbu", dest=dest, sources=(addr,), imm=int(offset))

    def lhu(self, addr, offset=0, dest=None):
        """Load half unsigned: ``dest = mem16[addr + offset]``."""
        dest = dest or self.fresh()
        return self.emit("lhu", dest=dest, sources=(addr,), imm=int(offset))

    def sw(self, value, addr, offset=0):
        """Store word: ``mem[addr + offset] = value``."""
        return self.emit("sw", sources=(value, addr), imm=int(offset))

    def sb(self, value, addr, offset=0):
        """Store byte: ``mem8[addr + offset] = value``."""
        return self.emit("sb", sources=(value, addr), imm=int(offset))

    def sh(self, value, addr, offset=0):
        """Store half: ``mem16[addr + offset] = value``."""
        return self.emit("sh", sources=(value, addr), imm=int(offset))

    # -- control flow -----------------------------------------------------------

    def _branch(self, op, sources, taken, fallthrough):
        if op not in CONDITIONAL_BRANCHES:
            raise IRError("{} is not a conditional branch".format(op))
        self._block().terminate(
            IRInstr(op, sources=sources, targets=(taken, fallthrough)))
        self._current = None

    def beq(self, a, b, taken, fallthrough):
        """Branch to ``taken`` when ``a == b``, else ``fallthrough``."""
        self._branch("beq", (a, b), taken, fallthrough)

    def bne(self, a, b, taken, fallthrough):
        """Branch to ``taken`` when ``a != b``, else ``fallthrough``."""
        self._branch("bne", (a, b), taken, fallthrough)

    def blez(self, a, taken, fallthrough):
        """Branch to ``taken`` when ``a <= 0`` (signed)."""
        self._branch("blez", (a,), taken, fallthrough)

    def bgtz(self, a, taken, fallthrough):
        """Branch to ``taken`` when ``a > 0`` (signed)."""
        self._branch("bgtz", (a,), taken, fallthrough)

    def bltz(self, a, taken, fallthrough):
        """Branch to ``taken`` when ``a < 0`` (signed)."""
        self._branch("bltz", (a,), taken, fallthrough)

    def bgez(self, a, taken, fallthrough):
        """Branch to ``taken`` when ``a >= 0`` (signed)."""
        self._branch("bgez", (a,), taken, fallthrough)

    def jump(self, target):
        """Unconditional jump terminator to ``target``."""
        self._block().terminate(IRInstr("j", targets=(target,)))
        self._current = None

    def ret(self, value=None):
        """Return terminator (optionally with a value register)."""
        sources = (value,) if value is not None else ()
        self._block().terminate(IRInstr("ret", sources=sources))
        self._current = None

    def call(self, callee, args, dest=None):
        """Direct call; inlinable by the -O3 pipeline."""
        dest = dest or self.fresh()
        self._block().append(
            IRInstr("call", dest=dest, callee=callee, args=tuple(args)))
        return dest

    # -- completion ----------------------------------------------------------

    def finish(self):
        """Verify and return the built function."""
        return self._func.verify()
