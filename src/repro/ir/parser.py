"""Text assembler for IR functions.

Lets users write kernels as text instead of builder calls::

    func fir(coef, x):
    entry:
        acc = li 0
        i   = li 0
        zero = li 0
        j loop
    loop:
        off  = sll i, 2
        ca   = addu coef, off
        c    = lw [ca+0]
        xa   = addu x, off
        v    = lw [xa+0]
        p    = mult c, v
        acc  = addu acc, p
        i    = addiu i, 1
        t    = slti i, 8
        bne t, zero -> loop, exit
    exit:
        ret acc

Syntax
------
* ``func NAME(param, ...):`` starts a function; ``LABEL:`` a block.
* computational: ``dest = op src1, src2`` / ``dest = op src, imm`` /
  ``dest = li imm``.
* loads: ``dest = lw [base+offset]`` (also lb/lbu/lh/lhu).
* stores: ``sw value, [base+offset]`` (also sb/sh).
* branches: ``bne a, b -> taken, fallthrough`` (beq likewise);
  one-operand forms ``blez a -> taken, fallthrough`` etc.
* ``j label`` / ``ret [value]`` / ``dest = call f(a, b)``.
* ``#`` starts a comment; blank lines ignored.

Numbers accept decimal, ``0x`` hex and negatives.  The parser reports
errors with line numbers via :class:`~repro.errors.ParseError`.
"""

import re

from ..errors import IRError
from ..isa.opcodes import is_known, opcode as _lookup
from .function import IRFunction
from .instr import CONDITIONAL_BRANCHES, IRInstr
from .program import Program


class ParseError(IRError):
    """Malformed assembly text."""

    def __init__(self, line_no, message):
        super().__init__("line {}: {}".format(line_no, message))
        self.line_no = line_no


_FUNC_RE = re.compile(r"^func\s+(\w+)\s*\(([^)]*)\)\s*:\s*$")
_LABEL_RE = re.compile(r"^(\w+)\s*:\s*$")
_ASSIGN_RE = re.compile(r"^(\w+)\s*=\s*(.+)$")
_MEM_RE = re.compile(r"^\[\s*(\w+)\s*([+-]\s*\w+)?\s*\]$")
_BRANCH_RE = re.compile(r"^(\w+)\s+(.*?)\s*->\s*(\w+)\s*,\s*(\w+)$")
_CALL_RE = re.compile(r"^call\s+(\w+)\s*\(([^)]*)\)$")


def _number(token, line_no):
    try:
        return int(token, 0)
    except ValueError:
        raise ParseError(line_no, "expected a number, got {!r}".format(
            token)) from None


def _operands(text):
    return [part.strip() for part in text.split(",") if part.strip()]


class _FunctionParser:
    def __init__(self, name, params):
        self.func = IRFunction(name, params)
        self.block = None

    def ensure_block(self, line_no):
        if self.block is None:
            raise ParseError(line_no, "instruction outside any block")
        return self.block

    def open_block(self, label, line_no):
        try:
            self.block = self.func.add_block(label)
        except IRError as exc:
            raise ParseError(line_no, str(exc)) from None

    def parse_line(self, line, line_no):
        branch = _BRANCH_RE.match(line)
        if branch and branch.group(1) in CONDITIONAL_BRANCHES:
            return self._parse_branch(branch, line_no)
        if line.startswith("j "):
            target = line[2:].strip()
            self.ensure_block(line_no).terminate(
                IRInstr("j", targets=(target,)))
            self.block = None
            return
        if line == "ret" or line.startswith("ret "):
            sources = _operands(line[3:])
            self.ensure_block(line_no).terminate(
                IRInstr("ret", sources=tuple(sources)))
            self.block = None
            return
        assign = _ASSIGN_RE.match(line)
        if assign:
            return self._parse_assign(assign.group(1),
                                      assign.group(2).strip(), line_no)
        return self._parse_store(line, line_no)

    def _parse_branch(self, match, line_no):
        op, operand_text, taken, fallthrough = match.groups()
        sources = _operands(operand_text)
        expected = CONDITIONAL_BRANCHES[op]
        if len(sources) != expected:
            raise ParseError(line_no, "{} takes {} operand(s)".format(
                op, expected))
        self.ensure_block(line_no).terminate(
            IRInstr(op, sources=tuple(sources),
                    targets=(taken, fallthrough)))
        self.block = None

    def _parse_assign(self, dest, rhs, line_no):
        call = _CALL_RE.match(rhs)
        if call:
            args = tuple(_operands(call.group(2)))
            self.ensure_block(line_no).append(
                IRInstr("call", dest=dest, callee=call.group(1),
                        args=args))
            return
        parts = rhs.split(None, 1)
        op = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if not is_known(op):
            raise ParseError(line_no, "unknown mnemonic {!r}".format(op))
        opcode = _lookup(op)
        if opcode.category.value == "load":
            mem = _MEM_RE.match(rest.strip())
            if not mem:
                raise ParseError(line_no,
                                 "load needs a [base+offset] operand")
            base, offset = mem.group(1), mem.group(2)
            imm = _number(offset.replace(" ", ""), line_no) if offset else 0
            self.ensure_block(line_no).append(
                IRInstr(op, dest=dest, sources=(base,), imm=imm))
            return
        operands = _operands(rest)
        if op in ("li", "lui"):
            if len(operands) != 1:
                raise ParseError(line_no, "li takes one immediate")
            self.ensure_block(line_no).append(
                IRInstr(op, dest=dest,
                        imm=_number(operands[0], line_no)))
            return
        sources, imm = self._split_immediate(op, operands, line_no)
        self.ensure_block(line_no).append(
            IRInstr(op, dest=dest, sources=tuple(sources), imm=imm))

    def _split_immediate(self, op, operands, line_no):
        opcode = _lookup(op)
        if opcode.has_immediate:
            if len(operands) < 1:
                raise ParseError(line_no, "{} needs operands".format(op))
            imm = _number(operands[-1], line_no)
            return operands[:-1], imm
        for operand in operands:
            if re.match(r"^-?(0x)?[0-9]", operand):
                raise ParseError(
                    line_no,
                    "{} takes registers only (use the immediate form)"
                    .format(op))
        return operands, None

    def _parse_store(self, line, line_no):
        parts = line.split(None, 1)
        if len(parts) != 2 or not is_known(parts[0]):
            raise ParseError(line_no,
                             "cannot parse {!r}".format(line))
        op = parts[0]
        opcode = _lookup(op)
        if opcode.category.value != "store":
            raise ParseError(line_no,
                             "{} is not a statement form".format(op))
        operands = _operands(parts[1])
        if len(operands) != 2:
            raise ParseError(line_no, "store needs 'value, [base+off]'")
        mem = _MEM_RE.match(operands[1])
        if not mem:
            raise ParseError(line_no, "store needs a [base+offset]")
        base, offset = mem.group(1), mem.group(2)
        imm = _number(offset.replace(" ", ""), line_no) if offset else 0
        self.ensure_block(line_no).append(
            IRInstr(op, sources=(operands[0], base), imm=imm))


def parse_functions(text):
    """Parse assembly text into a list of verified IRFunctions."""
    functions = []
    current = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        func_match = _FUNC_RE.match(line)
        if func_match:
            if current is not None:
                functions.append(current.func.verify())
            params = tuple(_operands(func_match.group(2)))
            current = _FunctionParser(func_match.group(1), params)
            continue
        if current is None:
            raise ParseError(line_no, "code before any 'func' header")
        label = _LABEL_RE.match(line)
        if label and not is_known(label.group(1)):
            current.open_block(label.group(1), line_no)
            continue
        current.parse_line(line, line_no)
    if current is not None:
        functions.append(current.func.verify())
    if not functions:
        raise ParseError(0, "no functions found")
    return functions


def parse_program(text, name="parsed", data=None):
    """Parse assembly text into a :class:`~repro.ir.program.Program`."""
    program = Program(name, data=data)
    for func in parse_functions(text):
        program.add_function(func)
    return program.verify()
