"""IR functions and basic blocks.

An :class:`IRFunction` is an ordered collection of labelled
:class:`BasicBlock` objects plus an entry label and parameter list.
Each block holds straight-line :class:`~repro.ir.instr.IRInstr` bodies
and exactly one terminator.  ``verify`` enforces the structural rules
the rest of the library depends on (every target exists, terminators
are last, conditional branches carry a fallthrough, ...).
"""

from ..errors import IRError, VerificationError
from .instr import IRInstr


class BasicBlock:
    """A labelled basic block: body instructions + one terminator."""

    __slots__ = ("label", "body", "terminator", "annotations")

    def __init__(self, label):
        self.label = str(label)
        self.body = []
        self.terminator = None
        #: Free-form pass metadata (e.g. loop trip counts).
        self.annotations = {}

    def append(self, instr):
        """Append a body instruction (terminators go via ``terminate``)."""
        if instr.is_terminator:
            raise IRError("use terminate() for terminators")
        if self.terminator is not None:
            raise IRError("block {} already terminated".format(self.label))
        self.body.append(instr)
        return instr

    def terminate(self, instr):
        """Set the block terminator."""
        if not instr.is_terminator:
            raise IRError("{} is not a terminator".format(instr.op))
        if self.terminator is not None:
            raise IRError("block {} already terminated".format(self.label))
        self.terminator = instr
        return instr

    @property
    def instructions(self):
        """Body plus terminator, in program order."""
        if self.terminator is None:
            return list(self.body)
        return list(self.body) + [self.terminator]

    def successors(self):
        """Labels of successor blocks."""
        if self.terminator is None or self.terminator.is_return:
            return ()
        return self.terminator.targets

    def __repr__(self):
        return "BasicBlock({!r}, {} instrs)".format(
            self.label, len(self.instructions))

    def pretty(self):
        """Assembly-like multi-line rendering."""
        lines = ["{}:".format(self.label)]
        for instr in self.instructions:
            lines.append("  " + instr.pretty())
        return "\n".join(lines)


class IRFunction:
    """A function: parameters, ordered basic blocks, entry label."""

    def __init__(self, name, params=()):
        self.name = str(name)
        self.params = tuple(params)
        self._blocks = {}
        self._order = []
        self.entry = None

    # -- block management -------------------------------------------------

    def add_block(self, label):
        """Create and register an empty block with the given label."""
        if label in self._blocks:
            raise IRError("duplicate block label {!r}".format(label))
        block = BasicBlock(label)
        self._blocks[label] = block
        self._order.append(label)
        if self.entry is None:
            self.entry = label
        return block

    def block(self, label):
        """Look up a block by label."""
        try:
            return self._blocks[label]
        except KeyError:
            raise IRError("no block labelled {!r}".format(label)) from None

    def has_block(self, label):
        """True when a block with that label exists."""
        return label in self._blocks

    @property
    def blocks(self):
        """Blocks in insertion order."""
        return [self._blocks[label] for label in self._order]

    @property
    def labels(self):
        """Block labels in insertion order."""
        return list(self._order)

    def remove_block(self, label):
        """Delete a block (caller must have rewired all references)."""
        if label == self.entry:
            raise IRError("cannot remove the entry block")
        del self._blocks[label]
        self._order.remove(label)

    # -- derived structure -------------------------------------------------

    def cfg_edges(self):
        """Yield ``(src_label, dst_label)`` CFG edges."""
        for block in self.blocks:
            for succ in block.successors():
                yield (block.label, succ)

    def predecessors(self):
        """Map label → sorted list of predecessor labels."""
        preds = {label: [] for label in self._order}
        for src, dst in self.cfg_edges():
            preds[dst].append(src)
        return {label: sorted(ps) for label, ps in preds.items()}

    def instructions(self):
        """All instructions of all blocks, in block order."""
        for block in self.blocks:
            yield from block.instructions

    def virtual_registers(self):
        """Every register name defined or used anywhere."""
        regs = set(self.params)
        for instr in self.instructions():
            regs.update(instr.defs())
            regs.update(instr.uses())
        return regs

    # -- verification -------------------------------------------------------

    def verify(self):
        """Check structural invariants; raise VerificationError on failure."""
        if self.entry is None:
            raise VerificationError("{}: function has no blocks".format(self.name))
        for block in self.blocks:
            if block.terminator is None:
                raise VerificationError(
                    "{}: block {} lacks a terminator".format(self.name, block.label))
            for instr in block.body:
                if instr.is_terminator:
                    raise VerificationError(
                        "{}: terminator in body of {}".format(self.name, block.label))
            for target in block.successors():
                if target not in self._blocks:
                    raise VerificationError(
                        "{}: branch to unknown block {!r}".format(self.name, target))
            term = block.terminator
            if term.is_conditional and len(term.targets) != 2:
                raise VerificationError(
                    "{}: conditional branch in {} needs 2 targets".format(
                        self.name, block.label))
            if term.op == "j" and len(term.targets) != 1:
                raise VerificationError(
                    "{}: jump in {} needs exactly 1 target".format(
                        self.name, block.label))
        return self

    def clone(self):
        """Deep-ish copy (instructions are immutable value objects)."""
        copy = IRFunction(self.name, self.params)
        for block in self.blocks:
            new = copy.add_block(block.label)
            new.annotations = dict(block.annotations)
            for instr in block.body:
                new.append(instr)
            if block.terminator is not None:
                new.terminate(block.terminator)
        copy.entry = self.entry
        return copy

    def pretty(self):
        """Assembly-like multi-line rendering."""
        header = "func {}({})".format(self.name, ", ".join(self.params))
        return "\n".join([header] + [b.pretty() for b in self.blocks])

    def __repr__(self):
        return "IRFunction({!r}, {} blocks)".format(self.name, len(self._order))
