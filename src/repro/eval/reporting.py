"""ASCII rendering of the experiment results in the figures' layout."""


def _column_label(column):
    algo, ports, issue, opt = column
    return "{} ({}, {}IS, {})".format(algo, ports, issue, opt)


def render_stacked_figure(rows, level_header, title):
    """Figs. 5.2.1/5.2.2: one line per X-axis column, one numeric cell
    per stacked level (area budget or ISE count)."""
    levels = sorted(next(iter(rows.values())).keys())
    header = "{:28s}".format("configuration")
    header += "".join("{:>12}".format(
        "{}{}".format(level_header, lvl)) for lvl in levels)
    lines = [title, header, "-" * len(header)]
    for column in rows:
        cells = rows[column]
        line = "{:28s}".format(_column_label(column))
        line += "".join("{:>11.2f}%".format(cells[lvl]) for lvl in levels)
        lines.append(line)
    return "\n".join(lines)


def render_area_vs_reduction(series, title):
    """Fig. 5.2.3: per algorithm, area cost and reduction per #ISEs."""
    lines = [title,
             "{:>8} {:>6} {:>16} {:>12}".format(
                 "algo", "#ISEs", "area (um2)", "reduction")]
    lines.append("-" * 46)
    for algo, points in series.items():
        for count, area, red in points:
            lines.append("{:>8} {:>6} {:>16.0f} {:>11.2f}%".format(
                algo, count, area, red))
    return "\n".join(lines)


def render_headline(name, paper_triple, measured_triple, per_case):
    """Abstract headline: paper vs measured (max/min/avg) + breakdown."""
    lines = [name]
    lines.append("  paper    max={:6.2f}%  min={:6.2f}%  avg={:6.2f}%".format(
        *paper_triple))
    lines.append("  measured max={:6.2f}%  min={:6.2f}%  avg={:6.2f}%".format(
        *measured_triple))
    for label in sorted(per_case):
        lines.append("    {:20s} {:6.2f}%".format(label, per_case[label]))
    return "\n".join(lines)


def render_per_workload(table, title):
    """Per-benchmark breakdown: one row per workload, MI/SI cells."""
    algos = sorted(next(iter(table.values())).keys())
    header = "{:10s}".format("workload")
    for algo in algos:
        header += "{:>12} {:>6} {:>10}".format(
            algo + " red.", "#ISE", "area")
    lines = [title, header, "-" * len(header)]
    for name in table:
        line = "{:10s}".format(name)
        for algo in algos:
            red, count, area = table[name][algo]
            line += "{:>11.2f}% {:>6} {:>10.0f}".format(red, count, area)
        lines.append(line)
    return "\n".join(lines)


def render_table_5_1_1(database):
    """Table 5.1.1: the hardware implementation-option settings."""
    lines = ["Table 5.1.1: hardware implementation option settings",
             "{:28s} {:>12} {:>12}".format("operation", "delay (ns)",
                                           "area (um2)")]
    lines.append("-" * 54)
    for group, points in database.rows():
        label = " ".join(group)
        for delay, area in points:
            lines.append("{:28s} {:>12.2f} {:>12.2f}".format(
                label, delay, area))
            label = ""
    return "\n".join(lines)
