"""The chapter-5 experiments (Figs. 5.2.1-5.2.3 and the headlines).

Each function regenerates one paper artefact as structured rows; the
:mod:`repro.eval.reporting` helpers render them in the figures' layout.
The figure grids follow §5.2:

* X axis labels ``MI/SI (ports, issue, opt)`` over the six machine
  cases × two optimisation levels;
* Fig. 5.2.1 stacks area budgets 20k…320k µm²;
* Fig. 5.2.2 stacks ISE-count budgets 1…32;
* Fig. 5.2.3 plots area cost vs reduction over the ISE-count sweep;
* the abstract headlines summarise (max, min, avg) over the cases.
"""

from ..config import ISEConstraints
from ..sched.machine import PAPER_CASES
from .metrics import summarize
from .runner import EvalContext, machine_for_case

AREA_BUDGETS = (20_000, 40_000, 80_000, 160_000, 320_000)
ISE_COUNTS = (1, 2, 4, 8, 16, 32)
OPT_LEVELS = ("O0", "O3")
ALGORITHMS = ("MI", "SI")


def _case_columns(cases=PAPER_CASES, opts=OPT_LEVELS, algos=ALGORITHMS):
    """The figure's X-axis columns: (algo, ports, issue, opt)."""
    for algo in algos:
        for ports, issue in cases:
            for opt in opts:
                yield (algo, ports, issue, opt)


def figure_5_2_1(ctx=None, budgets=AREA_BUDGETS, cases=PAPER_CASES,
                 opts=OPT_LEVELS, algos=ALGORITHMS):
    """Execution-time reduction under silicon-area constraints.

    Returns ``{(algo, ports, issue, opt): {budget: avg_reduction_pct}}``.
    """
    ctx = ctx or EvalContext()
    rows = {}
    for algo, ports, issue, opt in _case_columns(cases, opts, algos):
        machine = machine_for_case(ports, issue)
        per_budget = {}
        for budget in budgets:
            per_budget[budget] = ctx.average_reduction(
                machine, opt, algo, ISEConstraints(max_area=budget))
        rows[(algo, ports, issue, opt)] = per_budget
    return rows


def figure_5_2_2(ctx=None, counts=ISE_COUNTS, cases=PAPER_CASES,
                 opts=OPT_LEVELS, algos=ALGORITHMS):
    """Execution-time reduction for different numbers of ISEs.

    Returns ``{(algo, ports, issue, opt): {count: avg_reduction_pct}}``.
    """
    ctx = ctx or EvalContext()
    rows = {}
    for algo, ports, issue, opt in _case_columns(cases, opts, algos):
        machine = machine_for_case(ports, issue)
        per_count = {}
        for count in counts:
            per_count[count] = ctx.average_reduction(
                machine, opt, algo, ISEConstraints(max_ises=count))
        rows[(algo, ports, issue, opt)] = per_count
    return rows


def figure_5_2_3(ctx=None, counts=ISE_COUNTS, ports="4/2", issue=2,
                 opt="O3", algos=ALGORITHMS):
    """Silicon-area cost vs execution-time reduction (one machine).

    Returns ``{algo: [(count, avg_area_um2, avg_reduction_pct), ...]}``.
    """
    ctx = ctx or EvalContext()
    machine = machine_for_case(ports, issue)
    series = {}
    for algo in algos:
        points = []
        for count in counts:
            constraints = ISEConstraints(max_ises=count)
            area = ctx.average_area(machine, opt, algo, constraints)
            red = ctx.average_reduction(machine, opt, algo, constraints)
            points.append((count, area, red))
        series[algo] = points
    return series


def headline_single_ise(ctx=None, cases=PAPER_CASES, opts=OPT_LEVELS):
    """Abstract headline H1: reduction with exactly one ISE vs no ISE.

    Paper: 17.17 / 12.9 / 14.79 % (max / min / avg over the cases).
    Returns ``((max, min, avg), {case_label: avg_reduction_pct})``.
    """
    ctx = ctx or EvalContext()
    per_case = {}
    for ports, issue in cases:
        machine = machine_for_case(ports, issue)
        for opt in opts:
            value = ctx.average_reduction(
                machine, opt, "MI", ISEConstraints(max_ises=1))
            per_case["{} {}".format(machine.label, opt)] = value
    return summarize(per_case.values()), per_case


def per_workload_table(ctx=None, ports="4/2", issue=2, opt="O3",
                       algos=ALGORITHMS, budget=80_000):
    """Per-benchmark breakdown on one machine (thesis-style table).

    Returns ``{workload: {algo: (reduction_pct, num_ises, area)}}``.
    """
    ctx = ctx or EvalContext()
    machine = machine_for_case(ports, issue)
    constraints = ISEConstraints(max_area=budget)
    table = {}
    for name in ctx.workload_names:
        row = {}
        for algo in algos:
            report = ctx.report(name, machine, opt, algo, constraints)
            row[algo] = (100.0 * report.reduction, report.num_ises,
                         report.area)
        table[name] = row
    return table


def headline_vs_baseline(ctx=None, cases=PAPER_CASES, opts=OPT_LEVELS,
                         budgets=AREA_BUDGETS):
    """Abstract headline H2: MI minus SI under equal area budgets.

    Paper: 11.39 / 2.87 / 7.16 % further reduction (max / min / avg).
    Returns ``((max, min, avg), {case_label: avg_gap_pct})``.
    """
    ctx = ctx or EvalContext()
    per_case = {}
    for ports, issue in cases:
        machine = machine_for_case(ports, issue)
        for opt in opts:
            gaps = []
            for budget in budgets:
                constraints = ISEConstraints(max_area=budget)
                mi = ctx.average_reduction(machine, opt, "MI", constraints)
                si = ctx.average_reduction(machine, opt, "SI", constraints)
                gaps.append(mi - si)
            per_case["{} {}".format(machine.label, opt)] = (
                sum(gaps) / len(gaps))
    return summarize(per_case.values()), per_case
