"""Experiment runner with cached exploration.

Exploration (ACO, per workload × machine × opt-level × algorithm) is
the expensive part of every chapter-5 experiment, while budget sweeps
(area, ISE count) only redo selection + replacement.  The
:class:`EvalContext` caches :class:`~repro.core.flow.ExploredApplication`
bundles so one pytest session regenerates all three figures from a
single exploration pass.

Effort profiles trade fidelity for wall-clock:

* ``quick``  — iterations=80, 1 restart, 4 hot blocks (default; the
  qualitative shape of every figure is stable at this effort),
* ``normal`` — iterations=120, 2 restarts, 6 hot blocks,
* ``full``   — the paper's §5.1 settings (400 iterations to
  convergence, 5 restarts).

Select via ``EvalContext(profile=...)`` or the ``REPRO_EVAL_PROFILE``
environment variable.
"""

import logging
import os
import threading

from ..baselines import greedy_explorer_factory, si_explorer_factory
from ..config import ExplorationParams, ISEConstraints
from ..core.flow import ISEDesignFlow
from ..dist.client import remote_cache, remote_counters
from ..errors import ReproError
from ..obs import ensure_observer
from ..sched.machine import MachineConfig
from ..workloads import all_workloads, get_workload
from .persistence import ExplorationCache

logger = logging.getLogger("repro.eval")

PROFILES = {
    "quick": dict(max_iterations=80, restarts=1, max_rounds=12,
                  max_blocks=4),
    "normal": dict(max_iterations=120, restarts=2, max_rounds=12,
                   max_blocks=6),
    "full": dict(max_iterations=400, restarts=5, max_rounds=16,
                 max_blocks=8),
}

ALGORITHMS = ("MI", "SI", "GREEDY")


def default_profile():
    """Effort profile from REPRO_EVAL_PROFILE (or quick)."""
    return os.environ.get("REPRO_EVAL_PROFILE", "quick")


class EvalContext:
    """Caches explorations; serves budget-sweep evaluations."""

    def __init__(self, profile=None, seed=7, workload_names=None,
                 jobs=None, disk_cache=None, obs=None):
        profile = profile or default_profile()
        if profile not in PROFILES:
            raise ReproError(
                "unknown profile {!r}; choose from {}".format(
                    profile, sorted(PROFILES)))
        self.profile = profile
        self.seed = seed
        self.jobs = jobs
        settings = PROFILES[profile]
        self.params = ExplorationParams(
            max_iterations=settings["max_iterations"],
            restarts=settings["restarts"],
            max_rounds=settings["max_rounds"])
        self.max_blocks = settings["max_blocks"]
        if workload_names is None:
            workload_names = [w.name for w in all_workloads()]
        self.workload_names = list(workload_names)
        if not self.workload_names:
            raise ReproError(
                "EvalContext needs at least one workload; got an empty "
                "workload_names list")
        self.obs = ensure_observer(obs)
        self.disk_cache = ExplorationCache(obs=self.obs) \
            if disk_cache is None else disk_cache
        self._cache = {}
        self._programs = {}
        # In-process memoisation tallies — previously invisible (the
        # "cache stats" bugfix): surfaced via cache_stats(), the
        # ``cache.memory_*`` metrics counters and close()'s summary.
        self.memory_hits = 0
        self.memory_misses = 0
        # Remote-tier baseline: the client's tallies are process-wide,
        # so this context's contribution is the delta since creation.
        self._remote_baseline = remote_counters()
        self._closed = False
        self._close_lock = threading.Lock()

    # -- plumbing ---------------------------------------------------------

    def _program(self, workload_name):
        if workload_name not in self._programs:
            self._programs[workload_name] = get_workload(workload_name).build()
        return self._programs[workload_name]

    def _flow(self, machine, algorithm):
        factory = None
        if algorithm == "SI":
            factory = si_explorer_factory
        elif algorithm == "GREEDY":
            factory = greedy_explorer_factory
        elif algorithm != "MI":
            raise ReproError("unknown algorithm {!r}".format(algorithm))
        return ISEDesignFlow(
            machine, params=self.params, seed=self.seed,
            max_blocks=self.max_blocks, explorer_factory=factory,
            jobs=self.jobs, obs=self.obs)

    def _disk_key(self, workload_name, machine, opt_level, algorithm):
        return self.disk_cache.key(
            workload=workload_name, machine=machine.label,
            opt=opt_level, algorithm=algorithm, profile=self.profile,
            params=vars(self.params), seed=self.seed,
            max_blocks=self.max_blocks)

    def explored(self, workload_name, machine, opt_level, algorithm="MI"):
        """Cached ``(flow, ExploredApplication)`` for one cell.

        Results are memoised in-process and, unless ``REPRO_CACHE=0``,
        persisted to disk keyed by every input that determines the
        exploration outcome — so a second session with identical
        settings skips the ACO runs entirely.
        """
        key = (workload_name, machine.label, opt_level, algorithm)
        obs = self.obs
        if key not in self._cache:
            self.memory_misses += 1
            if obs:
                obs.count("cache.memory_miss")
            flow = self._flow(machine, algorithm)
            disk_key = self._disk_key(
                workload_name, machine, opt_level, algorithm)
            explored = self.disk_cache.load(disk_key)
            if explored is None:
                program, args = self._program(workload_name)
                with obs.timer("eval.explore"):
                    explored = flow.explore_application(
                        program, args=args, opt_level=opt_level)
                self.disk_cache.store(disk_key, explored)
            self._cache[key] = (flow, explored)
        else:
            self.memory_hits += 1
            if obs:
                obs.count("cache.memory_hit")
        return self._cache[key]

    # -- cache stats / teardown -------------------------------------------

    def cache_stats(self):
        """Hit/miss tallies of every cache layer this context touched.

        ``memory`` and ``disk`` are this context's own; ``remote_*``
        fields are the process-wide client tallies *since this context
        was created* (all zero when ``REPRO_REMOTE_CACHE`` is unset).
        """
        disk = self.disk_cache
        stats = {
            "memory_hits": self.memory_hits,
            "memory_misses": self.memory_misses,
            "disk_hits": getattr(disk, "hits", 0),
            "disk_misses": getattr(disk, "misses", 0),
            "disk_stores": getattr(disk, "stores", 0),
            "disk_evictions": getattr(disk, "evictions", 0),
        }
        current = remote_counters()
        for name in ("hits", "misses", "puts", "errors"):
            stats["remote_" + name] = \
                current[name] - self._remote_baseline[name]
        return stats

    def close(self):
        """Log a cache summary and release the worker pool (idempotent).

        Tearing down the persistent :mod:`repro.core.pool` here unlinks
        its shared-memory segments (broadcast + shared evalcache) — the
        ``atexit`` hook only backstops contexts that are never closed.
        A configured remote tier gets its insert log flushed and its
        delta tallies recorded as ``remote.*`` counters.

        Idempotent *and* thread-safe: a server's lifecycle teardown can
        race a request handler's ``with EvalContext(...)`` exit, so the
        first caller wins and later (or concurrent) calls return
        immediately.  The pool teardown itself is ordering-safe — see
        :func:`repro.core.pool.shutdown_pools`.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        stats = self.cache_stats()
        logger.info(
            "EvalContext cache: memory %d hit(s) / %d miss(es), "
            "disk %d hit(s) / %d miss(es) / %d store(s), "
            "remote %d hit(s) / %d miss(es)",
            stats["memory_hits"], stats["memory_misses"],
            stats["disk_hits"], stats["disk_misses"], stats["disk_stores"],
            stats["remote_hits"], stats["remote_misses"])
        obs = self.obs
        if obs:
            obs.event("eval.cache_summary", **stats)
            for name in ("hits", "misses", "puts", "errors"):
                if stats["remote_" + name]:
                    obs.count("remote." + name, stats["remote_" + name])
        remote = remote_cache()
        if remote is not None:
            remote.flush()
        from ..core.pool import shutdown_pools

        shutdown_pools()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- metrics -------------------------------------------------------------

    def report(self, workload_name, machine, opt_level, algorithm,
               constraints):
        """Full FlowReport for one grid cell under ``constraints``."""
        flow, explored = self.explored(
            workload_name, machine, opt_level, algorithm)
        return flow.evaluate(explored, constraints)

    def reduction(self, workload_name, machine, opt_level, algorithm,
                  constraints):
        """Execution-time reduction in percent for one cell."""
        return 100.0 * self.report(
            workload_name, machine, opt_level, algorithm,
            constraints).reduction

    def average_reduction(self, machine, opt_level, algorithm, constraints):
        """Mean reduction over the workload suite (one figure bar)."""
        values = [
            self.reduction(name, machine, opt_level, algorithm, constraints)
            for name in self.workload_names
        ]
        return sum(values) / len(values)

    def average_area(self, machine, opt_level, algorithm, constraints):
        """Mean selected-ASFU area over the workload suite."""
        values = [
            self.report(name, machine, opt_level, algorithm,
                        constraints).area
            for name in self.workload_names
        ]
        return sum(values) / len(values)


def machine_for_case(ports, issue):
    """Machine of one §5.1 case, e.g. ``machine_for_case("4/2", 2)``."""
    return MachineConfig(issue, ports)


def area_constraint(budget):
    """Shorthand for ``ISEConstraints(max_area=budget)``."""
    return ISEConstraints(max_area=budget)


def count_constraint(count):
    """Shorthand for ``ISEConstraints(max_ises=count)``."""
    return ISEConstraints(max_ises=count)
