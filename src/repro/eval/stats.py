"""Exploration statistics for research reporting.

Summarises what exploration actually produced — candidate sizes, ASFU
latencies, option mix (fast vs small design points), opcode
composition — so claims like "the explorer prefers cheap options off
the critical path" can be checked quantitatively rather than by
eyeballing candidate dumps.
"""

from collections import Counter


class ExplorationStats:
    """Aggregated statistics over a set of ISE candidates."""

    def __init__(self, candidates):
        self.candidates = list(candidates)

    @property
    def count(self):
        """Number of candidates summarised."""
        return len(self.candidates)

    def size_histogram(self):
        """Counter: candidate size (ops) → how many candidates."""
        return Counter(c.size for c in self.candidates)

    def cycle_histogram(self):
        """Counter: ASFU latency in cycles → how many candidates."""
        return Counter(c.cycles for c in self.candidates)

    def opcode_mix(self):
        """Counter: opcode → total instances across all candidates."""
        mix = Counter()
        for candidate in self.candidates:
            for uid in candidate.members:
                mix[candidate.dfg.op(uid).name] += 1
        return mix

    def option_mix(self):
        """Counter: option label → chosen instances (HW-1 vs HW-2...)."""
        mix = Counter()
        for candidate in self.candidates:
            for option in candidate.option_of.values():
                mix[option.label] += 1
        return mix

    def total_area(self):
        """Summed candidate ASFU area."""
        return sum(c.area for c in self.candidates)

    def total_operations(self):
        """Summed member counts."""
        return sum(c.size for c in self.candidates)

    def mean_size(self):
        """Average operations per candidate."""
        if not self.candidates:
            return 0.0
        return self.total_operations() / self.count

    def fast_option_fraction(self):
        """Fraction of members realized with the fastest design point of
        their opcode (1.0 when every choice is speed-greedy)."""
        fast = total = 0
        for candidate in self.candidates:
            for uid in candidate.members:
                total += 1
                option = candidate.option_of[uid]
                name = candidate.dfg.op(uid).name
                from ..hwlib.database import DEFAULT_DATABASE
                options = DEFAULT_DATABASE.hardware_options(name)
                if not options:
                    continue
                fastest = min(options, key=lambda o: o.delay_ns)
                if option.delay_ns <= fastest.delay_ns:
                    fast += 1
        return fast / total if total else 0.0

    def summary(self):
        """One-paragraph text report."""
        if not self.candidates:
            return "no candidates"
        lines = [
            "{} candidates, {} operations total "
            "(mean size {:.1f}), {:.0f} um2".format(
                self.count, self.total_operations(), self.mean_size(),
                self.total_area()),
            "sizes: " + _histo(self.size_histogram()),
            "latencies: " + _histo(self.cycle_histogram(), "cyc"),
            "opcodes: " + _histo(self.opcode_mix()),
            "options: " + _histo(self.option_mix())
            + "  (fast-point fraction {:.0%})".format(
                self.fast_option_fraction()),
        ]
        return "\n".join(lines)


def _histo(counter, suffix=""):
    return ", ".join("{}{}×{}".format(key, suffix, count)
                     for key, count in sorted(counter.items(),
                                              key=lambda kv: str(kv[0])))


def stats_of(explored):
    """Stats over an :class:`~repro.core.flow.ExploredApplication`."""
    return ExplorationStats(explored.candidates)
