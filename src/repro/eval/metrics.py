"""Metric helpers for the chapter-5 experiments."""

import math

from ..errors import ReproError


def reduction_percent(base_cycles, final_cycles):
    """Execution-time reduction in percent (the figures' Y axis)."""
    if base_cycles <= 0:
        raise ReproError("baseline cycles must be positive")
    return 100.0 * (1.0 - final_cycles / base_cycles)


def arithmetic_mean(values):
    """Plain average of the values."""
    values = list(values)
    if not values:
        raise ReproError("mean of empty sequence")
    return sum(values) / len(values)


def geometric_mean(values):
    """Geometric mean (arithmetic fallback at zeros)."""
    values = list(values)
    if not values:
        raise ReproError("mean of empty sequence")
    if any(v <= 0 for v in values):
        # Reductions can legitimately be 0%; fall back to arithmetic.
        return arithmetic_mean(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))


def summarize(values):
    """(max, min, avg) triple — the abstract's reporting format."""
    values = list(values)
    if not values:
        raise ReproError("summary of empty sequence")
    return max(values), min(values), arithmetic_mean(values)
