"""Saving and loading experiment results as JSON.

The chapter-5 grid takes minutes to explore; these helpers serialise
the *outcomes* — figure rows, headline summaries, per-candidate
metadata — so notebooks and CI can diff runs without recomputing.
Candidates serialise by structure (members, opcodes, option labels,
timing/area), which is enough to reconstruct reports and to compare
exploration runs; the DFG itself is reproducible from the workload
name.
"""

import hashlib
import json
import os
import pickle

from ..dist.client import remote_cache
from ..errors import ReproError
from ..obs import ensure_observer

#: Set to ``0`` to disable the on-disk exploration cache.
CACHE_ENV = "REPRO_CACHE"
#: Overrides the cache directory (default ``./.repro_cache``).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: LRU byte bound over the cache directory (unset/0 = unbounded).
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: Bump when the pickled ``ExploredApplication`` layout changes; stale
#: schema versions simply miss instead of unpickling garbage.
_CACHE_SCHEMA = 2

#: Remote-tier key prefix for exploration bundles, keeping them apart
#: from the evalcache's scope-qualified cycle keys in the same server.
_REMOTE_PREFIX = b"explored|"


def _max_bytes_from_env():
    text = os.environ.get(CACHE_MAX_BYTES_ENV, "").strip()
    if not text:
        return None
    try:
        limit = int(text)
    except ValueError:
        return None
    return limit if limit > 0 else None


class ExplorationCache:
    """On-disk cache of :class:`~repro.core.flow.ExploredApplication`.

    Exploration dominates every evaluation sweep, yet its result is a
    pure function of (workload, machine, opt level, algorithm,
    exploration parameters, seed).  This cache pickles the explored
    bundle under a digest of exactly those inputs so repeated pytest
    sessions, CLI runs and notebooks skip straight to selection.

    Enabled by default; set ``REPRO_CACHE=0`` to disable, or
    ``REPRO_CACHE_DIR`` to relocate from ``./.repro_cache``.  Stale
    entries are invalidated by their key: any change to the parameters
    (or to ``_CACHE_SCHEMA`` on layout changes) produces a different
    digest, and corrupt or unreadable files are treated as misses.

    ``REPRO_CACHE_MAX_BYTES`` (or ``max_bytes=``) bounds the cache
    directory: after every store, least-recently-*used* entries (file
    mtime, refreshed on hit) are evicted until the directory fits the
    budget again.  The entry just written is never its own victim, so
    one oversized bundle still caches.

    When the remote tier is configured (``REPRO_REMOTE_CACHE``) the
    disk cache also writes bundles through to the cache server and
    falls back to it on a local miss — a sweep shard can then serve
    whole explorations another host already paid for.  Remote hits are
    promoted onto the local disk; all remote traffic is best-effort.
    """

    def __init__(self, directory=None, enabled=None, obs=None,
                 max_bytes=None):
        if enabled is None:
            enabled = os.environ.get(CACHE_ENV, "1").strip().lower() \
                not in ("0", "false", "no", "off")
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV, ".repro_cache")
        self.directory = directory
        self.enabled = enabled
        self.max_bytes = max_bytes if max_bytes is not None \
            else _max_bytes_from_env()
        self.obs = ensure_observer(obs)
        # Always-on tallies: hit/miss/store counts were previously
        # invisible; they surface through ``stats`` and the
        # ``cache.disk_*`` metrics counters.
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.stored_bytes = 0
        self.evictions = 0
        self.remote_hits = 0
        self.remote_stores = 0

    @property
    def stats(self):
        """Hit/miss/store tallies of this cache instance."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "stored_bytes": self.stored_bytes,
                "evictions": self.evictions,
                "remote_hits": self.remote_hits,
                "remote_stores": self.remote_stores}

    @staticmethod
    def key(**fields):
        """Stable digest of the exploration inputs.

        ``fields`` must be JSON-able (params objects can be passed as
        their ``vars()`` dict); the schema version is mixed in so
        layout bumps invalidate every old entry at once.
        """
        fields["_schema"] = _CACHE_SCHEMA
        text = json.dumps(fields, sort_keys=True, default=repr)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]

    def path_for(self, key):
        """File backing one cache entry."""
        return os.path.join(self.directory, key + ".pkl")

    def load(self, key):
        """The cached payload, or ``None`` on any kind of miss.

        Tier order: local disk first (a hit refreshes the file's LRU
        recency), then the remote cache server when one is configured;
        a remote hit is unpickled defensively, promoted onto the local
        disk and served.
        """
        if not self.enabled:
            return None
        obs = self.obs
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            payload = None
        if payload is not None:
            self.hits += 1
            try:
                os.utime(path)         # LRU recency for the byte bound
            except OSError:
                pass
            if obs:
                obs.count("cache.disk_hit")
                obs.event("cache", op="load", status="hit", key=key)
            return payload
        payload = self._load_remote(key)
        if payload is not None:
            return payload
        self.misses += 1
        if obs:
            obs.count("cache.disk_miss")
            obs.event("cache", op="load", status="miss", key=key)
        return None

    def _load_remote(self, key):
        """Remote fallback: fetch, unpickle defensively, promote."""
        remote = remote_cache()
        if remote is None:
            return None
        blob = remote.get_blob(_REMOTE_PREFIX + key.encode())
        if blob is None:
            return None
        try:
            payload = pickle.loads(blob)
        except Exception:
            # A corrupt or stale-schema blob is a miss, never a crash.
            return None
        self.remote_hits += 1
        obs = self.obs
        if obs:
            obs.count("remote.disk_hit")
            obs.event("cache", op="load", status="remote_hit", key=key)
        self._write_file(key, blob)
        return payload

    def store(self, key, payload):
        """Atomically persist ``payload`` under ``key`` (all tiers)."""
        if not self.enabled:
            return
        self.stores += 1
        obs = self.obs
        if obs:
            obs.count("cache.disk_store")
            obs.event("cache", op="store", status="store", key=key)
        try:
            blob = pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
        except Exception:
            return                     # unpicklable payloads never cache
        self._write_file(key, blob, count_bytes=True)
        remote = remote_cache()
        if remote is not None and remote.put_blob(
                _REMOTE_PREFIX + key.encode(), blob):
            self.remote_stores += 1
            if obs:
                obs.count("remote.disk_store")

    def _write_file(self, key, blob, count_bytes=False):
        """Best-effort atomic write of one entry, then LRU eviction."""
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(key)
        scratch = path + ".tmp.{}".format(os.getpid())
        try:
            with open(scratch, "wb") as handle:
                handle.write(blob)
            os.replace(scratch, path)
            if count_bytes:
                # Sizing signal for the docs' cache-footprint guidance
                # and the ``cache.disk_bytes`` counter.
                self.stored_bytes += len(blob)
                if self.obs:
                    self.obs.count("cache.disk_bytes", len(blob))
        except OSError:
            # Caching is best-effort: an unwritable directory must not
            # fail the evaluation that produced the payload.
            if os.path.exists(scratch):
                try:
                    os.remove(scratch)
                except OSError:
                    pass
            return
        self._evict_to_budget(keep=path)

    def _evict_to_budget(self, keep):
        """Drop least-recently-used entries until the budget fits."""
        if self.max_bytes is None:
            return
        entries = []
        try:
            with os.scandir(self.directory) as scan:
                for entry in scan:
                    if not entry.name.endswith(".pkl"):
                        continue
                    try:
                        stat = entry.stat()
                    except OSError:
                        continue
                    entries.append((stat.st_mtime, stat.st_size,
                                    entry.path))
        except OSError:
            return
        total = sum(size for __, size, ___ in entries)
        keep = os.path.abspath(keep)
        obs = self.obs
        for __, size, path in sorted(entries):
            if total <= self.max_bytes:
                break
            if os.path.abspath(path) == keep:
                continue               # the fresh entry never self-evicts
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            self.evictions += 1
            if obs:
                obs.count("cache.disk_evictions")


def candidate_record(candidate):
    """JSON-able description of one ISE candidate."""
    return {
        "source": candidate.source,
        "members": sorted(candidate.members),
        "opcodes": {str(uid): candidate.dfg.op(uid).name
                    for uid in sorted(candidate.members)},
        "options": {str(uid): candidate.option_of[uid].label
                    for uid in sorted(candidate.members)},
        "delay_ns": candidate.delay_ns,
        "cycles": candidate.cycles,
        "area": candidate.area,
        "cycle_saving": candidate.cycle_saving,
        "weighted_saving": candidate.weighted_saving,
        "num_inputs": candidate.num_inputs(),
        "num_outputs": candidate.num_outputs(),
    }


def report_record(report):
    """JSON-able description of one :class:`FlowReport`."""
    return {
        "baseline_cycles": report.baseline_cycles,
        "final_cycles": report.final_cycles,
        "reduction": report.reduction,
        "num_ises": report.num_ises,
        "area": report.area,
        "selected": [candidate_record(entry.representative)
                     for entry in report.selection.selected],
    }


def figure_record(rows):
    """JSON-able form of a Fig 5.2.1/5.2.2-style row mapping."""
    return [
        {
            "algorithm": algo,
            "ports": ports,
            "issue": issue,
            "opt": opt,
            "cells": {str(level): value for level, value in cells.items()},
        }
        for (algo, ports, issue, opt), cells in rows.items()
    ]


def load_figure(records):
    """Inverse of :func:`figure_record`."""
    rows = {}
    for record in records:
        key = (record["algorithm"], record["ports"], record["issue"],
               record["opt"])
        rows[key] = {_level(level): value
                     for level, value in record["cells"].items()}
    return rows


def _level(text):
    try:
        return int(text)
    except ValueError:
        raise ReproError("malformed figure level {!r}".format(text)) from None


def save_json(path, payload):
    """Write any JSON-able payload with stable formatting."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path):
    """Read a JSON payload written by :func:`save_json`."""
    with open(path) as handle:
        return json.load(handle)
