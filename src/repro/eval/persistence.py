"""Saving and loading experiment results as JSON.

The chapter-5 grid takes minutes to explore; these helpers serialise
the *outcomes* — figure rows, headline summaries, per-candidate
metadata — so notebooks and CI can diff runs without recomputing.
Candidates serialise by structure (members, opcodes, option labels,
timing/area), which is enough to reconstruct reports and to compare
exploration runs; the DFG itself is reproducible from the workload
name.
"""

import json

from ..errors import ReproError


def candidate_record(candidate):
    """JSON-able description of one ISE candidate."""
    return {
        "source": candidate.source,
        "members": sorted(candidate.members),
        "opcodes": {str(uid): candidate.dfg.op(uid).name
                    for uid in sorted(candidate.members)},
        "options": {str(uid): candidate.option_of[uid].label
                    for uid in sorted(candidate.members)},
        "delay_ns": candidate.delay_ns,
        "cycles": candidate.cycles,
        "area": candidate.area,
        "cycle_saving": candidate.cycle_saving,
        "weighted_saving": candidate.weighted_saving,
        "num_inputs": candidate.num_inputs(),
        "num_outputs": candidate.num_outputs(),
    }


def report_record(report):
    """JSON-able description of one :class:`FlowReport`."""
    return {
        "baseline_cycles": report.baseline_cycles,
        "final_cycles": report.final_cycles,
        "reduction": report.reduction,
        "num_ises": report.num_ises,
        "area": report.area,
        "selected": [candidate_record(entry.representative)
                     for entry in report.selection.selected],
    }


def figure_record(rows):
    """JSON-able form of a Fig 5.2.1/5.2.2-style row mapping."""
    return [
        {
            "algorithm": algo,
            "ports": ports,
            "issue": issue,
            "opt": opt,
            "cells": {str(level): value for level, value in cells.items()},
        }
        for (algo, ports, issue, opt), cells in rows.items()
    ]


def load_figure(records):
    """Inverse of :func:`figure_record`."""
    rows = {}
    for record in records:
        key = (record["algorithm"], record["ports"], record["issue"],
               record["opt"])
        rows[key] = {_level(level): value
                     for level, value in record["cells"].items()}
    return rows


def _level(text):
    try:
        return int(text)
    except ValueError:
        raise ReproError("malformed figure level {!r}".format(text)) from None


def save_json(path, payload):
    """Write any JSON-able payload with stable formatting."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path):
    """Read a JSON payload written by :func:`save_json`."""
    with open(path) as handle:
        return json.load(handle)
