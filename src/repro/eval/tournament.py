"""Engine tournaments: race registered engines under equal budgets.

The fairness contract comes from the engine protocol: every engine
scores candidates through the shared metered
:meth:`~repro.engines.base.ExplorerEngine._evaluate`, so giving each
contestant the same :class:`~repro.engines.base.EvalBudget` per block
equalises the one expensive operation (contraction + list scheduling)
regardless of search style.  Cache hits are free — a search that
revisits known ground pays nothing, which rewards cache-friendly
exploration without letting anyone buy extra *new* evaluations.

:func:`run_tournament` races the engines block-by-block and returns a
:class:`TournamentResult` of per-engine :class:`EngineRow` entries
(best cycles, evaluations used, wall time, cache hit rate);
:func:`render_tournament` pretty-prints the standings and
:func:`tournament_record` flattens them for JSON persistence — the
``BENCH_tourney.json`` artefact of ``benchmarks/test_bench_tourney.py``.

A block where an engine's budget dies before even the baseline
evaluation is scored at the block's (separately computed, unmetered)
baseline cycles and counted in ``exhausted_blocks`` — the engine found
nothing there, but the race goes on.
"""

import time
from dataclasses import dataclass, field

from .. import engines
from ..engines import EvalBudget
from ..errors import BudgetExhausted


@dataclass(frozen=True)
class EngineRow:
    """One engine's standing after a tournament."""

    engine: str
    description: str
    base_cycles: int          # summed no-ISE baselines of all blocks
    best_cycles: int          # summed final cycles achieved
    candidates: int           # ISEs fixed across all blocks
    evaluations: int          # uncached evaluations charged
    budget: int               # per-block EvalBudget limit
    wall_s: float
    cache_hit_rate: float
    exhausted_blocks: int     # blocks the budget died on pre-baseline
    blocks: tuple = field(default=(), repr=False)   # per-block detail

    @property
    def saving(self):
        """Total block cycles saved versus the baselines."""
        return self.base_cycles - self.best_cycles


@dataclass(frozen=True)
class TournamentResult:
    """Full tournament outcome: rows plus the common race conditions."""

    rows: tuple               # EngineRow, best saving first
    budget: int               # per-block evaluation budget
    num_blocks: int

    @property
    def winner(self):
        """The row with the greatest total saving."""
        return self.rows[0]


def run_tournament(dfgs, machine, *, budget, names=None, params=None,
                   constraints=None, technology=None, seed=0, batch=None,
                   obs=None):
    """Race engines over ``dfgs`` under a per-block evaluation budget.

    ``names`` defaults to every registered engine.  Each contestant is
    instantiated once (its evalcache persists across blocks, exactly as
    in real use) and receives a fresh ``EvalBudget(budget)`` per block;
    blocks run serially so the process-local meter sees every charge.
    Returns a :class:`TournamentResult` with rows ordered best first
    (greatest saving, then fewest evaluations, then name).
    """
    dfgs = list(dfgs)
    names = list(names) if names is not None else list(engines.available())
    kwargs = dict(params=params, constraints=constraints,
                  technology=technology, seed=seed, batch=batch, obs=obs)
    baselines = _baseline_cycles(dfgs, machine, **kwargs)
    rows = []
    for name in names:
        engine = engines.create(name, machine, **kwargs)
        finals = []
        fixed = 0
        exhausted = 0
        spent = 0
        detail = []
        start = time.perf_counter()
        for index, dfg in enumerate(dfgs):
            engine.budget = EvalBudget(budget)
            try:
                result = engine.explore(dfg, jobs=1)
                final = result.final_cycles
                fixed += len(result.candidates)
            except BudgetExhausted:
                final = baselines[index]
                exhausted += 1
            spent += engine.budget.spent
            finals.append(final)
            detail.append((dfg.function, dfg.label,
                           baselines[index], final))
        wall = time.perf_counter() - start
        stats = engine.stats()
        rows.append(EngineRow(
            engine=name, description=engines.describe(name),
            base_cycles=sum(baselines), best_cycles=sum(finals),
            candidates=fixed, evaluations=spent, budget=budget,
            wall_s=wall, cache_hit_rate=stats.cache_hit_rate,
            exhausted_blocks=exhausted, blocks=tuple(detail)))
    rows.sort(key=lambda row: (-row.saving, row.evaluations, row.engine))
    return TournamentResult(rows=tuple(rows), budget=budget,
                            num_blocks=len(dfgs))


def _baseline_cycles(dfgs, machine, **kwargs):
    """Unmetered no-ISE cycles per block (the common yard-stick)."""
    probe = engines.create("aco", machine, **kwargs)
    return [probe._evaluate(dfg, [], probe._default_tables(dfg))
            for dfg in dfgs]


def render_tournament(result):
    """Fixed-width standings table of a :class:`TournamentResult`."""
    lines = ["engine tournament: {} block(s), budget {} eval(s)/block"
             .format(result.num_blocks, result.budget)]
    header = ("{:10s} {:>6s} {:>6s} {:>7s} {:>5s} {:>6s} {:>8s} "
              "{:>9s} {:>5s}").format(
                  "engine", "base", "best", "saving", "ises", "evals",
                  "wall_s", "hit_rate", "dry")
    lines.append(header)
    lines.append("-" * len(header))
    for row in result.rows:
        lines.append(
            "{:10s} {:>6d} {:>6d} {:>7d} {:>5d} {:>6d} {:>8.3f} "
            "{:>9.3f} {:>5d}".format(
                row.engine, row.base_cycles, row.best_cycles, row.saving,
                row.candidates, row.evaluations, row.wall_s,
                row.cache_hit_rate, row.exhausted_blocks))
    return "\n".join(lines)


def tournament_record(result):
    """JSON-serialisable dict of a :class:`TournamentResult`."""
    return {
        "budget_per_block": result.budget,
        "blocks": result.num_blocks,
        "engines": [
            {
                "engine": row.engine,
                "base_cycles": row.base_cycles,
                "best_cycles": row.best_cycles,
                "saving": row.saving,
                "candidates": row.candidates,
                "evaluations": row.evaluations,
                "wall_s": round(row.wall_s, 3),
                "cache_hit_rate": round(row.cache_hit_rate, 3),
                "exhausted_blocks": row.exhausted_blocks,
                "per_block": [
                    {"block": "{}:{}".format(function, label),
                     "base": base, "final": final}
                    for function, label, base, final in row.blocks
                ],
            }
            for row in result.rows
        ],
    }
