"""Chapter-5 experiment harness: runner, experiments, reporting."""

from .metrics import (
    arithmetic_mean,
    geometric_mean,
    reduction_percent,
    summarize,
)
from .runner import (
    ALGORITHMS,
    EvalContext,
    PROFILES,
    area_constraint,
    count_constraint,
    default_profile,
    machine_for_case,
)
from .experiments import (
    AREA_BUDGETS,
    ISE_COUNTS,
    figure_5_2_1,
    figure_5_2_2,
    figure_5_2_3,
    headline_single_ise,
    headline_vs_baseline,
    per_workload_table,
)
from .reporting import (
    render_area_vs_reduction,
    render_headline,
    render_per_workload,
    render_stacked_figure,
    render_table_5_1_1,
)
from .stats import ExplorationStats, stats_of
from .tournament import (
    EngineRow,
    TournamentResult,
    render_tournament,
    run_tournament,
    tournament_record,
)
from .persistence import (
    candidate_record,
    figure_record,
    load_figure,
    load_json,
    report_record,
    save_json,
)

__all__ = [
    "ALGORITHMS",
    "AREA_BUDGETS",
    "EngineRow",
    "EvalContext",
    "ExplorationStats",
    "ISE_COUNTS",
    "PROFILES",
    "TournamentResult",
    "candidate_record",
    "figure_record",
    "load_figure",
    "load_json",
    "report_record",
    "save_json",
    "stats_of",
    "area_constraint",
    "arithmetic_mean",
    "count_constraint",
    "default_profile",
    "figure_5_2_1",
    "figure_5_2_2",
    "figure_5_2_3",
    "geometric_mean",
    "headline_single_ise",
    "headline_vs_baseline",
    "machine_for_case",
    "per_workload_table",
    "reduction_percent",
    "render_area_vs_reduction",
    "render_headline",
    "render_per_workload",
    "render_stacked_figure",
    "render_table_5_1_1",
    "render_tournament",
    "run_tournament",
    "summarize",
    "tournament_record",
]
