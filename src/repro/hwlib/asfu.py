"""ASFU (application-specific function unit) timing and area model.

An ISE executes on an ASFU sitting beside the core function units
(Fig. 1.1.1).  Its silicon cost is the sum of the areas of the chosen
hardware options of its member operations; its execution time is the
combinational critical path through the member operations, rounded up
to whole cycles (Hardware-Grouping, Fig. 4.3.6, measures virtual ISE
candidates with exactly this model).
"""

from ..errors import ConfigError
from .technology import DEFAULT_TECHNOLOGY


def subgraph_area(nodes, option_of):
    """Total silicon area of a set of nodes.

    ``option_of`` maps a node to its chosen
    :class:`~repro.hwlib.options.HardwareOption`.
    """
    return float(sum(option_of(node).area for node in nodes))


def subgraph_delay_ns(graph, nodes, option_of):
    """Combinational critical-path delay through ``nodes``.

    The delay of a path is the sum of the hardware delays of its
    operations; edges leaving the node set are ignored.  ``nodes`` must
    be non-empty and induce an acyclic subgraph of ``graph`` — any
    object exposing ``predecessors``/``successors`` (a DiGraph or a
    :class:`~repro.graph.dfg.DFG`, whose cached adjacency is cheaper).
    """
    members = set(nodes)
    if not members:
        raise ConfigError("an ASFU needs at least one operation")
    # Longest path via one DFS-free topological sweep.  The node set is
    # a subset of a DAG, so iterating nodes in any topological order of
    # the full graph is valid for the induced subgraph too.
    longest = {}
    for node in _topological(graph, members):
        arrival = 0.0
        for pred in graph.predecessors(node):
            if pred in members:
                arrival = max(arrival, longest[pred])
        longest[node] = arrival + option_of(node).delay_ns
    return max(longest.values())


def subgraph_cycles(graph, nodes, option_of, technology=None):
    """Whole-cycle latency of the ASFU for the given node set."""
    tech = technology or DEFAULT_TECHNOLOGY
    return tech.cycles_for_delay(subgraph_delay_ns(graph, nodes, option_of))


class IncrementalDelay:
    """Incrementally maintained :func:`subgraph_delay_ns` of a growing set.

    The ACO iteration scheduler only ever grows a cluster by a node
    whose successors are not yet members (the ant draws operations in a
    topological order), so each addition is a *sink* of the induced
    subgraph: existing arrival times never change and the new node's
    arrival is ``max(arrival of member predecessors) + its delay`` —
    exactly the recurrence of the batch computation, hence bit-identical
    results.  :meth:`preview_add` returns the would-be critical path
    without mutating; :meth:`commit` applies it.  For the (unexpected)
    non-sink case :meth:`rebuild` recomputes from scratch.
    """

    __slots__ = ("graph", "longest", "delay_ns")

    def __init__(self, graph):
        self.graph = graph
        self.longest = {}        # member -> arrival incl. own delay
        self.delay_ns = 0.0

    def preview_add(self, uid, delay_ns):
        """``(arrival, critical path)`` after adding ``uid``; no mutation.

        Only valid while no successor of ``uid`` is a member (the
        caller checks; otherwise use :meth:`rebuild` after growing).
        """
        arrival = 0.0
        longest = self.longest
        for pred in self.graph.predecessors(uid):
            value = longest.get(pred)
            if value is not None and value > arrival:
                arrival = value
        total = arrival + delay_ns
        return total, total if total > self.delay_ns else self.delay_ns

    def commit(self, uid, arrival, delay_ns):
        """Apply a previously previewed addition."""
        self.longest[uid] = arrival
        self.delay_ns = delay_ns

    def rebuild(self, members, option_of):
        """Recompute all arrivals from scratch (non-sink growth)."""
        self.longest = {}
        for node in _topological(self.graph, set(members)):
            arrival = 0.0
            for pred in self.graph.predecessors(node):
                value = self.longest.get(pred)
                if value is not None and value > arrival:
                    arrival = value
            self.longest[node] = arrival + option_of(node).delay_ns
        self.delay_ns = max(self.longest.values())


def _topological(graph, members):
    """Topological order of ``members`` within the DAG ``graph``."""
    indegree = {}
    for node in members:
        degree = 0
        for p in graph.predecessors(node):
            if p in members:
                degree += 1
        indegree[node] = degree
    ready = sorted(node for node, deg in indegree.items() if deg == 0)
    order = []
    while ready:
        node = ready.pop()
        order.append(node)
        for succ in graph.successors(node):
            if succ in members:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
    if len(order) != len(members):
        raise ConfigError("ASFU node set contains a cycle")
    return order


class ASFU:
    """A realised ASFU: node set + chosen hardware options.

    Mostly a reporting convenience wrapping the free functions above.
    """

    __slots__ = ("nodes", "options", "delay_ns", "area", "cycles")

    def __init__(self, graph, nodes, options, technology=None):
        self.nodes = frozenset(nodes)
        self.options = dict(options)
        missing = [n for n in self.nodes if n not in self.options]
        if missing:
            raise ConfigError("nodes without hardware option: {}".format(missing))
        option_of = self.options.__getitem__
        self.delay_ns = subgraph_delay_ns(graph, self.nodes, option_of)
        self.area = subgraph_area(self.nodes, option_of)
        self.cycles = (technology or DEFAULT_TECHNOLOGY).cycles_for_delay(self.delay_ns)

    def __repr__(self):
        return "ASFU({} ops, {:.2f} ns, {:.0f} um2, {} cyc)".format(
            len(self.nodes), self.delay_ns, self.area, self.cycles)
