"""Implementation options and the IO table of §4.1.

Every operation in a DFG owns an *implementation-option (IO) table*
listing the ways it can be executed.  Software options run on a core
function unit and cost whole cycles but zero extra area; hardware
options run inside an ASFU and are characterised by a combinational
delay in nanoseconds plus a silicon area in µm².  Attaching IO tables
to a DFG ``G`` yields the extended graph ``G+`` (Fig. 4.1.1).
"""

from ..errors import ConfigError


class ImplementationOption:
    """Base class of software/hardware implementation options."""

    __slots__ = ("label",)

    def __init__(self, label):
        self.label = str(label)

    @property
    def is_hardware(self):
        """True for ASFU (hardware) options."""
        raise NotImplementedError

    @property
    def is_software(self):
        """True for core function-unit (software) options."""
        return not self.is_hardware

    def __repr__(self):
        return "{}({!r})".format(type(self).__name__, self.label)

    def __eq__(self, other):
        return type(other) is type(self) and other.key == self.key

    def __hash__(self):
        return hash((type(self).__name__, self.key))


class SoftwareOption(ImplementationOption):
    """Execution on a core function unit.

    Parameters
    ----------
    label:
        Display name, e.g. ``"SW"`` or ``"SW-2"``.
    cycles:
        Latency in whole cycles (the paper assumes one cycle for every
        base PISA instruction).
    fu_kind:
        Function-unit type string the scheduler matches against the
        machine's FU mix (``"alu"``, ``"mul"``, ``"mem"``...).
    """

    __slots__ = ("cycles", "fu_kind")

    def __init__(self, label="SW", cycles=1, fu_kind="alu"):
        super().__init__(label)
        if cycles < 1:
            raise ConfigError("software option latency must be >= 1 cycle")
        self.cycles = int(cycles)
        self.fu_kind = str(fu_kind)

    @property
    def is_hardware(self):
        """True for ASFU (hardware) options."""
        return False

    @property
    def key(self):
        """Hashable identity of the option (label + parameters)."""
        return (self.label, self.cycles, self.fu_kind)

    @property
    def area(self):
        """Software costs no extra silicon."""
        return 0.0


class HardwareOption(ImplementationOption):
    """Execution inside an application-specific function unit (ASFU).

    Parameters
    ----------
    label:
        Display name, e.g. ``"HW-1"``.
    delay_ns:
        Combinational delay contributed to the ASFU critical path.
    area:
        Extra silicon area in µm².
    """

    __slots__ = ("delay_ns", "area")

    def __init__(self, label, delay_ns, area):
        super().__init__(label)
        if delay_ns <= 0:
            raise ConfigError("hardware delay must be positive")
        if area < 0:
            raise ConfigError("hardware area must be non-negative")
        self.delay_ns = float(delay_ns)
        self.area = float(area)

    @property
    def is_hardware(self):
        """True for ASFU (hardware) options."""
        return True

    @property
    def key(self):
        """Hashable identity of the option (label + parameters)."""
        return (self.label, self.delay_ns, self.area)


class IOTable:
    """The implementation-option table attached to one operation.

    Options are indexed by their label; iteration order is software
    options first, then hardware options, both in insertion order —
    matching the table layout of Fig. 4.1.1.
    """

    __slots__ = ("_software", "_hardware")

    def __init__(self, software=(), hardware=()):
        self._software = list(software)
        self._hardware = list(hardware)
        if not self._software:
            raise ConfigError("every operation needs >= 1 software option")
        labels = [opt.label for opt in self]
        if len(set(labels)) != len(labels):
            raise ConfigError("duplicate option labels in IO table")

    @property
    def software(self):
        """Software options, in table order."""
        return tuple(self._software)

    @property
    def hardware(self):
        """Hardware options, in table order (may be empty)."""
        return tuple(self._hardware)

    @property
    def has_hardware(self):
        """True when at least one hardware option exists."""
        return bool(self._hardware)

    def __iter__(self):
        yield from self._software
        yield from self._hardware

    def __len__(self):
        return len(self._software) + len(self._hardware)

    def get(self, label):
        """Return the option with the given label, or ``None``."""
        for option in self:
            if option.label == label:
                return option
        return None

    def fastest_hardware(self):
        """The hardware option with the smallest delay, or ``None``."""
        if not self._hardware:
            return None
        return min(self._hardware, key=lambda opt: opt.delay_ns)

    def cheapest_hardware(self):
        """The hardware option with the smallest area, or ``None``."""
        if not self._hardware:
            return None
        return min(self._hardware, key=lambda opt: opt.area)

    def __repr__(self):
        return "IOTable(sw={}, hw={})".format(
            [o.label for o in self._software],
            [o.label for o in self._hardware])


def default_io_table(operation, database, technology=None):
    """Build the IO table of one operation from a hardware database.

    Every operation gets the canonical one-cycle software option on the
    function-unit type implied by its opcode category; groupable
    operations additionally receive the hardware design points of
    Table 5.1.1.
    """
    from ..isa.opcodes import OpCategory

    category = operation.opcode.category
    if category == OpCategory.MULTIPLY:
        fu_kind = "mul"
    elif category in (OpCategory.LOAD, OpCategory.STORE):
        fu_kind = "mem"
    elif operation.opcode.is_control:
        fu_kind = "branch"
    else:
        fu_kind = "alu"
    software = [SoftwareOption("SW", cycles=1, fu_kind=fu_kind)]
    hardware = []
    if operation.groupable:
        hardware = database.hardware_options(operation.name)
    return IOTable(software=software, hardware=hardware)
