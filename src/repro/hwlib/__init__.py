"""Hardware library: Table 5.1.1 database, IO tables, ASFU model."""

from .technology import DEFAULT_TECHNOLOGY, Technology
from .database import DEFAULT_DATABASE, HardwareDatabase
from .options import (
    HardwareOption,
    IOTable,
    ImplementationOption,
    SoftwareOption,
    default_io_table,
)
from .asfu import ASFU, subgraph_area, subgraph_cycles, subgraph_delay_ns

__all__ = [
    "ASFU",
    "DEFAULT_DATABASE",
    "DEFAULT_TECHNOLOGY",
    "HardwareDatabase",
    "HardwareOption",
    "IOTable",
    "ImplementationOption",
    "SoftwareOption",
    "Technology",
    "default_io_table",
    "subgraph_area",
    "subgraph_cycles",
    "subgraph_delay_ns",
]
