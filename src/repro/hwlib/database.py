"""Hardware implementation-option database (Table 5.1.1).

The thesis lists, for every PISA opcode that can be grouped into an ISE,
the delay (ns) and silicon area (µm²) of its hardware implementation in
0.13 µm CMOS.  Several rows offer two design points (a slow/small and a
fast/large implementation); the database preserves both so the explorer
can trade area against delay exactly as in §4.1's example.

The numbers below are transcribed verbatim from Table 5.1.1:

======================  =====================================
opcode group            options (delay ns, area µm²)
======================  =====================================
add addi addu addiu     (4.04, 926.33), (2.12, 2075.35)
sub subu                (4.04, 926.33), (2.14, 2049.41)
mult                    (5.77, 84428.0)
multu                   (5.65, 79778.1)
and andi                (1.58, 214.31)
or ori                  (1.85, 214.21)
xor                     (4.17, 375.1)
xori                    (2.01, 565.14)
nor                     (2.00, 250.0)
slt slti sltu sltiu     (2.64, 1144.0), (1.01, 2636.0)
sll sllv srl srlv
sra srav                (3.00, 400.0)
======================  =====================================
"""

from ..errors import UnknownOpcodeError
from ..isa.opcodes import is_known, opcode as _lookup
from .options import HardwareOption

#: Table 5.1.1, keyed by opcode group.  Each value is a list of
#: (delay_ns, area_um2) design points, fastest last.
_TABLE_5_1_1 = {
    ("add", "addi", "addu", "addiu"): [(4.04, 926.33), (2.12, 2075.35)],
    ("sub", "subu"): [(4.04, 926.33), (2.14, 2049.41)],
    ("mult",): [(5.77, 84428.0)],
    ("multu",): [(5.65, 79778.1)],
    ("and", "andi"): [(1.58, 214.31)],
    ("or", "ori"): [(1.85, 214.21)],
    ("xor",): [(4.17, 375.1)],
    ("xori",): [(2.01, 565.14)],
    ("nor",): [(2.00, 250.0)],
    ("slt", "slti", "sltu", "sltiu"): [(2.64, 1144.0), (1.01, 2636.0)],
    ("sll", "sllv", "srl", "srlv", "sra", "srav"): [(3.00, 400.0)],
}


def _flatten(table):
    flat = {}
    for group, points in table.items():
        for name in group:
            flat[name] = list(points)
    return flat

_BY_OPCODE = _flatten(_TABLE_5_1_1)


class HardwareDatabase:
    """Lookup of hardware design points per opcode.

    The default instance serves Table 5.1.1; custom databases (e.g. for
    a different process node) can be built by passing a mapping of
    mnemonic → list of ``(delay_ns, area_um2)`` pairs.
    """

    def __init__(self, entries=None):
        if entries is None:
            entries = _BY_OPCODE
        self._entries = {name: list(points) for name, points in entries.items()}

    def has(self, name):
        """True when hardware design points exist for mnemonic ``name``."""
        return name in self._entries

    def design_points(self, name):
        """Return ``[(delay_ns, area_um2), ...]`` for mnemonic ``name``.

        Raises :class:`~repro.errors.UnknownOpcodeError` when the
        mnemonic has no hardware implementation (e.g. loads/stores) or
        is not a known opcode at all.
        """
        if name not in self._entries:
            raise UnknownOpcodeError(name)
        return list(self._entries[name])

    def hardware_options(self, name):
        """Return :class:`HardwareOption` objects for mnemonic ``name``.

        Unknown or ungroupable mnemonics yield an empty list — operations
        without hardware options simply cannot join an ISE.
        """
        if name not in self._entries:
            return []
        if is_known(name) and not _lookup(name).groupable:
            return []
        points = self._entries[name]
        options = []
        for index, (delay, area) in enumerate(points, start=1):
            label = "HW-{}".format(index) if len(points) > 1 else "HW"
            options.append(HardwareOption(label, delay_ns=delay, area=area))
        return options

    def opcode_names(self):
        """All mnemonics with at least one design point, sorted."""
        return sorted(self._entries)

    def rows(self):
        """Yield Table 5.1.1 rows as ``(group, [(delay, area), ...])``.

        Only meaningful for the default database; custom databases yield
        one singleton group per mnemonic.
        """
        if self._entries == _BY_OPCODE:
            for group in sorted(_TABLE_5_1_1, key=lambda g: g[0]):
                yield group, list(_TABLE_5_1_1[group])
            return
        for name in self.opcode_names():
            yield (name,), list(self._entries[name])


DEFAULT_DATABASE = HardwareDatabase()
