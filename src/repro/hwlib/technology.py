"""Technology / clocking assumptions of the evaluation (§5.1).

The thesis assumes a CPU core synthesised in 0.13 µm CMOS running at
100 MHz, i.e. a 10 ns cycle, and that every base PISA instruction takes
one cycle.  :class:`Technology` packages these numbers so alternative
operating points can be explored (the ablation benches sweep the clock).
"""

import math

from ..errors import ConfigError


class Technology:
    """Clock and process assumptions.

    Parameters
    ----------
    clock_mhz:
        Core frequency; the paper uses 100 MHz.
    node_um:
        Process node in µm; informational only (area numbers in the
        database are already in µm² at this node).
    """

    __slots__ = ("clock_mhz", "node_um", "_cycles_cache")

    def __init__(self, clock_mhz=100.0, node_um=0.13):
        if clock_mhz <= 0:
            raise ConfigError("clock frequency must be positive")
        if node_um <= 0:
            raise ConfigError("process node must be positive")
        self.clock_mhz = float(clock_mhz)
        self.node_um = float(node_um)
        # Delay→cycles memo: the option database yields a small set of
        # distinct delays, but the schedulers quantise them millions of
        # times per exploration.
        self._cycles_cache = {}

    @property
    def cycle_ns(self):
        """Clock period in nanoseconds (10 ns at the paper's 100 MHz)."""
        return 1000.0 / self.clock_mhz

    def cycles_for_delay(self, delay_ns):
        """Number of whole cycles a combinational delay occupies.

        A zero (or negative) delay still costs one issue slot, hence the
        floor of one cycle.
        """
        cycles = self._cycles_cache.get(delay_ns)
        if cycles is None:
            if delay_ns <= 0:
                cycles = 1
            else:
                cycles = max(1, int(math.ceil(
                    delay_ns / self.cycle_ns - 1e-9)))
            self._cycles_cache[delay_ns] = cycles
        return cycles

    def __repr__(self):
        return "Technology({} MHz, {} um)".format(self.clock_mhz, self.node_um)

    def __eq__(self, other):
        return (isinstance(other, Technology)
                and other.clock_mhz == self.clock_mhz
                and other.node_um == self.node_um)

    def __hash__(self):
        return hash((self.clock_mhz, self.node_um))


DEFAULT_TECHNOLOGY = Technology()
