"""Bitcount workload (MiBench automotive/bitcount analogue).

Counts the set bits of an array of words three ways, like the original
benchmark's kernel medley:

* SWAR popcount — straight-line shift/mask/add tree (prime ISE fodder),
* Kernighan's loop — data-dependent trip count (never unrollable),
* 4-bit nibble table lookups from memory.

The entry function sums all three counters so every kernel's result is
live.  Reference: Python ``int.bit_count`` arithmetic.
"""

from ..ir.builder import FunctionBuilder
from ..ir.program import DataSegment, Program

WORD_COUNT = 48


def input_words(count=WORD_COUNT):
    """Deterministic test vector."""
    state = 0xC0FFEE01
    words = []
    for __ in range(count):
        state = (state ^ (state << 13)) & 0xFFFFFFFF
        state = (state ^ (state >> 17)) & 0xFFFFFFFF
        state = (state ^ (state << 5)) & 0xFFFFFFFF
        words.append(state)
    return words


def build(count=WORD_COUNT):
    """Build the bitcount program; returns ``(Program, args)``."""
    data = DataSegment()
    buf = data.place_words("words", input_words(count))
    nibble_table = [bin(i).count("1") for i in range(16)]
    table = data.place_words("nibbles", nibble_table)

    b = FunctionBuilder("bitcount", params=("buf", "n", "table"))
    b.label("entry")
    b.li(0, dest="zero")
    b.li(0, dest="i")
    b.li(0, dest="total")
    b.jump("word_loop")

    b.label("word_loop")
    offset = b.sll("i", 2)
    addr = b.addu("buf", offset)
    x = b.lw(addr)

    # --- SWAR popcount (straight-line chain) ---
    b.li(0x55555555, dest="m1")
    b.li(0x33333333, dest="m2")
    b.li(0x0F0F0F0F, dest="m4")
    b.li(0x01010101, dest="h01")
    s1 = b.srl(x, 1)
    a1 = b.and_(s1, "m1")
    v1 = b.subu(x, a1)
    s2 = b.srl(v1, 2)
    a2 = b.and_(s2, "m2")
    a3 = b.and_(v1, "m2")
    v2 = b.addu(a2, a3)
    s3 = b.srl(v2, 4)
    v3 = b.addu(v2, s3)
    v4 = b.and_(v3, "m4")
    v5 = b.mult(v4, "h01")
    swar = b.srl(v5, 24)
    b.addu("total", swar, dest="total")

    # --- nibble-table lookup on the low 16 bits ---
    n0 = b.andi(x, 0xF)
    n1a = b.srl(x, 4)
    n1 = b.andi(n1a, 0xF)
    n2a = b.srl(x, 8)
    n2 = b.andi(n2a, 0xF)
    n3a = b.srl(x, 12)
    n3 = b.andi(n3a, 0xF)
    for nib in (n0, n1, n2, n3):
        woff = b.sll(nib, 2)
        waddr = b.addu("table", woff)
        cnt = b.lw(waddr)
        b.addu("total", cnt, dest="total")

    b.move(x, dest="k")
    b.jump("kernighan")

    # --- Kernighan loop: data-dependent trips ---
    b.label("kernighan")
    b.beq("k", "zero", "word_latch", "kern_body")
    b.label("kern_body")
    km1 = b.addiu("k", -1)
    b.and_("k", km1, dest="k")
    b.addiu("total", 1, dest="total")
    b.jump("kernighan")

    b.label("word_latch")
    b.addiu("i", 1, dest="i")
    t = b.sltu("i", "n")
    b.bne(t, "zero", "word_loop", "finish")

    b.label("finish")
    b.ret("total")

    program = Program("bitcount", data=data)
    program.add_function(b.finish())
    return program, (buf, count, table)


def reference(count=WORD_COUNT):
    """Expected result of running the default input."""
    total = 0
    for word in input_words(count):
        pop = bin(word).count("1")
        low16 = bin(word & 0xFFFF).count("1")
        total += pop + low16 + pop      # SWAR + nibbles(low16) + Kernighan
    return total & 0xFFFFFFFF
