"""FFT workload (MiBench telecomm/FFT analogue).

Iterative radix-2 decimation-in-time FFT on N=16 points with Q14
fixed-point twiddle factors.  The butterfly loop is written as one
self-loop over the N/2 butterflies of each stage (indices derived
arithmetically from the butterfly counter), so its constant bound lets
the -O3 unroller produce the large straight-line blocks the paper's
evaluation sees from gcc.

The Python :func:`reference` mirrors the integer arithmetic
bit-exactly (same 32-bit wrapping, same arithmetic shifts), so the test
suite can compare checksums.
"""

import math

from ..ir.builder import FunctionBuilder
from ..ir.program import DataSegment, Program

N = 16
LOG2N = 4
Q = 14

_MASK = 0xFFFFFFFF


def _signed(v):
    v &= _MASK
    return v - 0x100000000 if v & 0x80000000 else v


def twiddles(n=N):
    """Q14 twiddle factors W_n^k = exp(-2πik/n), k < n/2."""
    wr, wi = [], []
    for k in range(n // 2):
        angle = -2.0 * math.pi * k / n
        wr.append(int(round(math.cos(angle) * (1 << Q))) & _MASK)
        wi.append(int(round(math.sin(angle) * (1 << Q))) & _MASK)
    return wr, wi


def bit_reverse_table(n=N, bits=LOG2N):
    """Index-bit-reversal permutation table."""
    table = []
    for i in range(n):
        rev = 0
        for b in range(bits):
            if i & (1 << b):
                rev |= 1 << (bits - 1 - b)
        table.append(rev)
    return table


def input_samples(n=N):
    """Deterministic Q14-scale real input signal."""
    state = 0xFEED1234
    samples = []
    for __ in range(n):
        state = (state * 1664525 + 1013904223) & _MASK
        samples.append((state >> 8) % 4001 - 2000)
    return samples


def build(n=N):
    """Build the FFT program; returns ``(Program, args)``."""
    assert n == N, "IR kernel is generated for N=16"
    data = DataSegment()
    re0 = data.place_words("re", [s & _MASK for s in input_samples(n)])
    im0 = data.place_words("im", [0] * n)
    wr, wi = twiddles(n)
    wr_base = data.place_words("wr", wr)
    wi_base = data.place_words("wi", wi)
    rev_base = data.place_words("rev", bit_reverse_table(n))

    b = FunctionBuilder("fft", params=("re", "im", "wr", "wi", "rev"))
    b.label("entry")
    b.li(0, dest="zero")
    b.li(0, dest="i")
    b.jump("rev_loop")

    # --- bit-reversal permutation ---
    b.label("rev_loop")
    ioff = b.sll("i", 2)
    raddr = b.addu("rev", ioff)
    b.lw(raddr, dest="j")
    t = b.sltu("i", "j")
    b.bne(t, "zero", "do_swap", "rev_latch")

    b.label("do_swap")
    joff = b.sll("j", 2)
    ra = b.addu("re", ioff2b := b.sll("i", 2))
    rb = b.addu("re", joff)
    va = b.lw(ra)
    vb = b.lw(rb)
    b.sw(vb, ra)
    b.sw(va, rb)
    ia = b.addu("im", ioff2b)
    ib = b.addu("im", joff)
    wa = b.lw(ia)
    wb = b.lw(ib)
    b.sw(wb, ia)
    b.sw(wa, ib)
    b.jump("rev_latch")

    b.label("rev_latch")
    b.addiu("i", 1, dest="i")
    t2 = b.slti("i", n)
    b.bne(t2, "zero", "rev_loop", "stage_init")

    # --- butterfly stages ---
    b.label("stage_init")
    b.li(1, dest="stage")        # log2(m), m = group size
    b.jump("stage_head")

    b.label("stage_head")
    b.li(1, dest="one")
    b.sllv("one", "stage", dest="m")
    b.srl("m", 1, dest="half")
    b.addiu("stage", -1, dest="logh")
    b.addiu("half", -1, dest="maskh")
    b.li(LOG2N, dest="logn")
    b.subu("logn", "stage", dest="logstep")
    b.li(0, dest="idx")
    b.jump("bfly")

    # One self-loop over all N/2 butterflies of the stage (constant
    # bound -> unrollable).
    b.label("bfly")
    j = b.and_("idx", "maskh")
    group = b.srlv("idx", "logh")
    k0 = b.sllv(group, "stage")
    i1 = b.addu(k0, j)
    i2 = b.addu(i1, "half")
    k = b.sllv(j, "logstep")
    koff = b.sll(k, 2)
    wr_k = b.lw(b.addu("wr", koff))
    wi_k = b.lw(b.addu("wi", koff))
    off1 = b.sll(i1, 2)
    off2 = b.sll(i2, 2)
    re1a = b.addu("re", off1)
    re2a = b.addu("re", off2)
    im1a = b.addu("im", off1)
    im2a = b.addu("im", off2)
    re2 = b.lw(re2a)
    im2 = b.lw(im2a)
    p1 = b.mult(wr_k, re2)
    p2 = b.mult(wi_k, im2)
    p3 = b.mult(wr_k, im2)
    p4 = b.mult(wi_k, re2)
    tre_w = b.subu(p1, p2)
    tim_w = b.addu(p3, p4)
    tre = b.sra(tre_w, Q)
    tim = b.sra(tim_w, Q)
    ure = b.lw(re1a)
    uim = b.lw(im1a)
    nre1 = b.addu(ure, tre)
    nim1 = b.addu(uim, tim)
    nre2 = b.subu(ure, tre)
    nim2 = b.subu(uim, tim)
    b.sw(nre1, re1a)
    b.sw(nim1, im1a)
    b.sw(nre2, re2a)
    b.sw(nim2, im2a)
    b.addiu("idx", 1, dest="idx")
    t3 = b.slti("idx", n // 2)
    b.bne(t3, "zero", "bfly", "stage_latch")

    b.label("stage_latch")
    b.addiu("stage", 1, dest="stage")
    t4 = b.slti("stage", LOG2N + 1)
    b.bne(t4, "zero", "stage_head", "checksum")

    # --- fold the spectrum into one word ---
    b.label("checksum")
    b.li(0, dest="acc")
    b.li(0, dest="ci")
    b.jump("ck_loop")

    b.label("ck_loop")
    coff = b.sll("ci", 2)
    cre = b.lw(b.addu("re", coff))
    cim = b.lw(b.addu("im", coff))
    mix = b.xor(cre, cim)
    rot = b.sll("acc", 1)
    hi = b.srl("acc", 31)
    rolled = b.or_(rot, hi)
    b.xor(rolled, mix, dest="acc")
    b.addiu("ci", 1, dest="ci")
    t5 = b.slti("ci", n)
    b.bne(t5, "zero", "ck_loop", "finish")

    b.label("finish")
    b.ret("acc")

    program = Program("fft", data=data)
    program.add_function(b.finish())
    return program, (re0, im0, wr_base, wi_base, rev_base)


def reference(n=N):
    """Bit-exact mirror of the IR kernel; returns the checksum."""
    re = [s & _MASK for s in input_samples(n)]
    im = [0] * n
    wr, wi = twiddles(n)
    rev = bit_reverse_table(n)
    for i in range(n):
        j = rev[i]
        if i < j:
            re[i], re[j] = re[j], re[i]
            im[i], im[j] = im[j], im[i]
    for stage in range(1, LOG2N + 1):
        half = 1 << (stage - 1)
        logstep = LOG2N - stage
        for idx in range(n // 2):
            j = idx & (half - 1)
            group = idx >> (stage - 1)
            i1 = ((group << stage) + j) & _MASK
            i2 = i1 + half
            k = j << logstep
            p1 = (_signed(wr[k]) * _signed(re[i2])) & _MASK
            p2 = (_signed(wi[k]) * _signed(im[i2])) & _MASK
            p3 = (_signed(wr[k]) * _signed(im[i2])) & _MASK
            p4 = (_signed(wi[k]) * _signed(re[i2])) & _MASK
            tre = (_signed((p1 - p2) & _MASK) >> Q) & _MASK
            tim = (_signed((p3 + p4) & _MASK) >> Q) & _MASK
            ure, uim = re[i1], im[i1]
            re[i1] = (ure + tre) & _MASK
            im[i1] = (uim + tim) & _MASK
            re[i2] = (ure - tre) & _MASK
            im[i2] = (uim - tim) & _MASK
    acc = 0
    for i in range(n):
        mix = re[i] ^ im[i]
        acc = (((acc << 1) | (acc >> 31)) ^ mix) & _MASK
    return acc
