"""CRC32 workload (MiBench telecomm/CRC32 analogue).

Reflected CRC-32 (polynomial 0xEDB88320) computed bit-serially over a
message buffer — the classic hot loop: eight data-dependent
shift/mask/xor steps per byte.  The inner 8-bit loop has a constant
bound, so the -O3 unroller flattens it into one long straight-line
chain, exactly the shape ISE exploration thrives on.

The interpreter result is checked against :func:`binascii.crc32` in the
test suite (same polynomial, init and final inversion).
"""

import binascii

from ..ir.builder import FunctionBuilder
from ..ir.program import DataSegment, Program

#: Message length in bytes (64 keeps profiling fast but hot).
MESSAGE_LENGTH = 64


def message_bytes(length=MESSAGE_LENGTH):
    """Deterministic pseudo-random message (xorshift-ish)."""
    state = 0x12345678
    out = []
    for __ in range(length):
        state = (state * 1103515245 + 12345) & 0xFFFFFFFF
        out.append((state >> 16) & 0xFF)
    return bytes(out)


def build(length=MESSAGE_LENGTH):
    """Build the CRC32 program; entry ``crc32(buf, len)`` returns the CRC."""
    data = DataSegment()
    buf = data.place_bytes("message", message_bytes(length))

    b = FunctionBuilder("crc32", params=("buf", "len"))
    b.label("entry")
    b.li(0, dest="zero")
    b.li(0xFFFFFFFF, dest="crc")
    b.li(0xEDB88320, dest="poly")
    b.li(0, dest="i")
    b.jump("byte_loop")

    # Outer loop: one message byte per trip (variable length — not
    # unrolled).
    b.label("byte_loop")
    addr = b.addu("buf", "i")
    byte = b.lbu(addr)
    b.xor("crc", byte, dest="crc")
    b.li(0, dest="bit")
    b.jump("bit_loop")

    # Inner loop: 8 constant trips — the -O3 unroller's target.
    b.label("bit_loop")
    lsb = b.andi("crc", 1)
    mask = b.subu("zero", lsb)          # 0 or 0xFFFFFFFF
    masked = b.and_("poly", mask)
    shifted = b.srl("crc", 1)
    b.xor(shifted, masked, dest="crc")
    b.addiu("bit", 1, dest="bit")
    t = b.slti("bit", 8)
    b.bne(t, "zero", "bit_loop", "byte_latch")

    b.label("byte_latch")
    b.addiu("i", 1, dest="i")
    t2 = b.sltu("i", "len")
    b.bne(t2, "zero", "byte_loop", "finish")

    b.label("finish")
    result = b.nor("crc", "crc")        # final inversion (~crc)
    b.ret(result)

    program = Program("crc32", data=data)
    program.add_function(b.finish())
    args = (buf, length)
    return program, args


def reference(length=MESSAGE_LENGTH):
    """Expected CRC value for the default message."""
    return binascii.crc32(message_bytes(length)) & 0xFFFFFFFF
