"""SHA-1 workload (extra, beyond the paper's seven).

MiBench's security suite also ships SHA; the paper evaluates on seven
kernels, so this one is registered under the *extra* workloads and used
by the extension benches only.  Rotate-xor-add chains make SHA-1 a
classic ISE target (rotations cost three PISA instructions each).

One 512-bit block is compressed: the message schedule loop
(64 constant trips) and four 20-round phase loops are all unrollable.
The Python :func:`reference` mirrors the IR and is itself cross-checked
against :mod:`hashlib` in the test suite.
"""

import hashlib
import struct

from ..ir.builder import FunctionBuilder
from ..ir.program import DataSegment, Program

_MASK = 0xFFFFFFFF

MESSAGE = b"The quick brown fox jumps over the lazy dog..."

_H0 = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)
_K = (0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC, 0xCA62C1D6)


def padded_block(message=MESSAGE):
    """Pad ``message`` (< 56 bytes) to one 64-byte SHA-1 block."""
    assert len(message) < 56, "single-block kernel"
    block = message + b"\x80" + b"\x00" * (55 - len(message))
    block += struct.pack(">Q", 8 * len(message))
    return block


def block_words(message=MESSAGE):
    """The block as sixteen big-endian 32-bit words."""
    return list(struct.unpack(">16L", padded_block(message)))


def build(message=MESSAGE):
    """Build the compressor program; returns ``(Program, args)``."""
    data = DataSegment()
    w_base = data.place_words("W", block_words(message) + [0] * 64)
    h_base = data.place_words("H", list(_H0))

    b = FunctionBuilder("sha1_compress", params=("w", "h"))
    b.label("entry")
    b.li(0, dest="zero")
    b.li(16, dest="t")
    b.jump("sched_loop")

    # -- message schedule: W[t] = rol1(W[t-3]^W[t-8]^W[t-14]^W[t-16]) --
    b.label("sched_loop")
    toff = b.sll("t", 2)
    base_t = b.addu("w", toff)
    w3 = b.lw(base_t, -3 * 4)
    w8 = b.lw(base_t, -8 * 4)
    w14 = b.lw(base_t, -14 * 4)
    w16 = b.lw(base_t, -16 * 4)
    x1 = b.xor(w3, w8)
    x2 = b.xor(x1, w14)
    x3 = b.xor(x2, w16)
    hi = b.sll(x3, 1)
    lo = b.srl(x3, 31)
    b.sw(b.or_(hi, lo), base_t)
    b.addiu("t", 1, dest="t")
    tc = b.slti("t", 80)
    b.bne(tc, "zero", "sched_loop", "init_state")

    b.label("init_state")
    b.lw("h", 0, dest="a")
    b.lw("h", 4, dest="bb")
    b.lw("h", 8, dest="c")
    b.lw("h", 12, dest="d")
    b.lw("h", 16, dest="e")
    b.li(0, dest="r")
    b.jump("phase0")

    def round_body(phase, label, next_label):
        b.label(label)
        roff = b.sll("r", 2)
        wt = b.lw(b.addu("w", roff))
        if phase == 0:
            # f = (b & c) | (~b & d)
            bc = b.and_("bb", "c")
            nb = b.nor("bb", "bb")
            nbd = b.and_(nb, "d")
            f = b.or_(bc, nbd)
        elif phase == 2:
            # f = (b & c) | (b & d) | (c & d)
            bc = b.and_("bb", "c")
            bd = b.and_("bb", "d")
            cd = b.and_("c", "d")
            f = b.or_(b.or_(bc, bd), cd)
        else:
            # f = b ^ c ^ d
            f = b.xor(b.xor("bb", "c"), "d")
        k = b.li(_K[phase])
        rol5h = b.sll("a", 5)
        rol5l = b.srl("a", 27)
        rol5 = b.or_(rol5h, rol5l)
        s1 = b.addu(rol5, f)
        s2 = b.addu(s1, "e")
        s3 = b.addu(s2, k)
        temp = b.addu(s3, wt)
        b.move("d", dest="e")
        b.move("c", dest="d")
        r30h = b.sll("bb", 30)
        r30l = b.srl("bb", 2)
        b.or_(r30h, r30l, dest="c")
        b.move("a", dest="bb")
        b.move(temp, dest="a")
        b.addiu("r", 1, dest="r")
        bound = 20 * (phase + 1)
        tcond = b.slti("r", bound)
        b.bne(tcond, "zero", label, next_label)

    round_body(0, "phase0", "phase1")
    round_body(1, "phase1", "phase2")
    round_body(2, "phase2", "phase3")
    round_body(3, "phase3", "finalize")

    b.label("finalize")
    for index, reg in enumerate(("a", "bb", "c", "d", "e")):
        old = b.lw("h", 4 * index)
        b.sw(b.addu(old, reg), "h", 4 * index)
    acc = None
    for index in range(5):
        val = b.lw("h", 4 * index)
        acc = val if acc is None else b.xor(acc, val)
    b.ret(acc)

    program = Program("sha1", data=data)
    program.add_function(b.finish())
    return program, (w_base, h_base)


def compress(message=MESSAGE):
    """Python mirror: the five updated hash words."""
    w = block_words(message) + [0] * 64
    for t in range(16, 80):
        x = w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]
        w[t] = ((x << 1) | (x >> 31)) & _MASK
    a, bb, c, d, e = _H0
    for t in range(80):
        phase = t // 20
        if phase == 0:
            f = (bb & c) | (~bb & d)
        elif phase == 2:
            f = (bb & c) | (bb & d) | (c & d)
        else:
            f = bb ^ c ^ d
        temp = (((a << 5) | (a >> 27)) + f + e + _K[phase] + w[t]) & _MASK
        e, d = d, c
        c = ((bb << 30) | (bb >> 2)) & _MASK
        bb, a = a, temp
    return tuple((h + v) & _MASK
                 for h, v in zip(_H0, (a, bb, c, d, e)))


def reference(message=MESSAGE):
    """Expected return value (xor of the five hash words)."""
    result = 0
    for word in compress(message):
        result ^= word
    return result & _MASK


def hashlib_digest(message=MESSAGE):
    """Independent ground truth for the mirror (test cross-check)."""
    return hashlib.sha1(message).digest()


def mirror_digest(message=MESSAGE):
    """Digest produced by the Python mirror (big-endian)."""
    return struct.pack(">5L", *compress(message))
