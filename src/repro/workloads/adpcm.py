"""ADPCM workload (MiBench telecomm/adpcm analogue).

IMA ADPCM encoder: per 16-bit sample, quantise the prediction error to
a 4-bit code using the standard step-size and index tables, update the
predictor, and clamp.  The control structure follows the reference C
coder (sign test, three-step quantisation with branches, saturation
branches), producing the branchy small-block profile the original
benchmark has.

:func:`reference` mirrors the integer arithmetic exactly.
"""

from ..ir.builder import FunctionBuilder
from ..ir.program import DataSegment, Program

_MASK = 0xFFFFFFFF

#: Standard IMA ADPCM tables (public-domain constants).
INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]

STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
]

SAMPLE_COUNT = 64


def input_samples(count=SAMPLE_COUNT):
    """Deterministic synthetic speech-ish samples in [-4000, 4000]."""
    state = 0xBADC0DE5
    samples = []
    value = 0
    for __ in range(count):
        state = (state * 22695477 + 1) & _MASK
        delta = (state >> 16) % 801 - 400
        value = max(-4000, min(4000, value + delta))
        samples.append(value)
    return samples


def build(count=SAMPLE_COUNT):
    """Build the encoder program; returns ``(Program, args)``."""
    data = DataSegment()
    samples = data.place_words(
        "samples", [s & _MASK for s in input_samples(count)])
    index_tab = data.place_words(
        "index_table", [v & _MASK for v in INDEX_TABLE])
    step_tab = data.place_words("step_table", STEP_TABLE)

    b = FunctionBuilder(
        "adpcm_encode", params=("samples", "n", "index_tab", "step_tab"))
    b.label("entry")
    b.li(0, dest="zero")
    b.li(0, dest="i")
    b.li(0, dest="valpred")
    b.li(0, dest="index")
    b.li(0, dest="acc")
    b.jump("sample_loop")

    b.label("sample_loop")
    soff = b.sll("i", 2)
    b.lw(b.addu("samples", soff), dest="sample")
    ioff = b.sll("index", 2)
    b.lw(b.addu("step_tab", ioff), dest="step")
    b.subu("sample", "valpred", dest="diff")
    t = b.slt("diff", "zero")
    b.bne(t, "zero", "neg_diff", "quant0")

    b.label("neg_diff")
    b.li(8, dest="sign")
    b.subu("zero", "diff", dest="diff")
    b.jump("quant1")

    b.label("quant0")
    b.li(0, dest="sign")
    b.jump("quant1")

    # -- three-step quantisation (delta bits 4, 2, 1) --
    b.label("quant1")
    b.li(0, dest="delta")
    b.srl("step", 3, dest="vpdiff")
    t1 = b.slt("diff", "step")
    b.bne(t1, "zero", "quant2", "q1_take")

    b.label("q1_take")
    b.ori("delta", 4, dest="delta")
    b.subu("diff", "step", dest="diff")
    b.addu("vpdiff", "step", dest="vpdiff")
    b.jump("quant2")

    b.label("quant2")
    b.srl("step", 1, dest="step2")
    t2 = b.slt("diff", "step2")
    b.bne(t2, "zero", "quant3", "q2_take")

    b.label("q2_take")
    b.ori("delta", 2, dest="delta")
    b.subu("diff", "step2", dest="diff")
    b.addu("vpdiff", "step2", dest="vpdiff")
    b.jump("quant3")

    b.label("quant3")
    b.srl("step", 2, dest="step4")
    t3 = b.slt("diff", "step4")
    b.bne(t3, "zero", "update", "q3_take")

    b.label("q3_take")
    b.ori("delta", 1, dest="delta")
    b.addu("vpdiff", "step4", dest="vpdiff")
    b.jump("update")

    # -- predictor update + saturation --
    b.label("update")
    b.beq("sign", "zero", "pred_add", "pred_sub")

    b.label("pred_sub")
    b.subu("valpred", "vpdiff", dest="valpred")
    b.jump("clamp_low")

    b.label("pred_add")
    b.addu("valpred", "vpdiff", dest="valpred")
    b.jump("clamp_high")

    b.label("clamp_high")
    b.li(32767, dest="pmax")
    tc = b.slt("pmax", "valpred")
    b.bne(tc, "zero", "sat_high", "index_update")
    b.label("sat_high")
    b.move("pmax", dest="valpred")
    b.jump("index_update")

    b.label("clamp_low")
    b.li(-32768, dest="pmin")
    td = b.slt("valpred", "pmin")
    b.bne(td, "zero", "sat_low", "index_update")
    b.label("sat_low")
    b.move("pmin", dest="valpred")
    b.jump("index_update")

    # -- index update + clamp to [0, 88] --
    b.label("index_update")
    b.or_("delta", "sign", dest="code")
    coff = b.sll("code", 2)
    adj = b.lw(b.addu("index_tab", coff))
    b.addu("index", adj, dest="index")
    te = b.slt("index", "zero")
    b.bne(te, "zero", "index_zero", "index_high")
    b.label("index_zero")
    b.li(0, dest="index")
    b.jump("emit")
    b.label("index_high")
    b.li(88, dest="imax")
    tf = b.slt("imax", "index")
    b.bne(tf, "zero", "index_cap", "emit")
    b.label("index_cap")
    b.move("imax", dest="index")
    b.jump("emit")

    # -- fold the 4-bit code into the checksum --
    b.label("emit")
    rot = b.sll("acc", 4)
    hi = b.srl("acc", 28)
    rolled = b.or_(rot, hi)
    b.xor(rolled, "code", dest="acc")
    b.addiu("i", 1, dest="i")
    tg = b.sltu("i", "n")
    b.bne(tg, "zero", "sample_loop", "finish")

    b.label("finish")
    b.ret("acc")

    program = Program("adpcm", data=data)
    program.add_function(b.finish())
    return program, (samples, count, index_tab, step_tab)


def reference(count=SAMPLE_COUNT):
    """Bit-exact mirror of the IR encoder; returns the checksum."""
    valpred = 0
    index = 0
    acc = 0
    for sample in input_samples(count):
        step = STEP_TABLE[index]
        diff = sample - valpred
        sign = 8 if diff < 0 else 0
        if diff < 0:
            diff = -diff
        delta = 0
        vpdiff = step >> 3
        if diff >= step:
            delta |= 4
            diff -= step
            vpdiff += step
        if diff >= (step >> 1):
            delta |= 2
            diff -= step >> 1
            vpdiff += step >> 1
        if diff >= (step >> 2):
            delta |= 1
            vpdiff += step >> 2
        if sign:
            valpred -= vpdiff
            if valpred < -32768:
                valpred = -32768
        else:
            valpred += vpdiff
            if valpred > 32767:
                valpred = 32767
        code = delta | sign
        index += INDEX_TABLE[code]
        index = max(0, min(88, index))
        acc = (((acc << 4) | (acc >> 28)) ^ code) & _MASK
    return acc
