"""Workload registry — the seven benchmarks of §5.1.

Each entry wraps a builder module exposing ``build() -> (Program,
args)`` and ``reference() -> int``; :func:`get_workload` returns a
:class:`Workload` handle and :func:`all_workloads` the full suite in
the paper's order (CRC32, FFT, adpcm, bitcount, blowfish, jpeg,
dijkstra).
"""

from ..errors import ReproError
from . import adpcm, bitcount, blowfish, crc32, dijkstra, fft, jpeg, sha1


class Workload:
    """A named benchmark: program builder + inputs + expected result."""

    def __init__(self, name, module, description):
        self.name = name
        self._module = module
        self.description = description

    def build(self):
        """Fresh ``(Program, args)`` pair."""
        return self._module.build()

    def reference(self):
        """Expected 32-bit result of running the program."""
        return self._module.reference() & 0xFFFFFFFF

    def __repr__(self):
        return "Workload({!r})".format(self.name)


_REGISTRY = [
    Workload("crc32", crc32,
             "bit-serial reflected CRC-32 over a 64-byte message"),
    Workload("fft", fft,
             "radix-2 fixed-point FFT, 16 points, Q14 twiddles"),
    Workload("adpcm", adpcm,
             "IMA ADPCM encoder over 64 samples"),
    Workload("bitcount", bitcount,
             "SWAR + table + Kernighan popcounts over 48 words"),
    Workload("blowfish", blowfish,
             "16-round Blowfish Feistel core over 8 blocks"),
    Workload("jpeg", jpeg,
             "libjpeg-style integer 8x8 forward DCT"),
    Workload("dijkstra", dijkstra,
             "O(N^2) Dijkstra over a 12-node dense digraph"),
]

#: Extra kernels beyond the paper's seven (extension benches only, so
#: the chapter-5 reproductions keep the paper's workload mix).
_EXTRA = [
    Workload("sha1", sha1,
             "SHA-1 single-block compression (80 rounds)"),
]

_BY_NAME = {w.name: w for w in _REGISTRY + _EXTRA}


def all_workloads():
    """The seven benchmarks, in the paper's order."""
    return list(_REGISTRY)


def extra_workloads():
    """Kernels beyond the paper's suite (used by extension benches)."""
    return list(_EXTRA)


def workload_names():
    """Names of the seven paper benchmarks, in order."""
    return [w.name for w in _REGISTRY]


def get_workload(name):
    """Look up any workload (paper suite or extras) by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ReproError(
            "unknown workload {!r}; choose from {}".format(
                name, sorted(_BY_NAME))) from None
