"""Dijkstra workload (MiBench network/dijkstra analogue).

Single-source shortest paths over a dense adjacency matrix with the
classic O(N²) algorithm: an outer loop extracting the closest
unvisited node (linear scan) and an inner relaxation loop.  Branchy,
memory-bound, small basic blocks — the *hardest* workload for ISE
exploration, which is exactly the role it plays in the paper's mix.

:func:`reference` runs the same algorithm in Python.
"""

from ..ir.builder import FunctionBuilder
from ..ir.program import DataSegment, Program

_MASK = 0xFFFFFFFF

NUM_NODES = 12
INFINITY = 0x3FFFFFFF


def adjacency(n=NUM_NODES):
    """Deterministic weighted digraph (about 40% density)."""
    state = 0xD1185712
    matrix = []
    for i in range(n):
        row = []
        for j in range(n):
            state = (state * 1103515245 + 12345) & _MASK
            if i == j:
                row.append(0)
            elif (state >> 16) % 10 < 4:
                row.append((state >> 8) % 30 + 1)
            else:
                row.append(INFINITY)
        matrix.append(row)
    return matrix


def build(n=NUM_NODES, source=0):
    """Build the shortest-path program; returns ``(Program, args)``."""
    data = DataSegment()
    flat = [w for row in adjacency(n) for w in row]
    adj = data.place_words("adj", flat)
    dist = data.reserve_words("dist", n)
    visited = data.reserve_words("visited", n)

    b = FunctionBuilder(
        "dijkstra", params=("adj", "dist", "visited", "n", "source"))
    b.label("entry")
    b.li(0, dest="zero")
    b.li(INFINITY, dest="inf")
    b.li(0, dest="i")
    b.jump("init_loop")

    b.label("init_loop")
    off = b.sll("i", 2)
    b.sw("inf", b.addu("dist", off))
    b.sw("zero", b.addu("visited", off))
    b.addiu("i", 1, dest="i")
    t = b.sltu("i", "n")
    b.bne(t, "zero", "init_loop", "set_source")

    b.label("set_source")
    soff = b.sll("source", 2)
    b.sw("zero", b.addu("dist", soff))
    b.li(0, dest="iter")
    b.jump("outer_loop")

    # -- outer: pick closest unvisited node --
    b.label("outer_loop")
    b.li(-1, dest="best")
    b.move("inf", dest="bestd")
    b.li(0, dest="j")
    b.jump("scan_loop")

    b.label("scan_loop")
    joff = b.sll("j", 2)
    vis = b.lw(b.addu("visited", joff))
    b.bne(vis, "zero", "scan_latch", "scan_check")

    b.label("scan_check")
    dj = b.lw(b.addu("dist", b.sll("j", 2)))
    t1 = b.sltu(dj, "bestd")
    b.bne(t1, "zero", "scan_take", "scan_latch")

    b.label("scan_take")
    b.move("j", dest="best")
    b.lw(b.addu("dist", b.sll("j", 2)), dest="bestd")
    b.jump("scan_latch")

    b.label("scan_latch")
    b.addiu("j", 1, dest="j")
    t2 = b.sltu("j", "n")
    b.bne(t2, "zero", "scan_loop", "check_best")

    b.label("check_best")
    b.bltz("best", "finish_prep", "mark")

    b.label("mark")
    boff = b.sll("best", 2)
    b.li(1, dest="one")
    b.sw("one", b.addu("visited", boff))
    # row base of node `best` in the adjacency matrix
    rowoff = b.mult("best", b.li(n * 4))
    b.addu("adj", rowoff, dest="rowbase")
    b.li(0, dest="k")
    b.jump("relax_loop")

    # -- inner: relax edges out of `best` --
    b.label("relax_loop")
    koff = b.sll("k", 2)
    w = b.lw(b.addu("rowbase", koff))
    t3 = b.sltu(w, "inf")
    b.bne(t3, "zero", "relax_try", "relax_latch")

    b.label("relax_try")
    cand = b.addu("bestd", w)
    dk = b.lw(b.addu("dist", b.sll("k", 2)))
    t4 = b.sltu(cand, dk)
    b.bne(t4, "zero", "relax_store", "relax_latch")

    b.label("relax_store")
    b.sw(cand, b.addu("dist", b.sll("k", 2)))
    b.jump("relax_latch")

    b.label("relax_latch")
    b.addiu("k", 1, dest="k")
    t5 = b.sltu("k", "n")
    b.bne(t5, "zero", "relax_loop", "outer_latch")

    b.label("outer_latch")
    b.addiu("iter", 1, dest="iter")
    t6 = b.sltu("iter", "n")
    b.bne(t6, "zero", "outer_loop", "finish_prep")

    # -- fold distances into a checksum --
    b.label("finish_prep")
    b.li(0, dest="acc")
    b.li(0, dest="ci")
    b.jump("ck_loop")

    b.label("ck_loop")
    coff = b.sll("ci", 2)
    dv = b.lw(b.addu("dist", coff))
    rot = b.sll("acc", 3)
    hi = b.srl("acc", 29)
    rolled = b.or_(rot, hi)
    b.xor(rolled, dv, dest="acc")
    b.addiu("ci", 1, dest="ci")
    t7 = b.sltu("ci", "n")
    b.bne(t7, "zero", "ck_loop", "finish")

    b.label("finish")
    b.ret("acc")

    program = Program("dijkstra", data=data)
    program.add_function(b.finish())
    return program, (adj, dist, visited, n, source)


def reference(n=NUM_NODES, source=0):
    """Expected distance checksum for the default graph."""
    matrix = adjacency(n)
    dist = [INFINITY] * n
    visited = [False] * n
    dist[source] = 0
    for __ in range(n):
        best, bestd = -1, INFINITY
        for j in range(n):
            if not visited[j] and dist[j] < bestd:
                best, bestd = j, dist[j]
        if best < 0:
            break
        visited[best] = True
        for k in range(n):
            w = matrix[best][k]
            if w < INFINITY and bestd + w < dist[k]:
                dist[k] = bestd + w
    acc = 0
    for dv in dist:
        acc = (((acc << 3) | (acc >> 29)) ^ dv) & _MASK
    return acc
