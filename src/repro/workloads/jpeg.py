"""JPEG forward-DCT workload (MiBench consumer/jpeg analogue).

The hot kernel of JPEG compression is the 8×8 forward DCT; this module
implements the libjpeg ``jdct_islow``-style integer
Loeffler-Ligtenberg-Moshovitz transform: a row pass and a column pass,
each an 8-iteration constant-bound loop whose body is a ~60-operation
straight-line butterfly network with fixed-point constant multiplies —
the largest basic blocks in the suite once -O3 unrolls them.

:func:`reference` mirrors the integer arithmetic bit-exactly.
"""

from ..ir.builder import FunctionBuilder
from ..ir.program import DataSegment, Program

_MASK = 0xFFFFFFFF

# libjpeg scaled constants (13-bit fixed point).
CONST_BITS = 13
PASS1_BITS = 2
FIX_0_298631336 = 2446
FIX_0_390180644 = 3196
FIX_0_541196100 = 4433
FIX_0_765366865 = 6270
FIX_0_899976223 = 7373
FIX_1_175875602 = 9633
FIX_1_501321110 = 12299
FIX_1_847759065 = 15137
FIX_1_961570560 = 16069
FIX_2_053119869 = 16819
FIX_2_562915447 = 20995
FIX_3_072711026 = 25172


def input_block():
    """A deterministic 8×8 sample block (centred around zero)."""
    state = 0x06021986
    block = []
    for __ in range(64):
        state = (state * 69069 + 1) & _MASK
        block.append(((state >> 16) & 0xFF) - 128)
    return block


def _signed(v):
    v &= _MASK
    return v - 0x100000000 if v & 0x80000000 else v


def build():
    """Build the DCT program; returns ``(Program, args)``."""
    data = DataSegment()
    block = data.place_words("block", [v & _MASK for v in input_block()])

    b = FunctionBuilder("fdct", params=("block",))
    b.label("entry")
    b.li(0, dest="zero")
    b.li(0, dest="row")
    b.jump("row_loop")

    _emit_pass(b, loop="row_loop", latch_target="col_init",
               counter="row", stride_outer=32, stride_inner=4,
               descale=CONST_BITS - PASS1_BITS, add_pass1=True)

    b.label("col_init")
    b.li(0, dest="col")
    b.jump("col_loop")

    _emit_pass(b, loop="col_loop", latch_target="checksum",
               counter="col", stride_outer=4, stride_inner=32,
               descale=CONST_BITS + PASS1_BITS, add_pass1=False)

    b.label("checksum")
    b.li(0, dest="acc")
    b.li(0, dest="ci")
    b.jump("ck_loop")
    b.label("ck_loop")
    coff = b.sll("ci", 2)
    v = b.lw(b.addu("block", coff))
    rot = b.sll("acc", 1)
    hi = b.srl("acc", 31)
    rolled = b.or_(rot, hi)
    b.xor(rolled, v, dest="acc")
    b.addiu("ci", 1, dest="ci")
    t = b.slti("ci", 64)
    b.bne(t, "zero", "ck_loop", "finish")
    b.label("finish")
    b.ret("acc")

    program = Program("jpeg_fdct", data=data)
    program.add_function(b.finish())
    return program, (block,)


def _emit_pass(b, loop, latch_target, counter, stride_outer, stride_inner,
               descale, add_pass1):
    """One DCT pass: an 8-trip loop whose body transforms one vector."""
    b.label(loop)
    base_off = b.mult(counter, b.li(stride_outer))
    base = b.addu("block", base_off)
    addr = [b.addu(base, b.li(i * stride_inner)) for i in range(8)]
    d = [b.lw(addr[i]) for i in range(8)]

    tmp0 = b.addu(d[0], d[7])
    tmp7 = b.subu(d[0], d[7])
    tmp1 = b.addu(d[1], d[6])
    tmp6 = b.subu(d[1], d[6])
    tmp2 = b.addu(d[2], d[5])
    tmp5 = b.subu(d[2], d[5])
    tmp3 = b.addu(d[3], d[4])
    tmp4 = b.subu(d[3], d[4])

    tmp10 = b.addu(tmp0, tmp3)
    tmp13 = b.subu(tmp0, tmp3)
    tmp11 = b.addu(tmp1, tmp2)
    tmp12 = b.subu(tmp1, tmp2)

    if add_pass1:
        s04 = b.addu(tmp10, tmp11)
        out0 = b.sll(s04, PASS1_BITS)
        d04 = b.subu(tmp10, tmp11)
        out4 = b.sll(d04, PASS1_BITS)
    else:
        s04 = b.addu(tmp10, tmp11)
        out0 = _descale(b, s04, PASS1_BITS)
        d04 = b.subu(tmp10, tmp11)
        out4 = _descale(b, d04, PASS1_BITS)

    z1s = b.addu(tmp12, tmp13)
    z1 = b.mult(z1s, b.li(FIX_0_541196100))
    m13 = b.mult(tmp13, b.li(FIX_0_765366865))
    m12 = b.mult(tmp12, b.li(FIX_1_847759065))
    out2w = b.addu(z1, m13)
    out6w = b.subu(z1, m12)
    out2 = _descale(b, out2w, descale)
    out6 = _descale(b, out6w, descale)

    z1o = b.addu(tmp4, tmp7)
    z2o = b.addu(tmp5, tmp6)
    z3o = b.addu(tmp4, tmp6)
    z4o = b.addu(tmp5, tmp7)
    z34 = b.addu(z3o, z4o)
    z5 = b.mult(z34, b.li(FIX_1_175875602))

    t4 = b.mult(tmp4, b.li(FIX_0_298631336))
    t5 = b.mult(tmp5, b.li(FIX_2_053119869))
    t6 = b.mult(tmp6, b.li(FIX_3_072711026))
    t7 = b.mult(tmp7, b.li(FIX_1_501321110))
    z1m = b.mult(z1o, b.li(FIX_0_899976223))
    z1n = b.subu("zero", z1m)
    z2m = b.mult(z2o, b.li(FIX_2_562915447))
    z2n = b.subu("zero", z2m)
    z3m = b.mult(z3o, b.li(FIX_1_961570560))
    z3n0 = b.subu("zero", z3m)
    z4m = b.mult(z4o, b.li(FIX_0_390180644))
    z4n0 = b.subu("zero", z4m)
    z3n = b.addu(z3n0, z5)
    z4n = b.addu(z4n0, z5)

    o7a = b.addu(t4, z1n)
    o7w = b.addu(o7a, z3n)
    o5a = b.addu(t5, z2n)
    o5w = b.addu(o5a, z4n)
    o3a = b.addu(t6, z2n)
    o3w = b.addu(o3a, z3n)
    o1a = b.addu(t7, z1n)
    o1w = b.addu(o1a, z4n)
    out7 = _descale(b, o7w, descale)
    out5 = _descale(b, o5w, descale)
    out3 = _descale(b, o3w, descale)
    out1 = _descale(b, o1w, descale)

    outs = [out0, out1, out2, out3, out4, out5, out6, out7]
    for i in range(8):
        b.sw(outs[i], addr[i])

    b.addiu(counter, 1, dest=counter)
    t = b.slti(counter, 8)
    b.bne(t, "zero", loop, latch_target)


def _descale(b, reg, bits):
    rounded = b.addiu(reg, 1 << (bits - 1))
    return b.sra(rounded, bits)


def reference():
    """Bit-exact mirror; returns the coefficient checksum."""
    block = [v & _MASK for v in input_block()]

    def pass_(stride_outer, stride_inner, descale, add_pass1):
        for c in range(8):
            base = c * stride_outer // 4
            idx = [base + i * stride_inner // 4 for i in range(8)]
            d = [_signed(block[i]) for i in idx]
            tmp0, tmp7 = d[0] + d[7], d[0] - d[7]
            tmp1, tmp6 = d[1] + d[6], d[1] - d[6]
            tmp2, tmp5 = d[2] + d[5], d[2] - d[5]
            tmp3, tmp4 = d[3] + d[4], d[3] - d[4]
            tmp10, tmp13 = tmp0 + tmp3, tmp0 - tmp3
            tmp11, tmp12 = tmp1 + tmp2, tmp1 - tmp2
            if add_pass1:
                out0 = (tmp10 + tmp11) << PASS1_BITS
                out4 = (tmp10 - tmp11) << PASS1_BITS
            else:
                out0 = _ds(tmp10 + tmp11, PASS1_BITS)
                out4 = _ds(tmp10 - tmp11, PASS1_BITS)
            z1 = (tmp12 + tmp13) * FIX_0_541196100
            out2 = _ds(z1 + tmp13 * FIX_0_765366865, descale)
            out6 = _ds(z1 - tmp12 * FIX_1_847759065, descale)
            z1o, z2o = tmp4 + tmp7, tmp5 + tmp6
            z3o, z4o = tmp4 + tmp6, tmp5 + tmp7
            z5 = (z3o + z4o) * FIX_1_175875602
            t4 = tmp4 * FIX_0_298631336
            t5 = tmp5 * FIX_2_053119869
            t6 = tmp6 * FIX_3_072711026
            t7 = tmp7 * FIX_1_501321110
            z1n = -(z1o * FIX_0_899976223)
            z2n = -(z2o * FIX_2_562915447)
            z3n = -(z3o * FIX_1_961570560) + z5
            z4n = -(z4o * FIX_0_390180644) + z5
            out7 = _ds(t4 + z1n + z3n, descale)
            out5 = _ds(t5 + z2n + z4n, descale)
            out3 = _ds(t6 + z2n + z3n, descale)
            out1 = _ds(t7 + z1n + z4n, descale)
            outs = [out0, out1, out2, out3, out4, out5, out6, out7]
            for i in range(8):
                block[idx[i]] = outs[i] & _MASK

    def _ds(value, bits):
        value = _signed(value & _MASK)
        return (value + (1 << (bits - 1))) >> bits

    pass_(32, 4, CONST_BITS - PASS1_BITS, True)
    pass_(4, 32, CONST_BITS + PASS1_BITS, False)
    acc = 0
    for v in block:
        acc = (((acc << 1) | (acc >> 31)) ^ v) & _MASK
    return acc
